//! Chaos differential suite for the self-healing multi-process engine
//! (PR 8): deterministic fault injection ([`FaultPlan`]) against every
//! builder, asserting that recovery is **invisible in the output**.
//!
//! The contracts pinned here:
//!
//! * **Bit-identity through recovery** — kill any worker before any task
//!   index, under any worker count: the coordinator re-executes the lost
//!   tasks on a respawned worker and the histogram, logical metrics and
//!   measured-vs-accounted byte equality all match the fault-free run.
//! * **No hangs** — a stalled worker surfaces as
//!   [`EngineError::WorkerTimeout`] within the configured read deadline,
//!   or (with retries) is killed and its tasks re-executed.
//! * **Typed failures at zero retries** — with recovery disabled every
//!   injected fault surfaces as its own [`EngineError`] variant, exactly
//!   the PR 7 behavior.
//! * **Honest accounting** — recovered runs still satisfy
//!   `wire.pair_bytes == shuffle_bytes` (commit-on-`TASK_END` counts a
//!   retried task's pairs exactly once), while `frame_bytes`/`frames`
//!   include the discarded partial traffic, and
//!   [`RunMetrics::recovery`] reports what happened.

#![cfg(unix)]

use std::time::{Duration, Instant};

use wavelet_hist::builders::{
    BasicS, HWTopk, HistogramBuilder, ImprovedS, SendCoef, SendSketch, SendSketchAms, SendV,
    TwoLevelS,
};
use wavelet_hist::data::{Dataset, DatasetBuilder};
use wavelet_hist::mapreduce::cost::validate_measured_shuffle;
use wavelet_hist::mapreduce::wire::WKey;
use wavelet_hist::mapreduce::{
    try_run_job, ClusterConfig, EngineConfig, EngineError, FaultPlan, JobSpec, MapContext, MapTask,
    ReduceContext, RunMetrics,
};
use wavelet_hist::wavelet::Domain;

const SPLITS: usize = 8;

fn dataset() -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(9).unwrap())
        .records(6_000)
        .splits(SPLITS as u32)
        .seed(0xabcd)
        .build()
}

/// Every builder with an engine knob, at a fixed configuration.
fn builders(engine: EngineConfig) -> Vec<Box<dyn HistogramBuilder>> {
    let eps = 0.02;
    vec![
        Box::new(SendV::new().with_engine(engine)),
        Box::new(SendCoef::new().with_engine(engine)),
        Box::new(HWTopk::new().with_engine(engine)),
        Box::new(BasicS::new(eps, 3).with_engine(engine)),
        Box::new(ImprovedS::new(eps, 3).with_engine(engine)),
        Box::new(TwoLevelS::new(eps, 3).with_engine(engine)),
        Box::new(SendSketch::new(5).with_engine(engine)),
        Box::new(SendSketchAms::new(5).with_engine(engine)),
    ]
}

fn chaos_engine(workers: usize) -> EngineConfig {
    EngineConfig::multi_process()
        .with_reducers(4)
        .with_map_parallelism(workers)
        .with_retry_backoff_ms(1)
}

/// One digest row per reduced key: `(key, value count, value sum)`.
type ProbeDigest = Vec<(u64, u64, u64)>;

/// A combiner-less probe job over `SPLITS` synthetic splits, small
/// enough to fork hundreds of times but with enough pairs that worker
/// streams span many frames.
fn probe_job(engine: EngineConfig) -> Result<(ProbeDigest, RunMetrics), EngineError> {
    let tasks: Vec<MapTask<WKey, u64>> = (0..SPLITS as u32)
        .map(|j| {
            MapTask::new(j, move |ctx: &mut MapContext<WKey, u64>| {
                for i in 0..400u64 {
                    ctx.emit(
                        WKey::four((i * 7 + u64::from(j)) % 64),
                        (u64::from(j) << 32) | i,
                    );
                }
            })
        })
        .collect();
    let spec = JobSpec::new(
        "chaos-probe",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, u64)>| {
            let digest = vs.iter().enumerate().fold(0u64, |acc, (i, v)| {
                acc.wrapping_add(v.wrapping_mul(i as u64 + 1))
            });
            ctx.emit((k.id, vs.len() as u64, digest));
        },
    )
    .with_radix_keys()
    .with_wire_codec()
    .with_engine(engine);
    try_run_job(&ClusterConfig::paper_cluster(), spec).map(|out| (out.outputs, out.metrics))
}

/// Tentpole: for every builder, kill any worker before any task index,
/// under 1/2/4 workers — the recovered run is **bit-identical** to the
/// fault-free run (histogram and logical metrics), still satisfies
/// measured-equals-accounted bytes, and reports the retry.
#[test]
fn every_builder_recovers_bit_identically_from_worker_kills() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let k = 12;
    let baseline: Vec<_> = builders(EngineConfig::default().with_reducers(4))
        .into_iter()
        .map(|b| (b.name(), b.build(&ds, &cluster, k)))
        .collect();
    for workers in [1usize, 2, 4] {
        for t in 0..SPLITS as u32 {
            // Global task t lands on worker t % W as its (t / W)-th
            // local task under round-robin assignment.
            let faults =
                FaultPlan::none().kill_worker_before_task(t % workers as u32, t / workers as u32);
            let engine = chaos_engine(workers).with_faults(faults);
            for (b, (name, want)) in builders(engine).into_iter().zip(&baseline) {
                let got = b.build(&ds, &cluster, k);
                assert_eq!(
                    got.histogram.coefficients(),
                    want.histogram.coefficients(),
                    "{name}: W={workers} kill@{t}"
                );
                assert_eq!(
                    got.metrics, want.metrics,
                    "{name}: logical metrics W={workers} kill@{t}"
                );
                assert_eq!(
                    got.metrics.wire.pair_bytes, got.metrics.shuffle_bytes,
                    "{name}: measured vs accounted W={workers} kill@{t}"
                );
                // Killing worker 0 before its first task fires in every
                // round of every builder; other indices may fall outside
                // a round's task count, so only t == 0 asserts recovery.
                if t == 0 {
                    assert!(
                        got.metrics.recovery.recovered(),
                        "{name}: W={workers} kill@0 must report recovery, got {:?}",
                        got.metrics.recovery
                    );
                    assert!(got.metrics.recovery.tasks_retried >= 1, "{name}");
                    assert!(got.metrics.recovery.workers_respawned >= 1, "{name}");
                }
            }
        }
    }
}

/// A stalled worker surfaces as a typed [`EngineError::WorkerTimeout`]
/// within the read deadline — never a hang — when recovery is disabled.
#[test]
fn stalled_worker_times_out_instead_of_hanging() {
    let engine = chaos_engine(2)
        .with_task_retries(0)
        .with_read_deadline_ms(250)
        .with_faults(FaultPlan::none().stall_worker(1, 10_000));
    let start = Instant::now();
    let err = probe_job(engine).unwrap_err();
    let elapsed = start.elapsed();
    match err {
        EngineError::WorkerTimeout {
            worker,
            deadline_ms,
        } => {
            assert_eq!(worker, 1);
            assert_eq!(deadline_ms, 250);
        }
        other => panic!("expected WorkerTimeout, got {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(8),
        "coordinator must not wait out the 10s stall (took {elapsed:?})"
    );
}

/// With retries enabled the stalled worker is killed and its tasks
/// re-executed: same answers as the fault-free run, timeout counted.
#[test]
fn stalled_worker_is_killed_and_its_tasks_re_executed() {
    let (want, _) = probe_job(chaos_engine(2)).unwrap();
    let engine = chaos_engine(2)
        .with_read_deadline_ms(250)
        .with_faults(FaultPlan::none().stall_worker(0, 10_000));
    let start = Instant::now();
    let (got, metrics) = probe_job(engine).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(got, want);
    assert!(metrics.recovery.recovered());
    assert!(metrics.recovery.timeouts >= 1);
    assert!(metrics.recovery.workers_respawned >= 1);
    assert!(
        elapsed < Duration::from_secs(8),
        "recovery must kill the stalled worker, not wait it out (took {elapsed:?})"
    );
}

/// A truncated stream (clean exit mid-protocol) loses its uncommitted
/// tasks only: they re-execute and the output matches fault-free, while
/// the physical frame counters still include the discarded traffic.
#[test]
fn truncated_stream_recovers_bit_identically() {
    let (want, clean) = probe_job(chaos_engine(2)).unwrap();
    let engine = chaos_engine(2).with_faults(FaultPlan::none().truncate_worker_after_frame(0, 2));
    let (got, metrics) = probe_job(engine).unwrap();
    assert_eq!(got, want);
    assert!(metrics.recovery.recovered());
    assert!(metrics.recovery.tasks_retried >= 1);
    assert_eq!(metrics.wire.pair_bytes, clean.wire.pair_bytes);
    assert_eq!(metrics.wire.pair_bytes, metrics.shuffle_bytes);
    assert!(
        metrics.wire.frames > clean.wire.frames,
        "retried traffic must show up in the physical frame count"
    );
    validate_measured_shuffle(&metrics).expect("recovered run validates");
}

/// A frame failing its CRC32C check is discarded with its task, counted,
/// and recovered from — silent corruption can not produce wrong answers.
#[test]
fn corrupt_frame_recovers_and_is_counted() {
    let (want, _) = probe_job(chaos_engine(2)).unwrap();
    let engine = chaos_engine(2).with_faults(FaultPlan::none().corrupt_worker_frame(0, 1));
    let (got, metrics) = probe_job(engine).unwrap();
    assert_eq!(got, want);
    assert!(metrics.recovery.recovered());
    assert!(metrics.recovery.corrupt_frames >= 1);
    assert_eq!(metrics.wire.pair_bytes, metrics.shuffle_bytes);
}

/// With `max_task_retries = 0` (the PR 7 contract) every injected fault
/// surfaces as its own typed error instead of being healed.
#[test]
fn zero_retries_surfaces_every_fault_as_a_typed_error() {
    let base = chaos_engine(2).with_task_retries(0);

    let err =
        probe_job(base.with_faults(FaultPlan::none().kill_worker_before_task(1, 0))).unwrap_err();
    match err {
        EngineError::WorkerDied { worker, signal, .. } => {
            assert_eq!(worker, 1);
            assert!(signal.is_some(), "SIGKILL death reports its signal");
        }
        other => panic!("expected WorkerDied, got {other}"),
    }

    let err = probe_job(base.with_faults(FaultPlan::none().truncate_worker_after_frame(1, 2)))
        .unwrap_err();
    assert!(
        matches!(err, EngineError::TruncatedFrame { worker: 1 }),
        "expected TruncatedFrame, got {err}"
    );

    let err =
        probe_job(base.with_faults(FaultPlan::none().corrupt_worker_frame(0, 2))).unwrap_err();
    assert!(
        matches!(err, EngineError::CorruptFrame { worker: 0 }),
        "expected CorruptFrame, got {err}"
    );
}

/// Recovery is bounded: a fault that re-fires on every attempt exhausts
/// `max_task_retries` and surfaces the original error instead of
/// retrying forever. (Injected faults arm first spawns only, so the
/// deterministic re-failure here comes from the task closure itself.)
#[test]
fn deterministic_task_failures_exhaust_the_retry_budget() {
    let tasks: Vec<MapTask<WKey, u64>> = (0..4u32)
        .map(|j| {
            MapTask::new(j, move |ctx: &mut MapContext<WKey, u64>| {
                ctx.emit(WKey::four(u64::from(j)), 1);
                if j == 2 && ctx.in_worker_process() {
                    std::process::abort();
                }
            })
        })
        .collect();
    let spec = JobSpec::new(
        "chaos-budget",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_wire_codec()
    .with_engine(chaos_engine(2).with_task_retries(1));
    match try_run_job(&ClusterConfig::paper_cluster(), spec).unwrap_err() {
        EngineError::WorkerDied { worker, signal, .. } => {
            assert_eq!(worker, 0, "task 2 rides on worker 0 under round-robin");
            assert!(signal.is_some(), "abort dies by signal");
        }
        other => panic!("expected WorkerDied after exhausted retries, got {other}"),
    }
}

/// Satellite (PR 10): the 2-D build path under chaos. Send-Coef-2D
/// ships `(u16, u16)` coefficient keys over the wire; a killed,
/// corrupted, or stalled worker must recover to the **bit-identical**
/// histogram and logical metrics of the fault-free run, with measured
/// bytes still equal to accounted bytes — and at zero retries the same
/// faults surface as typed errors from `try_build`.
#[test]
fn twod_build_recovers_bit_identically_under_chaos() {
    use wavelet_hist::data::twod::{Dataset2d, Distribution2d};
    use wavelet_hist::twod::{sequential_send_coef2d, SendCoef2d};

    let ds = Dataset2d::new(
        Domain::new(5).unwrap(),
        Distribution2d::Correlated {
            alpha: 1.1,
            spread: 2,
        },
        8_000,
        SPLITS as u32,
        0x2d10,
    );
    let cluster = ClusterConfig::paper_cluster();
    let k = 24;
    let want = sequential_send_coef2d(&ds, k);
    let clean = SendCoef2d::new()
        .with_engine(chaos_engine(2))
        .build(&ds, &cluster, k);
    assert_eq!(clean.histogram.coefficients(), want.coefficients());

    let faults = [
        FaultPlan::none().kill_worker_before_task(0, 0),
        FaultPlan::none().kill_worker_before_task(1, 2),
        FaultPlan::none().corrupt_worker_frame(0, 1),
        FaultPlan::none().truncate_worker_after_frame(1, 2),
        FaultPlan::none().stall_worker(0, 10_000),
    ];
    for (i, &plan) in faults.iter().enumerate() {
        let engine = chaos_engine(2).with_read_deadline_ms(250).with_faults(plan);
        let got = SendCoef2d::new()
            .with_engine(engine)
            .build(&ds, &cluster, k);
        assert_eq!(
            got.histogram.coefficients(),
            want.coefficients(),
            "fault #{i}: recovered 2-D histogram must be bit-identical"
        );
        assert_eq!(got.metrics, clean.metrics, "fault #{i}: logical metrics");
        assert!(got.metrics.recovery.recovered(), "fault #{i}");
        assert_eq!(
            got.metrics.wire.pair_bytes, got.metrics.shuffle_bytes,
            "fault #{i}: each (u16, u16) pair crosses the wire once"
        );
        validate_measured_shuffle(&got.metrics).expect("recovered 2-D run validates");
    }

    // Zero retries: the kill surfaces as a typed error, not a panic.
    let engine = chaos_engine(2)
        .with_task_retries(0)
        .with_faults(FaultPlan::none().kill_worker_before_task(1, 0));
    match SendCoef2d::new()
        .with_engine(engine)
        .try_build(&ds, &cluster, k)
        .unwrap_err()
    {
        EngineError::WorkerDied { worker, .. } => assert_eq!(worker, 1),
        other => panic!("expected WorkerDied, got {other}"),
    }
}

/// The recovery block itself: attempts count every launch (fault-free
/// runs report `attempts == workers`, zero everything else), and a
/// killed worker adds exactly one respawn with its remaining tasks.
#[test]
fn recovery_stats_report_the_retry_exactly() {
    let (_, clean) = probe_job(chaos_engine(4)).unwrap();
    assert!(!clean.recovery.recovered());
    assert_eq!(clean.recovery.attempts, 4);
    assert_eq!(clean.recovery.timeouts, 0);
    assert_eq!(clean.recovery.corrupt_frames, 0);

    // Kill worker 3 before its second (and last) local task: exactly one
    // task is lost and re-executed on exactly one respawned worker.
    let engine = chaos_engine(4).with_faults(FaultPlan::none().kill_worker_before_task(3, 1));
    let (_, metrics) = probe_job(engine).unwrap();
    assert_eq!(metrics.recovery.tasks_retried, 1);
    assert_eq!(metrics.recovery.workers_respawned, 1);
    assert_eq!(metrics.recovery.attempts, 5);
    validate_measured_shuffle(&metrics).expect("recovered run validates");
}
