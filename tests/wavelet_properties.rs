//! Property-based tests on the wavelet substrate: the invariants every
//! algorithm in the workspace leans on, checked over arbitrary signals.

use proptest::prelude::*;
use wavelet_hist::wavelet::{haar, sparse, sse, tree::ErrorTree, Domain};

fn signal(log_u: u32) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 1usize << log_u)
}

fn sparse_pairs(log_u: u32) -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec(
        ((0u64..(1 << log_u)), 1.0f64..500.0).prop_map(|(k, c)| (k, c)),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_inverse_roundtrip(v in signal(6)) {
        let w = haar::forward(&v);
        let back = haar::inverse(&w);
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn parseval_energy_preserved(v in signal(5)) {
        let w = haar::forward(&v);
        let ev = sse::energy(&v);
        let ew = sse::energy(&w);
        prop_assert!((ev - ew).abs() < 1e-7 * (1.0 + ev));
    }

    #[test]
    fn transform_is_linear(a in signal(5), b in signal(5)) {
        let wa = haar::forward(&a);
        let wb = haar::forward(&b);
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ws = haar::forward(&sum);
        for i in 0..32 {
            prop_assert!((ws[i] - (wa[i] + wb[i])).abs() < 1e-8 * (1.0 + ws[i].abs()));
        }
    }

    #[test]
    fn sparse_transform_matches_dense(pairs in sparse_pairs(7)) {
        let domain = Domain::new(7).expect("valid");
        let coefs = sparse::sparse_transform(domain, pairs.iter().copied());
        let mut v = vec![0.0f64; 128];
        for &(k, c) in &pairs {
            v[k as usize] += c;
        }
        let dense = haar::forward(&v);
        for (slot, &want) in dense.iter().enumerate() {
            let got = coefs.get(&(slot as u64)).copied().unwrap_or(0.0);
            prop_assert!((got - want).abs() < 1e-8 * (1.0 + want.abs()),
                "slot {slot}: {got} vs {want}");
        }
    }

    #[test]
    fn error_tree_point_queries_match_reconstruction(pairs in sparse_pairs(6), k in 1usize..20) {
        let domain = Domain::new(6).expect("valid");
        let coefs = sparse::sparse_transform(domain, pairs.iter().copied());
        let top = wavelet_hist::wavelet::select::top_k_magnitude(coefs.into_iter(), k);
        let tree = ErrorTree::new(domain, top.iter().map(|e| (e.slot, e.value)));
        let recon = tree.reconstruct();
        for x in 0..64u64 {
            prop_assert!((tree.point_estimate(x) - recon[x as usize]).abs() < 1e-8);
        }
    }

    #[test]
    fn range_sum_equals_sum_of_points(pairs in sparse_pairs(6), lo in 0u64..64, len in 0u64..64) {
        let hi = (lo + len).min(63);
        let domain = Domain::new(6).expect("valid");
        let coefs = sparse::sparse_transform(domain, pairs.iter().copied());
        let tree = ErrorTree::new(domain, coefs.into_iter());
        let by_points: f64 = (lo..=hi).map(|x| tree.point_estimate(x)).sum();
        let by_range = tree.range_sum(lo, hi);
        prop_assert!((by_points - by_range).abs() < 1e-6 * (1.0 + by_points.abs()));
    }

    #[test]
    fn top_k_is_optimal_energy_subset(v in signal(5), k in 1usize..32) {
        let w = haar::forward(&v);
        let top = wavelet_hist::wavelet::select::top_k_magnitude(
            w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
        let retained_energy: f64 = top.iter().map(|e| e.value * e.value).sum();
        // No other subset of size k retains more energy than the top-k by
        // magnitude: compare against the sum of the k largest squares.
        let mut sq: Vec<f64> = w.iter().map(|c| c * c).collect();
        sq.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
        let best: f64 = sq.iter().take(k).sum();
        prop_assert!((retained_energy - best).abs() < 1e-7 * (1.0 + best));
    }

    #[test]
    fn ideal_sse_plus_retained_energy_is_total(v in signal(5), k in 0usize..40) {
        let w = haar::forward(&v);
        let total = sse::energy(&w);
        let ideal = sse::ideal_sse(&w, k);
        let mut sq: Vec<f64> = w.iter().map(|c| c * c).collect();
        sq.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
        let retained: f64 = sq.iter().take(k).sum();
        prop_assert!((ideal + retained - total).abs() < 1e-7 * (1.0 + total));
    }
}

#[test]
fn two_dimensional_roundtrip_property() {
    // Deterministic sweep standing in for a 2-D proptest (dense 2-D is
    // quadratic; keep it bounded).
    use wavelet_hist::wavelet::twod;
    let domain = Domain::new(4).expect("valid");
    for seed in 0..8u64 {
        let v: Vec<f64> = (0..256)
            .map(|i| (((i as u64 + seed).wrapping_mul(2654435761)) % 97) as f64)
            .collect();
        let w = twod::forward2d(domain, &v);
        let back = twod::inverse2d(domain, &w);
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8);
        }
        let ev: f64 = v.iter().map(|x| x * x).sum();
        let ew: f64 = w.iter().map(|x| x * x).sum();
        assert!((ev - ew).abs() < 1e-7 * ev.max(1.0));
    }
}
