//! Differential and robustness tests of the multi-process engine
//! ([`EngineMode::MultiProcess`]): every builder must be bit-identical to
//! the in-process pipelined engine across worker-process and reducer
//! counts, measured bytes-on-wire must equal the accounted shuffle bytes
//! exactly, H-WTopk must show the paper's two communication rounds, and a
//! worker that dies or truncates its stream must surface a typed
//! [`EngineError`] instead of hanging the coordinator.

#![cfg(unix)]

use proptest::prelude::*;
use wavelet_hist::builders::{
    BasicS, HWTopk, HistogramBuilder, ImprovedS, SendCoef, SendSketch, SendSketchAms, SendV,
    TwoLevelS,
};
use wavelet_hist::data::{Dataset, DatasetBuilder};
use wavelet_hist::mapreduce::cost::validate_measured_shuffle;
use wavelet_hist::mapreduce::wire::WKey;
use wavelet_hist::mapreduce::{
    try_run_job, ClusterConfig, EngineConfig, EngineError, JobSpec, MapContext, MapTask,
    ReduceContext, RunMetrics, WireSize,
};
use wavelet_hist::wavelet::Domain;

fn dataset() -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(9).unwrap())
        .records(6_000)
        .splits(8)
        .seed(0xabcd)
        .build()
}

/// Every builder with an engine knob, at a fixed configuration.
fn builders(engine: EngineConfig) -> Vec<Box<dyn HistogramBuilder>> {
    let eps = 0.02;
    vec![
        Box::new(SendV::new().with_engine(engine)),
        Box::new(SendCoef::new().with_engine(engine)),
        Box::new(HWTopk::new().with_engine(engine)),
        Box::new(BasicS::new(eps, 3).with_engine(engine)),
        Box::new(ImprovedS::new(eps, 3).with_engine(engine)),
        Box::new(TwoLevelS::new(eps, 3).with_engine(engine)),
        Box::new(SendSketch::new(5).with_engine(engine)),
        Box::new(SendSketchAms::new(5).with_engine(engine)),
    ]
}

/// Tentpole: for every builder, forked map workers shipping spills over
/// the wire produce the **bit-identical** histogram and logical metrics
/// as in-process threads — across 1/2/4 worker processes and 1/2/8
/// reducers — and the framed traffic is really measured.
#[test]
fn every_builder_bit_identical_across_workers_and_reducers() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let k = 12;
    for reducers in [1u32, 2, 8] {
        let baseline: Vec<_> = builders(EngineConfig::default().with_reducers(reducers))
            .into_iter()
            .map(|b| (b.name(), b.build(&ds, &cluster, k)))
            .collect();
        for workers in [1usize, 2, 4] {
            let engine = EngineConfig::multi_process()
                .with_reducers(reducers)
                .with_map_parallelism(workers);
            for (b, (name, want)) in builders(engine).into_iter().zip(&baseline) {
                let got = b.build(&ds, &cluster, k);
                assert_eq!(
                    got.histogram.coefficients(),
                    want.histogram.coefficients(),
                    "{name}: R={reducers} W={workers}"
                );
                assert_eq!(
                    got.metrics, want.metrics,
                    "{name}: logical metrics R={reducers} W={workers}"
                );
                assert!(
                    got.metrics.bytes_on_wire() > 0,
                    "{name}: no measured traffic R={reducers} W={workers}"
                );
                assert_eq!(
                    got.metrics.wire.pair_bytes, got.metrics.shuffle_bytes,
                    "{name}: measured vs accounted R={reducers} W={workers}"
                );
                assert!(
                    want.metrics.wire.frames == 0,
                    "{name}: in-process run must not report framed traffic"
                );
            }
        }
    }
}

/// Satellite (d), H-WTopk half: under the multi-process engine the exact
/// algorithm still runs 3 MapReduce rounds of which exactly 2 carry a
/// coordinator→mapper broadcast (T₁/m, then the candidate set R) — the
/// paper's two communication rounds — and stays bit-identical.
#[test]
fn h_wtopk_reports_two_communication_rounds() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let engine = EngineConfig::multi_process()
        .with_map_parallelism(2)
        .with_reducers(4);
    let got = HWTopk::new().with_engine(engine).build(&ds, &cluster, 10);
    let want = HWTopk::new()
        .with_engine(EngineConfig::default().with_reducers(4))
        .build(&ds, &cluster, 10);
    assert_eq!(got.metrics.rounds, 3);
    assert_eq!(got.metrics.wire.comm_rounds, 2);
    assert_eq!(got.histogram.coefficients(), want.histogram.coefficients());
    assert_eq!(got.metrics, want.metrics);
    // Rounds 2–3 ship per-split state through the journal, and that
    // traffic is counted separately from shuffled pairs.
    assert!(got.metrics.wire.state_bytes > 0);
}

/// One digest row per reduced key: `(key, value count, value sum)`.
type ProbeDigest = Vec<(u64, u64, u64)>;

/// A combiner-less probe job: every emitted pair is shuffled, so the
/// expected bytes-on-wire can be recomputed independently of the engine.
fn probe_job(
    splits: &[Vec<u64>],
    engine: EngineConfig,
) -> Result<(ProbeDigest, RunMetrics), EngineError> {
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .iter()
        .cloned()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                for (i, k) in keys.iter().enumerate() {
                    ctx.emit(WKey::four(*k), ((j as u64) << 32) | i as u64);
                }
            })
        })
        .collect();
    let spec = JobSpec::new(
        "mp-probe",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, u64)>| {
            ctx.charge(vs.len() as f64 * 2.0);
            let digest = vs.iter().enumerate().fold(0u64, |acc, (i, v)| {
                acc.wrapping_add(v.wrapping_mul(i as u64 + 1))
            });
            ctx.emit((k.id, vs.len() as u64, digest));
        },
    )
    .with_radix_keys()
    .with_wire_codec()
    .with_engine(engine);
    try_run_job(&ClusterConfig::paper_cluster(), spec).map(|out| (out.outputs, out.metrics))
}

/// Satellite (c): a worker killed mid-job (here: SIGABRT from inside a
/// map task, gated so only the forked child misbehaves) is reaped and
/// reported as [`EngineError::WorkerDied`] — the coordinator must not
/// hang on the half-written pipe.
#[test]
fn killed_worker_is_reaped_and_reported() {
    let tasks: Vec<MapTask<WKey, u64>> = (0..4)
        .map(|j| {
            MapTask::new(j, move |ctx: &mut MapContext<WKey, u64>| {
                for i in 0..500u64 {
                    ctx.emit(WKey::four(i % 32), i);
                }
                if j == 2 && ctx.in_worker_process() {
                    std::process::abort();
                }
            })
        })
        .collect();
    let spec = JobSpec::new(
        "mp-abort",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_wire_codec()
    .with_engine(EngineConfig::multi_process().with_map_parallelism(2));
    match probe_err(spec) {
        EngineError::WorkerDied { signal, .. } => {
            assert!(signal.is_some(), "abort dies by signal");
        }
        other => panic!("expected WorkerDied, got {other}"),
    }
}

/// Satellite (c), truncation half: a worker that exits *cleanly* without
/// finishing its stream (no `WORKER_END`) is a truncated stream, not a
/// success.
#[test]
fn truncated_stream_is_reported() {
    let tasks: Vec<MapTask<WKey, u64>> = (0..4)
        .map(|j| {
            MapTask::new(j, move |ctx: &mut MapContext<WKey, u64>| {
                ctx.emit(WKey::four(u64::from(j)), 1);
                if j == 1 && ctx.in_worker_process() {
                    // Clean exit mid-protocol: unflushed frames vanish.
                    std::process::exit(0);
                }
            })
        })
        .collect();
    let spec = JobSpec::new(
        "mp-trunc",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_wire_codec()
    .with_engine(EngineConfig::multi_process().with_map_parallelism(4));
    match probe_err(spec) {
        EngineError::TruncatedFrame { worker } => assert_eq!(worker, 1),
        other => panic!("expected TruncatedFrame, got {other}"),
    }
}

fn probe_err<K, V, R>(spec: JobSpec<K, V, R>) -> EngineError
where
    K: Ord + std::hash::Hash + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
    R: Send,
{
    match try_run_job(&ClusterConfig::paper_cluster(), spec) {
        Ok(_) => panic!("job unexpectedly succeeded"),
        Err(e) => e,
    }
}

/// The multi-process mode is opt-in on the job: without a declared wire
/// codec there is nothing to ship, and the engine says so.
#[test]
fn missing_wire_codec_is_a_typed_error() {
    let tasks: Vec<MapTask<WKey, u64>> = vec![MapTask::new(0, |ctx| ctx.emit(WKey::four(1), 1))];
    let spec = JobSpec::new(
        "mp-nocodec",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_engine(EngineConfig::multi_process());
    assert!(matches!(probe_err(spec), EngineError::MissingWireCodec));
}

/// Satellite to the cost rewiring: the model's shuffle term validates
/// against measured traffic exactly when there is measured traffic.
#[test]
fn cost_model_validates_against_measured_traffic() {
    let splits: Vec<Vec<u64>> = (0..5)
        .map(|j| (0..800).map(|i| (i * (j + 3)) % 60).collect())
        .collect();
    let (_, mp) = probe_job(&splits, EngineConfig::multi_process().with_reducers(2)).unwrap();
    assert_eq!(validate_measured_shuffle(&mp), Ok(()));
    let (_, inproc) = probe_job(&splits, EngineConfig::default().with_reducers(2)).unwrap();
    let err = validate_measured_shuffle(&inproc).unwrap_err();
    assert!(err.contains("no measured traffic"), "{err}");
}

/// A job with no map tasks still runs (the Close hook must fire) and
/// reports no traffic and no workers.
#[test]
fn empty_job_runs_without_forking() {
    let tasks: Vec<MapTask<WKey, u64>> = Vec::new();
    let spec = JobSpec::new(
        "mp-empty",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_wire_codec()
    .with_finish(|ctx| ctx.emit((99, 99)))
    .with_engine(EngineConfig::multi_process());
    let out = try_run_job(&ClusterConfig::paper_cluster(), spec).unwrap();
    assert_eq!(out.outputs, vec![(99, 99)]);
    assert_eq!(out.metrics.wire.workers, 0);
    assert_eq!(out.metrics.bytes_on_wire(), 0);
}

fn splits_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..60, 0..70), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite (d): on random combiner-less jobs, the measured
    /// `bytes_on_wire` equals the sum of `WireSize::wire_bytes` over all
    /// shuffled pairs — recomputed here from the raw input, independent
    /// of both engines — and the multi-process run stays bit-identical
    /// to the in-process one.
    #[test]
    fn bytes_on_wire_equals_wire_size_sum(
        splits in splits_strategy(),
        reducers in 1u32..4,
        workers in 1usize..4,
    ) {
        // Every emitted pair is shuffled (no combiner): key is a 4-byte
        // WKey, value a u64.
        let expected: u64 = splits
            .iter()
            .flatten()
            .map(|&k| WKey::four(k).wire_bytes() + 0u64.wire_bytes())
            .sum();
        let engine = EngineConfig::multi_process()
            .with_reducers(reducers)
            .with_map_parallelism(workers);
        let (out, metrics) = probe_job(&splits, engine).unwrap();
        prop_assert_eq!(metrics.bytes_on_wire(), expected);
        prop_assert_eq!(metrics.shuffle_bytes, expected);
        prop_assert_eq!(metrics.wire.workers as usize, workers.min(splits.len()));
        // Single-round job without broadcast: zero communication rounds
        // in the paper's counting.
        prop_assert_eq!(metrics.wire.comm_rounds, 0);
        let (want_out, want_metrics) =
            probe_job(&splits, EngineConfig::default().with_reducers(reducers)).unwrap();
        prop_assert_eq!(out, want_out);
        prop_assert_eq!(metrics, want_metrics);
    }
}
