//! Property and differential tests of the pipelined execution engine:
//! multi-reducer equivalence for every builder, streaming-combiner
//! byte-identity, determinism across thread counts, and pipelined-vs-seed
//! engine equivalence on randomized jobs.

use proptest::prelude::*;
use wavelet_hist::builders::{
    BasicS, HWTopk, HistogramBuilder, ImprovedS, SendCoef, SendSketch, SendSketchAms, SendV,
    TwoLevelS,
};
use wavelet_hist::data::{Dataset, DatasetBuilder};
use wavelet_hist::mapreduce::wire::WKey;
use wavelet_hist::mapreduce::{
    run_job, ClusterConfig, EngineConfig, JobSpec, MapContext, MapTask, ReduceContext,
};
use wavelet_hist::wavelet::Domain;
use wavelet_hist::WaveletHistogram;

fn dataset() -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(9).unwrap())
        .records(18_000)
        .splits(9)
        .seed(0xabcd)
        .build()
}

/// Every builder with an engine knob, at a fixed configuration.
fn builders(engine: EngineConfig) -> Vec<Box<dyn HistogramBuilder>> {
    let eps = 0.02;
    vec![
        Box::new(SendV::new().with_engine(engine)),
        Box::new(SendCoef::new().with_engine(engine)),
        Box::new(HWTopk::new().with_engine(engine)),
        Box::new(BasicS::new(eps, 3).with_engine(engine)),
        Box::new(ImprovedS::new(eps, 3).with_engine(engine)),
        Box::new(TwoLevelS::new(eps, 3).with_engine(engine)),
        Box::new(SendSketch::new(5).with_engine(engine)),
        Box::new(SendSketchAms::new(5).with_engine(engine)),
    ]
}

/// Histogram equality up to float associativity: multi-reducer runs
/// insert into shared accumulators in a different (but deterministic)
/// order, so coefficient sums may differ in the last bits.
fn assert_histograms_close(a: &WaveletHistogram, b: &WaveletHistogram, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: histogram size");
    for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
        assert_eq!(x.0, y.0, "{what}: slot mismatch");
        assert!(
            (x.1 - y.1).abs() <= 1e-9 * (1.0 + y.1.abs()),
            "{what}: {x:?} vs {y:?}"
        );
    }
}

/// Satellite (a): for every builder, R reducers produce the same
/// histogram and the same logical metrics as a single reducer.
#[test]
fn every_builder_multi_reducer_equals_single_reducer() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let k = 16;
    for (single, multi) in builders(EngineConfig::default())
        .into_iter()
        .zip(builders(EngineConfig::default().with_reducers(4)))
    {
        let name = single.name();
        let a = single.build(&ds, &cluster, k);
        let b = multi.build(&ds, &cluster, k);
        assert_histograms_close(&a.histogram, &b.histogram, name);
        assert_eq!(a.metrics, b.metrics, "{name}: logical metrics");
    }
}

/// Satellite (c): determinism across reduce thread counts 1/2/8.
#[test]
fn every_builder_deterministic_across_thread_counts() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let k = 12;
    let run = |threads: usize| {
        builders(
            EngineConfig::default()
                .with_reducers(8)
                .with_reducer_parallelism(threads),
        )
        .into_iter()
        .map(|b| b.build(&ds, &cluster, k))
        .collect::<Vec<_>>()
    };
    let base = run(1);
    for threads in [2, 8] {
        for (a, b) in base.iter().zip(run(threads)) {
            // Bit-identical, not just close: the stitching order is fixed.
            assert_eq!(
                a.histogram.coefficients(),
                b.histogram.coefficients(),
                "threads={threads}"
            );
            assert_eq!(a.metrics, b.metrics, "threads={threads}");
        }
    }
}

/// A combiner-based wordcount job whose Close hook assembles a k-term
/// histogram — exercises the streaming-combine path end to end.
fn histogram_job(
    engine: EngineConfig,
    splits: &[Vec<u64>],
) -> (Vec<(u64, f64)>, wavelet_hist::mapreduce::RunMetrics) {
    let domain = Domain::new(6).unwrap();
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .iter()
        .cloned()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                ctx.note_read(keys.len() as u64, keys.len() as u64 * 4);
                for k in &keys {
                    ctx.emit(WKey::four(*k % 64), 1);
                }
            })
        })
        .collect();
    let acc = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let acc_reduce = std::sync::Arc::clone(&acc);
    let spec = JobSpec::new(
        "hist-wc",
        tasks,
        move |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, f64)>| {
            ctx.charge(vs.len() as f64);
            acc_reduce
                .lock()
                .expect("no poisoned reducers")
                .push((k.id, vs.iter().sum::<u64>()));
        },
    )
    .with_combiner(|_k, vs: &mut Vec<u64>| {
        let total: u64 = vs.iter().sum();
        vs.clear();
        vs.push(total);
    })
    .with_engine(engine)
    .with_finish(move |ctx| {
        let counts = acc.lock().expect("no poisoned reducers");
        let coefs = wavelet_hist::wavelet::sparse::sparse_transform(
            domain,
            counts.iter().map(|&(x, c)| (x, c as f64)),
        );
        for e in wavelet_hist::wavelet::select::top_k_magnitude(coefs, 8) {
            ctx.emit((e.slot, e.value));
        }
    });
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

/// Satellite (b): streaming combining is byte-identical to batch
/// combining — same histogram, same `RunMetrics` — for any spill chunk.
#[test]
fn streaming_combiner_byte_identical_to_batch() {
    let splits: Vec<Vec<u64>> = (0..6)
        .map(|j| (0..2_000u64).map(|i| (i * (j + 2)) % 300).collect())
        .collect();
    let (base_out, base_metrics) = histogram_job(EngineConfig::default(), &splits);
    for chunk in [0, 1, 13, 256, 100_000] {
        let engine = EngineConfig::default()
            .with_streaming_combine(true)
            .with_spill_chunk(chunk);
        let (out, metrics) = histogram_job(engine, &splits);
        assert_eq!(base_out, out, "chunk={chunk}: histogram");
        assert_eq!(base_metrics, metrics, "chunk={chunk}: metrics");
    }
    // And with multiple reducers on top.
    let engine = EngineConfig::default()
        .with_streaming_combine(true)
        .with_spill_chunk(64)
        .with_reducers(4);
    let (out, metrics) = histogram_job(engine, &splits);
    assert_eq!(base_out, out, "R=4 streaming: histogram");
    assert_eq!(base_metrics, metrics, "R=4 streaming: metrics");
}

/// The pipelined engine run twice is bit-identical (wall-clock aside).
#[test]
fn builder_runs_are_reproducible() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let engine = EngineConfig::default().with_reducers(3);
    let a = SendV::new().with_engine(engine).build(&ds, &cluster, 10);
    let b = SendV::new().with_engine(engine).build(&ds, &cluster, 10);
    assert_eq!(a.histogram.coefficients(), b.histogram.coefficients());
    assert_eq!(a.metrics, b.metrics);
}

fn splits_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..60, 0..70), 1..14)
}

fn count_job(
    splits: Vec<Vec<u64>>,
    engine: EngineConfig,
) -> (Vec<(u64, u64)>, wavelet_hist::mapreduce::RunMetrics) {
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .into_iter()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                for k in &keys {
                    ctx.emit(WKey::four(*k), 1);
                }
            })
        })
        .collect();
    let spec = JobSpec::new(
        "prop",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_engine(engine);
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Differential: the pipelined engine equals the preserved seed engine
    /// bit for bit, for any reducer count.
    #[test]
    fn pipelined_equals_reference_engine(splits in splits_strategy(), reducers in 1u32..6) {
        let pipelined = count_job(
            splits.clone(),
            EngineConfig::pipelined().with_reducers(reducers),
        );
        let reference = count_job(
            splits,
            EngineConfig::reference().with_reducers(reducers),
        );
        prop_assert_eq!(pipelined.0, reference.0);
        prop_assert_eq!(pipelined.1, reference.1);
    }

    /// Reduce-side parallelism never changes outputs or metrics.
    #[test]
    fn thread_count_invariance(splits in splits_strategy(), reducers in 1u32..9) {
        let base = count_job(
            splits.clone(),
            EngineConfig::default().with_reducers(reducers).with_reducer_parallelism(1),
        );
        for threads in [2usize, 8] {
            let got = count_job(
                splits.clone(),
                EngineConfig::default().with_reducers(reducers).with_reducer_parallelism(threads),
            );
            prop_assert_eq!(&base.0, &got.0);
            prop_assert_eq!(&base.1, &got.1);
        }
    }
}
