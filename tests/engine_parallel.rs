//! Property and differential tests of the pipelined execution engine:
//! multi-reducer equivalence for every builder, streaming-combiner
//! byte-identity, determinism across thread counts and reduce strategies
//! (dense reduce / sort-at-reduce / merge), and pipelined-vs-seed engine
//! equivalence on randomized jobs.

use proptest::prelude::*;
use wavelet_hist::builders::{
    BasicS, HWTopk, HistogramBuilder, ImprovedS, SendCoef, SendSketch, SendSketchAms, SendV,
    TwoLevelS,
};
use wavelet_hist::data::{Dataset, DatasetBuilder};
use wavelet_hist::mapreduce::wire::WKey;
use wavelet_hist::mapreduce::{
    run_job, ClusterConfig, EngineConfig, JobSpec, MapContext, MapTask, ReduceContext,
};
use wavelet_hist::wavelet::Domain;
use wavelet_hist::WaveletHistogram;

fn dataset() -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(9).unwrap())
        .records(18_000)
        .splits(9)
        .seed(0xabcd)
        .build()
}

/// Every builder with an engine knob, at a fixed configuration.
fn builders(engine: EngineConfig) -> Vec<Box<dyn HistogramBuilder>> {
    let eps = 0.02;
    vec![
        Box::new(SendV::new().with_engine(engine)),
        Box::new(SendCoef::new().with_engine(engine)),
        Box::new(HWTopk::new().with_engine(engine)),
        Box::new(BasicS::new(eps, 3).with_engine(engine)),
        Box::new(ImprovedS::new(eps, 3).with_engine(engine)),
        Box::new(TwoLevelS::new(eps, 3).with_engine(engine)),
        Box::new(SendSketch::new(5).with_engine(engine)),
        Box::new(SendSketchAms::new(5).with_engine(engine)),
    ]
}

/// Histogram equality up to float associativity: multi-reducer runs
/// insert into shared accumulators in a different (but deterministic)
/// order, so coefficient sums may differ in the last bits.
fn assert_histograms_close(a: &WaveletHistogram, b: &WaveletHistogram, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: histogram size");
    for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
        assert_eq!(x.0, y.0, "{what}: slot mismatch");
        assert!(
            (x.1 - y.1).abs() <= 1e-9 * (1.0 + y.1.abs()),
            "{what}: {x:?} vs {y:?}"
        );
    }
}

/// Satellite (a): for every builder, R reducers produce the same
/// histogram and the same logical metrics as a single reducer.
#[test]
fn every_builder_multi_reducer_equals_single_reducer() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let k = 16;
    for (single, multi) in builders(EngineConfig::default())
        .into_iter()
        .zip(builders(EngineConfig::default().with_reducers(4)))
    {
        let name = single.name();
        let a = single.build(&ds, &cluster, k);
        let b = multi.build(&ds, &cluster, k);
        assert_histograms_close(&a.histogram, &b.histogram, name);
        assert_eq!(a.metrics, b.metrics, "{name}: logical metrics");
    }
}

/// Satellite (c): determinism across reduce thread counts 1/2/8.
#[test]
fn every_builder_deterministic_across_thread_counts() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let k = 12;
    let run = |threads: usize| {
        builders(
            EngineConfig::default()
                .with_reducers(8)
                .with_reducer_parallelism(threads),
        )
        .into_iter()
        .map(|b| b.build(&ds, &cluster, k))
        .collect::<Vec<_>>()
    };
    let base = run(1);
    for threads in [2, 8] {
        for (a, b) in base.iter().zip(run(threads)) {
            // Bit-identical, not just close: the stitching order is fixed.
            assert_eq!(
                a.histogram.coefficients(),
                b.histogram.coefficients(),
                "threads={threads}"
            );
            assert_eq!(a.metrics, b.metrics, "threads={threads}");
        }
    }
}

/// A combiner-based wordcount job whose Close hook assembles a k-term
/// histogram — exercises the streaming-combine path end to end.
fn histogram_job(
    engine: EngineConfig,
    splits: &[Vec<u64>],
) -> (Vec<(u64, f64)>, wavelet_hist::mapreduce::RunMetrics) {
    let domain = Domain::new(6).unwrap();
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .iter()
        .cloned()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                ctx.note_read(keys.len() as u64, keys.len() as u64 * 4);
                for k in &keys {
                    ctx.emit(WKey::four(*k % 64), 1);
                }
            })
        })
        .collect();
    let acc = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let acc_reduce = std::sync::Arc::clone(&acc);
    let spec = JobSpec::new(
        "hist-wc",
        tasks,
        move |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, f64)>| {
            ctx.charge(vs.len() as f64);
            acc_reduce
                .lock()
                .expect("no poisoned reducers")
                .push((k.id, vs.iter().sum::<u64>()));
        },
    )
    .with_combiner(|_k, vs: &mut Vec<u64>| {
        let total: u64 = vs.iter().sum();
        vs.clear();
        vs.push(total);
    })
    .with_engine(engine)
    .with_finish(move |ctx| {
        let counts = acc.lock().expect("no poisoned reducers");
        let coefs = wavelet_hist::wavelet::sparse::sparse_transform(
            domain,
            counts.iter().map(|&(x, c)| (x, c as f64)),
        );
        for e in wavelet_hist::wavelet::select::top_k_magnitude(coefs, 8) {
            ctx.emit((e.slot, e.value));
        }
    });
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

/// Satellite (b): streaming combining is byte-identical to batch
/// combining — same histogram, same `RunMetrics` — for any spill chunk.
#[test]
fn streaming_combiner_byte_identical_to_batch() {
    let splits: Vec<Vec<u64>> = (0..6)
        .map(|j| (0..2_000u64).map(|i| (i * (j + 2)) % 300).collect())
        .collect();
    let (base_out, base_metrics) = histogram_job(EngineConfig::default(), &splits);
    for chunk in [0, 1, 13, 256, 100_000] {
        let engine = EngineConfig::default()
            .with_streaming_combine(true)
            .with_spill_chunk(chunk);
        let (out, metrics) = histogram_job(engine, &splits);
        assert_eq!(base_out, out, "chunk={chunk}: histogram");
        assert_eq!(base_metrics, metrics, "chunk={chunk}: metrics");
    }
    // And with multiple reducers on top.
    let engine = EngineConfig::default()
        .with_streaming_combine(true)
        .with_spill_chunk(64)
        .with_reducers(4);
    let (out, metrics) = histogram_job(engine, &splits);
    assert_eq!(base_out, out, "R=4 streaming: histogram");
    assert_eq!(base_metrics, metrics, "R=4 streaming: metrics");
}

/// Every builder declares a tight bounded key domain, so with the default
/// engine every reduce partition of every round must run the dense-reduce
/// strategy — and the count must cover every partition of every round.
#[test]
fn every_builder_reduces_densely_on_every_partition() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let reducers = 4u32;
    for b in builders(EngineConfig::default().with_reducers(reducers)) {
        let got = b.build(&ds, &cluster, 8);
        let s = got.metrics.reduce_strategies;
        assert_eq!(
            s.total(),
            got.metrics.rounds * reducers,
            "{}: one strategy record per partition per round",
            b.name()
        );
        assert_eq!(
            s.dense_reduce,
            s.total(),
            "{}: bounded-domain jobs must reduce densely",
            b.name()
        );
    }
}

/// The pipelined engine run twice is bit-identical (wall-clock aside).
#[test]
fn builder_runs_are_reproducible() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let engine = EngineConfig::default().with_reducers(3);
    let a = SendV::new().with_engine(engine).build(&ds, &cluster, 10);
    let b = SendV::new().with_engine(engine).build(&ds, &cluster, 10);
    assert_eq!(a.histogram.coefficients(), b.histogram.coefficients());
    assert_eq!(a.metrics, b.metrics);
}

fn splits_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..60, 0..70), 1..14)
}

/// A combiner-less job over a bounded key domain whose output pins the
/// exact value delivery sequence: each value encodes its `(split id,
/// arrival index)`, and the reducer emits a position-weighted digest of
/// its value list plus a per-pair CPU charge — so any reorder of a key's
/// values, any dropped group, or any miscounted charge changes the
/// `(outputs, metrics)` pair. This is the probe behind the
/// reduce-strategy differential properties.
fn strategy_probe_job(
    splits: Vec<Vec<u64>>,
    engine: EngineConfig,
    radix: bool,
) -> (Vec<(u64, u64, u64)>, wavelet_hist::mapreduce::RunMetrics) {
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .into_iter()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                for (i, k) in keys.iter().enumerate() {
                    ctx.emit(WKey::four(*k), ((j as u64) << 32) | i as u64);
                }
            })
        })
        .collect();
    let mut spec = JobSpec::new(
        "strategy-probe",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64, u64)>| {
            ctx.charge(vs.len() as f64 * 2.0);
            let digest = vs.iter().enumerate().fold(0u64, |acc, (i, v)| {
                acc.wrapping_add(v.wrapping_mul(i as u64 + 1))
            });
            ctx.emit((k.id, vs.len() as u64, digest));
        },
    )
    .with_engine(engine);
    if radix {
        spec = spec.with_radix_keys();
    }
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

fn count_job(
    splits: Vec<Vec<u64>>,
    engine: EngineConfig,
) -> (Vec<(u64, u64)>, wavelet_hist::mapreduce::RunMetrics) {
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .into_iter()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                for k in &keys {
                    ctx.emit(WKey::four(*k), 1);
                }
            })
        })
        .collect();
    let spec = JobSpec::new(
        "prop",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_engine(engine);
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

/// A combiner-equipped wordcount used by the radix/dense differential
/// properties: same algorithmic content, different execution strategy.
fn combine_count_job(
    splits: Vec<Vec<u64>>,
    engine: EngineConfig,
    radix: bool,
) -> (Vec<(u64, u64)>, wavelet_hist::mapreduce::RunMetrics) {
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .into_iter()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                for k in &keys {
                    ctx.emit(WKey::four(*k), 1);
                }
            })
        })
        .collect();
    let mut spec = JobSpec::new(
        "radix-prop",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_combiner(|_k, vs: &mut Vec<u64>| {
        let total: u64 = vs.iter().sum();
        vs.clear();
        vs.push(total);
    })
    .with_engine(engine);
    if radix {
        spec = spec.with_radix_keys();
    }
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

/// Sorts `(key, (split, seq))` pairs with the public radix sort and with
/// the stable comparison sort it replaces; the permutations must be
/// identical, ties included (the payload is the arrival identity).
fn assert_radix_sort_matches<K>(keys: Vec<K>)
where
    K: wavelet_hist::mapreduce::RadixKey + Clone + std::fmt::Debug,
{
    let pairs: Vec<(K, (u32, u32))> = keys
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, ((i % 9) as u32, i as u32)))
        .collect();
    let mut want = pairs.clone();
    want.sort_by(|a, b| a.0.cmp(&b.0));
    let mut got = pairs;
    wavelet_hist::mapreduce::radix::sort_pairs(&mut got);
    assert_eq!(got, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite (PR 3): the LSD radix sort produces the identical
    /// permutation as the stable comparison sort for **every** sealed
    /// `RadixKey` impl — full-width values and heavy-tie reductions of
    /// the same raw material, ties preserving (split, arrival) order.
    #[test]
    fn radix_sort_matches_comparison_for_every_impl(
        raw in prop::collection::vec(0u64..u64::MAX, 0..400),
    ) {
        assert_radix_sort_matches::<u64>(raw.clone());
        assert_radix_sort_matches::<u64>(raw.iter().map(|&x| x % 23).collect());
        assert_radix_sort_matches::<u32>(raw.iter().map(|&x| x as u32).collect());
        assert_radix_sort_matches::<u16>(raw.iter().map(|&x| x as u16).collect());
        assert_radix_sort_matches::<u8>(raw.iter().map(|&x| x as u8).collect());
        assert_radix_sort_matches::<i64>(raw.iter().map(|&x| x as i64).collect());
        assert_radix_sort_matches::<i32>(raw.iter().map(|&x| x as i32).collect());
        assert_radix_sort_matches::<i16>(raw.iter().map(|&x| x as i16).collect());
        assert_radix_sort_matches::<i8>(raw.iter().map(|&x| x as i8).collect());
        assert_radix_sort_matches::<WKey>(
            raw.iter().map(|&x| WKey::four(x % 1024)).collect(),
        );
        assert_radix_sort_matches::<(u32, u32)>(
            raw.iter().map(|&x| ((x >> 32) as u32 % 7, x as u32 % 5)).collect(),
        );
        assert_radix_sort_matches::<(u16, u16)>(
            raw.iter().map(|&x| (x as u16 % 11, (x >> 16) as u16 % 3)).collect(),
        );
    }

    /// Satellite (PR 10): the `(u16, u16)` coefficient-key codec that
    /// carries 2-D wavelet slots through the shuffle. Its `u64` image is
    /// strictly order-preserving — `a < b ⇔ a.to_radix() < b.to_radix()`
    /// on full-range pairs, where only the second component breaking the
    /// tie is the case the packing could plausibly get wrong — and the
    /// radix sort of full-range and heavy-tie pair streams produces the
    /// identical permutation as the stable comparison sort, ties
    /// preserving (split, arrival) order.
    #[test]
    fn u16_pair_radix_image_preserves_order(
        raw in prop::collection::vec(0u64..u64::MAX, 2..400),
    ) {
        use wavelet_hist::mapreduce::RadixKey;
        let full: Vec<(u16, u16)> = raw
            .iter()
            .map(|&x| (x as u16, (x >> 16) as u16))
            .collect();
        let tied: Vec<(u16, u16)> = raw
            .iter()
            .map(|&x| (x as u16 % 7, (x >> 16) as u16 % 5))
            .collect();
        for pairs in [&full, &tied] {
            for w in pairs.windows(2) {
                let (a, b) = (w[0], w[1]);
                prop_assert_eq!(
                    a.cmp(&b),
                    a.to_radix().cmp(&b.to_radix()),
                    "image must order exactly like the pair: {:?} vs {:?}",
                    a,
                    b
                );
            }
        }
        assert_radix_sort_matches::<(u16, u16)>(full);
        assert_radix_sort_matches::<(u16, u16)>(tied);
    }

    /// Satellite (PR 5): the min-rebased counting path — a run whose keys
    /// live in a narrow `[lo, hi]` band far from zero, the shape every
    /// partition of a range-partitioned job hands the sorter — still
    /// produces the identical permutation as the stable comparison sort,
    /// ties (split, arrival) included, for any base offset and span.
    #[test]
    fn rebased_radix_sort_matches_comparison(
        base in 0u64..u64::MAX - (1 << 20),
        span in 1u64..(1 << 20),
        raw in prop::collection::vec(0u64..u64::MAX, 49..400),
    ) {
        assert_radix_sort_matches::<u64>(
            raw.iter().map(|&x| base + x % span).collect(),
        );
    }

    /// Satellite (PR 3): the dense-domain combine table and the radix
    /// spill sort are byte-identical to the hash/comparison paths on
    /// random jobs — outputs *and* metrics — including under streaming
    /// combining and any reducer count.
    #[test]
    fn dense_domain_combine_equals_hash_combine(
        splits in splits_strategy(),
        reducers in 1u32..5,
    ) {
        let plain = EngineConfig::default().with_reducers(reducers);
        // Keys are < 60 (the strategy's bound), so 64 is a valid hint.
        let hinted = plain.with_key_domain(64);
        let base = combine_count_job(splits.clone(), plain, false);
        let radix_only = combine_count_job(splits.clone(), plain, true);
        let dense = combine_count_job(splits.clone(), hinted, true);
        let dense_streaming = combine_count_job(
            splits,
            hinted.with_streaming_combine(true).with_spill_chunk(16),
            true,
        );
        prop_assert_eq!(&base.0, &radix_only.0);
        prop_assert_eq!(&base.1, &radix_only.1);
        prop_assert_eq!(&base.0, &dense.0);
        prop_assert_eq!(&base.1, &dense.1);
        prop_assert_eq!(&base.0, &dense_streaming.0);
        prop_assert_eq!(&base.1, &dense_streaming.1);
    }

    /// Differential: radix + dense specializations against the preserved
    /// seed engine, bit for bit.
    #[test]
    fn radix_engine_equals_reference_engine(
        splits in splits_strategy(),
        reducers in 1u32..5,
    ) {
        let specialized = combine_count_job(
            splits.clone(),
            EngineConfig::pipelined()
                .with_reducers(reducers)
                .with_key_domain(64),
            true,
        );
        let reference = combine_count_job(
            splits,
            EngineConfig::reference().with_reducers(reducers),
            false,
        );
        prop_assert_eq!(specialized.0, reference.0);
        prop_assert_eq!(specialized.1, reference.1);
    }

    /// Tentpole (PR 4): the dense-reduce strategy is byte-identical —
    /// outputs *and* metrics, charged CPU included — to sort-at-reduce,
    /// to the merge path, and to the preserved seed engine, on random
    /// bounded-domain jobs, for 1/2/8 reducers and 1/2/8 reduce threads.
    #[test]
    fn dense_reduce_equals_every_strategy_and_engine(splits in splits_strategy()) {
        for reducers in [1u32, 2, 8] {
            let base = EngineConfig::pipelined().with_reducers(reducers);
            // No codec → pre-sorted spills + k-way merge.
            let merge = strategy_probe_job(splits.clone(), base, false);
            // Codec without a hint → one radix sort per partition when
            // R > 1 (merge again when R = 1).
            let sorted = strategy_probe_job(splits.clone(), base, true);
            prop_assert_eq!(&merge.0, &sorted.0, "reducers={}", reducers);
            prop_assert_eq!(&merge.1, &sorted.1, "reducers={}", reducers);
            // Codec + bounded domain → dense reduce, at every thread count.
            for threads in [1usize, 2, 8] {
                let dense = strategy_probe_job(
                    splits.clone(),
                    base.with_key_domain(64).with_reducer_parallelism(threads),
                    true,
                );
                prop_assert_eq!(
                    &merge.0, &dense.0,
                    "reducers={} threads={}", reducers, threads
                );
                prop_assert_eq!(
                    &merge.1, &dense.1,
                    "reducers={} threads={}", reducers, threads
                );
            }
            // And the preserved seed engine, bit for bit.
            let reference = strategy_probe_job(
                splits.clone(),
                EngineConfig::reference().with_reducers(reducers),
                false,
            );
            prop_assert_eq!(&merge.0, &reference.0, "reducers={}", reducers);
            prop_assert_eq!(&merge.1, &reference.1, "reducers={}", reducers);
        }
    }

    /// Differential: the pipelined engine equals the preserved seed engine
    /// bit for bit, for any reducer count.
    #[test]
    fn pipelined_equals_reference_engine(splits in splits_strategy(), reducers in 1u32..6) {
        let pipelined = count_job(
            splits.clone(),
            EngineConfig::pipelined().with_reducers(reducers),
        );
        let reference = count_job(
            splits,
            EngineConfig::reference().with_reducers(reducers),
        );
        prop_assert_eq!(pipelined.0, reference.0);
        prop_assert_eq!(pipelined.1, reference.1);
    }

    /// Reduce-side parallelism never changes outputs or metrics.
    #[test]
    fn thread_count_invariance(splits in splits_strategy(), reducers in 1u32..9) {
        let base = count_job(
            splits.clone(),
            EngineConfig::default().with_reducers(reducers).with_reducer_parallelism(1),
        );
        for threads in [2usize, 8] {
            let got = count_job(
                splits.clone(),
                EngineConfig::default().with_reducers(reducers).with_reducer_parallelism(threads),
            );
            prop_assert_eq!(&base.0, &got.0);
            prop_assert_eq!(&base.1, &got.1);
        }
    }
}
