//! Query-serving suite: the compiled read path (`wh-query`) against
//! brute-force ground truth, across every builder and two data shapes.
//!
//! Three contracts are pinned:
//!
//! * **Fidelity** — a compiled histogram serves exactly the function its
//!   coefficient set reconstructs to: point estimates equal the dense
//!   reconstruction, range sums equal the reconstruction's partial sums.
//! * **Error bounds** — against the true frequency vector, every point
//!   estimate errs by at most `√SSE` and every range sum by at most
//!   `√(len · SSE)` (Cauchy–Schwarz over the per-key error vector, whose
//!   energy is the histogram's SSE). For the exact builders, that SSE
//!   itself equals `Σv² − Σŵ²` by Parseval — the retained-coefficient
//!   energy accounts for all of it.
//! * **Bit-identity** — batched serving returns, bit for bit, the
//!   answers one-at-a-time serving returns, for range sums,
//!   selectivities, and point estimates, including from multiple threads
//!   sharing one compiled histogram.

use wavelet_hist::builders::{
    BasicS, HWTopk, HistogramBuilder, ImprovedS, SendCoef, SendSketch, SendSketchAms, SendV,
    TwoLevelS,
};
use wavelet_hist::data::{Dataset, DatasetBuilder, Distribution};
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::query::{BatchScratch, CompiledHistogram};
use wavelet_hist::wavelet::{sparse, Domain};

const K: usize = 24;

fn builders() -> Vec<(&'static str, Box<dyn HistogramBuilder>)> {
    let eps = 0.02;
    vec![
        ("Send-V", Box::new(SendV::new())),
        ("Send-Coef", Box::new(SendCoef::new())),
        ("H-WTopk", Box::new(HWTopk::new())),
        ("Basic-S", Box::new(BasicS::new(eps, 3))),
        ("Improved-S", Box::new(ImprovedS::new(eps, 3))),
        ("TwoLevel-S", Box::new(TwoLevelS::new(eps, 3))),
        ("Send-Sketch", Box::new(SendSketch::new(5))),
        ("Send-Sketch-AMS", Box::new(SendSketchAms::new(5))),
    ]
}

/// The exact builders retain the true top-k coefficients, so their SSE
/// is exactly the dropped-coefficient energy (Parseval).
fn is_exact(name: &str) -> bool {
    matches!(name, "Send-V" | "Send-Coef" | "H-WTopk")
}

fn zipf_dataset() -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(10).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.1 })
        .records(60_000)
        .splits(8)
        .seed(0x51e1)
        .build()
}

fn worldcup_dataset() -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(10).expect("valid domain"))
        .distribution(Distribution::WorldCup)
        .records(60_000)
        .splits(8)
        .seed(0x77c8)
        .build()
}

fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 27)
}

fn range_queries(u: u64, count: usize, seed: u64) -> Vec<(u64, u64)> {
    (0..count as u64)
        .map(|i| {
            let lo = scramble(i ^ seed) % u;
            let hi = lo + scramble(i ^ seed ^ 0xc0ffee) % (u - lo);
            (lo, hi)
        })
        .collect()
}

/// Fidelity + error bounds for one built histogram on one dataset.
fn check_estimates(name: &str, ds: &Dataset, compiled: &CompiledHistogram) {
    check_estimates_against(name, &ds.exact_frequency_vector(), compiled);
}

/// [`check_estimates`] against an explicit brute-force frequency vector —
/// the delta path checks merged histograms against *concatenated* truth,
/// for which no single `Dataset` exists.
fn check_estimates_against(name: &str, truth: &[u64], compiled: &CompiledHistogram) {
    let u = compiled.domain().u();
    assert_eq!(truth.len(), u as usize, "{name}: truth length");
    let hist_recon: Vec<f64> = {
        // Reconstruct via the compiled form itself: every key's point
        // estimate. (Checked against the dense inverse transform in
        // `check_dataset`.)
        (0..u).map(|x| compiled.point_estimate(x)).collect()
    };

    // SSE of this estimator against the true frequencies.
    let sse: f64 = hist_recon
        .iter()
        .zip(truth)
        .map(|(&e, &t)| (e - t as f64) * (e - t as f64))
        .sum();

    // Point estimates: bounded by √SSE against truth.
    let point_bound = sse.sqrt() * (1.0 + 1e-9) + 1e-6;
    for x in 0..u {
        let err = (compiled.point_estimate(x) - truth[x as usize] as f64).abs();
        assert!(
            err <= point_bound,
            "{name}: point {x} err {err} > √SSE {point_bound}"
        );
    }

    // Range sums: equal to the reconstruction's partial sums (fidelity)
    // and within √(len·SSE) of the true partial sums (Cauchy–Schwarz).
    let scale = truth.iter().map(|&t| t as f64).sum::<f64>().max(1.0);
    for &(lo, hi) in &range_queries(u, 400, 0xab) {
        let est = compiled.range_sum(lo, hi);
        let recon_sum: f64 = hist_recon[lo as usize..=hi as usize].iter().sum();
        assert!(
            (est - recon_sum).abs() <= 1e-9 * (1.0 + scale),
            "{name}: [{lo},{hi}] serve {est} vs reconstruction {recon_sum}"
        );
        let brute: f64 = truth[lo as usize..=hi as usize]
            .iter()
            .map(|&t| t as f64)
            .sum();
        let len = (hi - lo + 1) as f64;
        let bound = (len * sse).sqrt() * (1.0 + 1e-9) + 1e-6;
        assert!(
            (est - brute).abs() <= bound,
            "{name}: [{lo},{hi}] err {} > √(len·SSE) {bound}",
            (est - brute).abs()
        );
    }
}

/// Parseval: an exact builder's SSE is exactly the dropped energy.
fn check_parseval(name: &str, ds: &Dataset, hist: &wavelet_hist::WaveletHistogram) {
    let truth: Vec<f64> = ds
        .exact_frequency_vector()
        .into_iter()
        .map(|t| t as f64)
        .collect();
    let recon = hist.reconstruct();
    let sse: f64 = recon
        .iter()
        .zip(&truth)
        .map(|(&e, &t)| (e - t) * (e - t))
        .sum();
    let total_energy: f64 = wavelet_hist::wavelet::haar::energy(&truth);
    let dropped = total_energy - hist.retained_energy();
    assert!(
        (sse - dropped).abs() <= 1e-6 * (1.0 + total_energy.abs()),
        "{name}: SSE {sse} vs dropped energy {dropped}"
    );
}

fn check_dataset(ds: &Dataset) {
    let cluster = ClusterConfig::paper_cluster();
    for (name, builder) in builders() {
        let hist = builder.build(ds, &cluster, K).histogram;
        let compiled = CompiledHistogram::compile(&hist);
        assert_eq!(compiled.domain(), hist.domain());
        assert!(compiled.num_segments() <= 3 * hist.len() + 1, "{name}");

        // The compiled form serves exactly what the histogram's error
        // tree answers (up to float association) — both are views of the
        // same coefficient set.
        let recon = hist.reconstruct();
        for x in 0..ds.domain().u() {
            let c = compiled.point_estimate(x);
            let r = recon[x as usize];
            assert!(
                (c - r).abs() <= 1e-9 * (1.0 + r.abs()),
                "{name}: key {x}: compiled {c} vs reconstruction {r}"
            );
        }

        check_estimates(name, ds, &compiled);
        if is_exact(name) {
            check_parseval(name, ds, &hist);
        }
    }
}

#[test]
fn estimates_bounded_on_zipf_for_every_builder() {
    check_dataset(&zipf_dataset());
}

#[test]
fn estimates_bounded_on_worldcup_for_every_builder() {
    check_dataset(&worldcup_dataset());
}

#[test]
fn batched_serving_is_bit_identical_for_every_builder() {
    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let n = ds.num_records();
    let u = ds.domain().u();
    let queries = range_queries(u, 700, 0x5eed);
    let keys: Vec<u64> = (0..500u64).map(|i| scramble(i) % u).collect();
    for (name, builder) in builders() {
        let hist = builder.build(&ds, &cluster, K).histogram;
        let compiled = CompiledHistogram::compile(&hist);
        let mut scratch = BatchScratch::new();

        let mut sums = vec![0.0; queries.len()];
        compiled.range_sum_batch_into(&queries, &mut scratch, &mut sums);
        let mut sels = vec![0.0; queries.len()];
        compiled.selectivity_batch_into(&queries, n, &mut scratch, &mut sels);
        for ((&(lo, hi), &sum), &sel) in queries.iter().zip(&sums).zip(&sels) {
            assert_eq!(
                sum.to_bits(),
                compiled.range_sum(lo, hi).to_bits(),
                "{name}: [{lo},{hi}]"
            );
            assert_eq!(
                sel.to_bits(),
                compiled.selectivity(lo, hi, n).to_bits(),
                "{name}: [{lo},{hi}]"
            );
        }
        let mut points = vec![0.0; keys.len()];
        compiled.point_estimate_batch_into(&keys, &mut scratch, &mut points);
        for (&x, &p) in keys.iter().zip(&points) {
            assert_eq!(p.to_bits(), compiled.point_estimate(x).to_bits(), "{name}");
        }
    }
}

/// One `BatchScratch` recycled across *different* compiled histograms —
/// different builders, segment counts, and domains — interleaved in
/// every order. The serve tier recycles a handle's scratch across shard
/// snapshots and datasets, so no state (endpoint buffers, sort
/// histograms, prefix slots) may leak from one histogram's batch into
/// the next: every answer must stay bit-equal to one computed with a
/// fresh scratch.
#[test]
fn scratch_reuse_across_different_histograms_leaks_nothing() {
    let cluster = ClusterConfig::paper_cluster();
    // Three genuinely different compiled forms: different domains (2^10
    // vs 2^6), record counts, builders, and retention (segment counts).
    let big = zipf_dataset();
    let small = DatasetBuilder::new()
        .domain(Domain::new(6).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.2 })
        .records(9_000)
        .splits(4)
        .seed(0xcafe)
        .build();
    let compiled: Vec<(CompiledHistogram, u64)> = vec![
        (
            CompiledHistogram::compile(&TwoLevelS::new(0.02, 3).build(&big, &cluster, K).histogram),
            big.num_records(),
        ),
        (
            CompiledHistogram::compile(&SendV::new().build(&small, &cluster, 5).histogram),
            small.num_records(),
        ),
        (
            CompiledHistogram::compile(&HWTopk::new().build(&big, &cluster, 7).histogram),
            big.num_records(),
        ),
    ];
    let seg_counts: Vec<usize> = compiled.iter().map(|(c, _)| c.num_segments()).collect();
    assert!(
        seg_counts.windows(2).all(|w| w[0] != w[1]),
        "histograms must differ structurally for this test to bite: {seg_counts:?}"
    );

    let mut shared = BatchScratch::new();
    // Visit the histograms in a scrambled order, twice each per round,
    // so every (previous, next) pair of structures occurs.
    for round in 0..3u64 {
        for step in 0..6u64 {
            let which = (scramble(round * 6 + step) % compiled.len() as u64) as usize;
            let (c, n) = &compiled[which];
            let u = c.domain().u();
            let queries = range_queries(u, 150 + 50 * which, round * 31 + step);
            let keys: Vec<u64> = (0..100u64).map(|i| scramble(i ^ step) % u).collect();

            let mut got = vec![0.0; queries.len()];
            c.selectivity_batch_into(&queries, *n, &mut shared, &mut got);
            let mut fresh = vec![0.0; queries.len()];
            c.selectivity_batch_into(&queries, *n, &mut BatchScratch::new(), &mut fresh);
            for (i, (a, b)) in fresh.iter().zip(&got).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "round {round} step {step} hist {which} sel {i}"
                );
            }
            let mut got_pts = vec![0.0; keys.len()];
            c.point_estimate_batch_into(&keys, &mut shared, &mut got_pts);
            for (&x, &p) in keys.iter().zip(&got_pts) {
                assert_eq!(
                    p.to_bits(),
                    c.point_estimate(x).to_bits(),
                    "round {round} step {step} hist {which} key {x}"
                );
            }
        }
    }
}

/// The serving contract of the north star: one immutable compiled
/// histogram, shared by reference across a thread-per-core pool, every
/// thread answering with its own scratch — and every answer bit-equal
/// to single-threaded serving.
#[test]
fn compiled_histogram_serves_concurrently() {
    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let hist = TwoLevelS::new(0.02, 3).build(&ds, &cluster, K).histogram;
    let compiled = CompiledHistogram::compile(&hist);
    let u = ds.domain().u();
    let queries = range_queries(u, 4_000, 0xfeed);

    let mut expect = vec![0.0; queries.len()];
    compiled.range_sum_batch_into(&queries, &mut BatchScratch::new(), &mut expect);

    let threads = 4;
    let chunk = queries.len().div_ceil(threads);
    let mut got = vec![0.0; queries.len()];
    let compiled_ref = &compiled;
    std::thread::scope(|s| {
        for (qs, outs) in queries.chunks(chunk).zip(got.chunks_mut(chunk)) {
            s.spawn(move || {
                compiled_ref.range_sum_batch_into(qs, &mut BatchScratch::new(), outs);
            });
        }
    });
    for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "query {i}");
    }
}

/// PR 9 freshness path: every builder's histogram, after absorbing a new
/// segment's exact delta coefficients through
/// `WaveletHistogram::merge_delta`, still serves within the √SSE /
/// √(len·SSE) brute-force bounds — re-verified against the
/// *concatenated* truth, which no single `Dataset` holds.
#[test]
fn delta_merged_histograms_stay_bounded_for_every_builder() {
    let base = zipf_dataset();
    let fresh = DatasetBuilder::new()
        .domain(Domain::new(10).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.3 })
        .records(9_000)
        .splits(2)
        .seed(0xde17a)
        .build();
    let cluster = ClusterConfig::paper_cluster();

    // Exact coefficients of the arriving segment (linearity: adding them
    // slot-wise is adding the segment's frequency vector).
    let delta_coefs = sparse::sparse_transform(
        base.domain(),
        fresh
            .exact_frequency_vector()
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c != 0)
            .map(|(x, c)| (x as u64, c as f64)),
    );
    let truth: Vec<u64> = base
        .exact_frequency_vector()
        .iter()
        .zip(fresh.exact_frequency_vector())
        .map(|(&a, b)| a + b)
        .collect();

    for (name, builder) in builders() {
        let hist = builder.build(&base, &cluster, K).histogram;
        let merged = hist.merge_delta(delta_coefs.iter().map(|(&s, &v)| (s, v)), K);
        assert!(merged.len() <= K, "{name}: budget respected");
        assert_eq!(merged.domain(), hist.domain(), "{name}");
        let compiled = CompiledHistogram::compile(&merged);
        check_estimates_against(name, &truth, &compiled);
    }
}
