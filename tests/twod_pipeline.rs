//! 2-D histograms through the whole pipeline (PR 10): the engine-built
//! Send-Coef-2D path against its sequential reference, the compiled
//! rectangle-query form against brute-force truth, and 2-D serving
//! through the epoch-swapped tier.
//!
//! Four contracts are pinned:
//!
//! * **Differential build** — the engine-built 2-D histogram equals the
//!   sequential `twod.rs` reference **bit for bit** across
//!   {dense-reduce, sort-at-reduce, merge} × {1, 2, 8} reducers ×
//!   {1, 4} threads × the reference engine, and (on unix) across forked
//!   multi-process workers carrying the `(u16, u16)` coefficient keys
//!   over the wire.
//! * **Error bounds** — against the exact 2-D frequency array, every
//!   cell estimate errs by at most `√SSE` and every rectangle sum by at
//!   most `√(area · SSE)` (Cauchy–Schwarz over the per-cell error grid);
//!   the SSE itself equals the dropped-coefficient energy by Parseval
//!   (the nonseparable 2-D transform is orthonormal), and full retention
//!   reconstructs the data exactly.
//! * **Bit-identity of serving** — batched rectangle queries equal
//!   one-at-a-time queries bit for bit, and the epoch-swapped tier
//!   equals direct compiled serving bit for bit, across republishes and
//!   from concurrent reader threads.
//! * **Data shapes** — all of the above on correlated 2-D Zipf and on
//!   WorldCup-style (time × object) data.

use wavelet_hist::data::twod::{Dataset2d, Distribution2d};
use wavelet_hist::mapreduce::{ClusterConfig, EngineConfig, RunMetrics};
use wavelet_hist::query::{BatchScratch2D, CompiledHistogram2D};
use wavelet_hist::serve::{ServeError, ServeTier};
use wavelet_hist::twod::{sequential_send_coef2d, SendCoef2d, WaveletHistogram2d};
use wavelet_hist::wavelet::Domain;

const K: usize = 24;

/// Correlated 2-D Zipf: mass in a diagonal band, most cells empty.
fn zipf2d() -> Dataset2d {
    Dataset2d::new(
        Domain::new(5).unwrap(),
        Distribution2d::Correlated {
            alpha: 1.1,
            spread: 2,
        },
        24_000,
        8,
        0x2d10,
    )
}

/// WorldCup-style time × object: Zipf(1.05) objects bursting at
/// per-object phases in time.
fn worldcup2d() -> Dataset2d {
    Dataset2d::new(
        Domain::new(5).unwrap(),
        Distribution2d::WorldCup,
        20_000,
        6,
        0x10c,
    )
}

fn datasets() -> Vec<(&'static str, Dataset2d)> {
    vec![("zipf2d", zipf2d()), ("worldcup2d", worldcup2d())]
}

fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 27)
}

/// Seeded inclusive rectangles `(xlo, xhi, ylo, yhi)` over `[u]²`.
fn random_rects(u: u64, count: usize, seed: u64) -> Vec<(u64, u64, u64, u64)> {
    (0..count as u64)
        .map(|i| {
            let xlo = scramble(seed ^ i) % u;
            let xhi = xlo + scramble(seed ^ i ^ 0xaaaa) % (u - xlo);
            let ylo = scramble(seed ^ i ^ 0x5555) % u;
            let yhi = ylo + scramble(seed ^ i ^ 0xffff) % (u - ylo);
            (xlo, xhi, ylo, yhi)
        })
        .collect()
}

fn assert_coefs_eq(got: &WaveletHistogram2d, want: &WaveletHistogram2d, ctx: &str) {
    assert_eq!(
        got.coefficients().len(),
        want.coefficients().len(),
        "coefficient count diverged: {ctx}"
    );
    for (g, w) in got.coefficients().iter().zip(want.coefficients()) {
        assert_eq!(g.0, w.0, "slot diverged: {ctx}");
        assert_eq!(
            g.1.to_bits(),
            w.1.to_bits(),
            "value diverged at slot {}: {ctx}",
            g.0
        );
    }
}

/// Tentpole differential: the engine-built 2-D histogram is bit-identical
/// to the sequential reference on every reduce strategy, reducer count,
/// thread count, and engine — and the strategy really varies: the tight
/// `(u16, u16)` key-domain hint selects dense-reduce, withholding it
/// selects sort-at-reduce (several reducers) or merge (one reducer).
#[test]
fn engine_built_matches_sequential_reference_across_strategies() {
    let cluster = ClusterConfig::paper_cluster();
    for (name, ds) in datasets() {
        let want = sequential_send_coef2d(&ds, K);
        for reducers in [1u32, 2, 8] {
            for tight in [true, false] {
                let mut metrics: Option<RunMetrics> = None;
                for threads in [1usize, 4] {
                    let engines = [
                        EngineConfig::pipelined()
                            .with_reducers(reducers)
                            .with_map_parallelism(threads)
                            .with_reducer_parallelism(threads),
                        EngineConfig::reference().with_reducers(reducers),
                    ];
                    for (e, engine) in engines.into_iter().enumerate() {
                        let ctx =
                            format!("{name} r={reducers} tight={tight} t={threads} engine={e}");
                        let got = SendCoef2d::new()
                            .with_tight_hint(tight)
                            .with_engine(engine)
                            .build(&ds, &cluster, K);
                        assert_coefs_eq(&got.histogram, &want, &ctx);
                        // Logical metrics agree across every execution.
                        match &metrics {
                            None => metrics = Some(got.metrics),
                            Some(m) => assert_eq!(*m, got.metrics, "metrics diverged: {ctx}"),
                        }
                        // The pipelined engine must really exercise the
                        // advertised strategy (the reference engine does
                        // not plan strategies).
                        if e == 0 {
                            let s = metrics.as_ref().unwrap().reduce_strategies;
                            let got_s = got.metrics.reduce_strategies;
                            assert_eq!(got_s.total(), s.total(), "{ctx}");
                            if tight {
                                assert_eq!(got_s.dense_reduce, got_s.total(), "{ctx}");
                            } else if reducers > 1 {
                                assert_eq!(got_s.sort_at_reduce, got_s.total(), "{ctx}");
                            } else {
                                assert_eq!(got_s.merge, 1, "{ctx}");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The multi-process leg of the differential: forked map workers carry
/// the `(u16, u16)` coefficient keys over the wire bit-identically, with
/// the framed traffic really measured.
#[cfg(unix)]
#[test]
fn engine_built_bit_identical_across_worker_processes() {
    let cluster = ClusterConfig::paper_cluster();
    let ds = zipf2d();
    let want = sequential_send_coef2d(&ds, K);
    for reducers in [1u32, 2, 8] {
        let in_process = SendCoef2d::new()
            .with_engine(EngineConfig::default().with_reducers(reducers))
            .build(&ds, &cluster, K);
        assert_eq!(
            in_process.metrics.wire.frames, 0,
            "in-process runs must not frame traffic"
        );
        for workers in [1usize, 2, 4] {
            let engine = EngineConfig::multi_process()
                .with_reducers(reducers)
                .with_map_parallelism(workers);
            let got = SendCoef2d::new()
                .with_engine(engine)
                .build(&ds, &cluster, K);
            let ctx = format!("r={reducers} w={workers}");
            assert_coefs_eq(&got.histogram, &want, &ctx);
            assert_eq!(got.metrics, in_process.metrics, "metrics diverged: {ctx}");
            assert!(got.metrics.bytes_on_wire() > 0, "{ctx}");
            assert_eq!(
                got.metrics.wire.pair_bytes, got.metrics.shuffle_bytes,
                "every shuffled pair crosses the wire exactly once: {ctx}"
            );
        }
    }
}

/// Shared truth for the error-bound legs: the estimate grid, its SSE
/// against the exact frequency array, and the exact array itself.
fn estimate_grid(compiled: &CompiledHistogram2D, truth: &[u64], u: u64) -> (Vec<f64>, f64) {
    let mut est = vec![0.0f64; (u * u) as usize];
    let mut sse = 0.0f64;
    for x in 0..u {
        for y in 0..u {
            let idx = (x * u + y) as usize;
            let e = compiled.point_estimate(x, y);
            est[idx] = e;
            let d = e - truth[idx] as f64;
            sse += d * d;
        }
    }
    (est, sse)
}

/// Error bounds of the compiled 2-D estimates against brute force:
/// `√SSE` per cell, `√(area · SSE)` per rectangle (Cauchy–Schwarz), and
/// the SSE itself equals the dropped-coefficient energy (Parseval).
#[test]
fn compiled_estimates_within_brute_force_bounds() {
    let cluster = ClusterConfig::paper_cluster();
    for (name, ds) in datasets() {
        let u = ds.domain().u();
        let truth = ds.exact_frequency_array();
        let total_energy: f64 = truth.iter().map(|&c| (c as f64) * (c as f64)).sum();
        for k in [16usize, 64] {
            let result = SendCoef2d::new().build(&ds, &cluster, k);
            let compiled = CompiledHistogram2D::compile(&result.histogram);
            let (_, sse) = estimate_grid(&compiled, &truth, u);

            // Parseval: the transform is orthonormal and Send-Coef-2D
            // retains the exact top-k coefficients, so the
            // reconstruction's SSE is exactly the dropped energy.
            let retained: f64 = result
                .histogram
                .coefficients()
                .iter()
                .map(|&(_, v)| v * v)
                .sum();
            let dropped = total_energy - retained;
            assert!(
                (sse - dropped).abs() <= 1e-6 * total_energy.max(1.0),
                "{name} k={k}: grid SSE {sse} vs dropped energy {dropped}"
            );

            // Point bound: |est − true| ≤ √SSE for every cell.
            let point_bound = sse.sqrt() * (1.0 + 1e-9) + 1e-6;
            for x in 0..u {
                for y in 0..u {
                    let err =
                        (compiled.point_estimate(x, y) - truth[(x * u + y) as usize] as f64).abs();
                    assert!(
                        err <= point_bound,
                        "{name} k={k} ({x},{y}): error {err} > √SSE {point_bound}"
                    );
                }
            }

            // Rectangle bound: |est − true| ≤ √(area · SSE).
            for &(xlo, xhi, ylo, yhi) in &random_rects(u, 300, 0xbeef ^ k as u64) {
                let mut true_sum = 0u64;
                for x in xlo..=xhi {
                    for y in ylo..=yhi {
                        true_sum += truth[(x * u + y) as usize];
                    }
                }
                let est = compiled.rectangle_sum((xlo, xhi, ylo, yhi));
                let area = ((xhi - xlo + 1) * (yhi - ylo + 1)) as f64;
                let bound = (area * sse).sqrt() * (1.0 + 1e-9) + 1e-6;
                let err = (est - true_sum as f64).abs();
                assert!(
                    err <= bound,
                    "{name} k={k} [{xlo},{xhi}]x[{ylo},{yhi}]: error {err} > bound {bound}"
                );
                // Selectivity is the clamped normalized sum.
                let sel = compiled.selectivity((xlo, xhi, ylo, yhi), ds.num_records());
                assert!((0.0..=1.0).contains(&sel), "{name} k={k}: {sel}");
            }
        }
    }
}

/// Full retention reconstructs the data exactly: SSE ≈ 0 and every cell
/// estimate equals its true count.
#[test]
fn full_retention_reconstructs_exactly() {
    let cluster = ClusterConfig::paper_cluster();
    for (name, ds) in datasets() {
        let u = ds.domain().u();
        let truth = ds.exact_frequency_array();
        let k_full = (u * u) as usize;
        let result = SendCoef2d::new().build(&ds, &cluster, k_full);
        let compiled = CompiledHistogram2D::compile(&result.histogram);
        let (est, sse) = estimate_grid(&compiled, &truth, u);
        assert!(sse <= 1e-6, "{name}: full-retention SSE {sse}");
        for (idx, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            assert!(
                (e - t as f64).abs() <= 1e-6,
                "{name} cell {idx}: {e} vs {t}"
            );
        }
    }
}

/// Batched rectangle serving is bit-identical to one-at-a-time serving,
/// including scratch reuse across batches and across different compiled
/// histograms.
#[test]
fn batched_rectangles_bit_identical_to_single() {
    let cluster = ClusterConfig::paper_cluster();
    let mut scratch = BatchScratch2D::new();
    for (name, ds) in datasets() {
        let u = ds.domain().u();
        let n = ds.num_records();
        let hist = SendCoef2d::new().build(&ds, &cluster, K).histogram;
        let compiled = CompiledHistogram2D::compile(&hist);
        let queries = random_rects(u, 500, 0x7777);
        let mut sums = vec![0.0; queries.len()];
        compiled.rectangle_sum_batch_into(&queries, &mut scratch, &mut sums);
        let mut sels = vec![0.0; queries.len()];
        compiled.selectivity_batch_into(&queries, n, &mut scratch, &mut sels);
        for (&q, (&sum, &sel)) in queries.iter().zip(sums.iter().zip(&sels)) {
            assert_eq!(
                sum.to_bits(),
                compiled.rectangle_sum(q).to_bits(),
                "{name} {q:?}"
            );
            assert_eq!(
                sel.to_bits(),
                compiled.selectivity(q, n).to_bits(),
                "{name} {q:?}"
            );
        }
    }
}

/// Epoch-swapped serving through the tier is bit-identical to direct
/// compiled serving — before and after a republish, including from
/// concurrent reader threads — and 2-D entries ride the same generation
/// counter as 1-D entries.
#[test]
fn tier_serving_bit_identical_to_direct() {
    let cluster = ClusterConfig::paper_cluster();
    let ds = zipf2d();
    let u = ds.domain().u();
    let n = ds.num_records();
    let coarse = CompiledHistogram2D::compile(&SendCoef2d::new().build(&ds, &cluster, 8).histogram);
    let fine = CompiledHistogram2D::compile(&SendCoef2d::new().build(&ds, &cluster, K).histogram);

    let tier = ServeTier::new(4);
    let gen = tier.publish2d(9, &coarse, n);
    assert_eq!(gen, 1);
    let queries = random_rects(u, 200, 0x51);

    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                let mut h = tier.handle();
                let mut out = vec![0.0; queries.len()];
                h.try_rectangle_sum_batch_into(9, &queries, &mut out)
                    .unwrap();
                for (&q, &got) in queries.iter().zip(&out) {
                    assert_eq!(got.to_bits(), coarse.rectangle_sum(q).to_bits(), "{q:?}");
                }
                h.try_rectangle_selectivity_batch_into(9, &queries, &mut out)
                    .unwrap();
                for (&q, &got) in queries.iter().zip(&out) {
                    assert_eq!(got.to_bits(), coarse.selectivity(q, n).to_bits(), "{q:?}");
                }
            });
        }
    });

    // Republish under a live handle: answers swap atomically.
    let mut h = tier.handle();
    let before = h.try_rectangle_sum(9, (0, u - 1, 0, u - 1)).unwrap();
    assert_eq!(
        before.to_bits(),
        coarse.rectangle_sum((0, u - 1, 0, u - 1)).to_bits()
    );
    tier.publish2d(9, &fine, n);
    let after = h.try_rectangle_sum(9, (0, u - 1, 0, u - 1)).unwrap();
    assert_eq!(
        after.to_bits(),
        fine.rectangle_sum((0, u - 1, 0, u - 1)).to_bits()
    );
    assert_eq!(
        h.try_point_estimate2d(9, 3, 7).unwrap().to_bits(),
        fine.point_estimate(3, 7).to_bits()
    );

    // Unknown datasets and malformed traffic are error values.
    assert_eq!(
        h.try_rectangle_sum(8, (0, 1, 0, 1)),
        Err(ServeError::UnknownDataset(8))
    );
    assert!(h.try_rectangle_sum(9, (0, 1, 0, u)).is_err());
    assert_eq!(tier.remove2d(9), Some(3));
    assert_eq!(
        h.try_rectangle_sum(9, (0, 1, 0, 1)),
        Err(ServeError::UnknownDataset(9))
    );
}
