//! Cross-crate integration: every exact construction path — centralized,
//! Send-V, Send-Coef, H-WTopk — produces the same best-k-term histogram
//! on every dataset shape, matching §3's claim that they compute the same
//! object at different costs.

use wavelet_hist::builders::{Centralized, HWTopk, HistogramBuilder, SendCoef, SendV};
use wavelet_hist::data::{Dataset, DatasetBuilder, Distribution};
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::wavelet::Domain;
use wavelet_hist::WaveletHistogram;

/// Distributed sums differ from the centralized transform only by float
/// associativity, so: magnitudes must match position by position, and any
/// coefficient whose magnitude clearly exceeds the k-th place must be the
/// same slot with the same value. (Near-ties at the boundary may swap —
/// both choices are equally "best" k-term representations.)
fn assert_same(a: &WaveletHistogram, b: &WaveletHistogram, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    let kth = b.coefficients().last().map_or(0.0, |&(_, v)| v.abs());
    let tol = 1e-6 * (1.0 + kth);
    for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
        assert!(
            (x.1.abs() - y.1.abs()).abs() < 1e-6 * (1.0 + y.1.abs()),
            "{ctx}: magnitude {x:?} vs {y:?}"
        );
    }
    let b_map: std::collections::HashMap<u64, f64> = b.coefficients().iter().copied().collect();
    for &(slot, value) in a.coefficients() {
        if value.abs() > kth + tol {
            let want = b_map.get(&slot).copied().unwrap_or_else(|| {
                panic!(
                    "{ctx}: slot {slot} (|w|={}) missing from reference",
                    value.abs()
                )
            });
            assert!(
                (value - want).abs() < 1e-6 * (1.0 + want.abs()),
                "{ctx}: slot {slot}: {value} vs {want}"
            );
        }
    }
}

fn datasets() -> Vec<(&'static str, Dataset)> {
    let base = |dist| {
        DatasetBuilder::new()
            .domain(Domain::new(9).expect("valid"))
            .distribution(dist)
            .records(30_000)
            .splits(12)
            .seed(0xd00d)
            .build()
    };
    vec![
        ("zipf-0.8", base(Distribution::Zipf { alpha: 0.8 })),
        ("zipf-1.4", base(Distribution::Zipf { alpha: 1.4 })),
        (
            "scrambled",
            base(Distribution::ScrambledZipf { alpha: 1.1 }),
        ),
        ("uniform", base(Distribution::Uniform)),
        ("worldcup", base(Distribution::WorldCup)),
    ]
}

#[test]
fn all_exact_builders_agree_on_all_distributions() {
    let cluster = ClusterConfig::paper_cluster();
    for (name, ds) in datasets() {
        let reference = Centralized::new().build(&ds, &cluster, 15);
        for b in [
            Box::new(SendV::new()) as Box<dyn HistogramBuilder>,
            Box::new(SendCoef::new()),
            Box::new(HWTopk::new()),
        ] {
            let got = b.build(&ds, &cluster, 15);
            assert_same(
                &got.histogram,
                &reference.histogram,
                &format!("{name}/{}", b.name()),
            );
        }
    }
}

#[test]
fn agreement_across_k_values() {
    let cluster = ClusterConfig::paper_cluster();
    let ds = Dataset::zipf(8, 1.1, 20_000, 8);
    for k in [1usize, 2, 7, 30, 200] {
        let reference = Centralized::new().build(&ds, &cluster, k);
        let hw = HWTopk::new().build(&ds, &cluster, k);
        assert_same(&hw.histogram, &reference.histogram, &format!("k={k}"));
    }
}

#[test]
fn agreement_across_split_counts() {
    let cluster = ClusterConfig::paper_cluster();
    for m in [1u32, 2, 5, 31, 64] {
        let ds = Dataset::zipf(8, 1.1, 12_800, m);
        let reference = Centralized::new().build(&ds, &cluster, 10);
        let hw = HWTopk::new().build(&ds, &cluster, 10);
        assert_same(&hw.histogram, &reference.histogram, &format!("m={m}"));
    }
}

#[test]
fn exact_builders_are_deterministic() {
    let cluster = ClusterConfig::paper_cluster();
    let ds = Dataset::zipf(9, 1.1, 25_000, 9);
    for b in [
        Box::new(SendV::new()) as Box<dyn HistogramBuilder>,
        Box::new(HWTopk::new()),
    ] {
        let a = b.build(&ds, &cluster, 12);
        let c = b.build(&ds, &cluster, 12);
        assert_eq!(a.histogram, c.histogram, "{}", b.name());
        assert_eq!(a.metrics, c.metrics, "{} metrics", b.name());
    }
}

#[test]
fn histogram_queries_match_reconstruction_on_real_data() {
    let cluster = ClusterConfig::paper_cluster();
    let ds = Dataset::zipf(8, 1.1, 20_000, 8);
    let r = HWTopk::new().build(&ds, &cluster, 20);
    let recon = r.histogram.reconstruct();
    for x in (0..256u64).step_by(17) {
        let p = r.histogram.point_estimate(x);
        assert!((p - recon[x as usize]).abs() < 1e-9);
    }
    let total: f64 = recon.iter().sum();
    assert!((r.histogram.range_sum(0, 255) - total).abs() < 1e-6);
}
