//! Cross-crate integration: the approximation algorithms' quality and
//! cost relationships claimed in §4–§5 hold end-to-end.

use wavelet_hist::builders::{BasicS, HistogramBuilder, ImprovedS, SendSketch, SendV, TwoLevelS};
use wavelet_hist::data::Dataset;
use wavelet_hist::evaluate::Evaluator;
use wavelet_hist::mapreduce::ClusterConfig;

fn dataset() -> Dataset {
    Dataset::zipf(12, 1.1, 1 << 18, 32)
}

const EPS: f64 = 0.01; // sample 1/ε² = 10k of 262k ≈ 3.8%

#[test]
fn approximations_all_cheaper_than_exact_baseline() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let sv = SendV::new().build(&ds, &cluster, 30);
    // Basic-S is the weakest sampler (the paper replaces it with
    // Improved-S as the default competitor), so it only gets a 5× bar.
    for (factor, b) in [
        (
            5u64,
            Box::new(BasicS::new(EPS, 3)) as Box<dyn HistogramBuilder>,
        ),
        (10, Box::new(ImprovedS::new(EPS, 3))),
        (10, Box::new(TwoLevelS::new(EPS, 3))),
    ] {
        let got = b.build(&ds, &cluster, 30);
        assert!(
            got.metrics.total_comm_bytes() * factor < sv.metrics.total_comm_bytes(),
            "{}: comm {} vs Send-V {}",
            b.name(),
            got.metrics.total_comm_bytes(),
            sv.metrics.total_comm_bytes()
        );
        assert!(
            got.metrics.records_scanned < ds.num_records() / 10,
            "{}",
            b.name()
        );
    }
}

#[test]
fn sse_ordering_matches_paper() {
    // Fig. 6's ordering at defaults: exact (ideal) ≤ TwoLevel ≤ Improved,
    // with the sketch in between or near TwoLevel.
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let eval = Evaluator::new(&ds);
    let k = 30;
    let two = TwoLevelS::new(EPS, 11).build(&ds, &cluster, k);
    let imp = ImprovedS::new(EPS, 11).build(&ds, &cluster, k);
    let sse_two = eval.sse(&two.histogram);
    let sse_imp = eval.sse(&imp.histogram);
    let ideal = eval.ideal_sse(k);
    assert!(sse_two >= ideal * 0.999);
    assert!(
        sse_two < sse_imp,
        "TwoLevel {sse_two:.3e} should beat Improved {sse_imp:.3e}"
    );
}

#[test]
fn two_level_quality_improves_with_smaller_epsilon() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let eval = Evaluator::new(&ds);
    // Average over seeds to damp sampling noise.
    let avg_sse = |eps: f64| -> f64 {
        (0..4)
            .map(|s| {
                let r = TwoLevelS::new(eps, 100 + s).build(&ds, &cluster, 30);
                eval.sse(&r.histogram)
            })
            .sum::<f64>()
            / 4.0
    };
    let fine = avg_sse(0.005);
    let coarse = avg_sse(0.08);
    assert!(
        fine < coarse,
        "SSE should improve with smaller ε: {fine:.3e} vs {coarse:.3e}"
    );
}

#[test]
fn communication_ordering_two_level_improved_basic() {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let basic = BasicS::new(EPS, 5).build(&ds, &cluster, 30);
    let imp = ImprovedS::new(EPS, 5).build(&ds, &cluster, 30);
    let two = TwoLevelS::new(EPS, 5).build(&ds, &cluster, 30);
    assert!(imp.metrics.shuffle_bytes <= basic.metrics.shuffle_bytes);
    assert!(two.metrics.shuffle_bytes <= imp.metrics.shuffle_bytes);
}

#[test]
fn sketch_is_scan_bound_and_cpu_heavy() {
    let ds = Dataset::zipf(12, 1.1, 1 << 16, 8);
    let cluster = ClusterConfig::paper_cluster();
    let sk = SendSketch::new(2).build(&ds, &cluster, 20);
    let two = TwoLevelS::new(0.02, 2).build(&ds, &cluster, 20);
    assert_eq!(sk.metrics.records_scanned, ds.num_records());
    assert!(sk.metrics.cpu_ops > 20.0 * two.metrics.cpu_ops);
    assert!(sk.metrics.sim_time_s > two.metrics.sim_time_s);
}

#[test]
fn worldcup_dataset_shows_same_ordering() {
    // Fig. 17: the trends transfer from synthetic Zipf to the log-like
    // dataset.
    use wavelet_hist::data::{DatasetBuilder, Distribution};
    use wavelet_hist::wavelet::Domain;
    let ds = DatasetBuilder::new()
        .domain(Domain::new(12).expect("valid"))
        .distribution(Distribution::WorldCup)
        .records(1 << 18)
        .splits(32)
        .record_bytes(40)
        .seed(8)
        .build();
    let cluster = ClusterConfig::paper_cluster();
    let sv = SendV::new().build(&ds, &cluster, 30);
    let two = TwoLevelS::new(EPS, 8).build(&ds, &cluster, 30);
    assert!(two.metrics.total_comm_bytes() * 10 < sv.metrics.total_comm_bytes());
    assert!(two.metrics.sim_time_s <= sv.metrics.sim_time_s);
}
