//! End-to-end statistical tests of the sampling estimators, run through
//! the full MapReduce pipeline (not just the unit-level emitters):
//! Theorem 1's unbiasedness and the paper's communication theorems.

use wavelet_hist::builders::{HistogramBuilder, ImprovedS, TwoLevelS};
use wavelet_hist::data::Dataset;
use wavelet_hist::mapreduce::ClusterConfig;

#[test]
fn two_level_full_pipeline_unbiased_in_expectation() {
    // The total mass n is the cleanest observable: retained slot 0 (the
    // overall-average coefficient) encodes Σ v̂(x)/√u. Average over seeds
    // must approach n/√u.
    let ds = Dataset::zipf(10, 1.1, 1 << 17, 16);
    let cluster = ClusterConfig::paper_cluster();
    let u_sqrt = 1024f64.sqrt();
    let true_avg = (1 << 17) as f64 / u_sqrt;
    let runs = 12;
    let mut total = 0.0;
    for seed in 0..runs {
        let r = TwoLevelS::new(0.02, seed).build(&ds, &cluster, 64);
        let avg = r
            .histogram
            .coefficient(0)
            .expect("overall average is always a top coefficient on skewed data");
        total += avg;
    }
    let mean = total / runs as f64;
    assert!(
        (mean - true_avg).abs() < 0.05 * true_avg,
        "mean slot-0 {mean} vs true {true_avg}"
    );
}

#[test]
fn improved_s_is_biased_low() {
    // Improved-S drops sub-threshold counts, so its slot-0 estimate sits
    // systematically below the truth on low-skew data (where most sampled
    // keys have small counts).
    let ds = Dataset::zipf(10, 0.8, 1 << 17, 16);
    let cluster = ClusterConfig::paper_cluster();
    let u_sqrt = 1024f64.sqrt();
    let true_avg = (1 << 17) as f64 / u_sqrt;
    let runs = 8;
    let mut total = 0.0;
    for seed in 0..runs {
        let r = ImprovedS::new(0.02, seed).build(&ds, &cluster, 64);
        total += r.histogram.coefficient(0).unwrap_or(0.0);
    }
    let mean = total / runs as f64;
    assert!(
        mean < true_avg * 0.999,
        "Improved-S should underestimate: mean {mean} vs true {true_avg}"
    );
}

#[test]
fn two_level_communication_theorem3_bound() {
    // Expected emitted keys ≤ 2√m/ε; allow 50% slack for variance.
    for (m, eps) in [(16u32, 0.02f64), (64, 0.01), (49, 0.03)] {
        let ds = Dataset::zipf(12, 1.1, 1 << 18, m);
        let cluster = ClusterConfig::paper_cluster();
        let r = TwoLevelS::new(eps, 3).build(&ds, &cluster, 30);
        let bound = 2.0 * (m as f64).sqrt() / eps * 1.5;
        assert!(
            (r.metrics.map_output_pairs as f64) < bound,
            "m={m} eps={eps}: pairs {} vs bound {bound}",
            r.metrics.map_output_pairs
        );
    }
}

#[test]
fn improved_s_communication_bound() {
    // At most m·(1/ε) pairs.
    let m = 32u32;
    let eps = 0.02;
    let ds = Dataset::zipf(12, 1.1, 1 << 18, m);
    let cluster = ClusterConfig::paper_cluster();
    let r = ImprovedS::new(eps, 3).build(&ds, &cluster, 30);
    let bound = m as f64 / eps;
    assert!(
        (r.metrics.map_output_pairs as f64) <= bound,
        "pairs {} vs m/ε {bound}",
        r.metrics.map_output_pairs
    );
}

#[test]
fn sqrt_m_separation_grows_with_m() {
    // The heart of Theorem 3: TwoLevel's advantage over Improved widens
    // as m grows (Fig. 10's widening gap). Use a low-skew dataset so
    // Improved cannot hide behind heavy keys.
    let eps = 0.01;
    let cluster = ClusterConfig::paper_cluster();
    let ratio = |m: u32| -> f64 {
        let ds = Dataset::zipf(14, 0.8, 1 << 19, m);
        let imp = ImprovedS::new(eps, 7).build(&ds, &cluster, 30);
        let two = TwoLevelS::new(eps, 7).build(&ds, &cluster, 30);
        imp.metrics.shuffle_bytes as f64 / two.metrics.shuffle_bytes.max(1) as f64
    };
    let r_small = ratio(8);
    let r_large = ratio(128);
    assert!(
        r_large > r_small,
        "advantage should widen with m: ratio(8)={r_small:.2} ratio(128)={r_large:.2}"
    );
}
