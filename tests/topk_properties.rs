//! Property-based tests of the distributed top-k protocols: the two-sided
//! TPUT must return the exact top-k by magnitude for *any* score
//! configuration — positive, negative, cancelling, sparse.

use proptest::prelude::*;
use wavelet_hist::topk::exact::topk_by_magnitude;
use wavelet_hist::topk::two_sided::two_sided_topk;
use wavelet_hist::topk::InMemoryNode;

/// Arbitrary cluster: up to 8 nodes, each holding up to 40 signed scores
/// over a universe of 30 items (small universe forces overlap and
/// cancellation).
fn nodes_strategy() -> impl Strategy<Value = Vec<InMemoryNode>> {
    prop::collection::vec(
        prop::collection::vec(((0u64..30), -100.0f64..100.0), 0..40).prop_map(InMemoryNode::new),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn two_sided_matches_brute_force(nodes in nodes_strategy(), k in 1usize..12) {
        let got = two_sided_topk(&nodes, k);
        let want = topk_by_magnitude(&nodes, k);
        prop_assert_eq!(got.topk.len(), want.len());
        // Magnitudes must agree position by position (ties may permute
        // within equal magnitude).
        for (g, w) in got.topk.iter().zip(&want) {
            prop_assert!(
                (g.1.abs() - w.1.abs()).abs() < 1e-9,
                "got {:?} want {:?}", g, w
            );
        }
        // Every returned item's exact aggregate must match its reported
        // value (the protocol may never report a stale partial sum).
        for &(item, value) in &got.topk {
            let exact: f64 = nodes.iter().map(|n| {
                use wavelet_hist::topk::ScoreNode;
                n.score(item)
            }).sum();
            prop_assert!((exact - value).abs() < 1e-9, "item {item}");
        }
    }

    #[test]
    fn communication_never_exceeds_send_all(nodes in nodes_strategy(), k in 1usize..8) {
        use wavelet_hist::topk::ScoreNode;
        let got = two_sided_topk(&nodes, k);
        let send_all: u64 = nodes.iter().map(|n| n.len() as u64).sum();
        // Across three rounds no score is ever re-sent, so uploads are
        // bounded by the total number of held scores.
        prop_assert!(got.comm.total_pairs() <= send_all,
            "pairs {} > send-all {}", got.comm.total_pairs(), send_all);
    }

    #[test]
    fn thresholds_well_formed(nodes in nodes_strategy(), k in 1usize..8) {
        let got = two_sided_topk(&nodes, k);
        let (t1, t2) = got.thresholds;
        prop_assert!(t1 >= 0.0);
        prop_assert!(t2 >= t1 - 1e-12, "T2 {t2} must refine T1 {t1}");
    }
}

#[test]
fn classic_tput_matches_reference_on_many_seeds() {
    use wavelet_hist::topk::exact::topk_by_value;
    use wavelet_hist::topk::tput::tput_topk;
    let mut state = 42u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _trial in 0..25 {
        let m = 2 + (next() % 6) as usize;
        let nodes: Vec<InMemoryNode> = (0..m)
            .map(|_| {
                let items = next() % 50;
                InMemoryNode::new((0..items).filter_map(|i| {
                    let r = next();
                    (r % 2 == 0).then_some((i, (r % 500) as f64))
                }))
            })
            .collect();
        let k = 1 + (next() % 10) as usize;
        let got = tput_topk(&nodes, k).topk;
        let want = topk_by_value(&nodes, k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-9, "{g:?} vs {w:?}");
        }
    }
}
