//! Property and integration tests of the MapReduce engine's accounting
//! invariants — the measurements every experiment depends on.

use proptest::prelude::*;
use wavelet_hist::mapreduce::wire::WKey;
use wavelet_hist::mapreduce::{run_job, ClusterConfig, JobSpec, MapContext, MapTask, WireSize};

type Outputs = Vec<(u64, u64)>;

fn count_job(
    splits: Vec<Vec<u64>>,
    combine: bool,
) -> (Outputs, wavelet_hist::mapreduce::RunMetrics) {
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .into_iter()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                ctx.note_read(keys.len() as u64, keys.len() as u64 * 4);
                for k in &keys {
                    ctx.emit(WKey::four(*k), 1);
                }
            })
        })
        .collect();
    let reduce = Box::new(
        |k: &WKey, vs: &[u64], ctx: &mut wavelet_hist::mapreduce::ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    );
    let mut spec = JobSpec::new("prop", tasks, reduce);
    if combine {
        spec = spec.with_combiner(|_k, vs: &mut Vec<u64>| {
            let s: u64 = vs.iter().sum();
            vs.clear();
            vs.push(s);
        });
    }
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

fn splits_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..50, 0..80), 1..12)
}

/// [`count_job`] with radix keys and (optionally) the bounded-domain
/// hint — the knobs that pick the engine's reduce strategy.
fn strategy_count_job(
    splits: Vec<Vec<u64>>,
    reducers: u32,
    hinted: bool,
) -> (Outputs, wavelet_hist::mapreduce::RunMetrics) {
    let tasks: Vec<MapTask<WKey, u64>> = splits
        .into_iter()
        .enumerate()
        .map(|(j, keys)| {
            MapTask::new(j as u32, move |ctx: &mut MapContext<WKey, u64>| {
                for k in &keys {
                    ctx.emit(WKey::four(*k), 1);
                }
            })
        })
        .collect();
    let mut spec = JobSpec::new(
        "strategy-acct",
        tasks,
        |k: &WKey, vs: &[u64], ctx: &mut wavelet_hist::mapreduce::ReduceContext<(u64, u64)>| {
            ctx.emit((k.id, vs.iter().sum()));
        },
    )
    .with_radix_keys()
    .with_reducers(reducers);
    if hinted {
        spec = spec.with_key_domain(64);
    }
    let out = run_job(&ClusterConfig::paper_cluster(), spec);
    (out.outputs, out.metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduce_totals_conserve_records(splits in splits_strategy()) {
        let n: u64 = splits.iter().map(|s| s.len() as u64).sum();
        let (outputs, metrics) = count_job(splits, false);
        let total: u64 = outputs.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, n, "counts conserved through shuffle");
        prop_assert_eq!(metrics.records_scanned, n);
        prop_assert_eq!(metrics.map_output_pairs, n);
        // Every pair is 4 B key + 8 B value.
        prop_assert_eq!(metrics.shuffle_bytes, n * 12);
    }

    #[test]
    fn combiner_preserves_results_and_shrinks_comm(splits in splits_strategy()) {
        let (mut plain, m_plain) = count_job(splits.clone(), false);
        let (mut combined, m_combined) = count_job(splits, true);
        plain.sort_unstable();
        combined.sort_unstable();
        prop_assert_eq!(plain, combined, "combiner must not change the answer");
        prop_assert!(m_combined.shuffle_bytes <= m_plain.shuffle_bytes);
        prop_assert!(m_combined.map_output_pairs <= m_plain.map_output_pairs);
    }

    #[test]
    fn engine_is_deterministic(splits in splits_strategy()) {
        let (a, ma) = count_job(splits.clone(), true);
        let (b, mb) = count_job(splits, true);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ma, mb);
    }

    /// Accounting invariant of the PR 4 strategy records: the pipelined
    /// engine records exactly one strategy per partition, the expected
    /// one, and `RunMetrics` equality deliberately ignores the counts —
    /// the same job under different strategies still compares equal.
    #[test]
    fn strategy_counts_cover_every_partition(
        splits in splits_strategy(),
        reducers in 1u32..9,
    ) {
        let (dense_out, dense_m) = strategy_count_job(splits.clone(), reducers, true);
        let (sorted_out, sorted_m) = strategy_count_job(splits, reducers, false);
        prop_assert_eq!(dense_m.reduce_strategies.dense_reduce, reducers);
        prop_assert_eq!(dense_m.reduce_strategies.total(), reducers);
        prop_assert_eq!(sorted_m.reduce_strategies.total(), reducers);
        if reducers > 1 {
            prop_assert_eq!(sorted_m.reduce_strategies.sort_at_reduce, reducers);
        } else {
            prop_assert_eq!(sorted_m.reduce_strategies.merge, 1);
        }
        prop_assert_eq!(dense_out, sorted_out);
        // `==` compares logical fields only: strategy selection must
        // never break the determinism contract.
        prop_assert_eq!(dense_m, sorted_m);
    }

    #[test]
    fn sim_time_monotone_in_bandwidth(shuffle_mb in 1u64..200) {
        let mk = |fraction: f64| {
            let mut c = ClusterConfig::paper_cluster();
            c.bandwidth_fraction = fraction;
            wavelet_hist::mapreduce::cost::round_time(
                &c,
                &[],
                wavelet_hist::mapreduce::cost::ReduceWork::default(),
                shuffle_mb << 20,
                0,
            )
        };
        prop_assert!(mk(0.1) > mk(0.5));
        prop_assert!(mk(0.5) > mk(1.0));
    }
}

#[test]
fn wire_sizes_of_workspace_payloads() {
    use wavelet_hist::mapreduce::wire::Sized as WSized;
    // The encodings the paper's accounting uses (§5 setup).
    assert_eq!(WKey::four(7).wire_bytes(), 4); // 4-byte keys
    assert_eq!(WSized::new(123u64, 4).wire_bytes(), 4); // 4-byte mapper counts
    assert_eq!(1.5f64.wire_bytes(), 8); // 8-byte coefficients
    assert_eq!((WKey::four(7), 1.5f64).wire_bytes(), 12); // Send-Coef pair
}

#[test]
fn state_store_survives_rounds() {
    use wavelet_hist::mapreduce::StateStore;
    let store = StateStore::new();
    // Round 1 writes per-split state from worker threads.
    std::thread::scope(|s| {
        for j in 0..16u32 {
            let store = &store;
            s.spawn(move || store.save(j, vec![(j as u64, 0.5f64)]));
        }
    });
    // Round 2 reads it back.
    for j in 0..16u32 {
        let st: Vec<(u64, f64)> = store.take(j).expect("state persisted");
        assert_eq!(st[0].0, j as u64);
    }
}
