//! The incremental-maintenance differential suite — the target of CI's
//! `freshness` job.
//!
//! Pins the PR 9 contract end to end:
//!
//! 1. **Bit-identity for the exact path.** A [`MaintainedHistogram`]
//!    seeded from base splits and fed the remaining splits as deltas
//!    snapshots *bit-identically* (`f64::to_bits`) to a from-scratch
//!    [`Centralized`] build on the concatenated data.
//! 2. **Delta-merge algebra** (proptests): A-then-B ≡ B-then-A ≡ one
//!    merge of A∪B, empty deltas are no-ops, and re-selection handles
//!    top-k membership churn — all against a dense
//!    `forward_in_place` + `top_k_magnitude` oracle.
//! 3. **The serving loop.** merge → snapshot → `recompile` →
//!    `ServeTier::try_publish` republished at
//!    `dataset_records + delta`, with served answers bit-equal to the
//!    fresh compiled form and within the √SSE / √(len·SSE) brute-force
//!    bounds on the concatenated truth.
//! 4. **Streaming sketches.** GCS streaming a delta in key space equals
//!    merging per-segment sketches (linearity, up to summation order).

use proptest::prelude::*;
use wavelet_hist::builders::{Centralized, HistogramBuilder};
use wavelet_hist::data::{Dataset, DatasetBuilder, Distribution};
use wavelet_hist::incremental::MaintainedHistogram;
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::sketch::{GcsParams, GroupCountSketch};
use wavelet_hist::wavelet::haar::{energy, forward_in_place};
use wavelet_hist::wavelet::{sparse, top_k_magnitude, Domain};
use wavelet_hist::{CompiledHistogram, ServeTier, WaveletHistogram};

const K: usize = 24;

fn zipf(seed: u64, log_u: u32, records: u64, splits: u32) -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(log_u).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.1 })
        .records(records)
        .splits(splits)
        .seed(seed)
        .build()
}

/// Aggregated `(key, count)` pairs of one split.
fn split_counts(ds: &Dataset, split: u32) -> Vec<(u64, u64)> {
    let mut agg = std::collections::BTreeMap::new();
    for r in ds.scan_split(split) {
        *agg.entry(r.key).or_insert(0u64) += 1;
    }
    agg.into_iter().collect()
}

fn assert_bit_identical(tag: &str, a: &WaveletHistogram, b: &WaveletHistogram) {
    assert_eq!(a.domain(), b.domain(), "{tag}: domain");
    assert_eq!(a.len(), b.len(), "{tag}: retained terms");
    for (i, (x, y)) in a.coefficients().iter().zip(b.coefficients()).enumerate() {
        assert_eq!(x.0, y.0, "{tag}: slot order at {i}");
        assert_eq!(
            x.1.to_bits(),
            y.1.to_bits(),
            "{tag}: coefficient {} ({} vs {})",
            x.0,
            x.1,
            y.1
        );
    }
}

/// The dense exact pipeline [`Centralized`] runs, as a standalone oracle
/// over raw `(key, count)` pairs.
fn dense_oracle(domain: Domain, counts: &[(u64, u64)], k: usize) -> WaveletHistogram {
    let mut v = vec![0.0f64; domain.u() as usize];
    for &(x, c) in counts {
        v[x as usize] += c as f64;
    }
    forward_in_place(&mut v);
    WaveletHistogram::new(
        domain,
        top_k_magnitude(v.iter().copied().enumerate().map(|(s, c)| (s as u64, c)), k)
            .into_iter()
            .map(|e| (e.slot, e.value)),
    )
}

// ---------------------------------------------------------------------------
// 1. Bit-identity: delta-merged ≡ built from scratch on concatenated data.
// ---------------------------------------------------------------------------

#[test]
fn delta_merged_snapshot_is_bit_identical_to_from_scratch_build() {
    let ds = zipf(0x9e1, 10, 48_000, 8);
    let cluster = ClusterConfig::paper_cluster();
    for k in [1, 8, K, 300] {
        // Base: splits 0..5. Deltas: splits 5..8, one merge each.
        let mut m = MaintainedHistogram::new(ds.domain(), k);
        for j in 0..5 {
            m.merge_split(&ds, j);
        }
        for j in 5..ds.num_splits() {
            m.merge_split(&ds, j);
        }
        assert_eq!(m.total_records(), ds.num_records());
        let scratch = Centralized::new().build(&ds, &cluster, k).histogram;
        assert_bit_identical(&format!("k={k}"), &m.snapshot(), &scratch);
    }
}

#[test]
fn delta_arrival_order_never_changes_the_snapshot() {
    let ds = zipf(0x517, 9, 20_000, 6);
    let forward = MaintainedHistogram::from_dataset(&ds, K);
    let mut reversed = MaintainedHistogram::new(ds.domain(), K);
    for j in (0..ds.num_splits()).rev() {
        reversed.merge_split(&ds, j);
    }
    assert_eq!(forward, reversed);
    assert_bit_identical("order", &forward.snapshot(), &reversed.snapshot());
}

// ---------------------------------------------------------------------------
// 2. Delta-merge algebra, against the dense oracle.
// ---------------------------------------------------------------------------

/// Random `(key, count)` deltas over a 2^6 domain.
fn delta_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..64, 1u64..200), 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn applying_a_then_b_equals_b_then_a_equals_one_merge(
        a in delta_strategy(),
        b in delta_strategy(),
    ) {
        let domain = Domain::new(6).unwrap();
        let mut ab = MaintainedHistogram::new(domain, 12);
        ab.merge_delta(a.iter().copied());
        ab.merge_delta(b.iter().copied());
        let mut ba = MaintainedHistogram::new(domain, 12);
        ba.merge_delta(b.iter().copied());
        ba.merge_delta(a.iter().copied());
        let mut union = MaintainedHistogram::new(domain, 12);
        union.merge_delta(a.iter().copied().chain(b.iter().copied()));

        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&ab, &union);
        assert_bit_identical("a,b vs b,a", &ab.snapshot(), &ba.snapshot());
        assert_bit_identical("a,b vs a∪b", &ab.snapshot(), &union.snapshot());

        // And the merged state is exactly what a dense from-scratch
        // transform of the summed counts selects.
        let combined: Vec<(u64, u64)> =
            a.iter().copied().chain(b.iter().copied()).collect();
        assert_bit_identical(
            "vs dense oracle",
            &ab.snapshot(),
            &dense_oracle(domain, &combined, 12),
        );
    }

    #[test]
    fn empty_and_zero_deltas_are_no_ops(a in delta_strategy()) {
        let domain = Domain::new(6).unwrap();
        let mut m = MaintainedHistogram::new(domain, 12);
        m.merge_delta(a.iter().copied());
        let before = m.clone();
        m.merge_delta(std::iter::empty());
        m.merge_delta(a.iter().map(|&(x, _)| (x, 0)));
        prop_assert_eq!(&m, &before);
        assert_bit_identical("no-op", &m.snapshot(), &before.snapshot());
    }

    #[test]
    fn snapshots_track_the_oracle_at_every_budget(
        a in delta_strategy(),
        k in 1usize..20,
    ) {
        let domain = Domain::new(6).unwrap();
        let mut m = MaintainedHistogram::new(domain, k);
        m.merge_delta(a.iter().copied());
        assert_bit_identical("budget", &m.snapshot(), &dense_oracle(domain, &a, k));
    }
}

/// A delta can *shrink* the k-th magnitude: sibling counts cancel a
/// detail coefficient to exactly zero, so a previously unselected slot
/// must enter the top-k. Re-selection that only rescored "old top-k ∪
/// touched slots" would miss this; the full-scan snapshot must not.
#[test]
fn topk_membership_churns_under_cancelling_deltas() {
    let domain = Domain::new(3).unwrap();
    let mut m = MaintainedHistogram::new(domain, 2);
    m.merge_delta([(0u64, 10u64), (6, 3)]);
    let before: Vec<u64> = m.snapshot().coefficients().iter().map(|c| c.0).collect();
    // Key 1 cancels key 0's finest detail ((10-10)/√2 = 0 exactly): the
    // strongest coefficient vanishes from the non-zero set outright.
    m.merge_delta([(1u64, 10u64)]);
    let after: Vec<u64> = m.snapshot().coefficients().iter().map(|c| c.0).collect();
    assert_ne!(before, after, "membership must churn");
    assert!(
        !after.contains(&4),
        "cancelled finest detail (slot 4) must drop out: {after:?}"
    );
    assert_bit_identical(
        "churn",
        &m.snapshot(),
        &dense_oracle(domain, &[(0, 10), (1, 10), (6, 3)], 2),
    );
}

/// Negative (PR 10): the maintainer is a strictly 1-D component — a
/// delta key at or beyond `u` is rejected up front with a domain panic,
/// not folded into a wrong bucket.
#[test]
#[should_panic(expected = "outside")]
fn maintainer_rejects_keys_outside_its_domain() {
    let domain = Domain::new(6).unwrap();
    let mut m = MaintainedHistogram::new(domain, 8);
    m.merge_delta([(domain.u(), 1u64)]);
}

/// Negative (PR 10): packed 2-D slots (`pack_slot(r, c) = r·2³² + c`,
/// the key space of `WaveletHistogram2d`) must not alias through the
/// 1-D maintainer. Feeding one is the same domain violation — 2-D data
/// goes through `SendCoef2d`, never through `MaintainedHistogram`.
#[test]
#[should_panic(expected = "outside")]
fn maintainer_rejects_packed_2d_slots() {
    let domain = Domain::new(6).unwrap();
    let mut m = MaintainedHistogram::new(domain, 8);
    let packed_2d_slot = wavelet_hist::wavelet::twod::pack_slot(1, 3);
    m.merge_delta([(packed_2d_slot, 1u64)]);
}

// ---------------------------------------------------------------------------
// 3. Coefficient-space merge on pruned histograms (the approximate path).
// ---------------------------------------------------------------------------

#[test]
fn coefficient_merge_with_full_retention_is_exact_and_parseval_holds() {
    let base_ds = zipf(0xb0, 8, 12_000, 4);
    let delta_ds = zipf(0xd1, 8, 3_000, 2);
    let domain = base_ds.domain();
    let u = domain.u() as usize;

    let counts_of = |ds: &Dataset| {
        ds.exact_frequency_vector()
            .into_iter()
            .enumerate()
            .map(|(x, c)| (x as u64, c as f64))
            .filter(|&(_, c)| c != 0.0)
            .collect::<Vec<_>>()
    };
    let base_coefs = sparse::sparse_transform(domain, counts_of(&base_ds));
    let delta_coefs = sparse::sparse_transform(domain, counts_of(&delta_ds));

    // Full retention: the merge is exact, so reconstruction equals the
    // concatenated frequency vector (up to float summation order).
    let base = WaveletHistogram::new(domain, base_coefs.iter().map(|(&s, &v)| (s, v)));
    // k = u retains every one of the ≤ u non-zero slots: full retention.
    let merged = base.merge_delta(delta_coefs.iter().map(|(&s, &v)| (s, v)), u);
    let recon = merged.reconstruct();
    let truth: Vec<f64> = base_ds
        .exact_frequency_vector()
        .iter()
        .zip(delta_ds.exact_frequency_vector())
        .map(|(&a, b)| (a + b) as f64)
        .collect();
    let scale = truth.iter().map(|t| t * t).sum::<f64>().sqrt().max(1.0);
    for x in 0..u {
        assert!(
            (recon[x] - truth[x]).abs() <= 1e-9 * scale,
            "key {x}: {} vs {}",
            recon[x],
            truth[x]
        );
    }

    // Pruned to k after an exact merge, the SSE against the concatenated
    // truth is exactly the dropped coefficient energy (Parseval) — a
    // bound no "old top-k ∪ touched" shortcut would meet.
    let pruned = base.merge_delta(delta_coefs.iter().map(|(&s, &v)| (s, v)), K);
    let recon_pruned = pruned.reconstruct();
    let sse: f64 = recon_pruned
        .iter()
        .zip(&truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum();
    let dropped = energy(&truth) - pruned.retained_energy();
    assert!(
        (sse - dropped).abs() <= 1e-6 * (1.0 + energy(&truth)),
        "SSE {sse} vs dropped energy {dropped}"
    );
}

// ---------------------------------------------------------------------------
// 4. The serving loop: merge → snapshot → recompile → try_publish.
// ---------------------------------------------------------------------------

#[test]
fn freshness_loop_republishes_and_serves_the_concatenated_data() {
    let ds = zipf(0xf8e5, 10, 40_000, 8);
    let id = 7;
    let tier = ServeTier::new(4);

    // Initial build and publish: splits 0..6.
    let mut m = MaintainedHistogram::new(ds.domain(), K);
    for j in 0..6 {
        m.merge_split(&ds, j);
    }
    let mut compiled = CompiledHistogram::compile(&m.snapshot());
    tier.publish(id, &compiled, m.total_records());
    assert_eq!(tier.dataset_records(id), Some(m.total_records()));
    let gen_before = tier.generation();

    // Two new segments arrive; count them the way an ingester would.
    let mut delta_records = 0u64;
    for j in 6..ds.num_splits() {
        let counts = split_counts(&ds, j);
        delta_records += counts.iter().map(|&(_, c)| c).sum::<u64>();
        m.merge_delta(counts);
    }
    assert_eq!(m.total_records(), ds.num_records());

    // Refresh: recompile the delta-merged snapshot in place and land it
    // through the fallible publish path at records + delta.
    let records = tier.dataset_records(id).expect("published") + delta_records;
    let generation = tier
        .try_publish(id, records, || {
            compiled.recompile(&m.snapshot());
            Ok::<_, std::convert::Infallible>(compiled.clone())
        })
        .expect("infallible refresh");
    assert!(generation > gen_before, "epoch must advance");
    assert_eq!(tier.dataset_records(id), Some(ds.num_records()));

    // The recompiled form is bit-identical to a fresh compile …
    let fresh = CompiledHistogram::compile(&m.snapshot());
    let u = ds.domain().u();
    for x in 0..u {
        assert_eq!(
            compiled.point_estimate(x).to_bits(),
            fresh.point_estimate(x).to_bits(),
            "recompile drift at key {x}"
        );
    }

    // … the tier serves it bit-identically, and the served estimates are
    // within the brute-force √SSE / √(len·SSE) bounds on the
    // concatenated truth.
    let truth = ds.exact_frequency_vector();
    let sse: f64 = (0..u)
        .map(|x| {
            let e = fresh.point_estimate(x) - truth[x as usize] as f64;
            e * e
        })
        .sum();
    let mut handle = tier.handle();
    let point_bound = sse.sqrt() * (1.0 + 1e-9) + 1e-6;
    for x in (0..u).step_by(7) {
        let served = handle.try_point_estimate(id, x).expect("known dataset");
        assert_eq!(served.to_bits(), fresh.point_estimate(x).to_bits());
        assert!(
            (served - truth[x as usize] as f64).abs() <= point_bound,
            "point {x} outside √SSE after refresh"
        );
    }
    for (lo, hi) in [(0, u - 1), (3, 200), (100, 611), (512, 1000)] {
        let served = handle.try_range_sum(id, lo, hi).expect("known dataset");
        assert_eq!(served.to_bits(), fresh.range_sum(lo, hi).to_bits());
        let brute: f64 = truth[lo as usize..=hi as usize]
            .iter()
            .map(|&t| t as f64)
            .sum();
        let bound = (((hi - lo + 1) as f64) * sse).sqrt() * (1.0 + 1e-9) + 1e-6;
        assert!(
            (served - brute).abs() <= bound,
            "[{lo},{hi}] err {} > √(len·SSE) {bound}",
            (served - brute).abs()
        );
        // Selectivity must be relative to the *updated* record count.
        let sel = handle.try_selectivity(id, lo, hi).expect("known dataset");
        let expect = (served / ds.num_records() as f64).clamp(0.0, 1.0);
        assert_eq!(sel.to_bits(), expect.to_bits());
    }
}

// ---------------------------------------------------------------------------
// 5. Streaming sketches: delta updates ≡ segment merge (linearity).
// ---------------------------------------------------------------------------

#[test]
fn gcs_streaming_a_delta_matches_merging_segment_sketches() {
    let domain = Domain::new(8).unwrap();
    let params = GcsParams::paper_default(domain, 0x6c5);
    let base_keys: Vec<u64> = (0..400u64).map(|i| (i * 53) % 256).collect();
    let delta_keys: Vec<u64> = (0..60u64).map(|i| (i * 77) % 256).collect();

    let mut streamed = GroupCountSketch::new(domain, params);
    for &x in base_keys.iter().chain(&delta_keys) {
        streamed.update_key(x, 1.0);
    }

    let mut merged = GroupCountSketch::new(domain, params);
    for &x in &base_keys {
        merged.update_key(x, 1.0);
    }
    let mut delta_sketch = GroupCountSketch::new(domain, params);
    for &x in &delta_keys {
        delta_sketch.update_key(x, 1.0);
    }
    merged.merge(&delta_sketch);

    // Identical per-counter update sets; only summation order differs.
    let entries: Vec<(u64, f64)> = streamed.counter_entries().collect();
    let other: Vec<(u64, f64)> = merged.counter_entries().collect();
    assert_eq!(entries.len(), other.len());
    for ((ia, a), (ib, b)) in entries.iter().zip(&other) {
        assert_eq!(ia, ib);
        assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
    }
    // And the streamed sketch's top-k agrees with the merged one's.
    let a = streamed.topk(8, 64);
    let b = merged.topk(8, 64);
    assert_eq!(
        a.iter().map(|e| e.slot).collect::<Vec<_>>(),
        b.iter().map(|e| e.slot).collect::<Vec<_>>()
    );
}
