//! Serving-tier suite: the sharded, epoch-swapped read path (`wh-serve`)
//! against the unsharded compiled histogram it must be indistinguishable
//! from.
//!
//! Three contracts are pinned:
//!
//! * **Bit-identity under sharding** — for every builder and every shard
//!   count, batched answers routed through the tier (dataset lookup →
//!   endpoint sort → per-shard fan-out → merge) equal the unsharded
//!   `CompiledHistogram` answers bit for bit.
//! * **Atomic generations** — readers hammering the tier while a writer
//!   republishes observe answers from exactly one generation per batch,
//!   never a blend of two (the epoch swap publishes whole `Arc`'d
//!   snapshots).
//! * **No panics from traffic** — serving threads fed malformed queries
//!   (bad ranges, out-of-domain keys, unknown datasets, zero record
//!   counts) report errors and keep serving; the panicking `assert!`
//!   path is unreachable from query input.

use wavelet_hist::builders::{
    BasicS, HWTopk, HistogramBuilder, ImprovedS, SendCoef, SendSketch, SendSketchAms, SendV,
    TwoLevelS,
};
use wavelet_hist::data::{Dataset, DatasetBuilder, Distribution};
use wavelet_hist::mapreduce::ClusterConfig;
use wavelet_hist::query::{BatchScratch, CompiledHistogram, QueryError, ShardedHistogram};
use wavelet_hist::serve::{ServeError, ServeTier};
use wavelet_hist::wavelet::Domain;

const K: usize = 24;

fn builders() -> Vec<(&'static str, Box<dyn HistogramBuilder>)> {
    let eps = 0.02;
    vec![
        ("Send-V", Box::new(SendV::new())),
        ("Send-Coef", Box::new(SendCoef::new())),
        ("H-WTopk", Box::new(HWTopk::new())),
        ("Basic-S", Box::new(BasicS::new(eps, 3))),
        ("Improved-S", Box::new(ImprovedS::new(eps, 3))),
        ("TwoLevel-S", Box::new(TwoLevelS::new(eps, 3))),
        ("Send-Sketch", Box::new(SendSketch::new(5))),
        ("Send-Sketch-AMS", Box::new(SendSketchAms::new(5))),
    ]
}

fn zipf_dataset() -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(10).expect("valid domain"))
        .distribution(Distribution::Zipf { alpha: 1.1 })
        .records(60_000)
        .splits(8)
        .seed(0x51e1)
        .build()
}

fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 27)
}

fn range_queries(u: u64, count: usize, seed: u64) -> Vec<(u64, u64)> {
    (0..count as u64)
        .map(|i| {
            let lo = scramble(i ^ seed) % u;
            let hi = lo + scramble(i ^ seed ^ 0xc0ffee) % (u - lo);
            (lo, hi)
        })
        .collect()
}

/// Bit-identity of the whole route — dataset lookup, endpoint sort,
/// shard fan-out, merge — for every builder and several shard counts.
#[test]
fn tier_answers_are_bit_identical_for_every_builder_and_shard_count() {
    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let n = ds.num_records();
    let u = ds.domain().u();
    let queries = range_queries(u, 600, 0x7e57);
    let keys: Vec<u64> = (0..400u64).map(|i| scramble(i) % u).collect();
    for (b, (name, builder)) in builders().into_iter().enumerate() {
        let hist = builder.build(&ds, &cluster, K).histogram;
        let compiled = CompiledHistogram::compile(&hist);
        let mut scratch = BatchScratch::new();
        let mut want_sels = vec![0.0; queries.len()];
        compiled.selectivity_batch_into(&queries, n, &mut scratch, &mut want_sels);
        let mut want_sums = vec![0.0; queries.len()];
        compiled.range_sum_batch_into(&queries, &mut scratch, &mut want_sums);
        let mut want_pts = vec![0.0; keys.len()];
        compiled.point_estimate_batch_into(&keys, &mut scratch, &mut want_pts);

        for shards in [1usize, 2, 4, 7] {
            let tier = ServeTier::new(shards);
            let id = b as u32;
            tier.publish(id, &compiled, n);
            let mut h = tier.handle();
            let mut got = vec![0.0; queries.len()];
            h.try_selectivity_batch_into(id, &queries, &mut got)
                .unwrap();
            for (i, (a, g)) in want_sels.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), g.to_bits(), "{name} shards={shards} sel {i}");
            }
            h.try_range_sum_batch_into(id, &queries, &mut got).unwrap();
            for (i, (a, g)) in want_sums.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), g.to_bits(), "{name} shards={shards} sum {i}");
            }
            let mut got_pts = vec![0.0; keys.len()];
            h.try_point_estimate_batch_into(id, &keys, &mut got_pts)
                .unwrap();
            for (i, (a, g)) in want_pts.iter().zip(&got_pts).enumerate() {
                assert_eq!(a.to_bits(), g.to_bits(), "{name} shards={shards} pt {i}");
            }
            // Singles route through the same shards.
            for &(lo, hi) in queries.iter().take(50) {
                assert_eq!(
                    h.try_range_sum(id, lo, hi).unwrap().to_bits(),
                    compiled.range_sum(lo, hi).to_bits(),
                    "{name} shards={shards} [{lo},{hi}]"
                );
            }
        }
    }
}

/// The concurrent reader/swapper contract: while a writer republishes a
/// dataset back and forth between two histograms, every reader batch is
/// answered entirely by one of the two complete generations — bit-equal
/// to one or the other for *every* query of the batch, never a mix.
#[test]
fn readers_never_observe_a_torn_generation_under_swaps() {
    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let n = ds.num_records();
    let u = ds.domain().u();
    // Two deliberately different generations of the "same" dataset.
    let gen_a =
        CompiledHistogram::compile(&TwoLevelS::new(0.02, 3).build(&ds, &cluster, K).histogram);
    let gen_b = CompiledHistogram::compile(&SendV::new().build(&ds, &cluster, 6).histogram);
    let queries = range_queries(u, 64, 0xfeed);
    let mut scratch = BatchScratch::new();
    let mut expect_a = vec![0.0; queries.len()];
    gen_a.selectivity_batch_into(&queries, n, &mut scratch, &mut expect_a);
    let mut expect_b = vec![0.0; queries.len()];
    gen_b.selectivity_batch_into(&queries, n, &mut scratch, &mut expect_b);
    // The generations must actually disagree somewhere, or the test
    // could not detect tearing.
    assert!(
        expect_a
            .iter()
            .zip(&expect_b)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "test needs distinguishable generations"
    );

    let tier = ServeTier::new(4);
    tier.publish(0, &gen_a, n);
    const SWAPS: u64 = 400;
    std::thread::scope(|s| {
        for t in 0..3 {
            let (tier, queries, expect_a, expect_b) = (&tier, &queries, &expect_a, &expect_b);
            s.spawn(move || {
                let mut h = tier.handle();
                let mut got = vec![0.0; queries.len()];
                let mut batches = 0u64;
                let mut seen_a = 0u64;
                let mut seen_b = 0u64;
                while batches < 2_000 {
                    h.try_selectivity_batch_into(0, queries, &mut got).unwrap();
                    let all_a = got
                        .iter()
                        .zip(expect_a)
                        .all(|(g, e)| g.to_bits() == e.to_bits());
                    let all_b = got
                        .iter()
                        .zip(expect_b)
                        .all(|(g, e)| g.to_bits() == e.to_bits());
                    assert!(
                        all_a || all_b,
                        "reader {t}: batch {batches} blended two generations"
                    );
                    seen_a += u64::from(all_a);
                    seen_b += u64::from(all_b);
                    batches += 1;
                }
                (seen_a, seen_b)
            });
        }
        let tier = &tier;
        let (gen_a, gen_b) = (&gen_a, &gen_b);
        s.spawn(move || {
            for i in 0..SWAPS {
                let gen = if i % 2 == 0 { gen_b } else { gen_a };
                tier.publish(0, gen, n);
            }
        });
    });
    // All swaps landed: initial publish + SWAPS republishes.
    assert_eq!(tier.generation(), 1 + SWAPS);
}

/// Serving threads survive malformed traffic: each worker interleaves
/// valid batches with every class of bad query, collects errors as
/// values, and its valid answers stay bit-identical throughout. (With
/// the old `assert!`-driven path this test would abort the process.)
#[test]
fn shard_threads_survive_bad_queries_and_keep_serving() {
    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let n = ds.num_records();
    let u = ds.domain().u();
    let compiled = CompiledHistogram::compile(&HWTopk::new().build(&ds, &cluster, K).histogram);
    let tier = ServeTier::new(4);
    tier.publish(9, &compiled, n);

    let queries = range_queries(u, 128, 0xbad);
    let mut want = vec![0.0; queries.len()];
    compiled.selectivity_batch_into(&queries, n, &mut BatchScratch::new(), &mut want);

    std::thread::scope(|s| {
        for _ in 0..4 {
            let (tier, queries, want) = (&tier, &queries, &want);
            s.spawn(move || {
                let mut h = tier.handle();
                let mut got = vec![0.0; queries.len()];
                for round in 0..200 {
                    // A bad query of every class, between valid batches.
                    assert_eq!(
                        h.try_selectivity(77, 0, 1),
                        Err(ServeError::UnknownDataset(77))
                    );
                    assert_eq!(
                        h.try_range_sum(9, 10, 3),
                        Err(ServeError::Query(QueryError::EmptyRange { lo: 10, hi: 3 }))
                    );
                    assert!(matches!(
                        h.try_point_estimate(9, u + 5),
                        Err(ServeError::Query(QueryError::OutOfDomain { .. }))
                    ));
                    let err = h
                        .try_range_sum_batch_into(9, &[(0, 1), (4, u)], &mut got[..2])
                        .unwrap_err();
                    assert!(matches!(
                        err,
                        ServeError::Query(QueryError::OutOfDomain { .. })
                    ));
                    // …and the very same handle keeps answering exactly.
                    h.try_selectivity_batch_into(9, queries, &mut got).unwrap();
                    for (i, (a, g)) in want.iter().zip(&got).enumerate() {
                        assert_eq!(a.to_bits(), g.to_bits(), "round {round} query {i}");
                    }
                }
            });
        }
    });
}

/// Removing a dataset under load: readers get `UnknownDataset` (not a
/// panic, not stale garbage) once their snapshot refreshes, and
/// republishing restores service.
#[test]
fn remove_and_republish_under_handles() {
    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let n = ds.num_records();
    let compiled = CompiledHistogram::compile(&SendCoef::new().build(&ds, &cluster, K).histogram);
    let tier = ServeTier::new(2);
    tier.publish(3, &compiled, n);
    let mut h = tier.handle();
    assert!(h.try_range_sum(3, 0, 10).is_ok());
    tier.remove(3);
    assert_eq!(
        h.try_range_sum(3, 0, 10),
        Err(ServeError::UnknownDataset(3))
    );
    tier.publish(3, &compiled, n);
    assert_eq!(
        h.try_range_sum(3, 0, 10).unwrap().to_bits(),
        compiled.range_sum(0, 10).to_bits()
    );
}

/// The sharded form itself (no tier) splits the domain exactly and
/// matches the unsharded answers on shard boundaries — the keys most
/// likely to rout to the wrong side of an off-by-one.
#[test]
fn shard_boundaries_answer_exactly() {
    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let compiled = CompiledHistogram::compile(&SendV::new().build(&ds, &cluster, K).histogram);
    for m in [2usize, 3, 5, 8] {
        let sharded = ShardedHistogram::shard(&compiled, m);
        for shard in sharded.shards() {
            let (lo, hi) = shard.key_range();
            for x in [
                lo,
                lo.saturating_add(1),
                hi - 1,
                hi.min(compiled.domain().u() - 1),
            ] {
                if compiled.domain().contains(x) {
                    assert_eq!(
                        sharded.try_point_estimate(x).unwrap().to_bits(),
                        compiled.point_estimate(x).to_bits(),
                        "m={m} x={x}"
                    );
                    assert_eq!(
                        sharded.try_prefix_sum(x).unwrap().to_bits(),
                        compiled.prefix_sum(x).to_bits(),
                        "m={m} x={x}"
                    );
                }
            }
        }
    }
}

/// PR 8 satellite: `parking_lot` mutexes do not poison, and the epoch
/// swap publishes whole snapshots — so a rebuild that *panics* on the
/// publish path leaves readers on the previous generation, and the tier
/// (writer lock included) keeps working for the next publisher.
#[test]
fn panicking_rebuild_leaves_the_previous_snapshot_serving() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let compiled = CompiledHistogram::compile(&SendV::new().build(&ds, &cluster, K).histogram);
    let n = ds.num_records();

    let tier = ServeTier::new(4);
    tier.publish(1, &compiled, n);
    let gen_before = tier.generation();
    let mut h = tier.handle();
    let before = h.try_range_sum(1, 0, 100).unwrap();

    let unwound = catch_unwind(AssertUnwindSafe(|| {
        tier.try_publish::<ServeError>(1, n, || panic!("rebuild pipeline blew up"))
    }));
    assert!(unwound.is_err(), "the panic propagates to the publisher");

    // Readers never saw a torn or advanced generation…
    assert_eq!(tier.generation(), gen_before);
    assert_eq!(h.snapshot().generation(), gen_before);
    assert_eq!(
        h.try_range_sum(1, 0, 100).unwrap().to_bits(),
        before.to_bits()
    );

    // …and the tier is not wedged: the next (successful) publish lands.
    let gen_after = tier.publish(1, &compiled, n);
    assert_eq!(gen_after, gen_before + 1);
    assert_eq!(h.snapshot().generation(), gen_after);
}

/// PR 8 tentpole (serve side): failed rebuilds leave the last good
/// epoch serving and are reported as degraded / quarantined health
/// without ever gating reads.
#[test]
fn failed_rebuilds_degrade_without_dropping_reads() {
    use wavelet_hist::serve::{DatasetHealth, QUARANTINE_AFTER};

    let ds = zipf_dataset();
    let cluster = ClusterConfig::paper_cluster();
    let compiled = CompiledHistogram::compile(&SendV::new().build(&ds, &cluster, K).histogram);
    let n = ds.num_records();
    let queries = range_queries(ds.domain().u(), 64, 0xdead);

    let tier = ServeTier::new(3);
    tier.publish(7, &compiled, n);
    let mut h = tier.handle();
    let mut want = vec![0.0; queries.len()];
    h.try_selectivity_batch_into(7, &queries, &mut want)
        .unwrap();

    // Drive the dataset into quarantine; every read in between answers
    // bit-identically from the last good snapshot.
    for i in 1..=QUARANTINE_AFTER {
        let err = tier
            .try_publish(7, n, || {
                Err::<CompiledHistogram, _>("upstream build failed")
            })
            .unwrap_err();
        assert_eq!(err, "upstream build failed");
        let mut got = vec![0.0; queries.len()];
        h.try_selectivity_batch_into(7, &queries, &mut got).unwrap();
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let health = tier.dataset_health(7);
        if i < QUARANTINE_AFTER {
            assert_eq!(health, DatasetHealth::Degraded(i));
        } else {
            assert_eq!(health, DatasetHealth::Quarantined(i));
        }
    }
    assert_eq!(
        tier.degraded_datasets(),
        vec![(7, DatasetHealth::Quarantined(QUARANTINE_AFTER))]
    );
    // A healthy dataset alongside is unaffected by its neighbor's state.
    tier.publish(8, &compiled, n);
    assert_eq!(tier.dataset_health(8), DatasetHealth::Healthy);

    // One landed rebuild heals the quarantine.
    let gen = tier
        .try_publish(7, n, || Ok::<_, ServeError>(compiled.clone()))
        .unwrap();
    assert_eq!(gen, tier.generation());
    assert_eq!(tier.dataset_health(7), DatasetHealth::Healthy);
    assert!(tier.degraded_datasets().is_empty());
}
