//! Integration of the file-backed split readers (Appendix B) with the
//! sampling machinery: materialise a dataset to disk, sample it through
//! the RandomRecordReader, and check the statistics line up with the
//! in-memory path.

use std::path::PathBuf;

use wavelet_hist::data::file::{
    write_fixed, write_variable, FixedSplitReader, VariableSplitReader,
};
use wavelet_hist::data::Dataset;
use wavelet_hist::sampling::SamplingConfig;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wh-file-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Materialises one split of a lazy dataset to a fixed-record file.
fn materialise_split(ds: &Dataset, j: u32, name: &str, record_bytes: u32) -> PathBuf {
    let path = tmp(name);
    let keys: Vec<u64> = ds.scan_split(j).map(|r| r.key).collect();
    write_fixed(&path, &keys, record_bytes).expect("write split");
    path
}

#[test]
fn file_scan_matches_lazy_scan() {
    let ds = Dataset::zipf(10, 1.1, 20_000, 4);
    let path = materialise_split(&ds, 2, "scan.bin", 16);
    let mut reader = FixedSplitReader::open(&path, 16).expect("open");
    let from_file = reader.scan().expect("scan");
    let from_memory: Vec<u64> = ds.scan_split(2).map(|r| r.key).collect();
    assert_eq!(from_file, from_memory);
}

#[test]
fn file_sampler_draws_the_configured_fraction() {
    let ds = Dataset::zipf(10, 1.1, 40_000, 4);
    let path = materialise_split(&ds, 0, "fraction.bin", 16);
    let mut reader = FixedSplitReader::open(&path, 16).expect("open");
    let cfg = SamplingConfig::new(0.02, ds.num_splits(), ds.num_records());
    let t_j = cfg.split_sample_size(reader.num_records());
    let sample = reader.sample(t_j, 9).expect("sample");
    assert_eq!(sample.keys.len() as u64, t_j);
    // IO accounting: only the sampled records were read.
    assert_eq!(sample.bytes_read, t_j * 16);
    assert!(sample.bytes_read < reader.num_records() * 16 / 10);
}

#[test]
fn file_sample_key_distribution_tracks_source() {
    // The sampled keys' empirical head mass should be close to the file's.
    let ds = Dataset::zipf(8, 1.4, 50_000, 2);
    let path = materialise_split(&ds, 0, "dist.bin", 16);
    let mut reader = FixedSplitReader::open(&path, 16).expect("open");
    let all = reader.scan().expect("scan");
    let head_mass = all.iter().filter(|&&k| k < 8).count() as f64 / all.len() as f64;
    let sample = reader.sample(4_000, 3).expect("sample");
    let sample_head =
        sample.keys.iter().filter(|&&k| k < 8).count() as f64 / sample.keys.len() as f64;
    assert!(
        (head_mass - sample_head).abs() < 0.05,
        "head mass {head_mass:.3} vs sampled {sample_head:.3}"
    );
}

#[test]
fn variable_length_reader_handles_paper_remarks_layout() {
    // Variable-length records with skew-dependent payloads, as the
    // Appendix B remarks describe.
    let keys: Vec<u64> = (0..3_000u64).map(|i| i % 300).collect();
    let path = tmp("variable.bin");
    write_variable(&path, &keys, |k| 10 + (k % 90) as u32).expect("write");
    let mut reader = VariableSplitReader::open(&path).expect("open");
    assert_eq!(reader.scan().expect("scan"), keys);
    let sample = reader.sample(200, 17).expect("sample");
    assert_eq!(sample.keys.len(), 200);
    for k in &sample.keys {
        assert!(*k < 300);
    }
    // Byte-offset sampling is length-biased per draw, but the reader
    // never returns the same record twice.
    let positions: std::collections::BTreeSet<u64> = sample.keys.iter().copied().collect();
    assert!(
        positions.len() > 50,
        "sample should cover many distinct keys"
    );
}
