//! Sparse Haar transform: `O(N · log u)` over the non-zero entries.
//!
//! A frequency vector with `N = |v_j|` distinct keys has at most
//! `N·(log u + 1)` non-zero wavelet coefficients (each key only touches the
//! root-to-leaf path above it). The paper's mappers exploit this
//! (Appendix A): they run this algorithm instead of the dense `O(u)` pass,
//! because a 256 MB split typically has `|v_j| ≪ u`.
//!
//! [`coefficient_updates`] is the single-key primitive; it is also reused by
//! the sketching crate, which must translate every key update into the same
//! `log u + 1` coefficient-space updates.

use crate::hash::FxHashMap;
use crate::Domain;

/// Sparse coefficient vector: slot (0-based) → coefficient value.
pub type SparseCoefs = FxHashMap<u64, f64>;

/// Calls `emit(slot, delta)` for every wavelet coefficient affected by
/// adding `weight` occurrences of the (0-based) key `x`.
///
/// Exactly `log u + 1` updates are emitted: the overall average (slot 0)
/// plus one detail per level. For the detail at level `j` (block size
/// `B = u/2^j`) the contribution is `±weight/√B`: negative when `x` falls in
/// the left half of the block, positive in the right half — the sign
/// convention of the paper's basis vectors (Fig. 2).
///
/// # Panics
///
/// Debug-panics when `x` is outside the domain.
#[inline]
pub fn coefficient_updates(domain: Domain, x: u64, weight: f64, mut emit: impl FnMut(u64, f64)) {
    debug_assert!(domain.contains(x), "key {x} outside {domain}");
    let log_u = domain.log_u();
    // Overall average: ψ₁ = 1/√u everywhere.
    emit(0, weight / domain.u_f64().sqrt());
    for j in 0..log_u {
        let block_log = log_u - j; // log₂ of the block size at level j
        let k = x >> block_log;
        let slot = (1u64 << j) + k;
        // Position within the block decides the sign.
        let in_right_half = (x >> (block_log - 1)) & 1 == 1;
        let scale = 1.0 / ((1u64 << block_log) as f64).sqrt();
        let delta = if in_right_half {
            weight * scale
        } else {
            -(weight * scale)
        };
        emit(slot, delta);
    }
}

/// Computes all non-zero coefficients of the sparse frequency vector given
/// by `(key, count)` pairs. Keys may repeat; counts accumulate.
///
/// Time `O(N·log u)`, memory `O(N·log u)` for the output map.
pub fn sparse_transform<I>(domain: Domain, entries: I) -> SparseCoefs
where
    I: IntoIterator<Item = (u64, f64)>,
{
    let mut coefs = SparseCoefs::default();
    for (x, c) in entries {
        coefficient_updates(domain, x, c, |slot, delta| {
            *coefs.entry(slot).or_insert(0.0) += delta;
        });
    }
    // Cancellation can leave exact or near-exact zeros; keep them — callers
    // that care about wire size filter on magnitude themselves. We only drop
    // *exact* zeros, which cost space and carry no information.
    coefs.retain(|_, v| *v != 0.0);
    coefs
}

/// Densifies a sparse coefficient map into a full vector of length `u`.
///
/// Intended for tests, SSE evaluation and small-u reconstruction; for large
/// `u` prefer [`crate::tree::ErrorTree`].
pub fn densify(domain: Domain, coefs: &SparseCoefs) -> Vec<f64> {
    let mut w = vec![0.0; domain.u() as usize];
    for (&slot, &val) in coefs {
        w[slot as usize] = val;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::forward;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    fn dense_from_pairs(u: usize, pairs: &[(u64, f64)]) -> Vec<f64> {
        let mut v = vec![0.0; u];
        for &(x, c) in pairs {
            v[x as usize] += c;
        }
        v
    }

    #[test]
    fn matches_dense_transform() {
        let domain = Domain::new(6).unwrap();
        let pairs = [
            (0u64, 3.0),
            (5, 1.0),
            (5, 2.0),
            (31, 7.0),
            (32, 4.0),
            (63, 1.0),
        ];
        let sparse = sparse_transform(domain, pairs.iter().copied());
        let dense = forward(&dense_from_pairs(64, &pairs));
        for (slot, val) in dense.iter().enumerate() {
            let got = sparse.get(&(slot as u64)).copied().unwrap_or(0.0);
            assert!(close(*val, got), "slot {slot}: dense {val} sparse {got}");
        }
    }

    #[test]
    fn update_count_is_log_u_plus_one() {
        let domain = Domain::new(12).unwrap();
        let mut n = 0;
        coefficient_updates(domain, 999, 1.0, |_, _| n += 1);
        assert_eq!(n, 13);
    }

    #[test]
    fn single_key_path_slots() {
        // Key 5 in u=8 (binary 101): level-0 block k=0 (right half since bit2=1),
        // level-1 block k=1 (left half: bit1=0), level-2 block k=2 (right: bit0=1).
        let domain = Domain::new(3).unwrap();
        let mut got = Vec::new();
        coefficient_updates(domain, 5, 1.0, |s, d| got.push((s, d)));
        let slots: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(slots, vec![0, 1, 3, 6]);
        assert!(got[1].1 > 0.0); // right half at level 0
        assert!(got[2].1 < 0.0); // left half at level 1
        assert!(got[3].1 > 0.0); // right half at level 2
    }

    #[test]
    fn cancellation_prunes_exact_zeros() {
        // Two equal keys in sibling positions cancel their shared leaf detail.
        let domain = Domain::new(4).unwrap();
        let coefs = sparse_transform(domain, [(2u64, 1.0), (3u64, 1.0)]);
        // Leaf detail for the pair (2,3): slot 8 + 1 = 9 must be gone.
        assert!(!coefs.contains_key(&9));
        assert!(coefs.contains_key(&0));
    }

    #[test]
    fn densify_roundtrip() {
        let domain = Domain::new(5).unwrap();
        let pairs = [(1u64, 2.0), (17, 5.0)];
        let coefs = sparse_transform(domain, pairs.iter().copied());
        let dense = densify(domain, &coefs);
        let expect = forward(&dense_from_pairs(32, &pairs));
        for i in 0..32 {
            assert!(close(dense[i], expect[i]));
        }
    }

    #[test]
    fn linearity_of_sparse_transform() {
        let domain = Domain::new(8).unwrap();
        let a = [(3u64, 1.0), (100, 2.0)];
        let b = [(3u64, 4.0), (200, 1.0)];
        let wa = sparse_transform(domain, a.iter().copied());
        let wb = sparse_transform(domain, b.iter().copied());
        let wab = sparse_transform(domain, a.iter().chain(b.iter()).copied());
        for (slot, v) in &wab {
            let s = wa.get(slot).copied().unwrap_or(0.0) + wb.get(slot).copied().unwrap_or(0.0);
            assert!(close(*v, s));
        }
    }
}
