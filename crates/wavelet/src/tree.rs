//! Error-tree queries over a retained (top-k) coefficient set.
//!
//! A k-term wavelet representation answers point and range queries without
//! reconstructing the full vector: a point estimate only needs the `log u + 1`
//! coefficients on the key's root-to-leaf path, and a range sum only needs
//! the retained coefficients whose support overlaps the range. This is the
//! query side of the histogram — what a query optimiser would call per
//! selectivity estimate.

use crate::hash::FxHashMap;
use crate::{slot_level, Domain};

/// A queryable k-term wavelet representation.
///
/// Stores retained coefficients in a hash map for `O(1)` path lookups.
#[derive(Debug, Clone)]
pub struct ErrorTree {
    domain: Domain,
    coefs: FxHashMap<u64, f64>,
}

impl ErrorTree {
    /// Builds a tree from `(slot, value)` coefficient pairs.
    ///
    /// Later duplicates of a slot overwrite earlier ones.
    pub fn new(domain: Domain, coefs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut map = FxHashMap::default();
        for (slot, v) in coefs {
            debug_assert!(slot < domain.u(), "slot {slot} outside {domain}");
            map.insert(slot, v);
        }
        Self { domain, coefs: map }
    }

    /// The domain this tree describes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of retained coefficients.
    pub fn len(&self) -> usize {
        self.coefs.len()
    }

    /// Whether no coefficients are retained (the all-zero signal).
    pub fn is_empty(&self) -> bool {
        self.coefs.is_empty()
    }

    /// Retained coefficient for `slot`, if any.
    pub fn coefficient(&self, slot: u64) -> Option<f64> {
        self.coefs.get(&slot).copied()
    }

    /// Iterates over retained `(slot, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.coefs.iter().map(|(&s, &v)| (s, v))
    }

    /// Estimated frequency of the (0-based) key `x` in `O(log u)`.
    pub fn point_estimate(&self, x: u64) -> f64 {
        assert!(self.domain.contains(x), "key {x} outside {}", self.domain);
        let log_u = self.domain.log_u();
        let mut est = self
            .coefs
            .get(&0)
            .map_or(0.0, |w| w / self.domain.u_f64().sqrt());
        for j in 0..log_u {
            let block_log = log_u - j;
            let slot = (1u64 << j) + (x >> block_log);
            if let Some(&w) = self.coefs.get(&slot) {
                let scale = 1.0 / ((1u64 << block_log) as f64).sqrt();
                let sign = if (x >> (block_log - 1)) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                };
                est += w * sign * scale;
            }
        }
        est
    }

    /// Estimated sum of frequencies over the inclusive (0-based) key range
    /// `[lo, hi]`, in `O(k)` where `k` is the number of retained
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or `hi` is outside the domain.
    pub fn range_sum(&self, lo: u64, hi: u64) -> f64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        assert!(self.domain.contains(hi), "key {hi} outside {}", self.domain);
        let log_u = self.domain.log_u();
        let mut sum = 0.0;
        for (&slot, &w) in &self.coefs {
            if slot == 0 {
                sum += w * ((hi - lo + 1) as f64) / self.domain.u_f64().sqrt();
                continue;
            }
            let (j, k) = slot_level(slot).expect("non-root slot");
            let block_log = log_u - j;
            let block_lo = k << block_log;
            let half = 1u64 << (block_log - 1);
            let mid = block_lo + half; // first key of the right half
            let block_hi = block_lo + (1u64 << block_log) - 1;
            // Overlap of [lo,hi] with left half [block_lo, mid-1] and right
            // half [mid, block_hi].
            let left = overlap(lo, hi, block_lo, mid - 1);
            let right = overlap(lo, hi, mid, block_hi);
            if left == 0 && right == 0 {
                continue;
            }
            let scale = 1.0 / ((1u64 << block_log) as f64).sqrt();
            sum += w * scale * (right as f64 - left as f64);
        }
        sum
    }

    /// Estimated cumulative frequency of keys `0..=x` in `O(log u)`.
    ///
    /// Unlike [`Self::range_sum`], which scans all `k` retained
    /// coefficients, this walks only the root-to-leaf path of `x`: a
    /// detail coefficient whose dyadic block lies entirely inside or
    /// entirely outside `[0, x]` contributes nothing to the cumulative sum
    /// (its block sums to zero), so only the `log u` blocks *straddling*
    /// `x` — exactly the path nodes — matter. This is the primitive the
    /// query-serving compiler (`wh-query`) checks itself against.
    ///
    /// # Panics
    ///
    /// Panics when `x` is outside the domain.
    pub fn prefix_sum(&self, x: u64) -> f64 {
        assert!(self.domain.contains(x), "key {x} outside {}", self.domain);
        let log_u = self.domain.log_u();
        let mut sum = self
            .coefs
            .get(&0)
            .map_or(0.0, |w| w * ((x + 1) as f64) / self.domain.u_f64().sqrt());
        for j in 0..log_u {
            let block_log = log_u - j;
            let slot = (1u64 << j) + (x >> block_log);
            if let Some(&w) = self.coefs.get(&slot) {
                let scale = 1.0 / ((1u64 << block_log) as f64).sqrt();
                let block_lo = (x >> block_log) << block_log;
                let half = 1u64 << (block_log - 1);
                let mid = block_lo + half;
                // Keys ≤ x in the left half contribute −scale·w each, keys
                // ≤ x in the right half +scale·w each.
                let contrib = if x < mid {
                    -((x - block_lo + 1) as f64)
                } else {
                    (x - mid + 1) as f64 - half as f64
                };
                sum += w * scale * contrib;
            }
        }
        sum
    }

    /// The piecewise-constant reconstruction as `(start, value)` segments.
    ///
    /// A `k`-term wavelet representation reconstructs to a step function:
    /// each retained detail coefficient changes the estimate only at its
    /// dyadic block's start, midpoint, and end. This method prunes the
    /// error tree down to those breakpoints and returns the segments in
    /// ascending key order — segment `i` covers keys
    /// `[start_i, start_{i+1})` (the last runs to `u`) with the constant
    /// estimated frequency `value_i`. At most `3k + 1` segments are
    /// returned (adjacent segments with bit-equal values are merged), and
    /// the first always starts at key 0.
    ///
    /// This is the bridge to the query-serving layer: `wh-query` lays the
    /// segments out with per-segment prefix sums to answer selectivity
    /// queries in `O(log k)` with no hashing.
    pub fn segments(&self) -> Vec<(u64, f64)> {
        let u = self.domain.u();
        let log_u = self.domain.log_u();
        let mut cuts: Vec<u64> = Vec::with_capacity(3 * self.coefs.len() + 1);
        cuts.push(0);
        for &slot in self.coefs.keys() {
            if slot == 0 {
                continue;
            }
            let (j, k) = slot_level(slot).expect("non-root slot");
            let block_log = log_u - j;
            let block_lo = k << block_log;
            let mid = block_lo + (1u64 << (block_log - 1));
            let end = block_lo + (1u64 << block_log);
            cuts.push(block_lo);
            cuts.push(mid);
            if end < u {
                cuts.push(end);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut segs: Vec<(u64, f64)> = Vec::with_capacity(cuts.len());
        for &c in &cuts {
            let v = self.point_estimate(c);
            // The reconstruction is constant between consecutive cuts, so
            // bit-equal adjacent values mean one wider segment. (Bitwise,
            // not `==`: merging +0.0 into −0.0 would change which bit
            // pattern a key's estimate reports.)
            if segs
                .last()
                .is_some_and(|&(_, last)| last.to_bits() == v.to_bits())
            {
                continue;
            }
            segs.push((c, v));
        }
        segs
    }

    /// Reconstructs the full estimated frequency vector.
    ///
    /// Materialises `u` values; intended for small domains (tests, SSE).
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.domain.u() as usize];
        for (&slot, &v) in &self.coefs {
            w[slot as usize] = v;
        }
        crate::haar::inverse_in_place(&mut w);
        w
    }
}

/// Length of the intersection of inclusive ranges `[a_lo, a_hi]` and
/// `[b_lo, b_hi]`.
#[inline]
fn overlap(a_lo: u64, a_hi: u64, b_lo: u64, b_hi: u64) -> u64 {
    let lo = a_lo.max(b_lo);
    let hi = a_hi.min(b_hi);
    if lo > hi {
        0
    } else {
        hi - lo + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::forward;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    fn full_tree(v: &[f64]) -> (ErrorTree, Vec<f64>) {
        let domain = Domain::covering(v.len() as u64).unwrap();
        assert_eq!(domain.u() as usize, v.len());
        let w = forward(v);
        let tree = ErrorTree::new(domain, w.iter().enumerate().map(|(s, &c)| (s as u64, c)));
        (tree, v.to_vec())
    }

    #[test]
    fn point_estimates_exact_with_all_coefficients() {
        let v: Vec<f64> = (0..64).map(|i| ((i * 13) % 29) as f64).collect();
        let (tree, orig) = full_tree(&v);
        for (x, expect) in orig.iter().enumerate() {
            assert!(close(tree.point_estimate(x as u64), *expect));
        }
    }

    #[test]
    fn range_sums_exact_with_all_coefficients() {
        let v: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64).collect();
        let (tree, orig) = full_tree(&v);
        for lo in 0..32u64 {
            for hi in lo..32 {
                let expect: f64 = orig[lo as usize..=hi as usize].iter().sum();
                let got = tree.range_sum(lo, hi);
                assert!(close(got, expect), "[{lo},{hi}]: {got} vs {expect}");
            }
        }
    }

    #[test]
    fn reconstruct_matches_inverse() {
        let v: Vec<f64> = (0..16).map(|i| (i as f64).sin() * 10.0).collect();
        let (tree, orig) = full_tree(&v);
        let back = tree.reconstruct();
        for (a, b) in back.iter().zip(&orig) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn truncated_tree_is_consistent_with_truncated_reconstruction() {
        let v: Vec<f64> = (0..64).map(|i| if i == 10 { 100.0 } else { 1.0 }).collect();
        let domain = Domain::new(6).unwrap();
        let w = forward(&v);
        let top =
            crate::select::top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), 5);
        let tree = ErrorTree::new(domain, top.iter().map(|e| (e.slot, e.value)));
        let recon = tree.reconstruct();
        for x in 0..64u64 {
            assert!(close(tree.point_estimate(x), recon[x as usize]));
        }
        let total: f64 = recon.iter().sum();
        assert!(close(tree.range_sum(0, 63), total));
    }

    #[test]
    fn prefix_sum_matches_range_sum_full_and_truncated() {
        let v: Vec<f64> = (0..64).map(|i| ((i * 13) % 29) as f64).collect();
        let (full, _) = full_tree(&v);
        let domain = Domain::new(6).unwrap();
        let w = forward(&v);
        let top =
            crate::select::top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), 7);
        let truncated = ErrorTree::new(domain, top.iter().map(|e| (e.slot, e.value)));
        for tree in [&full, &truncated] {
            for x in 0..64u64 {
                let got = tree.prefix_sum(x);
                let want = tree.range_sum(0, x);
                assert!(close(got, want), "x={x}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn segments_cover_the_reconstruction() {
        let v: Vec<f64> = (0..64)
            .map(|i| if i % 9 == 0 { 50.0 } else { 2.0 })
            .collect();
        let domain = Domain::new(6).unwrap();
        let w = forward(&v);
        for k in [0usize, 1, 5, 64] {
            let top = crate::select::top_k_magnitude(
                w.iter().enumerate().map(|(s, &c)| (s as u64, c)),
                k,
            );
            let tree = ErrorTree::new(domain, top.iter().map(|e| (e.slot, e.value)));
            let segs = tree.segments();
            assert!(!segs.is_empty());
            assert_eq!(segs[0].0, 0, "first segment starts at key 0");
            assert!(
                segs.len() <= 3 * tree.len() + 1,
                "k={k}: {} segs",
                segs.len()
            );
            for pair in segs.windows(2) {
                assert!(pair[0].0 < pair[1].0, "starts strictly increasing");
                assert_ne!(
                    pair[0].1.to_bits(),
                    pair[1].1.to_bits(),
                    "adjacent bit-equal values merged"
                );
            }
            // Every key's segment value equals the reconstruction.
            let recon = tree.reconstruct();
            for x in 0..64u64 {
                let i = segs.partition_point(|&(s, _)| s <= x) - 1;
                assert!(
                    close(segs[i].1, recon[x as usize]),
                    "k={k} x={x}: {} vs {}",
                    segs[i].1,
                    recon[x as usize]
                );
            }
        }
    }

    #[test]
    fn empty_tree_segments_and_prefix() {
        let domain = Domain::new(5).unwrap();
        let tree = ErrorTree::new(domain, std::iter::empty());
        assert_eq!(tree.segments(), vec![(0, 0.0)]);
        assert_eq!(tree.prefix_sum(31), 0.0);
    }

    #[test]
    fn empty_tree_is_zero() {
        let domain = Domain::new(4).unwrap();
        let tree = ErrorTree::new(domain, std::iter::empty());
        assert!(tree.is_empty());
        assert_eq!(tree.point_estimate(7), 0.0);
        assert_eq!(tree.range_sum(0, 15), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn point_out_of_domain_panics() {
        let domain = Domain::new(3).unwrap();
        ErrorTree::new(domain, std::iter::empty()).point_estimate(8);
    }

    #[test]
    fn overlap_edges() {
        assert_eq!(overlap(0, 10, 5, 20), 6);
        assert_eq!(overlap(5, 20, 0, 10), 6);
        assert_eq!(overlap(0, 4, 5, 9), 0);
        assert_eq!(overlap(3, 3, 3, 3), 1);
    }
}
