//! A small Fx-style integer hasher, implemented in-repo so the workspace
//! does not need an external hashing dependency.
//!
//! Wavelet-histogram workloads hash billions of small integer keys
//! (dataset keys, coefficient slots); `SipHash` — the `std` default — is a
//! measurable bottleneck there, and its HashDoS protection buys nothing for
//! trusted, self-generated data. The multiply-rotate scheme below is the
//! same idea `rustc` uses internally.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// Hash set keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small integer-like keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let hash = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        // Not a collision test of strength, just sanity that nearby keys map
        // to different buckets.
        let hashes: FxHashSet<u64> = (0..10_000).map(hash).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_padding_behaviour() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        b.write(&[9]);
        // Same logical content hashed in chunks may differ; just ensure both
        // produce stable non-zero output.
        assert_ne!(a.finish(), 0);
        assert_ne!(b.finish(), 0);
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for x in 0..1000 {
            *m.entry(x % 37).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 37);
        assert_eq!(m.values().sum::<u64>(), 1000);
    }
}
