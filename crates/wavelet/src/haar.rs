//! Dense orthonormal Haar transform in `O(u)` time.
//!
//! The basis matches §2.1 of the paper (see [`crate`] docs for indexing):
//! the transform is orthonormal, so energy is preserved —
//! `Σ v(x)² = Σ w_i²` — which is what makes coefficient-space SSE
//! computations ([`crate::sse`]) exact.

use std::f64::consts::FRAC_1_SQRT_2;

/// Forward orthonormal Haar transform.
///
/// `v.len()` must be a power of two (and non-zero).
///
/// # Panics
///
/// Panics if `v.len()` is not a non-zero power of two.
pub fn forward(v: &[f64]) -> Vec<f64> {
    let mut w = v.to_vec();
    forward_in_place(&mut w);
    w
}

/// In-place forward transform. See [`forward`].
///
/// Uses a scratch-free two-buffer sweep over the averages: after the pass at
/// length `len`, positions `len/2..len` of the output hold the detail
/// coefficients for that level and positions `0..len/2` hold the running
/// averages, so the output naturally lands in the slot layout described in
/// the crate docs.
pub fn forward_in_place(v: &mut [f64]) {
    let u = v.len();
    assert!(
        u.is_power_of_two(),
        "Haar transform requires a power-of-two length, got {u}"
    );
    let mut scratch = vec![0.0f64; u];
    let mut len = u;
    while len > 1 {
        let half = len / 2;
        for t in 0..half {
            let a = v[2 * t];
            let b = v[2 * t + 1];
            scratch[t] = (a + b) * FRAC_1_SQRT_2;
            scratch[half + t] = (b - a) * FRAC_1_SQRT_2;
        }
        v[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
}

/// Inverse orthonormal Haar transform.
///
/// # Panics
///
/// Panics if `w.len()` is not a non-zero power of two.
pub fn inverse(w: &[f64]) -> Vec<f64> {
    let mut v = w.to_vec();
    inverse_in_place(&mut v);
    v
}

/// In-place inverse transform. See [`inverse`].
pub fn inverse_in_place(w: &mut [f64]) {
    let u = w.len();
    assert!(
        u.is_power_of_two(),
        "Haar inverse requires a power-of-two length, got {u}"
    );
    let mut scratch = vec![0.0f64; u];
    let mut len = 1;
    while len < u {
        scratch[..2 * len].copy_from_slice(&w[..2 * len]);
        for t in 0..len {
            let s = scratch[t];
            let d = scratch[len + t];
            w[2 * t] = (s - d) * FRAC_1_SQRT_2;
            w[2 * t + 1] = (s + d) * FRAC_1_SQRT_2;
        }
        len *= 2;
    }
}

/// The squared L2 norm (energy) of a vector.
pub fn energy(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn paper_figure1_example() {
        // Figure 1 of the paper uses the *unnormalised* tree values; the
        // orthonormal coefficients are the tree values times √(u/2^ℓ).
        // Signal: [3, 5, 10, 8, 2, 2, 10, 14], u = 8.
        let v = [3.0, 5.0, 10.0, 8.0, 2.0, 2.0, 10.0, 14.0];
        let w = forward(&v);
        // w1 (slot 0): overall average 6.75 times √(8/1) / … — directly:
        // Σv/√8 = 54/√8.
        assert!(close(w[0], 54.0 / 8f64.sqrt()));
        // w2 (slot 1): total detail 0.25·√8? Using the basis:
        // (Σ right − Σ left)/√8 = (28 − 26)/√8.
        assert!(close(w[1], 2.0 / 8f64.sqrt()));
        // Level 1 (slots 2,3): block size 4, ((10+8)-(3+5))/2 = 5,
        // ((10+14)-(2+2))/2 = 10.
        assert!(close(w[2], (18.0 - 8.0) / 2.0));
        assert!(close(w[3], (24.0 - 4.0) / 2.0));
        // Leaf details (slots 4..8): (b-a)/√2.
        assert!(close(w[4], 2.0 / 2f64.sqrt()));
        assert!(close(w[5], -2.0 / 2f64.sqrt()));
        assert!(close(w[6], 0.0));
        assert!(close(w[7], 4.0 / 2f64.sqrt()));
    }

    #[test]
    fn roundtrip_random() {
        let mut v = Vec::new();
        let mut x = 12345u64;
        for _ in 0..1024 {
            // Simple LCG noise — deterministic, no rand dependency here.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(((x >> 33) as f64) / 1e6);
        }
        let w = forward(&v);
        let back = inverse(&w);
        for (a, b) in v.iter().zip(&back) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    fn energy_preserved() {
        let v: Vec<f64> = (0..256).map(|i| ((i * 37) % 101) as f64).collect();
        let w = forward(&v);
        assert!(close(energy(&v), energy(&w)));
    }

    #[test]
    fn length_one_is_identity_scaled() {
        let w = forward(&[7.0]);
        assert_eq!(w, vec![7.0]);
        assert_eq!(inverse(&w), vec![7.0]);
    }

    #[test]
    fn constant_signal_has_single_coefficient() {
        let v = [5.0; 64];
        let w = forward(&v);
        assert!(close(w[0], 5.0 * 64.0 / 64f64.sqrt()));
        for &d in &w[1..] {
            assert!(close(d, 0.0));
        }
    }

    #[test]
    fn impulse_signal_touches_path_only() {
        // A single spike at position x contributes to exactly log u + 1
        // coefficients: the average plus one detail per level.
        let mut v = [0.0; 32];
        v[13] = 1.0;
        let w = forward(&v);
        let nonzero = w.iter().filter(|c| c.abs() > 1e-12).count();
        assert_eq!(nonzero, 6); // log2(32) + 1
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        forward(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn linearity() {
        let a: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| ((i * i) % 11) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let wa = forward(&a);
        let wb = forward(&b);
        let ws = forward(&sum);
        for i in 0..64 {
            assert!(close(ws[i], wa[i] + wb[i]));
        }
    }

    #[test]
    fn roundtrip_every_dyadic_size() {
        for log_u in 0..=10u32 {
            let u = 1usize << log_u;
            let v: Vec<f64> = (0..u)
                .map(|i| (((i as u64).wrapping_mul(2654435761) % 1009) as f64) - 504.0)
                .collect();
            let back = inverse(&forward(&v));
            assert_eq!(back.len(), u);
            for (a, b) in v.iter().zip(&back) {
                assert!(close(*a, *b), "u={u}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn in_place_matches_allocating() {
        let v: Vec<f64> = (0..256).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut w_inplace = v.clone();
        forward_in_place(&mut w_inplace);
        assert_eq!(forward(&v), w_inplace);
        let mut back_inplace = w_inplace.clone();
        inverse_in_place(&mut back_inplace);
        assert_eq!(inverse(&w_inplace), back_inplace);
    }
}
