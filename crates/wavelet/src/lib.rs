//! # wh-wavelet — Haar wavelet machinery for wavelet histograms
//!
//! This crate implements the wavelet substrate of *Building Wavelet Histograms
//! on Large Data in MapReduce* (Jestes, Yi, Li — VLDB 2011):
//!
//! * the **orthonormal Haar transform** over a frequency vector of length
//!   `u = 2^log_u` ([`haar`]), matching the paper's §2.1 basis where
//!   `w_1 = Σv/√u` and, for `i = 2^j + k + 1`,
//!   `w_i = (Σ right half − Σ left half)/√(u/2^j)`;
//! * the **sparse transform** ([`sparse`]) that computes the non-zero
//!   coefficients of a sparse frequency vector in `O(N·log u)` time and
//!   `O(log u)` working memory per key — the algorithm the paper's mappers
//!   run instead of the dense `O(u)` pass (Appendix A);
//! * the **incrementally maintained transform** ([`incremental`]) that
//!   absorbs streaming count deltas in `O(d·log u)` per delta while staying
//!   bit-identical to the dense from-scratch transform of the accumulated
//!   data — the substrate of the delta-build path;
//! * the **error tree** ([`tree`]) used to answer point and range queries
//!   from a retained coefficient set;
//! * **top-k magnitude selection** ([`select`]) with deterministic
//!   tie-breaking;
//! * **SSE / energy** computations in coefficient space via Parseval
//!   ([`sse`]);
//! * **two-dimensional** standard-decomposition wavelets ([`twod`]).
//!
//! ## Coefficient indexing
//!
//! Coefficients are identified by their *paper index* `i ∈ 1..=u` but stored
//! zero-based: slot `i − 1` of a dense vector, or the `u64` value `i − 1`
//! when sparse. Slot 0 is the overall average coefficient; slot
//! `2^j + k` (0-based) is the detail coefficient at resolution level `j`
//! covering the dyadic block `k` of size `u/2^j`.
//!
//! Keys are likewise zero-based internally: the paper's key `x ∈ [u]`
//! corresponds to vector position `x − 1`.

pub mod haar;
pub mod hash;
pub mod incremental;
pub mod select;
pub mod sparse;
pub mod sse;
pub mod tree;
pub mod twod;

pub use haar::{forward, forward_in_place, inverse, inverse_in_place};
pub use incremental::IncrementalTransform;
pub use select::{top_k_magnitude, CoefEntry};
pub use sparse::{coefficient_updates, sparse_transform, SparseCoefs};
pub use tree::ErrorTree;

/// A validated dyadic key domain `[u]` with `u = 2^log_u`.
///
/// All wavelet operations in this workspace are parameterised by a `Domain`;
/// constructing one up front centralises the power-of-two validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    log_u: u32,
}

impl Domain {
    /// Maximum supported `log₂ u`. `u ≤ 2^40` keeps `u as f64` exact and
    /// comfortably covers the paper's largest domain (`2^32`).
    pub const MAX_LOG_U: u32 = 40;

    /// Creates the domain `[2^log_u]`.
    ///
    /// Returns `None` when `log_u > Self::MAX_LOG_U`.
    pub fn new(log_u: u32) -> Option<Self> {
        (log_u <= Self::MAX_LOG_U).then_some(Self { log_u })
    }

    /// Creates the smallest dyadic domain containing `size` keys.
    pub fn covering(size: u64) -> Option<Self> {
        let log_u = 64 - size.saturating_sub(1).leading_zeros();
        Self::new(log_u.max(1))
    }

    /// `log₂ u`.
    #[inline]
    pub fn log_u(self) -> u32 {
        self.log_u
    }

    /// The domain size `u`.
    #[inline]
    pub fn u(self) -> u64 {
        1u64 << self.log_u
    }

    /// `u` as an exact `f64`.
    #[inline]
    pub fn u_f64(self) -> f64 {
        self.u() as f64
    }

    /// Whether `x` is a valid zero-based key.
    #[inline]
    pub fn contains(self, x: u64) -> bool {
        x < self.u()
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[2^{}]", self.log_u)
    }
}

/// Splits a 0-based coefficient slot into its `(level j, block k)` position.
///
/// Slot 0 (the overall average) is reported as level `None`.
#[inline]
pub fn slot_level(slot: u64) -> Option<(u32, u64)> {
    if slot == 0 {
        None
    } else {
        let j = 63 - slot.leading_zeros();
        Some((j, slot - (1u64 << j)))
    }
}

/// Inverse of [`slot_level`]: the 0-based slot of detail `(j, k)`.
#[inline]
pub fn level_slot(j: u32, k: u64) -> u64 {
    (1u64 << j) + k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_validation() {
        assert!(Domain::new(0).is_some());
        assert!(Domain::new(Domain::MAX_LOG_U).is_some());
        assert!(Domain::new(Domain::MAX_LOG_U + 1).is_none());
        let d = Domain::new(10).unwrap();
        assert_eq!(d.u(), 1024);
        assert_eq!(d.log_u(), 10);
        assert!(d.contains(1023));
        assert!(!d.contains(1024));
    }

    #[test]
    fn domain_covering() {
        assert_eq!(Domain::covering(1).unwrap().u(), 2);
        assert_eq!(Domain::covering(2).unwrap().u(), 2);
        assert_eq!(Domain::covering(3).unwrap().u(), 4);
        assert_eq!(Domain::covering(1024).unwrap().u(), 1024);
        assert_eq!(Domain::covering(1025).unwrap().u(), 2048);
    }

    #[test]
    fn slot_level_roundtrip() {
        assert_eq!(slot_level(0), None);
        assert_eq!(slot_level(1), Some((0, 0)));
        assert_eq!(slot_level(2), Some((1, 0)));
        assert_eq!(slot_level(3), Some((1, 1)));
        assert_eq!(slot_level(4), Some((2, 0)));
        assert_eq!(slot_level(7), Some((2, 3)));
        for slot in 1..1000u64 {
            let (j, k) = slot_level(slot).unwrap();
            assert_eq!(level_slot(j, k), slot);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Domain::new(20).unwrap().to_string(), "[2^20]");
    }
}
