//! SSE (sum of squared errors) and energy computations in coefficient space.
//!
//! Because the Haar transform here is orthonormal, the reconstruction error
//! of any coefficient approximation equals the coefficient-space error
//! (Parseval): if the true coefficients are `w` and the histogram retains
//! `ŵ_i` for slots in `S` (implicitly 0 elsewhere), then
//!
//! ```text
//! SSE = Σ_x (v(x) − v̂(x))²  =  Σ_{i∈S} (w_i − ŵ_i)²  +  Σ_{i∉S} w_i²
//! ```
//!
//! This is how the experiments of §5 (Figs. 6, 7, 15, 18) evaluate quality
//! without materialising huge reconstructions.

use crate::select::CoefEntry;

/// SSE of a retained coefficient set against the exact dense coefficients.
///
/// `exact` is the full coefficient vector (length `u`); `retained` holds the
/// histogram's `(slot, value)` pairs (slots must be unique — the usual
/// output of [`crate::select::top_k_magnitude`]).
pub fn sse_against_exact(exact: &[f64], retained: &[CoefEntry]) -> f64 {
    let total: f64 = exact.iter().map(|w| w * w).sum();
    let mut sse = total;
    for e in retained {
        let w = exact[usize::try_from(e.slot).expect("slot fits usize")];
        // Replace the `w²` term (coefficient treated as dropped) with the
        // actual error `(w − ŵ)²`.
        sse += (w - e.value) * (w - e.value) - w * w;
    }
    // Guard against tiny negative residue from floating-point cancellation.
    sse.max(0.0)
}

/// The ideal SSE of any k-term representation: the energy outside the k
/// largest-magnitude exact coefficients.
pub fn ideal_sse(exact: &[f64], k: usize) -> f64 {
    if k >= exact.len() {
        return 0.0;
    }
    let mut sq: Vec<f64> = exact.iter().map(|w| w * w).collect();
    // k largest squared values to the front.
    let pivot = k.saturating_sub(1).min(sq.len() - 1);
    sq.select_nth_unstable_by(pivot, |a, b| b.partial_cmp(a).expect("no NaN energy"));
    if k == 0 {
        return sq.iter().sum();
    }
    sq[k..].iter().sum()
}

/// Energy `‖v‖²` of a dense vector.
pub fn energy(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// Relative SSE: `SSE / ‖v‖²`, the paper's "percent of the dataset's
/// energy" framing (§5: "the SSE is less than 1% of the original dataset's
/// energy").
pub fn relative_sse(sse: f64, total_energy: f64) -> f64 {
    if total_energy == 0.0 {
        0.0
    } else {
        sse / total_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::forward;
    use crate::select::top_k_magnitude;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-7 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn parseval_matches_direct_reconstruction_error() {
        let v: Vec<f64> = (0..64).map(|i| ((i * 31) % 23) as f64).collect();
        let w = forward(&v);
        let retained = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), 8);

        // Direct computation: reconstruct and subtract.
        let mut wk = vec![0.0; 64];
        for e in &retained {
            wk[e.slot as usize] = e.value;
        }
        let recon = crate::haar::inverse(&wk);
        let direct: f64 = v.iter().zip(&recon).map(|(a, b)| (a - b) * (a - b)).sum();

        let via_coefs = sse_against_exact(&w, &retained);
        assert!(close(direct, via_coefs), "{direct} vs {via_coefs}");
    }

    #[test]
    fn exact_retention_of_topk_equals_ideal() {
        let v: Vec<f64> = (0..128).map(|i| (i as f64 * 0.7).cos() * 50.0).collect();
        let w = forward(&v);
        for k in [0, 1, 5, 16, 128] {
            let retained = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
            let sse = sse_against_exact(&w, &retained);
            let ideal = ideal_sse(&w, k);
            assert!(close(sse, ideal), "k={k}: {sse} vs {ideal}");
        }
    }

    #[test]
    fn ideal_sse_monotone_in_k() {
        let v: Vec<f64> = (0..256).map(|i| ((i * i) % 97) as f64).collect();
        let w = forward(&v);
        let mut prev = f64::INFINITY;
        for k in [1, 2, 4, 8, 16, 32, 64, 128, 256] {
            let s = ideal_sse(&w, k);
            assert!(s <= prev + 1e-9, "k={k}");
            prev = s;
        }
        assert!(close(ideal_sse(&w, 256), 0.0));
    }

    #[test]
    fn noisy_retained_values_increase_sse() {
        let v: Vec<f64> = (0..32).map(|i| (i % 5) as f64).collect();
        let w = forward(&v);
        let retained = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), 4);
        let noisy: Vec<CoefEntry> = retained
            .iter()
            .map(|e| CoefEntry {
                slot: e.slot,
                value: e.value + 0.5,
            })
            .collect();
        assert!(sse_against_exact(&w, &noisy) > sse_against_exact(&w, &retained));
    }

    #[test]
    fn ideal_sse_k_zero_is_total_energy() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let w = forward(&v);
        assert!(close(ideal_sse(&w, 0), energy(&v)));
    }

    #[test]
    fn relative_sse_handles_zero_energy() {
        assert_eq!(relative_sse(0.0, 0.0), 0.0);
        assert!(close(relative_sse(1.0, 4.0), 0.25));
    }
}
