//! Two-dimensional wavelets via the standard decomposition (§2.1, §3, §4
//! "Multi-dimensional wavelets").
//!
//! A 2-D frequency array `v(x, y)` over `[u]²` is transformed by applying
//! the 1-D Haar transform to every row and then to every column of the
//! result. Both passes are linear, so — exactly as the paper argues — a 2-D
//! coefficient of the whole dataset is still the sum of the corresponding
//! 2-D coefficients of the splits, and every 1-D distributed algorithm
//! (H-WTopk, the samplers) carries over unchanged.
//!
//! 2-D coefficients are addressed by the pair of 1-D slots `(row_slot,
//! col_slot)` packed into a single `u64` (see [`pack_slot`]), so the rest of
//! the pipeline (top-k selection, TPUT, sketches) is reused verbatim.

use crate::hash::FxHashMap;
use crate::{haar, Domain};

/// Packs a 2-D coefficient address into one `u64`.
///
/// # Panics
///
/// Debug-panics when either slot needs more than 32 bits (domains beyond
/// `2^32` per dimension are not supported in 2-D).
#[inline]
pub fn pack_slot(row_slot: u64, col_slot: u64) -> u64 {
    debug_assert!(row_slot < (1 << 32) && col_slot < (1 << 32));
    (row_slot << 32) | col_slot
}

/// Inverse of [`pack_slot`].
#[inline]
pub fn unpack_slot(packed: u64) -> (u64, u64) {
    (packed >> 32, packed & 0xffff_ffff)
}

/// Dense 2-D standard-decomposition transform of a row-major `u×u` array.
///
/// # Panics
///
/// Panics if `v.len() != u²` for the domain's `u`, or if `u` exceeds
/// `2^16` (dense 2-D work is meant for evaluation-sized grids).
pub fn forward2d(domain: Domain, v: &[f64]) -> Vec<f64> {
    let u = domain.u() as usize;
    assert!(
        u <= 1 << 16,
        "dense 2-D transform limited to u ≤ 2^16 per dimension"
    );
    assert_eq!(v.len(), u * u, "expected a {u}×{u} row-major array");
    let mut a = v.to_vec();
    // Rows.
    for row in a.chunks_exact_mut(u) {
        haar::forward_in_place(row);
    }
    // Columns, via a scratch column buffer.
    let mut col = vec![0.0f64; u];
    for c in 0..u {
        for r in 0..u {
            col[r] = a[r * u + c];
        }
        haar::forward_in_place(&mut col);
        for r in 0..u {
            a[r * u + c] = col[r];
        }
    }
    a
}

/// Dense 2-D inverse transform.
pub fn inverse2d(domain: Domain, w: &[f64]) -> Vec<f64> {
    let u = domain.u() as usize;
    assert_eq!(w.len(), u * u, "expected a {u}×{u} row-major array");
    let mut a = w.to_vec();
    let mut col = vec![0.0f64; u];
    for c in 0..u {
        for r in 0..u {
            col[r] = a[r * u + c];
        }
        haar::inverse_in_place(&mut col);
        for r in 0..u {
            a[r * u + c] = col[r];
        }
    }
    for row in a.chunks_exact_mut(u) {
        haar::inverse_in_place(row);
    }
    a
}

/// Sparse 2-D coefficient map: packed slot → value.
pub type SparseCoefs2d = FxHashMap<u64, f64>;

/// Emits the `(log u + 1)²` coefficient updates caused by adding `weight`
/// occurrences of cell `(x, y)`.
///
/// The 2-D basis is the tensor product of the 1-D bases, so the update set
/// is the Cartesian product of the two 1-D root-to-leaf paths and each delta
/// is the product of the 1-D deltas (with `weight` applied once).
pub fn coefficient_updates2d(
    domain: Domain,
    x: u64,
    y: u64,
    weight: f64,
    mut emit: impl FnMut(u64, f64),
) {
    let mut row_path: Vec<(u64, f64)> = Vec::with_capacity(domain.log_u() as usize + 1);
    crate::sparse::coefficient_updates(domain, x, 1.0, |s, d| row_path.push((s, d)));
    let mut col_path: Vec<(u64, f64)> = Vec::with_capacity(domain.log_u() as usize + 1);
    crate::sparse::coefficient_updates(domain, y, 1.0, |s, d| col_path.push((s, d)));
    for &(rs, rd) in &row_path {
        for &(cs, cd) in &col_path {
            emit(pack_slot(rs, cs), weight * rd * cd);
        }
    }
}

/// Sparse 2-D transform over `(x, y, count)` cells.
pub fn sparse_transform2d<I>(domain: Domain, cells: I) -> SparseCoefs2d
where
    I: IntoIterator<Item = (u64, u64, f64)>,
{
    let mut coefs = SparseCoefs2d::default();
    for (x, y, c) in cells {
        coefficient_updates2d(domain, x, y, c, |slot, delta| {
            *coefs.entry(slot).or_insert(0.0) += delta;
        });
    }
    coefs.retain(|_, v| *v != 0.0);
    coefs
}

/// Point estimate of cell `(x, y)` from a retained 2-D coefficient set.
pub fn point_estimate2d(domain: Domain, coefs: &SparseCoefs2d, x: u64, y: u64) -> f64 {
    let mut row_path: Vec<(u64, f64)> = Vec::new();
    crate::sparse::coefficient_updates(domain, x, 1.0, |s, d| row_path.push((s, d)));
    let mut col_path: Vec<(u64, f64)> = Vec::new();
    crate::sparse::coefficient_updates(domain, y, 1.0, |s, d| col_path.push((s, d)));
    // ψ_{(i,i')}(x,y) equals the product of the per-axis contributions, which
    // is exactly what coefficient_updates emits for weight 1.
    let mut est = 0.0;
    for &(rs, rd) in &row_path {
        for &(cs, cd) in &col_path {
            if let Some(&w) = coefs.get(&pack_slot(rs, cs)) {
                est += w * rd * cd;
            }
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    fn test_grid(u: usize) -> Vec<f64> {
        (0..u * u).map(|i| ((i * 37 + 11) % 23) as f64).collect()
    }

    #[test]
    fn roundtrip2d() {
        let domain = Domain::new(3).unwrap();
        let v = test_grid(8);
        let w = forward2d(domain, &v);
        let back = inverse2d(domain, &w);
        for (a, b) in v.iter().zip(&back) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn energy_preserved_2d() {
        let domain = Domain::new(4).unwrap();
        let v = test_grid(16);
        let w = forward2d(domain, &v);
        let ev: f64 = v.iter().map(|x| x * x).sum();
        let ew: f64 = w.iter().map(|x| x * x).sum();
        assert!(close(ev, ew));
    }

    #[test]
    fn sparse_matches_dense_2d() {
        let domain = Domain::new(3).unwrap();
        let cells = [(0u64, 0u64, 2.0), (3, 5, 1.0), (7, 7, 4.0), (2, 6, 3.0)];
        let sparse = sparse_transform2d(domain, cells.iter().copied());
        let mut v = vec![0.0; 64];
        for &(x, y, c) in &cells {
            v[(x * 8 + y) as usize] += c;
        }
        let dense = forward2d(domain, &v);
        for r in 0..8u64 {
            for c in 0..8u64 {
                let got = sparse.get(&pack_slot(r, c)).copied().unwrap_or(0.0);
                let want = dense[(r * 8 + c) as usize];
                assert!(close(got, want), "({r},{c}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn point_estimate_exact_with_all_coefficients() {
        let domain = Domain::new(2).unwrap();
        let cells = [(0u64, 1u64, 5.0), (3, 3, 2.0), (1, 2, 7.0)];
        let coefs = sparse_transform2d(domain, cells.iter().copied());
        let mut v = [0.0; 16];
        for &(x, y, c) in &cells {
            v[(x * 4 + y) as usize] += c;
        }
        for x in 0..4u64 {
            for y in 0..4u64 {
                let est = point_estimate2d(domain, &coefs, x, y);
                assert!(close(est, v[(x * 4 + y) as usize]), "({x},{y})");
            }
        }
    }

    #[test]
    fn update_count_is_path_product() {
        let domain = Domain::new(4).unwrap();
        let mut n = 0;
        coefficient_updates2d(domain, 7, 12, 1.0, |_, _| n += 1);
        assert_eq!(n, 25); // (log u + 1)²
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (r, c) in [(0u64, 0u64), (1, 2), (1 << 20, 1 << 19), ((1 << 32) - 1, 5)] {
            assert_eq!(unpack_slot(pack_slot(r, c)), (r, c));
        }
    }

    #[test]
    fn linearity_across_splits_2d() {
        // The property H-WTopk relies on: global 2-D coefficients are sums of
        // per-split 2-D coefficients.
        let domain = Domain::new(3).unwrap();
        let split_a = [(1u64, 1u64, 1.0), (4, 2, 2.0)];
        let split_b = [(1u64, 1u64, 3.0), (6, 7, 1.0)];
        let wa = sparse_transform2d(domain, split_a.iter().copied());
        let wb = sparse_transform2d(domain, split_b.iter().copied());
        let wall = sparse_transform2d(domain, split_a.iter().chain(split_b.iter()).copied());
        for (slot, v) in &wall {
            let s = wa.get(slot).copied().unwrap_or(0.0) + wb.get(slot).copied().unwrap_or(0.0);
            assert!(close(*v, s));
        }
    }
}
