//! Top-k selection by coefficient magnitude.
//!
//! Selecting the k coefficients of largest |w| minimises energy loss among
//! all k-term representations (§2.1). Selection is a single pass with a
//! size-k min-heap: `O(N log k)` over N candidates. Ties in magnitude break
//! towards the *lower slot* so every algorithm in the workspace returns the
//! same histogram for the same input — important when comparing exact
//! methods bit-for-bit in tests.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One retained coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoefEntry {
    /// 0-based coefficient slot.
    pub slot: u64,
    /// Coefficient value (signed).
    pub value: f64,
}

impl CoefEntry {
    /// |value|.
    #[inline]
    pub fn magnitude(&self) -> f64 {
        self.value.abs()
    }
}

/// Heap adapter: orders entries so the heap *max* is the entry we want to
/// evict first — smallest magnitude, then (on ties) the highest slot.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EvictFirst(CoefEntry);

impl Eq for EvictFirst {}

impl Ord for EvictFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Greater == evicted sooner. Smaller magnitude ⇒ greater.
        other
            .0
            .magnitude()
            .partial_cmp(&self.0.magnitude())
            .expect("coefficient magnitudes must not be NaN")
            .then_with(|| self.0.slot.cmp(&other.0.slot))
    }
}

impl PartialOrd for EvictFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the `k` coefficients of largest magnitude from `(slot, value)`
/// pairs. The result is sorted by descending magnitude (ties: ascending
/// slot). Entries with `value == 0` are never retained.
///
/// # Panics
///
/// Panics if any value is NaN.
pub fn top_k_magnitude(
    candidates: impl IntoIterator<Item = (u64, f64)>,
    k: usize,
) -> Vec<CoefEntry> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<EvictFirst> = BinaryHeap::with_capacity(k + 1);
    for (slot, value) in candidates {
        assert!(!value.is_nan(), "NaN coefficient at slot {slot}");
        if value == 0.0 {
            continue;
        }
        let entry = EvictFirst(CoefEntry { slot, value });
        if heap.len() < k {
            heap.push(entry);
        } else if entry < *heap.peek().expect("non-empty heap") {
            heap.pop();
            heap.push(entry);
        }
    }
    let mut out: Vec<CoefEntry> = heap.into_iter().map(|e| e.0).collect();
    sort_by_magnitude(&mut out);
    out
}

/// Sorts entries by descending magnitude, ties by ascending slot.
pub fn sort_by_magnitude(entries: &mut [CoefEntry]) {
    entries.sort_by(|a, b| {
        b.magnitude()
            .partial_cmp(&a.magnitude())
            .expect("coefficient magnitudes must not be NaN")
            .then_with(|| a.slot.cmp(&b.slot))
    });
}

/// A bounded pair of priority queues tracking the k highest and k lowest
/// *signed* values seen — the per-split bookkeeping H-WTopk's mappers keep
/// while streaming coefficients (Appendix A).
#[derive(Debug, Clone)]
pub struct TopBottomK {
    k: usize,
    // Min-heap of the k largest (peek = smallest of them).
    top: BinaryHeap<std::cmp::Reverse<SignedEntry>>,
    // Max-heap of the k smallest (peek = largest of them).
    bottom: BinaryHeap<SignedEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct SignedEntry {
    value: f64,
    slot: u64,
}

impl Eq for SignedEntry {}

impl Ord for SignedEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value
            .partial_cmp(&other.value)
            .expect("values must not be NaN")
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

impl PartialOrd for SignedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl TopBottomK {
    /// Creates empty queues of capacity `k` each.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            top: BinaryHeap::with_capacity(k + 1),
            bottom: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one `(slot, value)` observation.
    pub fn offer(&mut self, slot: u64, value: f64) {
        assert!(!value.is_nan(), "NaN value at slot {slot}");
        if self.k == 0 {
            return;
        }
        let e = SignedEntry { value, slot };
        if self.top.len() < self.k {
            self.top.push(std::cmp::Reverse(e));
        } else if e > self.top.peek().expect("non-empty").0 {
            self.top.pop();
            self.top.push(std::cmp::Reverse(e));
        }
        if self.bottom.len() < self.k {
            self.bottom.push(e);
        } else if e < *self.bottom.peek().expect("non-empty") {
            self.bottom.pop();
            self.bottom.push(e);
        }
    }

    /// The k highest values, sorted descending.
    pub fn top(&self) -> Vec<CoefEntry> {
        let mut v: Vec<CoefEntry> = self
            .top
            .iter()
            .map(|r| CoefEntry {
                slot: r.0.slot,
                value: r.0.value,
            })
            .collect();
        v.sort_by(|a, b| {
            b.value
                .partial_cmp(&a.value)
                .expect("no NaN")
                .then(a.slot.cmp(&b.slot))
        });
        v
    }

    /// The k lowest values, sorted ascending.
    pub fn bottom(&self) -> Vec<CoefEntry> {
        let mut v: Vec<CoefEntry> = self
            .bottom
            .iter()
            .map(|e| CoefEntry {
                slot: e.slot,
                value: e.value,
            })
            .collect();
        v.sort_by(|a, b| {
            a.value
                .partial_cmp(&b.value)
                .expect("no NaN")
                .then(a.slot.cmp(&b.slot))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_magnitudes() {
        let c = [(0u64, 1.0), (1, -10.0), (2, 5.0), (3, -0.5), (4, 7.0)];
        let top = top_k_magnitude(c.iter().copied(), 3);
        let slots: Vec<u64> = top.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![1, 4, 2]);
        assert_eq!(top[0].value, -10.0);
    }

    #[test]
    fn tie_break_prefers_lower_slot() {
        let c = [(5u64, 2.0), (1, -2.0), (9, 2.0), (0, 1.0)];
        let top = top_k_magnitude(c.iter().copied(), 2);
        let slots: Vec<u64> = top.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![1, 5]);
    }

    #[test]
    fn k_zero_and_k_larger_than_input() {
        assert!(top_k_magnitude([(0u64, 1.0)].iter().copied(), 0).is_empty());
        let top = top_k_magnitude([(0u64, 1.0), (1, 2.0)].iter().copied(), 10);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn zeros_are_dropped() {
        let top = top_k_magnitude([(0u64, 0.0), (1, 0.0), (2, 3.0)].iter().copied(), 5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].slot, 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        top_k_magnitude([(0u64, f64::NAN)].iter().copied(), 1);
    }

    #[test]
    fn matches_full_sort_reference() {
        let vals: Vec<(u64, f64)> = (0..500u64)
            .map(|i| (i, ((i * 2654435761) % 1000) as f64 - 500.0))
            .collect();
        let top = top_k_magnitude(vals.iter().copied(), 25);
        let mut all: Vec<CoefEntry> = vals
            .iter()
            .filter(|(_, v)| *v != 0.0)
            .map(|&(slot, value)| CoefEntry { slot, value })
            .collect();
        sort_by_magnitude(&mut all);
        all.truncate(25);
        assert_eq!(top.len(), all.len());
        for (a, b) in top.iter().zip(&all) {
            assert_eq!(a.slot, b.slot);
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn top_bottom_k_tracks_extremes() {
        let mut tb = TopBottomK::new(2);
        for (i, v) in [3.0, -7.0, 2.0, 9.0, -1.0, 5.0].iter().enumerate() {
            tb.offer(i as u64, *v);
        }
        let top: Vec<f64> = tb.top().iter().map(|e| e.value).collect();
        let bottom: Vec<f64> = tb.bottom().iter().map(|e| e.value).collect();
        assert_eq!(top, vec![9.0, 5.0]);
        assert_eq!(bottom, vec![-7.0, -1.0]);
    }

    #[test]
    fn top_bottom_k_zero_capacity() {
        let mut tb = TopBottomK::new(0);
        tb.offer(0, 1.0);
        assert!(tb.top().is_empty());
        assert!(tb.bottom().is_empty());
    }

    #[test]
    fn top_bottom_overlap_when_fewer_than_k() {
        let mut tb = TopBottomK::new(5);
        tb.offer(0, 1.0);
        tb.offer(1, 2.0);
        assert_eq!(tb.top().len(), 2);
        assert_eq!(tb.bottom().len(), 2);
    }
}
