//! Incrementally maintained sparse Haar transform: `O(d·log u)` per delta
//! of `d` distinct keys, bit-identical to the dense from-scratch pass.
//!
//! The Haar transform is linear, so a histogram *could* absorb new data by
//! adding the delta segment's coefficients into its own (see
//! `wh-core`'s `WaveletHistogram::merge_delta`). But float addition is not
//! associative: coefficient-space accumulation drifts from what a
//! from-scratch build over the concatenated data would produce, and the
//! drift depends on arrival order. [`IncrementalTransform`] sidesteps both
//! problems by maintaining the *inputs* of the dense transform exactly —
//! integer leaf counts — together with the per-level running averages of
//! [`crate::haar::forward_in_place`]'s cascade, recomputed bottom-up along
//! the dirty root-to-leaf paths with the **identical expressions** the
//! dense pass uses:
//!
//! ```text
//! A_log_u(x) = count(x) as f64
//! A_p(t)     = (A_{p+1}(2t) + A_{p+1}(2t+1)) · 1/√2
//! detail at slot 2^p + t = (A_{p+1}(2t+1) − A_{p+1}(2t)) · 1/√2
//! slot 0     = A_0(0)
//! ```
//!
//! Every average is a pure function of the final integer counts, so the
//! state after any sequence of deltas equals the state after one combined
//! delta — merge order cannot matter — and equals the dense
//! [`crate::haar::forward`] of the final frequency vector bit for bit.
//! Counts are unsigned and additive (a delta is *arriving* data), which
//! keeps every stored average strictly positive: an absent map entry is
//! exactly `0.0`, never a cancelled sum that the dense pass would carry as
//! `-0.0` or rounding dust.
//!
//! Memory is `O(D·log u)` for `D` distinct keys ever seen — the dirty-path
//! ancestors — independent of the domain size `u` (which may be `2^40`).

use std::f64::consts::FRAC_1_SQRT_2;

use crate::hash::{FxHashMap, FxHashSet};
use crate::select::{top_k_magnitude, CoefEntry};
use crate::Domain;

/// A sparse Haar transform kept current under streaming count deltas.
///
/// See the [module docs](self) for the maintenance scheme and the
/// bit-identity argument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncrementalTransform {
    log_u: u32,
    /// Exact leaf counts: key → occurrences. The ground truth every float
    /// below is recomputed from.
    counts: FxHashMap<u64, u64>,
    /// Total occurrences across all keys.
    total: u64,
    /// `avgs[p][t] = A_p(t)` for levels `p ∈ 0..log_u`; entries exist
    /// exactly for blocks with a non-zero subtree count (and are then
    /// strictly positive). Leaf-level averages are read from `counts`.
    avgs: Vec<FxHashMap<u64, f64>>,
    /// Non-zero detail coefficients: slot (`≥ 1`) → value. Details that
    /// recompute to exactly `0.0` are removed, matching the zero-dropping
    /// of [`top_k_magnitude`] and the builders.
    details: FxHashMap<u64, f64>,
}

impl IncrementalTransform {
    /// An empty transform (all-zero frequency vector) over `domain`.
    pub fn new(domain: Domain) -> Self {
        Self {
            log_u: domain.log_u(),
            counts: FxHashMap::default(),
            total: 0,
            avgs: (0..domain.log_u()).map(|_| FxHashMap::default()).collect(),
            details: FxHashMap::default(),
        }
    }

    /// Builds a transform from initial `(key, count)` pairs — equivalent
    /// to [`Self::new`] followed by one [`Self::apply_delta`].
    pub fn from_counts(domain: Domain, counts: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut t = Self::new(domain);
        t.apply_delta(counts);
        t
    }

    /// The key domain.
    pub fn domain(&self) -> Domain {
        Domain::new(self.log_u).expect("stored log_u is valid")
    }

    /// Total occurrences absorbed so far.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys with a non-zero count.
    pub fn distinct_keys(&self) -> usize {
        self.counts.len()
    }

    /// The exact count of `key` (0 when never seen).
    pub fn count(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// The average `A_q(t)` one level *below* `p` (i.e. the children live
    /// at level `q = p + 1`); leaf averages come straight from the counts.
    #[inline]
    fn level_value(&self, q: u32, t: u64) -> f64 {
        if q == self.log_u {
            self.counts.get(&t).map_or(0.0, |&c| c as f64)
        } else {
            self.avgs[q as usize].get(&t).copied().unwrap_or(0.0)
        }
    }

    /// Absorbs a delta segment given as `(key, additional_count)` pairs.
    /// Keys may repeat; zero counts are ignored. `O(d·log u)` for `d`
    /// distinct dirtied keys. An empty delta leaves the state untouched.
    ///
    /// # Panics
    ///
    /// Panics when a key lies outside the domain, or when a count would
    /// overflow `u64`.
    pub fn apply_delta(&mut self, delta: impl IntoIterator<Item = (u64, u64)>) {
        let domain = self.domain();
        let mut dirty: FxHashSet<u64> = FxHashSet::default();
        for (x, c) in delta {
            assert!(domain.contains(x), "key {x} outside {domain}");
            if c == 0 {
                continue;
            }
            let slot = self.counts.entry(x).or_insert(0);
            *slot = slot.checked_add(c).expect("count overflow");
            self.total = self.total.checked_add(c).expect("total overflow");
            dirty.insert(x);
        }
        if dirty.is_empty() {
            return;
        }
        // Recompute the dirtied ancestor paths bottom-up. `dirty` holds
        // positions at level `q`; their parents at level `p = q − 1` get
        // the exact `forward_in_place` pass expressions.
        for q in (1..=self.log_u).rev() {
            let p = q - 1;
            let mut parents: FxHashSet<u64> = FxHashSet::default();
            for &t in &dirty {
                parents.insert(t >> 1);
            }
            for &t in &parents {
                let a = self.level_value(q, 2 * t);
                let b = self.level_value(q, 2 * t + 1);
                let avg = (a + b) * FRAC_1_SQRT_2;
                let det = (b - a) * FRAC_1_SQRT_2;
                self.avgs[p as usize].insert(t, avg);
                let slot = (1u64 << p) + t;
                if det == 0.0 {
                    self.details.remove(&slot);
                } else {
                    self.details.insert(slot, det);
                }
            }
            dirty = parents;
        }
    }

    /// The coefficient at slot 0 (the overall average term).
    pub fn average_coefficient(&self) -> f64 {
        if self.log_u == 0 {
            // u = 1: the transform is the identity.
            self.counts.get(&0).map_or(0.0, |&c| c as f64)
        } else {
            self.avgs[0].get(&0).copied().unwrap_or(0.0)
        }
    }

    /// All non-zero coefficients as `(slot, value)` pairs, in unspecified
    /// order. Bit-identical to the non-zero entries of the dense
    /// [`crate::haar::forward`] of the current frequency vector.
    pub fn coefficients(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let avg = self.average_coefficient();
        (avg != 0.0)
            .then_some((0u64, avg))
            .into_iter()
            .chain(self.details.iter().map(|(&s, &v)| (s, v)))
    }

    /// Number of non-zero coefficients.
    pub fn num_nonzero(&self) -> usize {
        usize::from(self.average_coefficient() != 0.0) + self.details.len()
    }

    /// The `k` largest-magnitude coefficients (deterministic tie-breaks;
    /// see [`top_k_magnitude`]). The selection is a full scan of the
    /// non-zero set — a shortcut over "previous top-k ∪ touched slots"
    /// would be unsound, because a delta can *shrink* the k-th magnitude
    /// and let an untouched coefficient enter.
    pub fn top_coefficients(&self, k: usize) -> Vec<CoefEntry> {
        top_k_magnitude(self.coefficients(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::forward;

    /// Deterministic pseudo-random (key, count) stream.
    fn synth(domain: Domain, n: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % domain.u(), (x >> 13) % 5)
            })
            .collect()
    }

    fn dense_of(domain: Domain, deltas: &[(u64, u64)]) -> Vec<f64> {
        let mut v = vec![0.0f64; domain.u() as usize];
        for &(x, c) in deltas {
            v[x as usize] += c as f64;
        }
        forward(&v)
    }

    fn assert_bit_identical(t: &IncrementalTransform, dense: &[f64]) {
        let mut nonzero = 0usize;
        for (slot, &w) in dense.iter().enumerate() {
            let got = t
                .coefficients()
                .find(|&(s, _)| s == slot as u64)
                .map_or(0.0, |(_, v)| v);
            assert_eq!(
                got.to_bits(),
                if w == 0.0 {
                    0.0f64.to_bits()
                } else {
                    w.to_bits()
                },
                "slot {slot}: incremental {got} vs dense {w}"
            );
            nonzero += usize::from(w != 0.0);
        }
        assert_eq!(t.num_nonzero(), nonzero);
    }

    #[test]
    fn matches_dense_transform_across_domains() {
        for log_u in 0..=8u32 {
            let domain = Domain::new(log_u).unwrap();
            let deltas = synth(domain, 200, 0xfeed + u64::from(log_u));
            let t = IncrementalTransform::from_counts(domain, deltas.iter().copied());
            assert_bit_identical(&t, &dense_of(domain, &deltas));
        }
    }

    #[test]
    fn incremental_equals_one_shot() {
        let domain = Domain::new(7).unwrap();
        let all = synth(domain, 300, 0xabc);
        let mut t = IncrementalTransform::new(domain);
        for chunk in all.chunks(37) {
            t.apply_delta(chunk.iter().copied());
        }
        let one_shot = IncrementalTransform::from_counts(domain, all.iter().copied());
        assert_eq!(t, one_shot);
        assert_bit_identical(&t, &dense_of(domain, &all));
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let domain = Domain::new(6).unwrap();
        let a = synth(domain, 120, 1);
        let b = synth(domain, 80, 2);
        let mut ab = IncrementalTransform::new(domain);
        ab.apply_delta(a.iter().copied());
        ab.apply_delta(b.iter().copied());
        let mut ba = IncrementalTransform::new(domain);
        ba.apply_delta(b.iter().copied());
        ba.apply_delta(a.iter().copied());
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_and_zero_count_deltas_are_no_ops() {
        let domain = Domain::new(5).unwrap();
        let mut t = IncrementalTransform::from_counts(domain, [(3u64, 2u64), (17, 1)]);
        let before = t.clone();
        t.apply_delta(std::iter::empty());
        t.apply_delta([(9u64, 0u64), (3, 0)]);
        assert_eq!(t, before);
        assert_eq!(t.total_count(), 3);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.count(3), 2);
        assert_eq!(t.count(9), 0);
    }

    #[test]
    fn sibling_cancellation_removes_the_detail() {
        let domain = Domain::new(3).unwrap();
        let mut t = IncrementalTransform::from_counts(domain, [(2u64, 1u64)]);
        let leaf_slot = (1u64 << 2) + 1; // detail over keys {2, 3}
        assert!(t.coefficients().any(|(s, _)| s == leaf_slot));
        t.apply_delta([(3u64, 1u64)]);
        // Equal siblings: the leaf detail is exactly zero and must vanish.
        assert!(!t.coefficients().any(|(s, _)| s == leaf_slot));
        assert_bit_identical(&t, &dense_of(domain, &[(2, 1), (3, 1)]));
    }

    #[test]
    fn top_coefficients_match_dense_selection() {
        let domain = Domain::new(6).unwrap();
        let deltas = synth(domain, 250, 7);
        let t = IncrementalTransform::from_counts(domain, deltas.iter().copied());
        let dense = dense_of(domain, &deltas);
        let want = top_k_magnitude(dense.iter().enumerate().map(|(s, &c)| (s as u64, c)), 10);
        let got = t.top_coefficients(10);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.slot, w.slot);
            assert_eq!(g.value.to_bits(), w.value.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_domain_key_rejected() {
        let mut t = IncrementalTransform::new(Domain::new(3).unwrap());
        t.apply_delta([(8u64, 1u64)]);
    }

    #[test]
    fn log_u_zero_is_the_identity_transform() {
        let domain = Domain::new(0).unwrap();
        let mut t = IncrementalTransform::new(domain);
        assert_eq!(t.num_nonzero(), 0);
        t.apply_delta([(0u64, 4u64)]);
        t.apply_delta([(0u64, 3u64)]);
        assert_eq!(t.coefficients().collect::<Vec<_>>(), vec![(0, 7.0)]);
    }
}
