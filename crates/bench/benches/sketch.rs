//! GCS branching-factor ablation (the paper's GCS-8 choice) and AMS
//! comparison: per-key update cost vs top-k query cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wh_sketch::{AmsWaveletSketch, GcsParams, GroupCountSketch};
use wh_wavelet::Domain;

const LOG_U: u32 = 18;

fn keys(n: usize) -> Vec<u64> {
    let u = 1u64 << LOG_U;
    (0..n as u64).map(|i| (i * 2654435761) % u).collect()
}

fn bench_gcs_update(c: &mut Criterion) {
    let domain = Domain::new(LOG_U).expect("valid domain");
    let ks = keys(2000);
    let mut g = c.benchmark_group("gcs_update_per_branching");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4));
    g.throughput(Throughput::Elements(ks.len() as u64));
    for branching in [2usize, 4, 8, 16] {
        let params = GcsParams::with_budget(domain, branching, 20 * 1024 * LOG_U as usize, 7);
        g.bench_with_input(BenchmarkId::from_parameter(branching), &params, |b, p| {
            b.iter(|| {
                let mut sk = GroupCountSketch::new(domain, *p);
                for &k in &ks {
                    sk.update_key(k, 1.0);
                }
                sk
            })
        });
    }
    g.finish();
}

fn bench_gcs_query(c: &mut Criterion) {
    let domain = Domain::new(LOG_U).expect("valid domain");
    let mut g = c.benchmark_group("gcs_topk_per_branching");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4));
    for branching in [2usize, 4, 8, 16] {
        let params = GcsParams::with_budget(domain, branching, 20 * 1024 * LOG_U as usize, 7);
        let mut sk = GroupCountSketch::new(domain, params);
        for &k in &keys(5000) {
            sk.update_key(k, 1.0);
        }
        sk.update_key(12345, 10_000.0);
        g.bench_with_input(BenchmarkId::from_parameter(branching), &sk, |b, sk| {
            b.iter(|| sk.topk(30, 2000))
        });
    }
    g.finish();
}

fn bench_ams(c: &mut Criterion) {
    let domain = Domain::new(LOG_U).expect("valid domain");
    let ks = keys(2000);
    let mut g = c.benchmark_group("ams");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4));
    g.bench_function("ams_update_2000_keys", |b| {
        b.iter(|| {
            let mut sk = AmsWaveletSketch::new(domain, 5, 2048, 3);
            for &k in &ks {
                sk.update_key(k, 1.0);
            }
            sk
        })
    });
    // The exhaustive AMS query is the reason GCS exists; measure it at a
    // smaller domain so the bench finishes promptly.
    let small = Domain::new(14).expect("valid domain");
    let mut sk = AmsWaveletSketch::new(small, 5, 2048, 3);
    for &k in &keys(2000) {
        sk.update_key(k & ((1 << 14) - 1), 1.0);
    }
    g.bench_function("ams_exhaustive_topk_2e14", |b| {
        b.iter(|| sk.topk_exhaustive(30))
    });
    g.finish();
}

criterion_group!(benches, bench_gcs_update, bench_gcs_query, bench_ams);
criterion_main!(benches);
