//! Dense vs sparse Haar transform — the ablation behind Appendix A's
//! choice of the `O(|v_j| log u)` mapper-side algorithm over the `O(u)`
//! dense pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wh_wavelet::{haar, sparse, Domain};

fn dense_signal(log_u: u32) -> Vec<f64> {
    let u = 1usize << log_u;
    (0..u).map(|i| ((i * 2654435761) % 1000) as f64).collect()
}

fn sparse_entries(log_u: u32, nonzero: usize) -> Vec<(u64, f64)> {
    let u = 1u64 << log_u;
    (0..nonzero as u64)
        .map(|i| ((i * 2654435761) % u, (i % 100) as f64 + 1.0))
        .collect()
}

fn bench_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("haar_dense");
    g.sample_size(30)
        .measurement_time(std::time::Duration::from_secs(4));
    for log_u in [12u32, 16, 20] {
        let v = dense_signal(log_u);
        g.throughput(Throughput::Elements(v.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(log_u), &v, |b, v| {
            b.iter(|| {
                let mut w = v.clone();
                haar::forward_in_place(&mut w);
                w
            })
        });
    }
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("haar_sparse");
    g.sample_size(30)
        .measurement_time(std::time::Duration::from_secs(4));
    // Fixed 4k non-zero keys; domain grows — sparse cost grows as log u,
    // dense cost as u.
    for log_u in [12u32, 16, 20, 24] {
        let entries = sparse_entries(log_u, 4096);
        let domain = Domain::new(log_u).expect("valid domain");
        g.throughput(Throughput::Elements(entries.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(log_u), &entries, |b, e| {
            b.iter(|| sparse::sparse_transform(domain, e.iter().copied()))
        });
    }
    g.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let v = dense_signal(16);
    let w = haar::forward(&v);
    c.bench_function("haar_inverse_2e16", |b| {
        b.iter(|| {
            let mut x = w.clone();
            haar::inverse_in_place(&mut x);
            x
        })
    });
}

criterion_group!(benches, bench_dense, bench_sparse, bench_inverse);
criterion_main!(benches);
