//! End-to-end builder comparison at a small fixed instance — the
//! cargo-bench counterpart of Fig. 5's default column (wall-clock of the
//! actual Rust execution, complementing the simulated cluster time the
//! figures harness reports).

use criterion::{criterion_group, criterion_main, Criterion};
use wh_core::builders::{HWTopk, HistogramBuilder, ImprovedS, SendSketch, SendV, TwoLevelS};
use wh_data::Dataset;
use wh_mapreduce::ClusterConfig;

const K: usize = 30;

fn dataset() -> Dataset {
    Dataset::zipf(14, 1.1, 1 << 18, 16)
}

fn bench_builders(c: &mut Criterion) {
    let ds = dataset();
    let cluster = ClusterConfig::paper_cluster();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("send_v", |b| {
        b.iter(|| SendV::new().build(&ds, &cluster, K))
    });
    g.bench_function("h_wtopk", |b| {
        b.iter(|| HWTopk::new().build(&ds, &cluster, K))
    });
    g.bench_function("improved_s", |b| {
        b.iter(|| ImprovedS::new(1e-2, 7).build(&ds, &cluster, K))
    });
    g.bench_function("two_level_s", |b| {
        b.iter(|| TwoLevelS::new(1e-2, 7).build(&ds, &cluster, K))
    });
    g.bench_function("send_sketch", |b| {
        b.iter(|| SendSketch::new(7).build(&ds, &cluster, K))
    });
    g.finish();
}

criterion_group!(benches, bench_builders);
criterion_main!(benches);
