//! Two-sided TPUT vs classic TPUT vs brute-force aggregation on synthetic
//! coefficient-like score distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wh_topk::exact::topk_by_magnitude;
use wh_topk::tput::tput_topk;
use wh_topk::two_sided::two_sided_topk;
use wh_topk::InMemoryNode;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// Coefficient-like nodes: few heavy items, many light ones, both signs.
fn signed_nodes(m: usize, items: u64) -> Vec<InMemoryNode> {
    let mut s = 7u64;
    (0..m)
        .map(|_| {
            let pairs: Vec<(u64, f64)> = (0..items)
                .map(|i| {
                    let r = lcg(&mut s);
                    let mag = if i < 16 { 1e5 } else { 3.0 };
                    (i, ((r % 1000) as f64 / 1000.0 - 0.5) * mag)
                })
                .collect();
            InMemoryNode::new(pairs)
        })
        .collect()
}

fn nonneg_nodes(m: usize, items: u64) -> Vec<InMemoryNode> {
    let mut s = 11u64;
    (0..m)
        .map(|_| {
            let pairs: Vec<(u64, f64)> = (0..items)
                .map(|i| {
                    let r = lcg(&mut s);
                    let mag = if i < 16 { 1e5 } else { 3.0 };
                    (i, (r % 1000) as f64 / 1000.0 * mag)
                })
                .collect();
            InMemoryNode::new(pairs)
        })
        .collect()
}

fn bench_two_sided(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_sided_tput");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4));
    for m in [8usize, 32, 128] {
        let nodes = signed_nodes(m, 4000);
        g.bench_with_input(BenchmarkId::from_parameter(m), &nodes, |b, n| {
            b.iter(|| two_sided_topk(n, 30))
        });
    }
    g.finish();
}

fn bench_classic(c: &mut Criterion) {
    let nodes = nonneg_nodes(32, 4000);
    c.bench_function("classic_tput_m32", |b| b.iter(|| tput_topk(&nodes, 30)));
}

fn bench_brute_force(c: &mut Criterion) {
    let nodes = signed_nodes(32, 4000);
    c.bench_function("brute_force_m32", |b| {
        b.iter(|| topk_by_magnitude(&nodes, 30))
    });
}

criterion_group!(benches, bench_two_sided, bench_classic, bench_brute_force);
criterion_main!(benches);
