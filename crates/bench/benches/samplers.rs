//! Per-split cost of the three sampling emitters and the first-level
//! random record reader.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wh_data::{Dataset, SplitMix64};
use wh_sampling::{basic, improved, two_level, SamplingConfig};
use wh_wavelet::hash::FxHashMap;

fn counts(distinct: u64, heavy: u64) -> FxHashMap<u64, u64> {
    let mut m = FxHashMap::default();
    for k in 0..distinct {
        m.insert(k, 1 + (k < heavy) as u64 * 50);
    }
    m
}

fn bench_emitters(c: &mut Criterion) {
    let cfg = SamplingConfig::new(5e-3, 64, 1 << 22);
    let cs = counts(20_000, 200);
    let t_j = cs.values().sum::<u64>();
    let mut g = c.benchmark_group("sampler_emit");
    g.throughput(Throughput::Elements(cs.len() as u64));
    g.bench_function("basic_combined", |b| b.iter(|| basic::emit_combined(&cs)));
    g.bench_function("improved", |b| {
        b.iter(|| improved::emit(&cs, cfg.epsilon, t_j))
    });
    g.bench_function("two_level", |b| {
        b.iter(|| {
            let mut rng = SplitMix64::new(9);
            two_level::emit(&cs, &cfg, &mut rng)
        })
    });
    g.finish();
}

fn bench_first_level(c: &mut Criterion) {
    let ds = Dataset::zipf(18, 1.1, 1 << 20, 16);
    let mut g = c.benchmark_group("first_level_sample");
    g.sample_size(30)
        .measurement_time(std::time::Duration::from_secs(4));
    for frac in [100u64, 20, 5] {
        let nj = ds.split_meta(0).records;
        let count = nj / frac;
        g.throughput(Throughput::Elements(count));
        g.bench_with_input(BenchmarkId::from_parameter(frac), &count, |b, &count| {
            b.iter(|| ds.sample_split(0, count, 7))
        });
    }
    g.finish();
}

fn bench_full_scan(c: &mut Criterion) {
    let ds = Dataset::zipf(18, 1.1, 1 << 20, 16);
    let nj = ds.split_meta(0).records;
    let mut g = c.benchmark_group("split_scan");
    g.sample_size(30)
        .measurement_time(std::time::Duration::from_secs(4));
    g.throughput(Throughput::Elements(nj));
    g.bench_function("scan_one_split", |b| {
        b.iter(|| ds.scan_split(0).map(|r| r.key).sum::<u64>())
    });
    g.finish();
}

criterion_group!(benches, bench_emitters, bench_first_level, bench_full_scan);
criterion_main!(benches);
