//! One function per figure of §5. Each returns the measured [`Row`]s;
//! the `figures` binary prints and persists them.

use wh_core::builders::{
    BasicS, Centralized, HWTopk, HistogramBuilder, ImprovedS, SendCoef, SendSketch, SendV,
    TwoLevelS,
};
use wh_core::evaluate::Evaluator;
use wh_data::{Dataset, DatasetBuilder, Distribution};
use wh_mapreduce::ClusterConfig;
use wh_sketch::GcsParams;
use wh_wavelet::Domain;

use crate::defaults::Defaults;
use crate::table::Row;

/// All known figure ids, in paper order.
pub const ALL_FIGURES: [&str; 15] = [
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19",
];

/// Dispatches a figure by id.
pub fn run(figure: &str, d: &Defaults) -> Vec<Row> {
    match figure {
        "fig5" => fig5(d),
        "fig6" => fig6(d),
        "fig7" => fig7(d),
        "fig8" => fig8(d),
        "fig9" => fig9(d),
        "fig10" => fig10(d),
        "fig11" => fig11(d),
        "fig12" => fig12(d),
        "fig13" => fig13(d),
        "fig14" => fig14(d),
        "fig15" => fig15(d),
        "fig16" => fig16(d),
        "fig17" => fig17(d),
        "fig18" => fig18(d),
        "fig19" => fig19(d),
        other => panic!("unknown figure id {other:?} (known: {ALL_FIGURES:?})"),
    }
}

/// The paper's five standard series (§5 defaults; Send-Coef only appears
/// in fig12).
fn standard_builders(d: &Defaults) -> Vec<Box<dyn HistogramBuilder>> {
    vec![
        Box::new(SendV::new()),
        Box::new(HWTopk::new()),
        Box::new(SendSketch::new(d.seed)),
        Box::new(ImprovedS::new(d.epsilon, d.seed)),
        Box::new(TwoLevelS::new(d.epsilon, d.seed)),
    ]
}

#[allow(clippy::too_many_arguments)] // an internal table-row helper, not API
fn measure(
    figure: &str,
    builders: &[Box<dyn HistogramBuilder>],
    ds: &Dataset,
    cluster: &ClusterConfig,
    k: usize,
    x_label: &str,
    x: f64,
    eval: Option<&Evaluator>,
) -> Vec<Row> {
    builders
        .iter()
        .map(|b| {
            let r = b.build(ds, cluster, k);
            Row {
                figure: figure.into(),
                series: b.name().into(),
                x_label: x_label.into(),
                x,
                comm_bytes: r.metrics.total_comm_bytes(),
                time_s: r.metrics.sim_time_s,
                sse: eval.map(|e| e.sse(&r.histogram)),
            }
        })
        .collect()
}

/// Fig. 5: communication and running time vs k ∈ {10..50}.
pub fn fig5(d: &Defaults) -> Vec<Row> {
    let ds = d.dataset();
    let cluster = d.cluster();
    let builders = standard_builders(d);
    let mut rows = Vec::new();
    for k in [10usize, 20, 30, 40, 50] {
        rows.extend(measure(
            "fig5",
            &builders,
            &ds,
            &cluster,
            k,
            &format!("k={k}"),
            k as f64,
            None,
        ));
    }
    rows
}

/// Fig. 6: SSE vs k, including the ideal SSE.
pub fn fig6(d: &Defaults) -> Vec<Row> {
    let ds = d.dataset();
    let cluster = d.cluster();
    let eval = Evaluator::new(&ds);
    let builders = standard_builders(d);
    let mut rows = Vec::new();
    for k in [10usize, 20, 30, 40, 50] {
        rows.extend(measure(
            "fig6",
            &builders,
            &ds,
            &cluster,
            k,
            &format!("k={k}"),
            k as f64,
            Some(&eval),
        ));
        rows.push(Row {
            figure: "fig6".into(),
            series: "Ideal-SSE".into(),
            x_label: format!("k={k}"),
            x: k as f64,
            comm_bytes: 0,
            time_s: 0.0,
            sse: Some(eval.ideal_sse(k)),
        });
    }
    rows
}

/// ε sweep used by Figs. 7–8 — scaled from the paper's 10⁻⁵..10⁻¹ so the
/// sample stays a sane fraction of the scaled n.
fn epsilon_sweep(d: &Defaults) -> Vec<f64> {
    [0.25, 1.0, 4.0, 16.0, 64.0]
        .iter()
        .map(|f| d.epsilon * f)
        .collect()
}

/// Fig. 7: SSE vs ε for the samplers (H-WTopk's ideal as reference).
pub fn fig7(d: &Defaults) -> Vec<Row> {
    let ds = d.dataset();
    let cluster = d.cluster();
    let eval = Evaluator::new(&ds);
    let mut rows = Vec::new();
    let exact = HWTopk::new().build(&ds, &cluster, d.k);
    for eps in epsilon_sweep(d) {
        let label = format!("eps={eps:.1e}");
        rows.push(Row {
            figure: "fig7".into(),
            series: "H-WTopk".into(),
            x_label: label.clone(),
            x: eps,
            comm_bytes: 0,
            time_s: 0.0,
            sse: Some(eval.sse(&exact.histogram)),
        });
        let builders: Vec<Box<dyn HistogramBuilder>> = vec![
            Box::new(ImprovedS::new(eps, d.seed)),
            Box::new(TwoLevelS::new(eps, d.seed)),
        ];
        rows.extend(measure(
            "fig7",
            &builders,
            &ds,
            &cluster,
            d.k,
            &label,
            eps,
            Some(&eval),
        ));
    }
    rows
}

/// Fig. 8: communication and running time vs ε for the samplers.
pub fn fig8(d: &Defaults) -> Vec<Row> {
    let ds = d.dataset();
    let cluster = d.cluster();
    let mut rows = Vec::new();
    for eps in epsilon_sweep(d) {
        let builders: Vec<Box<dyn HistogramBuilder>> = vec![
            Box::new(ImprovedS::new(eps, d.seed)),
            Box::new(TwoLevelS::new(eps, d.seed)),
        ];
        rows.extend(measure(
            "fig8",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("eps={eps:.1e}"),
            eps,
            None,
        ));
    }
    rows
}

/// Fig. 9: communication / running time **versus SSE** — sweep each
/// approximation's accuracy knob and report (SSE, cost) pairs.
pub fn fig9(d: &Defaults) -> Vec<Row> {
    fig9_like("fig9", &d.dataset(), d)
}

fn fig9_like(figure: &str, ds: &Dataset, d: &Defaults) -> Vec<Row> {
    let cluster = d.cluster();
    let eval = Evaluator::new(ds);
    let mut rows = Vec::new();
    // Samplers: accuracy via ε.
    for eps in epsilon_sweep(d) {
        for b in [
            Box::new(ImprovedS::new(eps, d.seed)) as Box<dyn HistogramBuilder>,
            Box::new(TwoLevelS::new(eps, d.seed)),
        ] {
            let r = b.build(ds, &cluster, d.k);
            rows.push(Row {
                figure: figure.into(),
                series: b.name().into(),
                x_label: format!("eps={eps:.1e}"),
                x: eval.sse(&r.histogram),
                comm_bytes: r.metrics.total_comm_bytes(),
                time_s: r.metrics.sim_time_s,
                sse: Some(eval.sse(&r.histogram)),
            });
        }
    }
    // Sketch: accuracy via space budget (fractions of the paper default).
    let domain = ds.domain();
    for frac in [0.25f64, 1.0, 4.0] {
        let budget = (20.0 * 1024.0 * domain.log_u() as f64 * frac) as usize;
        let params = GcsParams::with_budget(domain, 8, budget, d.seed);
        let b = SendSketch::new(d.seed).with_params(params);
        let r = b.build(ds, &cluster, d.k);
        rows.push(Row {
            figure: figure.into(),
            series: "Send-Sketch".into(),
            x_label: format!("space×{frac}"),
            x: eval.sse(&r.histogram),
            comm_bytes: r.metrics.total_comm_bytes(),
            time_s: r.metrics.sim_time_s,
            sse: Some(eval.sse(&r.histogram)),
        });
    }
    rows
}

/// Fig. 10: communication and running time vs dataset size n (m grows
/// with n at fixed split size, as in the paper).
pub fn fig10(d: &Defaults) -> Vec<Row> {
    let cluster = d.cluster();
    let mut rows = Vec::new();
    for scale in [1u64, 2, 4, 8] {
        let n = d.n / 4 * scale;
        let m = (d.m as u64 / 4 * scale).max(4) as u32;
        let ds = DatasetBuilder::new()
            .domain(Domain::new(d.log_u).expect("valid"))
            .distribution(Distribution::Zipf { alpha: d.alpha })
            .records(n)
            .splits(m)
            .record_bytes(d.record_bytes)
            .seed(d.seed)
            .build();
        // Keep the sample fraction fixed as n grows (the paper fixes ε
        // while n grows; at our scale that would degenerate for small n).
        let eps = d.epsilon * ((d.n as f64) / (n as f64)).sqrt();
        let builders: Vec<Box<dyn HistogramBuilder>> = vec![
            Box::new(SendV::new()),
            Box::new(HWTopk::new()),
            Box::new(SendSketch::new(d.seed)),
            Box::new(ImprovedS::new(eps, d.seed)),
            Box::new(TwoLevelS::new(eps, d.seed)),
        ];
        let gb = ds.total_bytes() as f64 / (1 << 20) as f64;
        rows.extend(measure(
            "fig10",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("{gb:.0}MB"),
            n as f64,
            None,
        ));
    }
    rows
}

/// Fig. 11: vary record size 4 B … 100 kB at a fixed record count; splits
/// scale with the physical bytes (the paper: 1 split at 16 MB up to 1600
/// at 400 GB).
pub fn fig11(d: &Defaults) -> Vec<Row> {
    let cluster = d.cluster();
    let n = 1 << 20; // fixed record count (paper: 2^22)
    let mut rows = Vec::new();
    for rec in [4u32, 100, 1_000, 10_000, 100_000] {
        let bytes = n * u64::from(rec);
        // One split per 64 MB-equivalent, clamped.
        let m = (bytes / (64 << 20)).clamp(1, 256) as u32;
        let ds = DatasetBuilder::new()
            .domain(Domain::new(d.log_u).expect("valid"))
            .distribution(Distribution::Zipf { alpha: d.alpha })
            .records(n)
            .splits(m)
            .record_bytes(rec)
            .seed(d.seed)
            .build();
        let eps = (d.epsilon * ((d.n as f64) / (n as f64)).sqrt()).min(0.1);
        let builders: Vec<Box<dyn HistogramBuilder>> = vec![
            Box::new(SendV::new()),
            Box::new(HWTopk::new()),
            Box::new(SendSketch::new(d.seed)),
            Box::new(ImprovedS::new(eps, d.seed)),
            Box::new(TwoLevelS::new(eps, d.seed)),
        ];
        rows.extend(measure(
            "fig11",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("rec={rec}B"),
            rec as f64,
            None,
        ));
    }
    rows
}

/// Fig. 12: vary the domain size u — the one experiment including
/// Send-Coef (which degrades with u).
pub fn fig12(d: &Defaults) -> Vec<Row> {
    let cluster = d.cluster();
    let mut rows = Vec::new();
    for log_u in [10u32, 12, 14, 16, 18, 20] {
        let ds = DatasetBuilder::new()
            .domain(Domain::new(log_u).expect("valid"))
            .distribution(Distribution::Zipf { alpha: d.alpha })
            .records(d.n)
            .splits(d.m)
            .record_bytes(d.record_bytes)
            .seed(d.seed)
            .build();
        let mut builders = standard_builders(d);
        builders.push(Box::new(SendCoef::new()));
        rows.extend(measure(
            "fig12",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("log2u={log_u}"),
            log_u as f64,
            None,
        ));
    }
    rows
}

/// Fig. 13: vary the split size β (m = n·rec/β at fixed n).
pub fn fig13(d: &Defaults) -> Vec<Row> {
    let cluster = d.cluster();
    let mut rows = Vec::new();
    // Sweep m by powers of two: β doubles as m halves.
    for m in [d.m * 4, d.m * 2, d.m, d.m / 2] {
        let ds = DatasetBuilder::new()
            .domain(Domain::new(d.log_u).expect("valid"))
            .distribution(Distribution::Zipf { alpha: d.alpha })
            .records(d.n)
            .splits(m)
            .record_bytes(d.record_bytes)
            .seed(d.seed)
            .build();
        let beta_mb = ds.total_bytes() as f64 / m as f64 / (1 << 20) as f64;
        let builders = standard_builders(d);
        rows.extend(measure(
            "fig13",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("m={m}"),
            beta_mb,
            None,
        ));
    }
    rows
}

fn alpha_dataset(d: &Defaults, alpha: f64) -> Dataset {
    DatasetBuilder::new()
        .domain(Domain::new(d.log_u).expect("valid"))
        .distribution(Distribution::Zipf { alpha })
        .records(d.n)
        .splits(d.m)
        .record_bytes(d.record_bytes)
        .seed(d.seed)
        .build()
}

/// Fig. 14: communication and running time vs skew α ∈ {0.8, 1.1, 1.4}.
pub fn fig14(d: &Defaults) -> Vec<Row> {
    let cluster = d.cluster();
    let mut rows = Vec::new();
    for alpha in [0.8f64, 1.1, 1.4] {
        let ds = alpha_dataset(d, alpha);
        let builders = standard_builders(d);
        rows.extend(measure(
            "fig14",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("alpha={alpha}"),
            alpha,
            None,
        ));
    }
    rows
}

/// Fig. 15: SSE vs skew α.
pub fn fig15(d: &Defaults) -> Vec<Row> {
    let cluster = d.cluster();
    let mut rows = Vec::new();
    for alpha in [0.8f64, 1.1, 1.4] {
        let ds = alpha_dataset(d, alpha);
        let eval = Evaluator::new(&ds);
        let builders = standard_builders(d);
        rows.extend(measure(
            "fig15",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("alpha={alpha}"),
            alpha,
            Some(&eval),
        ));
    }
    rows
}

/// Fig. 16: running time vs available bandwidth B ∈ {10%..100%}.
pub fn fig16(d: &Defaults) -> Vec<Row> {
    let ds = d.dataset();
    let mut rows = Vec::new();
    for pct in [10u32, 25, 50, 75, 100] {
        let mut cluster = d.cluster();
        cluster.bandwidth_fraction = pct as f64 / 100.0;
        let builders = standard_builders(d);
        rows.extend(measure(
            "fig16",
            &builders,
            &ds,
            &cluster,
            d.k,
            &format!("B={pct}%"),
            pct as f64,
            None,
        ));
    }
    rows
}

/// Fig. 17: communication and running time on the WorldCup dataset.
pub fn fig17(d: &Defaults) -> Vec<Row> {
    let ds = d.worldcup();
    let cluster = d.cluster();
    let builders = standard_builders(d);
    measure(
        "fig17", &builders, &ds, &cluster, d.k, "worldcup", 0.0, None,
    )
}

/// Fig. 18: SSE on the WorldCup dataset.
pub fn fig18(d: &Defaults) -> Vec<Row> {
    let ds = d.worldcup();
    let cluster = d.cluster();
    let eval = Evaluator::new(&ds);
    let builders = standard_builders(d);
    let mut rows = measure(
        "fig18",
        &builders,
        &ds,
        &cluster,
        d.k,
        "worldcup",
        0.0,
        Some(&eval),
    );
    rows.push(Row {
        figure: "fig18".into(),
        series: "Ideal-SSE".into(),
        x_label: "worldcup".into(),
        x: 0.0,
        comm_bytes: 0,
        time_s: 0.0,
        sse: Some(eval.ideal_sse(d.k)),
    });
    rows
}

/// Fig. 19: communication / running time vs SSE on WorldCup.
pub fn fig19(d: &Defaults) -> Vec<Row> {
    fig9_like("fig19", &d.worldcup(), d)
}

/// The Basic-S combiner ablation (DESIGN.md §ablations): pairs emitted
/// with and without the Combine function.
pub fn ablation_combiner(d: &Defaults) -> Vec<Row> {
    let ds = d.dataset();
    let cluster = d.cluster();
    let mut rows = Vec::new();
    for (label, b) in [
        ("with-combine", BasicS::new(d.epsilon, d.seed)),
        ("no-combine", BasicS::new(d.epsilon, d.seed).combined(false)),
    ] {
        let r = b.build(&ds, &cluster, d.k);
        rows.push(Row {
            figure: "ablation-combiner".into(),
            series: format!("Basic-S ({label})"),
            x_label: label.into(),
            x: 0.0,
            comm_bytes: r.metrics.total_comm_bytes(),
            time_s: r.metrics.sim_time_s,
            sse: None,
        });
    }
    rows
}

/// The √m ablation (DESIGN.md): sweep the second-level threshold exponent
/// γ in `1/(ε·m^γ)` and report communication and SSE. γ = ½ — the paper's
/// choice — should sit on the communication/quality knee.
pub fn ablation_threshold_exponent(d: &Defaults) -> Vec<Row> {
    let ds = d.dataset();
    let cluster = d.cluster();
    let eval = Evaluator::new(&ds);
    let mut rows = Vec::new();
    for gamma in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        // Average SSE over a few seeds; communication from the first run.
        let mut sse = 0.0;
        let mut comm = 0;
        let runs = 3;
        for s in 0..runs {
            let b = TwoLevelS::new(d.epsilon, d.seed + s).with_threshold_exponent(gamma);
            let r = b.build(&ds, &cluster, d.k);
            if s == 0 {
                comm = r.metrics.total_comm_bytes();
            }
            sse += eval.sse(&r.histogram);
        }
        rows.push(Row {
            figure: "ablation-threshold".into(),
            series: format!("TwoLevel-S γ={gamma}"),
            x_label: format!("gamma={gamma}"),
            x: gamma,
            comm_bytes: comm,
            time_s: 0.0,
            sse: Some(sse / runs as f64),
        });
    }
    rows
}

/// Exact-oracle sanity row (not a paper figure; used by `figures all` to
/// log the centralized baseline cost).
pub fn oracle_row(d: &Defaults) -> Row {
    let ds = d.dataset();
    let r = Centralized::new().build(&ds, &d.cluster(), d.k);
    Row {
        figure: "oracle".into(),
        series: "Centralized".into(),
        x_label: "default".into(),
        x: 0.0,
        comm_bytes: r.metrics.total_comm_bytes(),
        time_s: r.metrics.sim_time_s,
        sse: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Defaults {
        Defaults::quick()
    }

    #[test]
    fn fig5_shapes_hold_at_quick_scale() {
        let rows = fig5(&quick());
        // 5 series × 5 k-values.
        assert_eq!(rows.len(), 25);
        // At every k: TwoLevel-S communicates less than Send-V by a lot.
        for k in [10.0, 30.0, 50.0] {
            let get = |name: &str| {
                rows.iter()
                    .find(|r| r.series == name && r.x == k)
                    .expect("row present")
                    .comm_bytes
            };
            assert!(get("TwoLevel-S") * 10 < get("Send-V"), "k={k}");
            // H-WTopk's pruning needs k ≪ u; at the quick scale (u = 2¹²)
            // k = 50 is out of proportion, so only check the sane regime.
            if k <= 30.0 {
                assert!(get("H-WTopk") < get("Send-V"), "k={k}");
            }
        }
    }

    #[test]
    fn fig6_exact_matches_ideal() {
        let rows = fig6(&quick());
        for k in [10.0, 50.0] {
            let sse = |name: &str| {
                rows.iter()
                    .find(|r| r.series == name && r.x == k)
                    .and_then(|r| r.sse)
                    .expect("sse present")
            };
            let ideal = sse("Ideal-SSE");
            assert!((sse("H-WTopk") - ideal).abs() <= 1e-6 * ideal.max(1.0));
            assert!(sse("TwoLevel-S") >= ideal * 0.999);
        }
    }

    #[test]
    fn fig8_costs_fall_with_growing_epsilon() {
        let rows = fig8(&quick());
        let two: Vec<&Row> = rows.iter().filter(|r| r.series == "TwoLevel-S").collect();
        assert!(two.len() >= 3);
        // Communication decreases as ε increases.
        assert!(two.first().expect("rows").comm_bytes > two.last().expect("rows").comm_bytes);
    }

    #[test]
    fn fig12_send_coef_degrades_with_u() {
        let d = quick();
        let rows = fig12(&d);
        let coef: Vec<u64> = rows
            .iter()
            .filter(|r| r.series == "Send-Coef")
            .map(|r| r.comm_bytes)
            .collect();
        assert!(coef.last().expect("rows") > coef.first().expect("rows"));
    }

    #[test]
    fn ablation_combiner_reduces_pairs() {
        let rows = ablation_combiner(&quick());
        assert!(rows[0].comm_bytes <= rows[1].comm_bytes);
    }
}
