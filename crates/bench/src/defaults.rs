//! Scaled experiment defaults.
//!
//! The paper runs on 10–400 GB datasets (n up to 54 billion, u = 2²⁹,
//! m = 200 splits, ε = 10⁻⁴). This harness keeps every *ratio* that
//! drives the algorithms' behaviour while shrinking absolute size:
//!
//! * sample fraction `1/(ε²n)`: paper ≈ 0.75% → here ≈ 0.95%;
//! * splits `m = 64` (same order as 200; sweeps go up to 512);
//! * domain `u = 2¹⁸` (dense ground truth for SSE stays cheap);
//! * `k = 30`, α = 1.1, bandwidth 50% — identical to the paper.

use wh_data::{Dataset, DatasetBuilder, Distribution};
use wh_mapreduce::ClusterConfig;
use wh_wavelet::Domain;

/// The scaled default parameters (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Defaults {
    /// Total records `n`.
    pub n: u64,
    /// `log₂ u`.
    pub log_u: u32,
    /// Number of splits `m`.
    pub m: u32,
    /// Histogram size `k`.
    pub k: usize,
    /// Sampling error parameter ε.
    pub epsilon: f64,
    /// Zipf skew α.
    pub alpha: f64,
    /// Stored record size in bytes.
    pub record_bytes: u32,
    /// Available bandwidth fraction `B`.
    pub bandwidth: f64,
    /// Dataset / sampling seed.
    pub seed: u64,
}

impl Default for Defaults {
    fn default() -> Self {
        Self {
            n: 1 << 22,
            log_u: 18,
            m: 64,
            k: 30,
            epsilon: 5e-3,
            alpha: 1.1,
            record_bytes: 4,
            bandwidth: 0.5,
            seed: 0x5eed,
        }
    }
}

impl Defaults {
    /// A much smaller configuration for smoke tests and `--quick` runs.
    pub fn quick() -> Self {
        Self {
            n: 1 << 17,
            log_u: 12,
            m: 16,
            epsilon: 2e-2,
            k: 30,
            alpha: 1.1,
            record_bytes: 4,
            bandwidth: 0.5,
            seed: 0x5eed,
        }
    }

    /// The default Zipf dataset under these parameters.
    pub fn dataset(&self) -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(self.log_u).expect("valid log_u"))
            .distribution(Distribution::Zipf { alpha: self.alpha })
            .records(self.n)
            .splits(self.m)
            .record_bytes(self.record_bytes)
            .seed(self.seed)
            .build()
    }

    /// The WorldCup-like dataset (Figs. 17–19): 40-byte records, same n.
    pub fn worldcup(&self) -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(self.log_u).expect("valid log_u"))
            .distribution(Distribution::WorldCup)
            .records(self.n)
            .splits(self.m)
            .record_bytes(wh_data::worldcup::WORLDCUP_RECORD_BYTES)
            .seed(self.seed ^ 0x98)
            .build()
    }

    /// The paper's cluster at this configuration's bandwidth fraction.
    pub fn cluster(&self) -> ClusterConfig {
        let mut c = ClusterConfig::paper_cluster();
        c.bandwidth_fraction = self.bandwidth;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_match_design() {
        let d = Defaults::default();
        let sample_fraction = 1.0 / (d.epsilon * d.epsilon) / d.n as f64;
        assert!(
            (0.005..0.02).contains(&sample_fraction),
            "sample fraction {sample_fraction}"
        );
        assert_eq!(d.dataset().num_splits(), 64);
        assert_eq!(d.cluster().bandwidth_fraction, 0.5);
    }

    #[test]
    fn quick_is_smaller() {
        let q = Defaults::quick();
        assert!(q.n < Defaults::default().n);
        assert!(q.dataset().num_records() == q.n);
    }

    #[test]
    fn worldcup_records_are_40_bytes() {
        let d = Defaults::quick();
        assert_eq!(d.worldcup().record_bytes(), 40);
    }
}
