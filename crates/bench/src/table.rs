//! Result rows, console tables and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// One measured point of one series of one figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Figure id, e.g. `fig5-comm`.
    pub figure: String,
    /// Series (algorithm) name, e.g. `TwoLevel-S`.
    pub series: String,
    /// Swept-parameter label (`k=30`, `eps=1e-3`, …).
    pub x_label: String,
    /// Swept-parameter numeric value.
    pub x: f64,
    /// Communication in bytes (0 when not applicable).
    pub comm_bytes: u64,
    /// Simulated running time in seconds.
    pub time_s: f64,
    /// SSE, when the figure measures quality.
    pub sse: Option<f64>,
}

/// Renders rows as an aligned console table grouped by x.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>16} {:>12} {:>14}",
        "series", "x", "comm (bytes)", "time (s)", "SSE"
    );
    let _ = writeln!(out, "{}", "-".repeat(84));
    for r in rows {
        let sse = r
            .sse
            .map_or_else(|| "-".to_string(), |s| format!("{s:.3e}"));
        let _ = writeln!(
            out,
            "{:<22} {:>14} {:>16} {:>12.1} {:>14}",
            r.series, r.x_label, r.comm_bytes, r.time_s, sse
        );
    }
    out
}

/// Writes rows as CSV to `dir/<figure>.csv` (one file per figure id).
pub fn write_csv(dir: &Path, figure: &str, rows: &[Row]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(dir.join(format!("{figure}.csv")))?;
    writeln!(f, "figure,series,x_label,x,comm_bytes,time_s,sse")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            r.figure,
            r.series,
            r.x_label,
            r.x,
            r.comm_bytes,
            r.time_s,
            r.sse.map_or_else(String::new, |s| s.to_string())
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Row> {
        vec![
            Row {
                figure: "figX".into(),
                series: "Send-V".into(),
                x_label: "k=10".into(),
                x: 10.0,
                comm_bytes: 12345,
                time_s: 99.5,
                sse: None,
            },
            Row {
                figure: "figX".into(),
                series: "TwoLevel-S".into(),
                x_label: "k=10".into(),
                x: 10.0,
                comm_bytes: 77,
                time_s: 1.25,
                sse: Some(1.5e12),
            },
        ]
    }

    #[test]
    fn render_contains_all_series() {
        let s = render(&sample_rows());
        assert!(s.contains("Send-V"));
        assert!(s.contains("TwoLevel-S"));
        assert!(s.contains("1.500e12"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("wh-bench-test");
        write_csv(&dir, "figX", &sample_rows()).unwrap();
        let content = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("figure,series"));
        assert!(lines[2].contains("TwoLevel-S"));
    }
}
