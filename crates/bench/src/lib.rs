//! # wh-bench — the experiment harness
//!
//! Regenerates every figure of the paper's evaluation section (§5,
//! Figs. 5–19) at a laptop-friendly scale. Each experiment sweeps one
//! parameter with the others at the scaled defaults of
//! [`defaults::Defaults`], runs the relevant algorithms, and reports the
//! same series the paper plots: communication bytes, simulated running
//! time on the paper's cluster, and SSE.
//!
//! Run `cargo run -p wh-bench --release --bin figures -- all` to
//! regenerate everything into `results/*.csv`, or pass a figure id
//! (`fig5`, `fig6`, …). EXPERIMENTS.md records the scaling and the
//! paper-vs-measured comparison per figure.
//!
//! The [`suite`] module is the engine-regression harness behind
//! `cargo run -p wh-bench --release --bin bench_suite`: a fixed set of
//! wall-clock benchmarks comparing the pipelined execution engine against
//! the preserved seed engine — at pinned 1- and 4-thread budgets as well
//! as unpinned — emitting `BENCH_PR10.json` and gating CI on >25 %
//! relative regressions per section, plus an absolute serving-rate
//! floor on the 4-thread leg's `serve_throughput`.

pub mod defaults;
pub mod figures;
pub mod suite;
pub mod table;

pub use defaults::Defaults;
pub use table::Row;
