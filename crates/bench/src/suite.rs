//! The fixed benchmark suite behind `BENCH_PR10.json` and the CI
//! regression gate.
//!
//! Sixteen benchmarks (fourteen everywhere, plus `wire_shuffle` and
//! `recovery_overhead` on Unix), each timing the **optimized** side
//! against a baseline measured in the same process and run:
//!
//! | name | optimized side | baseline side |
//! |---|---|---|
//! | `haar_forward` | in-place Haar transform | allocating transform |
//! | `radix_sort` | LSD radix sort of a spill run | stable comparison sort |
//! | `dense_combine` | dense-table combining (radix + domain hint) | hash-map combining |
//! | `dense_reduce` | dense-reduce strategy (flat slot arrays) | sort-at-reduce strategy |
//! | `shuffle_throughput` | radix shuffle → parallel dense reduce | global sort + sequential reduce |
//! | `wire_shuffle` (Unix) | multi-process engine: forked workers shipping framed pairs over pipes | the same job in-process |
//! | `recovery_overhead` (Unix) | multi-process engine with the PR 8 self-healing layer armed (retries + read deadline) | the same job with recovery disabled |
//! | `end_to_end_send_coef` | Send-Coef on the pipelined engine | Send-Coef on the seed engine |
//! | `end_to_end_send_v` | Send-V on the pipelined engine | Send-V on the seed engine |
//! | `end_to_end_two_level` | TwoLevel-S on the pipelined engine | TwoLevel-S on the seed engine |
//! | `query_throughput` | batched selectivity serving (`wh-query`) | one-at-a-time serving |
//! | `serve_throughput` | the sharded, epoch-swapped tier (`wh-serve`) | direct batched serving on the unsharded compiled form |
//! | `delta_merge_1pct` | incremental maintenance: delta-merge + re-snapshot at 1 % churn | dense from-scratch rebuild on the concatenated counts |
//! | `delta_merge_10pct` | the same at 10 % churn | the same full rebuild |
//! | `twod_build` | Send-Coef-2D on the pipelined engine (`(u16,u16)` keys, dense reduce) | Send-Coef-2D on the seed engine |
//! | `twod_query` | batched 2-D rectangle serving (endpoint sort + galloping walks) | one-rectangle-at-a-time serving |
//!
//! `wire_shuffle` is expected to *cost more* on its "optimized" side
//! (real fork + pipe + encode/decode versus in-memory moves): its gate
//! watches that overhead ratio, and its `items_per_s` reports measured
//! bytes-on-wire per second. `twod_query` can sit above 1.0 too — a 2-D
//! histogram's per-axis segment arrays are capped at `u ≤ 2¹⁶` entries,
//! so four tiny binary searches per rectangle are hard to beat and the
//! batched side's endpoint sort is overhead until batches meet larger
//! axes; the gate pins that ratio rather than assuming a speedup.
//!
//! Because both sides run on the same machine moments apart, the
//! per-bench `relative_cost` (`wall_s / reference_wall_s`) is portable
//! across machines — that ratio, not absolute seconds, is what
//! [`check_regression`] compares against the committed baseline, failing
//! on a >25 % regression. Output correctness is asserted, not assumed:
//! every engine-vs-engine bench requires bit-identical outputs and equal
//! logical metrics before its timing counts.
//!
//! The suite can pin an explicit thread budget ([`SuiteOptions::threads`]
//! sets both engines' map and reduce parallelism), and each `(fast,
//! threads)` combination regresses only against its own baseline section
//! ([`section_for`]): CI runs the fast suite at 1 and 4 threads, so the
//! gate watches the parallel speedups, not just the single-core ratios.

use std::time::Instant;

use wh_core::builders::{HistogramBuilder, SendCoef, SendV, TwoLevelS};
use wh_core::twod::{SendCoef2d, WaveletHistogram2d};
use wh_core::{MaintainedHistogram, WaveletHistogram};
use wh_data::twod::{Dataset2d, Distribution2d};
use wh_data::DatasetBuilder;
use wh_mapreduce::wire::WKey;
use wh_mapreduce::{radix, run_job, ClusterConfig, EngineConfig, JobSpec, MapTask, RunMetrics};
use wh_query::{BatchScratch, BatchScratch2D, CompiledHistogram, CompiledHistogram2D};
use wh_serve::ServeTier;
use wh_wavelet::twod::{forward2d, pack_slot};
use wh_wavelet::Domain;

/// How the suite is scaled.
#[derive(Debug, Clone, Copy)]
pub struct SuiteOptions {
    /// Shrinks every workload for CI smoke runs (`--fast`).
    pub fast: bool,
    /// Timed repetitions per side; the minimum is reported.
    pub repeats: usize,
    /// Thread budget pinned on **both** sides of every engine bench (map
    /// and reduce parallelism alike); `0` leaves the engines on their
    /// one-thread-per-core default. Each value gets its own baseline
    /// section (see [`section_for`]), because relative cost genuinely
    /// depends on it — the pipelined engine parallelizes where the
    /// reference engine is serial.
    pub threads: usize,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self {
            fast: false,
            repeats: 3,
            threads: 0,
        }
    }
}

/// Pins `threads` on every parallelism knob of `engine` (no-op when 0).
fn with_threads(engine: EngineConfig, threads: usize) -> EngineConfig {
    if threads == 0 {
        engine
    } else {
        engine
            .with_map_parallelism(threads)
            .with_reducer_parallelism(threads)
    }
}

/// One benchmark's outcome.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Stable benchmark id (JSON key).
    pub name: &'static str,
    /// Best wall-clock of the pipelined/optimised side, seconds.
    pub wall_s: f64,
    /// Best wall-clock of the baseline side, seconds.
    pub reference_wall_s: f64,
    /// Items (coefficients, pairs, records) processed per second by the
    /// pipelined side.
    pub items_per_s: f64,
    /// Whether both sides produced bit-identical outputs and equal
    /// logical metrics.
    pub outputs_match: bool,
    /// Measured bytes of intermediate pairs that crossed a real process
    /// boundary during the timed side (`RunMetrics::bytes_on_wire`);
    /// `0` for benches that never leave the process.
    pub bytes_on_wire: u64,
}

impl BenchRecord {
    /// Baseline time over pipelined time (>1 = the refactor is faster).
    pub fn speedup(&self) -> f64 {
        self.reference_wall_s / self.wall_s.max(1e-12)
    }

    /// Pipelined time over baseline time — the machine-portable quantity
    /// the regression gate compares.
    pub fn relative_cost(&self) -> f64 {
        self.wall_s / self.reference_wall_s.max(1e-12)
    }
}

fn time_best<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("at least one repetition"))
}

/// Runs the whole fixed suite.
pub fn run_suite(opts: SuiteOptions) -> Vec<BenchRecord> {
    let mut records = vec![
        haar_forward(opts),
        radix_sort(opts),
        dense_combine(opts),
        dense_reduce(opts),
        shuffle_throughput(opts),
    ];
    #[cfg(unix)]
    records.push(wire_shuffle(opts));
    #[cfg(unix)]
    records.push(recovery_overhead(opts));
    records.extend([
        end_to_end_send_coef(opts),
        end_to_end_send_v(opts),
        end_to_end_two_level(opts),
        query_throughput(opts),
        serve_throughput(opts),
        delta_merge("delta_merge_1pct", 1, opts),
        delta_merge("delta_merge_10pct", 10, opts),
        twod_build(opts),
        twod_query(opts),
    ]);
    records
}

/// The 2-D build path (PR 10): Send-Coef-2D on the pipelined engine —
/// per-split sparse 2-D transforms shipped as `(u16, u16)` coefficient
/// keys through a dense reduce — against the same builder on the seed
/// engine. Histograms must be **bit-identical** and logical metrics
/// equal; `items_per_s` reports records built per second.
fn twod_build(opts: SuiteOptions) -> BenchRecord {
    let (log_u, records, splits, k) = if opts.fast {
        (5u32, 40_000u64, 8u32, 24usize)
    } else {
        (6, 400_000, 16, 64)
    };
    let ds = Dataset2d::new(
        Domain::new(log_u).expect("valid log_u"),
        Distribution2d::Correlated {
            alpha: 1.1,
            spread: 2,
        },
        records,
        splits,
        0x2d,
    );
    let cluster = ClusterConfig::paper_cluster();
    let reducers = cluster.num_slaves() as u32;

    let (ref_s, reference) = time_best(opts.repeats, || {
        SendCoef2d::new()
            .with_engine(with_threads(
                EngineConfig::reference().with_reducers(reducers),
                opts.threads,
            ))
            .build(&ds, &cluster, k)
    });
    let (wall_s, ours) = time_best(opts.repeats, || {
        SendCoef2d::new()
            .with_engine(with_threads(
                EngineConfig::pipelined().with_reducers(reducers),
                opts.threads,
            ))
            .build(&ds, &cluster, k)
    });
    let same_histogram = ours.histogram.coefficients() == reference.histogram.coefficients();
    BenchRecord {
        name: "twod_build",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: records as f64 / wall_s.max(1e-12),
        outputs_match: same_histogram && ours.metrics == reference.metrics,
        bytes_on_wire: 0,
    }
}

/// 2-D rectangle serving (PR 10): batched range-selectivity over the
/// compiled summed-area form — per-axis endpoint radix sort plus one
/// galloping segment walk per axis — against answering the identical
/// rectangles one at a time (four binary searches each). Answers must be
/// bit-identical; `items_per_s` reports rectangle estimates per second.
/// With a pinned thread budget both sides split the batch across that
/// many serving threads sharing one `&CompiledHistogram2D`.
fn twod_query(opts: SuiteOptions) -> BenchRecord {
    let (log_u, k, num_queries) = if opts.fast {
        (6u32, 256usize, 60_000usize)
    } else {
        (8, 2_048, 400_000)
    };
    let domain = Domain::new(log_u).expect("valid log_u");
    let u = domain.u();

    // A heavy-tailed 2-D grid: a diagonal density band plus scattered
    // spikes, the correlated structure 1-D marginals would lose.
    let grid: Vec<f64> = (0..u * u)
        .map(|i| {
            let (x, y) = (i / u, i % u);
            let band = if x.abs_diff(y) < 4 { 50.0 } else { 0.0 };
            band + (scramble(i) % 7) as f64 + if scramble(i) % 601 == 0 { 900.0 } else { 0.0 }
        })
        .collect();
    let w = forward2d(domain, &grid);
    let top = wh_wavelet::select::top_k_magnitude(
        w.iter()
            .enumerate()
            .map(|(i, &c)| (pack_slot(i as u64 / u, i as u64 % u), c)),
        k,
    );
    let hist = WaveletHistogram2d::new(domain, top.iter().map(|e| (e.slot, e.value)));
    let compiled = CompiledHistogram2D::compile(&hist);

    // Rectangles of mixed aspect, scattered over the grid.
    let queries: Vec<(u64, u64, u64, u64)> = (0..num_queries as u64)
        .map(|i| {
            let xlo = scramble(i) % u;
            let ylo = scramble(i ^ 0x2d2d) % u;
            let xhi = (xlo + scramble(i ^ 0xa) % (u / 8).max(1)).min(u - 1);
            let yhi = (ylo + scramble(i ^ 0xb) % (u / 8).max(1)).min(u - 1);
            (xlo, xhi, ylo, yhi)
        })
        .collect();

    let threads = opts.threads.max(1);
    let chunk = num_queries.div_ceil(threads);
    let compiled = &compiled;

    let mut single_out = vec![0.0f64; num_queries];
    let (ref_s, ()) = time_best(opts.repeats, || {
        std::thread::scope(|s| {
            for (qs, outs) in queries.chunks(chunk).zip(single_out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (slot, &q) in outs.iter_mut().zip(qs) {
                        *slot = compiled.rectangle_sum(q);
                    }
                });
            }
        });
    });

    let mut scratches: Vec<BatchScratch2D> = (0..threads).map(|_| BatchScratch2D::new()).collect();
    let mut batch_out = vec![0.0f64; num_queries];
    let (wall_s, ()) = time_best(opts.repeats, || {
        std::thread::scope(|s| {
            for ((qs, outs), scratch) in queries
                .chunks(chunk)
                .zip(batch_out.chunks_mut(chunk))
                .zip(scratches.iter_mut())
            {
                s.spawn(move || compiled.rectangle_sum_batch_into(qs, scratch, outs));
            }
        });
    });

    let outputs_match = single_out
        .iter()
        .zip(&batch_out)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    BenchRecord {
        name: "twod_query",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: num_queries as f64 / wall_s.max(1e-12),
        outputs_match,
        bytes_on_wire: 0,
    }
}

/// Incremental maintenance vs full rebuild (PR 9): absorb a churn-sized
/// delta into a [`MaintainedHistogram`] and re-snapshot the top-k,
/// against rebuilding from scratch on the concatenated counts (dense
/// aggregate → `forward_in_place` → `top_k_magnitude`) — exactly the
/// exact-build pipeline a non-incremental refresh would rerun. Both
/// sides must produce **bit-identical** histograms; `churn_pct` sizes
/// the delta as a percentage of the base's distinct keys, and
/// `items_per_s` reports delta entries absorbed per second.
///
/// The timed side consumes one pre-cloned maintained state per
/// repetition: the clone is bench setup (a real deployment mutates its
/// one live state), so only `merge_delta` + `snapshot` are inside the
/// timer.
fn delta_merge(name: &'static str, churn_pct: u64, opts: SuiteOptions) -> BenchRecord {
    let log_u = if opts.fast { 14 } else { 20 };
    let domain = Domain::new(log_u).expect("valid log_u");
    let u = domain.u();
    let k = 64;
    // A sparse base — 1/32 of the domain carries data (duplicate draws
    // accumulate) — the regime where maintenance beats the dense rebuild
    // that must touch all `u` slots regardless.
    let distinct = (u / 32).max(1);
    let base_counts: Vec<(u64, u64)> = (0..distinct)
        .map(|i| (scramble(i) % u, scramble(i ^ 0xbace) % 200 + 1))
        .collect();
    let delta: Vec<(u64, u64)> = (0..(distinct * churn_pct / 100).max(1))
        .map(|i| (scramble(i ^ 0x0e17a) % u, scramble(i ^ 0x77) % 50 + 1))
        .collect();

    let base = {
        let mut m = MaintainedHistogram::new(domain, k);
        m.merge_delta(base_counts.iter().copied());
        m
    };

    let (ref_s, reference) = time_best(opts.repeats, || {
        let mut v = vec![0.0f64; u as usize];
        for &(x, c) in base_counts.iter().chain(&delta) {
            v[x as usize] += c as f64;
        }
        wh_wavelet::haar::forward_in_place(&mut v);
        let top = wh_wavelet::select::top_k_magnitude(
            v.iter().enumerate().map(|(s, &c)| (s as u64, c)),
            k,
        );
        WaveletHistogram::new(domain, top.iter().map(|e| (e.slot, e.value)))
    });

    let mut pool: Vec<MaintainedHistogram> =
        (0..opts.repeats.max(1)).map(|_| base.clone()).collect();
    let (wall_s, ours) = time_best(opts.repeats, || {
        let mut m = pool.pop().expect("one clone per repetition");
        m.merge_delta(delta.iter().copied());
        m.snapshot()
    });

    let outputs_match = ours.coefficients().len() == reference.coefficients().len()
        && ours
            .coefficients()
            .iter()
            .zip(reference.coefficients())
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
    BenchRecord {
        name,
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: delta.len() as f64 / wall_s.max(1e-12),
        outputs_match,
        bytes_on_wire: 0,
    }
}

/// Dense Haar transform: in-place vs allocating.
fn haar_forward(opts: SuiteOptions) -> BenchRecord {
    let log_u = if opts.fast { 16 } else { 20 };
    let u = 1usize << log_u;
    let input: Vec<f64> = (0..u).map(|i| ((i * 2654435761) % 997) as f64).collect();

    let (ref_s, reference) = time_best(opts.repeats, || wh_wavelet::haar::forward(&input));
    let (wall_s, ours) = time_best(opts.repeats, || {
        let mut w = input.clone();
        wh_wavelet::haar::forward_in_place(&mut w);
        w
    });
    BenchRecord {
        name: "haar_forward",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: u as f64 / wall_s.max(1e-12),
        outputs_match: ours == reference,
        bytes_on_wire: 0,
    }
}

/// SplitMix-style scramble used to generate unsorted, heavy-duplicate
/// key material deterministically.
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 27)
}

/// The radix-vs-comparison spill sort in the engine's actual regime: a
/// stream of spill-sized runs (task output ÷ partitions, the unit map
/// workers sort), 18-bit keys, heavy duplicates, unsorted arrival. The
/// radix side recycles one [`radix::RadixSorter`] across runs exactly
/// like a map worker. Output equality means the *identical permutation*,
/// ties included.
fn radix_sort(opts: SuiteOptions) -> BenchRecord {
    let (runs, run_len) = if opts.fast {
        (64, 5_000)
    } else {
        (128, 18_750)
    };
    let total = (runs * run_len) as u64;
    let base: Vec<Vec<(WKey, u64)>> = (0..runs as u64)
        .map(|r| {
            (0..run_len as u64)
                .map(|i| (WKey::four(scramble(i ^ (r << 40)) % (1 << 18)), i))
                .collect()
        })
        .collect();

    // Both sides restore the unsorted input with a flat copy into
    // preallocated buffers: the memcpy is shared and small, and no
    // allocator traffic dilutes the sort-time ratio the CI gate watches.
    let restore = |work: &mut [Vec<(WKey, u64)>]| {
        for (w, b) in work.iter_mut().zip(&base) {
            w.copy_from_slice(b);
        }
    };
    let mut work = base.clone();
    let (ref_s, ()) = time_best(opts.repeats, || {
        restore(&mut work);
        for run in &mut work {
            run.sort_by_key(|p| p.0);
        }
    });
    let reference = work;
    let mut work = base.clone();
    let mut sorter = radix::RadixSorter::new();
    let (wall_s, ()) = time_best(opts.repeats, || {
        restore(&mut work);
        for run in &mut work {
            sorter.sort(run);
        }
    });
    let ours = work;
    BenchRecord {
        name: "radix_sort",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: total as f64 / wall_s.max(1e-12),
        outputs_match: ours == reference,
        bytes_on_wire: 0,
    }
}

/// Dense-table vs hash-map combining: the same combiner-heavy wordcount
/// job on the pipelined engine, once with the radix codec + key-domain
/// hint (dense flat-array combine) and once without (sort/hash combine).
/// Outputs and logical metrics must be byte-identical.
fn dense_combine(opts: SuiteOptions) -> BenchRecord {
    let (splits, pairs_per_split) = if opts.fast {
        (8u32, 40_000u64)
    } else {
        (16, 150_000)
    };
    let domain = 1u64 << 12;
    let total_pairs = u64::from(splits) * pairs_per_split;
    let cluster = ClusterConfig::single_machine();

    let run = |use_hint: bool| {
        let tasks: Vec<MapTask<WKey, u64>> = (0..splits)
            .map(|j| {
                MapTask::new(j, move |ctx| {
                    for i in 0..pairs_per_split {
                        let z = scramble(i ^ (u64::from(j) << 40));
                        ctx.emit(WKey::four(z % domain), 1);
                    }
                })
            })
            .collect();
        let mut spec = JobSpec::new(
            "dense-combine",
            tasks,
            |k: &WKey, vs: &[u64], ctx: &mut wh_mapreduce::ReduceContext<(u64, u64)>| {
                ctx.emit((k.id, vs.iter().sum()));
            },
        )
        .with_combiner(|_k, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        })
        .with_engine(with_threads(
            EngineConfig::pipelined().with_reducers(4),
            opts.threads,
        ));
        if use_hint {
            spec = spec.with_radix_keys().with_engine(with_threads(
                EngineConfig::pipelined()
                    .with_reducers(4)
                    .with_key_domain(domain),
                opts.threads,
            ));
        }
        run_job(&cluster, spec)
    };

    let (ref_s, reference) = time_best(opts.repeats, || run(false));
    let (wall_s, ours) = time_best(opts.repeats, || run(true));
    BenchRecord {
        name: "dense_combine",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: total_pairs as f64 / wall_s.max(1e-12),
        outputs_match: ours.outputs == reference.outputs && ours.metrics == reference.metrics,
        bytes_on_wire: 0,
    }
}

/// Dense-reduce vs sort-at-reduce on a combiner-less bounded-domain
/// workload — the two strategies that take identical unsorted runs from
/// the map side: flat slot-array aggregation (radix codec + domain hint)
/// against one stable radix sort per partition (codec only). Outputs and
/// logical metrics must be byte-identical; without a combiner every
/// emitted pair reaches the reducers, which is exactly the regime
/// Send-Coef/Send-V put the reduce side in. Keys are
/// **range-partitioned**, the natural layout for coefficient indices
/// (contiguous wavelet subtrees per reducer) — and the layout the dense
/// strategy's partition-range-sized tables are built for: every
/// partition's slot array covers `domain / R` keys, not the whole
/// domain. Both sides run the identical partitioner.
///
/// Unlike the end-to-end benches, the timed quantity is the jobs'
/// **reduce-phase wall clock** (`RunMetrics::wall_reduce_s`): the map
/// and shuffle work is identical code on identical data for both
/// strategies (asserted via byte-identical outputs and metrics), so
/// timing whole jobs would only dilute the strategy ratio with shared
/// map-side noise. What is compared is exactly the machinery that
/// differs.
fn dense_reduce(opts: SuiteOptions) -> BenchRecord {
    let (splits, pairs_per_split) = if opts.fast {
        (8u32, 40_000u64)
    } else {
        (16, 150_000)
    };
    // A Send-Coef-shaped reduce domain: wide enough (2¹⁷ coefficient
    // keys) that a comparison-free flat table genuinely beats sorting —
    // at this width the radix sort needs LSD digit passes, while the
    // dense table stays one histogram regardless.
    let domain = 1u64 << 17;
    let reducers = 8u64;
    // Power-of-two range per reducer, so the (shared) partitioner is one
    // shift instead of a 64-bit division on the map side's hot path.
    let range_bits = (domain / reducers).trailing_zeros();
    let total_pairs = u64::from(splits) * pairs_per_split;
    let cluster = ClusterConfig::single_machine();

    let run = |hinted: bool| {
        let tasks: Vec<MapTask<u64, u64>> = (0..splits)
            .map(|j| {
                MapTask::new(j, move |ctx| {
                    for i in 0..pairs_per_split {
                        let z = scramble(i ^ (u64::from(j) << 40));
                        ctx.emit(z % domain, i);
                    }
                })
            })
            .collect();
        let mut engine = with_threads(
            EngineConfig::pipelined().with_reducers(reducers as u32),
            opts.threads,
        );
        if hinted {
            engine = engine.with_key_domain(domain);
        }
        let spec = JobSpec::new(
            "dense-reduce",
            tasks,
            |k: &u64, vs: &[u64], ctx: &mut wh_mapreduce::ReduceContext<(u64, u64)>| {
                ctx.emit((*k, vs.len() as u64));
            },
        )
        .with_radix_keys()
        .with_partitioner(move |k: &u64| k >> range_bits)
        .with_engine(engine);
        run_job(&cluster, spec)
    };

    // Best reduce-phase wall over the repeats; the last job's outputs
    // back the equality assertion.
    let phase_best = |hinted: bool| {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..opts.repeats.max(1) {
            let out = run(hinted);
            best = best.min(out.metrics.wall_reduce_s);
            last = Some(out);
        }
        (best, last.expect("at least one repetition"))
    };
    let (ref_s, reference) = phase_best(false);
    let (wall_s, ours) = phase_best(true);
    BenchRecord {
        name: "dense_reduce",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: total_pairs as f64 / wall_s.max(1e-12),
        outputs_match: ours.outputs == reference.outputs && ours.metrics == reference.metrics,
        bytes_on_wire: 0,
    }
}

/// Pure shuffle/reduce stress: mappers emit pre-generated unsorted pairs
/// (negligible map CPU), so the timing isolates the radix shuffle and
/// dense reduce against the seed global sort + sequential reduce.
fn shuffle_throughput(opts: SuiteOptions) -> BenchRecord {
    let (splits, pairs_per_split) = if opts.fast {
        (8, 40_000)
    } else {
        (16, 150_000)
    };
    let total_pairs = (splits * pairs_per_split) as u64;
    let cluster = ClusterConfig::single_machine();

    let run = |engine: EngineConfig| {
        let tasks: Vec<MapTask<u64, u64>> = (0..splits as u32)
            .map(|j| {
                MapTask::new(j, move |ctx| {
                    let mut x = 0x9e3779b97f4a7c15u64 ^ (u64::from(j) << 32);
                    for i in 0..pairs_per_split as u64 {
                        // SplitMix-style scramble: unsorted, heavy-duplicate keys.
                        x = x.wrapping_add(0x9e3779b97f4a7c15);
                        let mut z = x;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                        ctx.emit(z % (1 << 18), i);
                    }
                })
            })
            .collect();
        let spec = JobSpec::new(
            "shuffle-throughput",
            tasks,
            |k: &u64, vs: &[u64], ctx: &mut wh_mapreduce::ReduceContext<(u64, u64)>| {
                ctx.emit((*k, vs.len() as u64));
            },
        )
        // Radix-eligible 18-bit keys with a bounded domain: the pipelined
        // engine ships unsorted runs and dense-reduces each partition;
        // the reference engine ignores both knobs.
        .with_radix_keys()
        .with_engine(with_threads(
            engine.with_reducers(8).with_key_domain(1 << 18),
            opts.threads,
        ));
        run_job(&cluster, spec)
    };

    let (ref_s, reference) = time_best(opts.repeats, || run(EngineConfig::reference()));
    let (wall_s, ours) = time_best(opts.repeats, || run(EngineConfig::pipelined()));
    BenchRecord {
        name: "shuffle_throughput",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: total_pairs as f64 / wall_s.max(1e-12),
        outputs_match: ours.outputs == reference.outputs && ours.metrics == reference.metrics,
        bytes_on_wire: 0,
    }
}

/// Satellite (PR 7): the multi-process engine's framed shuffle against
/// the in-process pipelined engine on the identical job. The timed side
/// really forks map workers and ships every intermediate pair over a
/// Unix pipe in the wire encoding; `items_per_s` is measured
/// **bytes-on-wire per second**, and output equality demands the usual
/// bit-identical outputs and logical metrics across the process
/// boundary. The thread budget doubles as the worker-process count, so
/// the `_t1`/`_t4` sections gate 1- and 4-worker topologies.
#[cfg(unix)]
fn wire_shuffle(opts: SuiteOptions) -> BenchRecord {
    let (splits, pairs_per_split) = if opts.fast {
        (8, 40_000)
    } else {
        (16, 150_000)
    };
    let cluster = ClusterConfig::single_machine();

    let run = |engine: EngineConfig| {
        let tasks: Vec<MapTask<u64, u64>> = (0..splits as u32)
            .map(|j| {
                MapTask::new(j, move |ctx| {
                    let mut x = 0x9e3779b97f4a7c15u64 ^ (u64::from(j) << 32);
                    for i in 0..pairs_per_split as u64 {
                        x = x.wrapping_add(0x9e3779b97f4a7c15);
                        let mut z = x;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                        ctx.emit(z % (1 << 18), i);
                    }
                })
            })
            .collect();
        let spec = JobSpec::new(
            "wire-shuffle",
            tasks,
            |k: &u64, vs: &[u64], ctx: &mut wh_mapreduce::ReduceContext<(u64, u64)>| {
                ctx.emit((*k, vs.len() as u64));
            },
        )
        .with_radix_keys()
        .with_wire_codec()
        .with_engine(with_threads(
            engine.with_reducers(8).with_key_domain(1 << 18),
            opts.threads,
        ));
        run_job(&cluster, spec)
    };

    let (ref_s, reference) = time_best(opts.repeats, || run(EngineConfig::pipelined()));
    let (wall_s, ours) = time_best(opts.repeats, || run(EngineConfig::multi_process()));
    let bytes = ours.metrics.wire.pair_bytes;
    BenchRecord {
        name: "wire_shuffle",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: bytes as f64 / wall_s.max(1e-12),
        outputs_match: ours.outputs == reference.outputs
            && ours.metrics == reference.metrics
            && bytes > 0,
        bytes_on_wire: bytes,
    }
}

/// Fault-free cost of the PR 8 self-healing layer: the multi-process
/// engine with recovery armed (bounded task retries, idle read deadline
/// on every coordinator reader — the defaults) against the same job with
/// recovery disabled (`max_task_retries = 0`, no deadline — the PR 7
/// behavior). Both sides pay the CRC32C frame trailers, which are not
/// optional; their cost is gated by `wire_shuffle` against the PR 7
/// baseline instead. What this record isolates is the retry bookkeeping
/// and the poll-before-read deadline machinery, which is why its
/// `relative_cost` should sit at ~1.0. Outputs must be bit-identical and
/// the armed run must report a clean `RunMetrics::recovery` block.
#[cfg(unix)]
fn recovery_overhead(opts: SuiteOptions) -> BenchRecord {
    let (splits, pairs_per_split) = if opts.fast {
        (8, 40_000)
    } else {
        (16, 150_000)
    };
    let cluster = ClusterConfig::single_machine();

    let run = |engine: EngineConfig| {
        let tasks: Vec<MapTask<u64, u64>> = (0..splits as u32)
            .map(|j| {
                MapTask::new(j, move |ctx| {
                    let mut x = 0x517cc1b727220a95u64 ^ (u64::from(j) << 32);
                    for i in 0..pairs_per_split as u64 {
                        x = x.wrapping_add(0x9e3779b97f4a7c15);
                        let mut z = x;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                        ctx.emit(z % (1 << 18), i);
                    }
                })
            })
            .collect();
        let spec = JobSpec::new(
            "recovery-overhead",
            tasks,
            |k: &u64, vs: &[u64], ctx: &mut wh_mapreduce::ReduceContext<(u64, u64)>| {
                ctx.emit((*k, vs.len() as u64));
            },
        )
        .with_radix_keys()
        .with_wire_codec()
        .with_engine(with_threads(
            engine.with_reducers(8).with_key_domain(1 << 18),
            opts.threads,
        ));
        run_job(&cluster, spec)
    };

    let disarmed = EngineConfig::multi_process()
        .with_task_retries(0)
        .with_read_deadline_ms(0);
    let (ref_s, reference) = time_best(opts.repeats, || run(disarmed));
    let (wall_s, ours) = time_best(opts.repeats, || run(EngineConfig::multi_process()));
    let bytes = ours.metrics.wire.pair_bytes;
    BenchRecord {
        name: "recovery_overhead",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: bytes as f64 / wall_s.max(1e-12),
        outputs_match: ours.outputs == reference.outputs
            && ours.metrics == reference.metrics
            && !ours.metrics.recovery.recovered()
            && ours.metrics.recovery.attempts > 0
            && bytes > 0,
        bytes_on_wire: bytes,
    }
}

fn zipf_dataset(opts: SuiteOptions, alpha: f64, seed: u64, log_u_full: u32) -> wh_data::Dataset {
    let (n, log_u, m) = if opts.fast {
        (1u64 << 17, 13, 16)
    } else {
        (1u64 << 21, log_u_full, 64)
    };
    DatasetBuilder::new()
        .domain(Domain::new(log_u).expect("valid log_u"))
        .distribution(wh_data::Distribution::Zipf { alpha })
        .records(n)
        .splits(m)
        .seed(seed)
        .build()
}

fn end_to_end<B: HistogramBuilder>(
    name: &'static str,
    dataset: &wh_data::Dataset,
    k: usize,
    opts: SuiteOptions,
    make: impl Fn(EngineConfig) -> B,
) -> BenchRecord {
    let cluster = ClusterConfig::paper_cluster();
    // One reduce slot per slave of the paper cluster, Hadoop's natural
    // multi-reducer deployment.
    let reducers = cluster.num_slaves() as u32;
    let (ref_s, reference) = time_best(opts.repeats, || {
        make(with_threads(
            EngineConfig::reference().with_reducers(reducers),
            opts.threads,
        ))
        .build(dataset, &cluster, k)
    });
    let (wall_s, ours) = time_best(opts.repeats, || {
        make(with_threads(
            EngineConfig::pipelined().with_reducers(reducers),
            opts.threads,
        ))
        .build(dataset, &cluster, k)
    });
    let same_histogram = ours.histogram.coefficients() == reference.histogram.coefficients();
    let same_metrics: bool = {
        let a: &RunMetrics = &ours.metrics;
        a == &reference.metrics
    };
    BenchRecord {
        name,
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: dataset.num_records() as f64 / wall_s.max(1e-12),
        outputs_match: same_histogram && same_metrics,
        bytes_on_wire: 0,
    }
}

/// Send-Coef end to end: every key touches `log u + 1` coefficients, so
/// this is the paper's shuffle-explosive algorithm — the regime the
/// pipelined engine exists for.
fn end_to_end_send_coef(opts: SuiteOptions) -> BenchRecord {
    let ds = zipf_dataset(opts, 0.8, 0x5eed, 18);
    end_to_end("end_to_end_send_coef", &ds, 30, opts, |engine| {
        SendCoef::new().with_engine(engine)
    })
}

/// Send-V end to end on low-skew Zipf data (α = 0.7 keeps per-split
/// frequency vectors dense, the regime where Send-V is shuffle-bound).
fn end_to_end_send_v(opts: SuiteOptions) -> BenchRecord {
    let ds = zipf_dataset(opts, 0.7, 0x5eed, 17);
    end_to_end("end_to_end_send_v", &ds, 30, opts, |engine| {
        SendV::new().with_engine(engine)
    })
}

/// TwoLevel-S end to end on the paper's default skew (sampling keeps the
/// shuffle tiny, so this guards the map/sample path's wall-clock).
fn end_to_end_two_level(opts: SuiteOptions) -> BenchRecord {
    let ds = zipf_dataset(opts, 1.1, 0x5eed, 17);
    end_to_end("end_to_end_two_level", &ds, 30, opts, |engine| {
        TwoLevelS::new(5e-3, 7).with_engine(engine)
    })
}

/// The serving subsystem end to end: answer a large batch of range
/// selectivity queries over a built, compiled `k`-term histogram. The
/// baseline side serves the queries **one at a time** (two `O(log k)`
/// binary searches each); the optimized side serves the identical batch
/// through `wh-query`'s batched path (radix-sort the endpoints, resolve
/// them in one galloping walk over the segments) — the answers must be
/// bit-identical.
///
/// When a thread budget is pinned ([`SuiteOptions::threads`]), **both**
/// sides split the batch across that many serving threads sharing one
/// `&CompiledHistogram` — the thread-per-core deployment the compiled
/// form's `Sync` immutability exists for — so the ratio isolates
/// batching, not parallelism. The histogram is the top-`k` of the exact
/// transform of a skewed synthetic frequency vector (what an exact
/// builder would ship at this domain scale); compilation is one-time
/// and untimed, as in a real serving deployment.
fn query_throughput(opts: SuiteOptions) -> BenchRecord {
    let (log_u, k, num_queries) = if opts.fast {
        (18u32, 16_384usize, 150_000usize)
    } else {
        (22, 65_536, 1_000_000)
    };
    let domain = Domain::new(log_u).expect("valid log_u");
    let u = domain.u();

    // A heavy-tailed frequency vector: most keys small, scattered spikes.
    let freq: Vec<f64> = (0..u)
        .map(|x| {
            let z = scramble(x);
            (z % 97) as f64 + if z % 1021 == 0 { 4_000.0 } else { 0.0 }
        })
        .collect();
    let w = wh_wavelet::haar::forward(&freq);
    let top =
        wh_wavelet::select::top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
    let hist = WaveletHistogram::new(domain, top.iter().map(|e| (e.slot, e.value)));
    let compiled = CompiledHistogram::compile(&hist);

    // Range predicates of mixed width, scattered over the domain.
    let queries: Vec<(u64, u64)> = (0..num_queries as u64)
        .map(|i| {
            let lo = scramble(i) % u;
            let len = scramble(i ^ 0x00c0ffee) % (u / 64).max(1);
            (lo, (lo + len).min(u - 1))
        })
        .collect();

    let threads = opts.threads.max(1);
    let chunk = num_queries.div_ceil(threads);
    let compiled = &compiled;

    let mut single_out = vec![0.0f64; num_queries];
    let (ref_s, ()) = time_best(opts.repeats, || {
        std::thread::scope(|s| {
            for (qs, outs) in queries.chunks(chunk).zip(single_out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (slot, &(lo, hi)) in outs.iter_mut().zip(qs) {
                        *slot = compiled.range_sum(lo, hi);
                    }
                });
            }
        });
    });

    // Per-thread scratch allocated once and recycled across repetitions,
    // exactly like a warm serving loop.
    let mut scratches: Vec<BatchScratch> = (0..threads).map(|_| BatchScratch::new()).collect();
    let mut batch_out = vec![0.0f64; num_queries];
    let (wall_s, ()) = time_best(opts.repeats, || {
        std::thread::scope(|s| {
            for ((qs, outs), scratch) in queries
                .chunks(chunk)
                .zip(batch_out.chunks_mut(chunk))
                .zip(scratches.iter_mut())
            {
                s.spawn(move || compiled.range_sum_batch_into(qs, scratch, outs));
            }
        });
    });

    let outputs_match = single_out
        .iter()
        .zip(&batch_out)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    BenchRecord {
        name: "query_throughput",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: num_queries as f64 / wall_s.max(1e-12),
        outputs_match,
        bytes_on_wire: 0,
    }
}

/// Absolute throughput floor CI enforces on `serve_throughput` on the
/// 4-thread gate leg (estimates per second across all serving threads).
/// Unlike the relative-cost gate this is machine-sensitive by design:
/// the tier's whole point is raw serving rate, and a deployment that
/// cannot clear tens of millions of estimates per second on four cores
/// has lost the batched fast path somewhere (per-query dispatch, a
/// snapshot clone per batch, a lock on the read path, …).
pub const SERVE_T4_FLOOR_ESTIMATES_PER_S: f64 = 1.0e7;

/// The serving **tier** end to end: the same closed-loop, thread-per-core
/// deployment as [`query_throughput`]'s optimized side, but pushed
/// through `wh-serve` — dataset lookup in an epoch snapshot, key-range
/// routing across one shard per serving thread, per-shard galloping
/// walks, and the fallible (`try_*`) query path — instead of calling the
/// unsharded [`CompiledHistogram`] directly. The reference side *is* that
/// direct batched serving, so the ratio isolates exactly what the tier
/// adds: snapshot acquisition (one atomic epoch load per batch on the
/// warm path), shard routing, and error plumbing. Answers must be
/// bit-identical; the tier's absolute rate also feeds the
/// [`SERVE_T4_FLOOR_ESTIMATES_PER_S`] gate.
///
/// Each thread is a closed-loop load generator: it owns one
/// [`ServeHandle`](wh_serve::ServeHandle) (scratch and cached snapshot
/// recycled across batches, like a warm server thread) and issues its
/// next batch the moment the previous one is answered, for a fixed
/// number of rounds per timed repetition.
fn serve_throughput(opts: SuiteOptions) -> BenchRecord {
    let (log_u, k, num_queries) = if opts.fast {
        (18u32, 16_384usize, 150_000usize)
    } else {
        (22, 65_536, 1_000_000)
    };
    /// Batches each generator thread issues per timed repetition.
    const ROUNDS: usize = 4;
    let domain = Domain::new(log_u).expect("valid log_u");
    let u = domain.u();

    // A heavy-tailed frequency vector (different scramble stream from
    // `query_throughput`, so the two benches are independent workloads).
    let freq: Vec<f64> = (0..u)
        .map(|x| {
            let z = scramble(x ^ 0x5e57e);
            (z % 89) as f64 + if z % 997 == 0 { 3_000.0 } else { 0.0 }
        })
        .collect();
    let records = freq.iter().sum::<f64>() as u64;
    let w = wh_wavelet::haar::forward(&freq);
    let top =
        wh_wavelet::select::top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
    let hist = WaveletHistogram::new(domain, top.iter().map(|e| (e.slot, e.value)));
    let compiled = CompiledHistogram::compile(&hist);

    let queries: Vec<(u64, u64)> = (0..num_queries as u64)
        .map(|i| {
            let lo = scramble(i ^ 0xd15c0) % u;
            let len = scramble(i ^ 0x00c0ffee) % (u / 64).max(1);
            (lo, (lo + len).min(u - 1))
        })
        .collect();

    let threads = opts.threads.max(1);
    let chunk = num_queries.div_ceil(threads);
    let compiled_ref = &compiled;

    // Reference: direct batched selectivity over the unsharded compiled
    // form — the fast path the tier must not give back.
    let mut scratches: Vec<BatchScratch> = (0..threads).map(|_| BatchScratch::new()).collect();
    let mut direct_out = vec![0.0f64; num_queries];
    let (ref_s, ()) = time_best(opts.repeats, || {
        std::thread::scope(|s| {
            for ((qs, outs), scratch) in queries
                .chunks(chunk)
                .zip(direct_out.chunks_mut(chunk))
                .zip(scratches.iter_mut())
            {
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        compiled_ref.selectivity_batch_into(qs, records, scratch, outs);
                    }
                });
            }
        });
    });

    // Optimized: the tier, one shard per serving thread, each thread
    // driving its own handle in a closed loop.
    let tier = ServeTier::new(threads);
    tier.publish(0, &compiled, records);
    let mut handles: Vec<_> = (0..threads).map(|_| tier.handle()).collect();
    let mut tier_out = vec![0.0f64; num_queries];
    let (wall_s, ()) = time_best(opts.repeats, || {
        std::thread::scope(|s| {
            for ((qs, outs), handle) in queries
                .chunks(chunk)
                .zip(tier_out.chunks_mut(chunk))
                .zip(handles.iter_mut())
            {
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        handle
                            .try_selectivity_batch_into(0, qs, outs)
                            .expect("bench queries are valid");
                    }
                });
            }
        });
    });

    let outputs_match = direct_out
        .iter()
        .zip(&tier_out)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    BenchRecord {
        name: "serve_throughput",
        wall_s,
        reference_wall_s: ref_s,
        items_per_s: (ROUNDS * num_queries) as f64 / wall_s.max(1e-12),
        outputs_match,
        bytes_on_wire: 0,
    }
}

/// Section name a `(fast, threads)` combination's records live under in
/// the report. Full-scale runs and fast (CI smoke) runs are **not**
/// comparable to each other — fast workloads are far less shuffle-bound —
/// and neither are runs at different pinned thread budgets, because more
/// threads lower the pipelined engine's relative cost while the reference
/// engine stays serial. So each combination regresses only against its
/// own committed section: `benches` / `fast_benches` for unpinned runs,
/// with a `_t{threads}` suffix when a budget is pinned (the CI matrix
/// gates `fast_benches_t1` and `fast_benches_t4`).
pub fn section_for(fast: bool, threads: usize) -> String {
    let base = if fast { "fast_benches" } else { "benches" };
    if threads == 0 {
        base.to_string()
    } else {
        format!("{base}_t{threads}")
    }
}

fn render_section(out: &mut String, name: &str, records: &[BenchRecord], last: bool) {
    out.push_str(&format!("  \"{name}\": [\n"));
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"reference_wall_s\": {:.6}, \
             \"speedup\": {:.3}, \"relative_cost\": {:.4}, \"items_per_s\": {:.1}, \
             \"outputs_match\": {}, \"bytes_on_wire\": {}}}{}\n",
            r.name,
            r.wall_s,
            r.reference_wall_s,
            r.speedup(),
            r.relative_cost(),
            r.items_per_s,
            r.outputs_match,
            r.bytes_on_wire,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str(if last { "  ]\n" } else { "  ],\n" });
}

/// Renders the machine-readable suite report (the `BENCH_PR10.json`
/// schema): one JSON array per `(section name, records)` pair. Any subset
/// of sections may be present; the committed baseline carries every
/// combination CI gates plus the unpinned full/fast sections, so each
/// kind of run has a like-for-like reference.
pub fn render_json(sections: &[(String, Vec<BenchRecord>)], repeats: usize) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"wh-bench-suite/1\",\n");
    out.push_str("  \"suite\": \"PR10\",\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    if sections.is_empty() {
        out.push_str("  \"benches\": []\n");
    }
    for (i, (name, records)) in sections.iter().enumerate() {
        render_section(&mut out, name, records, i + 1 == sections.len());
    }
    out.push_str("}\n");
    out
}

/// The pipelined side of a bench must clear this wall-clock floor before
/// its timing ratio is compared: below a few milliseconds, scheduler
/// jitter on a shared CI runner routinely exceeds any sane tolerance, so
/// a ratio check would only produce flakes — and a bench whose pipelined
/// side still finishes under the floor cannot hide a regression of
/// practical size. A slow pipelined side is always checked, however tiny
/// the reference side. Output equality is enforced regardless.
pub const MIN_COMPARABLE_WALL_S: f64 = 0.005;

/// Compares `records` against the named section of a committed baseline
/// JSON (use [`section_for`] to derive the section from the run's mode
/// and thread budget). A bench regresses when its `relative_cost`
/// (pipelined ÷ reference, measured on the *same* machine) grows by more
/// than `tolerance` (0.25 = 25 %) over the baseline's, or when outputs
/// stop matching. Absolute seconds are deliberately not compared — CI
/// machines differ from the one that committed the baseline — and benches
/// whose pipelined side runs below [`MIN_COMPARABLE_WALL_S`] are exempt
/// from the ratio check (timing noise, not signal).
///
/// One asymmetry to know about: the committed baseline records its core
/// count, and more cores lower the true relative cost (the pipelined
/// engine parallelizes where the reference engine is serial). Checking a
/// multi-core run against a lower-core baseline therefore only adds
/// slack — the gate never false-fails from core count, it just catches
/// only grosser regressions until the baseline is regenerated on
/// runner-shaped hardware. The pinned-thread sections (`…_t1`, `…_t4`)
/// exist to shrink exactly that slack: a `_t4` run compares against a
/// `_t4` baseline, so the gate finally sees the parallel speedups.
pub fn check_regression(
    baseline_json: &str,
    records: &[BenchRecord],
    section: &str,
    tolerance: f64,
) -> Result<(), Vec<String>> {
    let baseline = match serde_json::parse(baseline_json) {
        Ok(v) => v,
        Err(e) => return Err(vec![format!("baseline JSON unreadable: {e:?}")]),
    };
    let mut errors = Vec::new();
    let benches = match baseline.get(section).and_then(|b| match b {
        serde_json::Value::Array(items) => Some(items.clone()),
        _ => None,
    }) {
        Some(items) => items,
        None => {
            return Err(vec![format!(
                "baseline has no \"{section}\" section — regenerate it with --baseline"
            )])
        }
    };
    for r in records {
        if !r.outputs_match {
            errors.push(format!("{}: outputs diverged between engines", r.name));
        }
        let base = benches.iter().find(|b| {
            b.get("name")
                .and_then(|n| match n {
                    serde_json::Value::Str(s) => Some(s == r.name),
                    _ => None,
                })
                .unwrap_or(false)
        });
        let Some(base) = base else {
            errors.push(format!("{}: missing from baseline", r.name));
            continue;
        };
        if r.wall_s < MIN_COMPARABLE_WALL_S {
            // Too fast to time meaningfully on a shared runner; output
            // equality above is the whole check.
            continue;
        }
        let Some(base_cost) = base
            .get("relative_cost")
            .and_then(serde_json::Value::as_f64)
        else {
            // A silent default here could mask a real regression (e.g. a
            // true cost of 0.38 judged against 1.0); fail loudly instead.
            errors.push(format!(
                "{}: baseline entry has no numeric relative_cost — regenerate the baseline",
                r.name
            ));
            continue;
        };
        let allowed = base_cost * (1.0 + tolerance);
        if r.relative_cost() > allowed {
            errors.push(format!(
                "{}: relative cost {:.4} exceeds baseline {:.4} by more than {:.0}% (limit {:.4})",
                r.name,
                r.relative_cost(),
                base_cost,
                tolerance * 100.0,
                allowed
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Renders a GitHub-flavored-markdown table of per-bench deltas between
/// the committed baseline section and `records` — what the CI bench job
/// appends to `$GITHUB_STEP_SUMMARY`, so a regression is readable in the
/// run summary without downloading the report artifact. Entries the
/// baseline cannot resolve render as `—`; this function never fails, it
/// only reports ([`check_regression`] is the gate).
/// Human-readable bytes for the delta table: `—` when nothing crossed a
/// process boundary.
fn format_wire_bytes(bytes: u64) -> String {
    if bytes == 0 {
        "—".to_string()
    } else if bytes < 1 << 20 {
        format!("{bytes} B")
    } else {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    }
}

pub fn render_delta_table(baseline_json: &str, records: &[BenchRecord], section: &str) -> String {
    let baseline = serde_json::parse(baseline_json).ok();
    let benches = baseline
        .as_ref()
        .and_then(|b| b.get(section))
        .and_then(|b| match b {
            serde_json::Value::Array(items) => Some(items.clone()),
            _ => None,
        });
    let mut out = format!("### Bench gate — `{section}`\n\n");
    out.push_str("| bench | baseline cost | current cost | delta | bytes on wire | outputs |\n");
    out.push_str("|---|---:|---:|---:|---:|:---:|\n");
    for r in records {
        let base_cost = benches.as_ref().and_then(|items| {
            items
                .iter()
                .find(|b| matches!(b.get("name"), Some(serde_json::Value::Str(s)) if s == r.name))
                .and_then(|b| b.get("relative_cost"))
                .and_then(serde_json::Value::as_f64)
        });
        let current = r.relative_cost();
        let (base_cell, delta_cell) = match base_cost {
            Some(b) if b > 0.0 => (
                format!("{b:.4}"),
                format!("{:+.1}%", (current / b - 1.0) * 100.0),
            ),
            _ => ("—".to_string(), "—".to_string()),
        };
        // Sub-noise-floor timings are exempt from the gate; mark them so
        // a reader does not chase a phantom delta.
        let noise = if r.wall_s < MIN_COMPARABLE_WALL_S {
            " (below noise floor)"
        } else {
            ""
        };
        out.push_str(&format!(
            "| {} | {} | {:.4} | {}{} | {} | {} |\n",
            r.name,
            base_cell,
            current,
            delta_cell,
            noise,
            format_wire_bytes(r.bytes_on_wire),
            if r.outputs_match {
                "✓"
            } else {
                "✗ diverged"
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, wall: f64, reference: f64) -> BenchRecord {
        BenchRecord {
            name,
            wall_s: wall,
            reference_wall_s: reference,
            items_per_s: 1.0,
            outputs_match: true,
            bytes_on_wire: 0,
        }
    }

    fn one_section(name: &str, records: &[BenchRecord]) -> String {
        render_json(&[(name.to_string(), records.to_vec())], 3)
    }

    #[test]
    fn section_names_encode_mode_and_thread_budget() {
        assert_eq!(section_for(false, 0), "benches");
        assert_eq!(section_for(true, 0), "fast_benches");
        assert_eq!(section_for(true, 1), "fast_benches_t1");
        assert_eq!(section_for(true, 4), "fast_benches_t4");
        assert_eq!(section_for(false, 8), "benches_t8");
    }

    #[test]
    fn json_roundtrips_through_vendored_parser() {
        let full = vec![record("haar_forward", 0.5, 1.0)];
        let fast_t1 = vec![record("haar_forward", 0.1, 0.15)];
        let fast_t4 = vec![record("haar_forward", 0.1, 0.3)];
        let json = render_json(
            &[
                (section_for(false, 0), full.clone()),
                (section_for(true, 1), fast_t1.clone()),
                (section_for(true, 4), fast_t4.clone()),
            ],
            3,
        );
        let v = serde_json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("schema"),
            Some(&serde_json::Value::Str("wh-bench-suite/1".into()))
        );
        assert_eq!(v.get("suite"), Some(&serde_json::Value::Str("PR10".into())));
        // Round-trip gate: the file we commit must satisfy our own checker,
        // per section.
        check_regression(&json, &full, "benches", 0.25).expect("full self-comparison");
        check_regression(&json, &fast_t1, "fast_benches_t1", 0.25).expect("t1 self-comparison");
        check_regression(&json, &fast_t4, "fast_benches_t4", 0.25).expect("t4 self-comparison");
        // Thread sections are independent: t4's better ratio must not
        // leak into the t1 comparison and vice versa.
        assert!(check_regression(&json, &fast_t1, "fast_benches_t4", 0.25).is_err());
    }

    #[test]
    fn regression_detected_beyond_tolerance() {
        let baseline = one_section("benches", &[record("x", 0.5, 1.0)]);
        // Same relative cost: fine.
        check_regression(&baseline, &[record("x", 1.0, 2.0)], "benches", 0.25)
            .expect("no regression");
        // 2× relative cost: flagged.
        let got = check_regression(&baseline, &[record("x", 1.0, 1.0)], "benches", 0.25);
        assert!(got.is_err());
        // Diverged outputs always fail.
        let mut bad = record("x", 0.5, 1.0);
        bad.outputs_match = false;
        assert!(check_regression(&baseline, &[bad], "benches", 0.25).is_err());
    }

    #[test]
    fn modes_regress_only_against_their_own_section() {
        let full_only = one_section("benches", &[record("x", 0.5, 1.0)]);
        // A fast-mode run cannot be judged against a full-only baseline.
        let err = check_regression(
            &full_only,
            &[record("x", 0.5, 1.0)],
            "fast_benches_t4",
            0.25,
        )
        .unwrap_err();
        assert!(err[0].contains("fast_benches_t4"), "{err:?}");
    }

    #[test]
    fn sub_millisecond_benches_skip_the_ratio_check() {
        let baseline = one_section("benches", &[record("tiny", 0.0001, 0.0002)]);
        // 10x relative-cost growth, but the pipelined side is below the
        // noise floor: only output equality is enforced.
        check_regression(&baseline, &[record("tiny", 0.002, 0.0004)], "benches", 0.25)
            .expect("noise-floor benches are exempt from ratio checks");
        let mut bad = record("tiny", 0.0001, 0.0002);
        bad.outputs_match = false;
        assert!(check_regression(&baseline, &[bad], "benches", 0.25).is_err());
        // A pipelined side well above the floor is checked even against a
        // tiny reference side — that shape is a real regression.
        assert!(
            check_regression(&baseline, &[record("tiny", 0.1, 0.0004)], "benches", 0.25).is_err()
        );
    }

    #[test]
    fn baseline_without_relative_cost_fails_loudly() {
        let baseline = r#"{"schema": "wh-bench-suite/1", "benches": [{"name": "x"}]}"#;
        let err =
            check_regression(baseline, &[record("x", 1.0, 1.0)], "benches", 0.25).unwrap_err();
        assert!(
            err.iter().any(|e| e.contains("no numeric relative_cost")),
            "{err:?}"
        );
    }

    #[test]
    fn missing_bench_in_baseline_is_an_error() {
        let baseline = one_section("benches", &[record("x", 0.5, 1.0)]);
        let err =
            check_regression(&baseline, &[record("y", 0.5, 1.0)], "benches", 0.25).unwrap_err();
        assert!(
            err.iter().any(|e| e.contains("missing from baseline")),
            "{err:?}"
        );
    }

    #[test]
    fn delta_table_reports_costs_and_divergence() {
        let baseline = one_section("fast_benches_t1", &[record("x", 0.5, 1.0)]);
        let mut diverged = record("z", 0.2, 0.4);
        diverged.outputs_match = false;
        let table = render_delta_table(
            &baseline,
            &[record("x", 0.75, 1.0), diverged],
            "fast_benches_t1",
        );
        assert!(table.contains("`fast_benches_t1`"), "{table}");
        // x: baseline cost 0.5, current 0.75 → +50%; no wire traffic.
        assert!(
            table.contains("| x | 0.5000 | 0.7500 | +50.0% | — | ✓ |"),
            "{table}"
        );
        // z: no baseline entry → em-dashes, divergence flagged.
        assert!(
            table.contains("| z | — | 0.5000 | — | — | ✗ diverged |"),
            "{table}"
        );
    }

    #[test]
    fn delta_table_renders_measured_wire_bytes() {
        let baseline = one_section("fast_benches_t1", &[record("wire_shuffle", 0.5, 0.25)]);
        let mut wired = record("wire_shuffle", 0.5, 0.25);
        wired.bytes_on_wire = 3 << 20;
        let table = render_delta_table(&baseline, &[wired], "fast_benches_t1");
        assert!(table.contains("| 3.0 MiB |"), "{table}");
        assert_eq!(format_wire_bytes(0), "—");
        assert_eq!(format_wire_bytes(512), "512 B");
        assert_eq!(format_wire_bytes(1 << 21), "2.0 MiB");
    }

    #[test]
    fn json_carries_bytes_on_wire() {
        let mut r = record("wire_shuffle", 0.5, 0.25);
        r.bytes_on_wire = 12_345;
        let json = one_section("benches", &[r]);
        let v = serde_json::parse(&json).expect("valid JSON");
        let bench = match v.get("benches") {
            Some(serde_json::Value::Array(items)) => items[0].clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(
            bench
                .get("bytes_on_wire")
                .and_then(serde_json::Value::as_f64),
            Some(12_345.0)
        );
    }

    #[test]
    fn fast_suite_smoke() {
        // The real thing, tiny: engines must agree on every bench. A
        // pinned thread budget exercises the parallelism plumbing even on
        // a single-core test machine.
        let records = run_suite(SuiteOptions {
            fast: true,
            repeats: 1,
            threads: 2,
        });
        assert_eq!(records.len(), 14 + 2 * usize::from(cfg!(unix)));
        for r in &records {
            assert!(r.outputs_match, "{} outputs diverged", r.name);
            assert!(r.wall_s > 0.0 && r.reference_wall_s > 0.0, "{}", r.name);
        }
        // The wire bench must have measured real cross-process traffic.
        if let Some(w) = records.iter().find(|r| r.name == "wire_shuffle") {
            assert!(w.bytes_on_wire > 0, "wire_shuffle measured no traffic");
        }
    }
}
