//! Regenerates the paper's figures.
//!
//! ```text
//! cargo run -p wh-bench --release --bin figures -- all
//! cargo run -p wh-bench --release --bin figures -- fig5 fig6
//! cargo run -p wh-bench --release --bin figures -- --quick all
//! cargo run -p wh-bench --release --bin figures -- --n 1048576 --logu 16 fig14
//! ```
//!
//! CSV output lands in `results/` (override with `--out DIR`).

use std::path::PathBuf;
use std::time::Instant;

use wh_bench::defaults::Defaults;
use wh_bench::figures::{self, ALL_FIGURES};
use wh_bench::table;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--quick] [--n N] [--logu L] [--m M] [--k K] [--eps E] \
         [--alpha A] [--bandwidth F] [--seed S] [--out DIR] <fig5..fig19|ablations|all>..."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut d = Defaults::default();
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut next_f64 = |name: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--{name} needs a numeric argument"))
        };
        match a.as_str() {
            "--quick" => {
                d = Defaults {
                    seed: d.seed,
                    ..Defaults::quick()
                }
            }
            "--n" => d.n = next_f64("n") as u64,
            "--logu" => d.log_u = next_f64("logu") as u32,
            "--m" => d.m = next_f64("m") as u32,
            "--k" => d.k = next_f64("k") as usize,
            "--eps" => d.epsilon = next_f64("eps"),
            "--alpha" => d.alpha = next_f64("alpha"),
            "--bandwidth" => d.bandwidth = next_f64("bandwidth"),
            "--seed" => d.seed = next_f64("seed") as u64,
            "--out" => out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            other if other.starts_with("--") => usage(),
            fig => targets.push(fig.to_string()),
        }
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
        targets.push("ablations".into());
    }
    if targets.is_empty() {
        usage();
    }

    println!(
        "defaults: n={} log2u={} m={} k={} eps={:.1e} alpha={} bandwidth={} seed={}",
        d.n, d.log_u, d.m, d.k, d.epsilon, d.alpha, d.bandwidth, d.seed
    );
    for t in &targets {
        let started = Instant::now();
        let rows = if t == "ablations" {
            let mut rows = figures::ablation_combiner(&d);
            rows.extend(figures::ablation_threshold_exponent(&d));
            rows
        } else {
            figures::run(t, &d)
        };
        println!(
            "\n=== {t} ({:.1}s wall) ===",
            started.elapsed().as_secs_f64()
        );
        print!("{}", table::render(&rows));
        if let Err(e) = table::write_csv(&out_dir, t, &rows) {
            eprintln!("warning: could not write {t}.csv: {e}");
        }
    }
    println!("\nCSV written to {}", out_dir.display());
}
