//! Runs the fixed engine-benchmark suite and emits `BENCH_PR3.json`.
//!
//! ```text
//! cargo run -p wh-bench --release --bin bench_suite                 # full suite
//! cargo run -p wh-bench --release --bin bench_suite -- --fast      # CI smoke scale
//! cargo run -p wh-bench --release --bin bench_suite -- --baseline  # full + fast → committed file
//! cargo run -p wh-bench --release --bin bench_suite -- \
//!     --fast --out bench-current.json --check BENCH_PR3.json       # regression gate
//! ```
//!
//! `--check BASELINE` compares the fresh run's per-bench `relative_cost`
//! (pipelined ÷ reference engine, same machine, same run) against the
//! matching mode section of the committed baseline and exits nonzero on
//! more than 25 % regression or on any output divergence between the
//! engines. `--baseline` runs both scales and writes both sections —
//! that is how the committed `BENCH_PR3.json` is produced.

use std::path::PathBuf;
use std::process::ExitCode;

use wh_bench::suite::{check_regression, render_json, run_suite, BenchRecord, SuiteOptions};

fn usage() -> ! {
    eprintln!(
        "usage: bench_suite [--fast | --baseline] [--repeats N] [--out FILE] [--check BASELINE]"
    );
    std::process::exit(2);
}

fn print_table(records: &[BenchRecord]) {
    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>14} {:>8}",
        "bench", "pipelined_s", "reference_s", "speedup", "items/s", "match"
    );
    for r in records {
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>8.2}x {:>14.0} {:>8}",
            r.name,
            r.wall_s,
            r.reference_wall_s,
            r.speedup(),
            r.items_per_s,
            r.outputs_match
        );
    }
}

fn main() -> ExitCode {
    let mut fast = false;
    let mut baseline_mode = false;
    let mut repeats: Option<usize> = None;
    let mut out = PathBuf::from("BENCH_PR3.json");
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--baseline" => baseline_mode = true,
            "--repeats" => {
                repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--check" => check = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if fast && baseline_mode {
        usage();
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Fast-mode workloads are tiny, so extra repetitions are cheap and
    // buy timing stability on shared CI runners.
    let repeats = repeats.unwrap_or(3);

    let json;
    let current: Vec<BenchRecord>;
    if baseline_mode {
        eprintln!("running full + fast suites on {cores} core(s), best of {repeats} …");
        let full = run_suite(SuiteOptions {
            fast: false,
            repeats,
        });
        print_table(&full);
        let fast_records = run_suite(SuiteOptions {
            fast: true,
            repeats,
        });
        println!("-- fast scale --");
        print_table(&fast_records);
        json = render_json(Some(&full), Some(&fast_records), repeats);
        current = full;
    } else {
        eprintln!(
            "running {} suite on {cores} core(s), best of {repeats} …",
            if fast { "fast" } else { "full" }
        );
        current = run_suite(SuiteOptions { fast, repeats });
        print_table(&current);
        json = if fast {
            render_json(None, Some(&current), repeats)
        } else {
            render_json(Some(&current), None, repeats)
        };
    }

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());

    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        match check_regression(&baseline, &current, fast, 0.25) {
            Ok(()) => eprintln!(
                "regression check vs {} passed (tolerance 25%)",
                baseline_path.display()
            ),
            Err(errors) => {
                for e in &errors {
                    eprintln!("REGRESSION: {e}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
