//! Runs the fixed engine-benchmark suite and emits `BENCH_PR10.json`.
//!
//! ```text
//! cargo run -p wh-bench --release --bin bench_suite                 # full suite
//! cargo run -p wh-bench --release --bin bench_suite -- --fast      # CI smoke scale
//! cargo run -p wh-bench --release --bin bench_suite -- --baseline  # all sections → committed file
//! cargo run -p wh-bench --release --bin bench_suite -- \
//!     --fast --threads 4 --out bench-current.json \
//!     --check BENCH_PR10.json                                        # one CI matrix leg
//! ```
//!
//! `--threads N` pins the engines' map and reduce parallelism on both
//! sides of every bench; each `(mode, threads)` combination lives in its
//! own report section (`fast_benches_t4`, …) because relative cost
//! genuinely depends on the thread budget. `--check BASELINE` compares
//! the fresh run's per-bench `relative_cost` (pipelined ÷ reference
//! engine, same machine, same run) against the matching section of the
//! committed baseline and exits nonzero on more than 25 % regression or
//! on any output divergence between the engines; when
//! `$GITHUB_STEP_SUMMARY` is set (every GitHub Actions step), it also
//! appends a per-bench delta table there so regressions are readable in
//! the run summary without downloading the report artifact. `--baseline`
//! runs the full suite plus the fast suite unpinned and at 1 and 4
//! threads, writing all four sections — that is how the committed
//! `BENCH_PR10.json` is produced.
//!
//! On a `--check` run with 4 or more pinned threads, `serve_throughput`
//! must additionally clear the absolute
//! [`SERVE_T4_FLOOR_ESTIMATES_PER_S`] serving-rate floor — the relative
//! gate alone would let the serving tier and its reference path get
//! slower together.

use std::path::PathBuf;
use std::process::ExitCode;

use wh_bench::suite::{
    check_regression, render_delta_table, render_json, run_suite, section_for, BenchRecord,
    SuiteOptions, SERVE_T4_FLOOR_ESTIMATES_PER_S,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench_suite [--fast | --baseline] [--threads N] [--repeats N] \
         [--out FILE] [--check BASELINE]"
    );
    std::process::exit(2);
}

/// The run header: which suite, and the **resolved** engine mode and
/// thread/worker topology — `--threads 0` means one thread (and, for the
/// wire bench, one forked worker process) per core, and the header says
/// what that resolved to on this machine.
fn describe_run(fast: bool, threads: usize, cores: usize, repeats: usize) -> String {
    let workers = if threads == 0 { cores } else { threads };
    let budget = if threads == 0 {
        format!("auto ({workers}/core)")
    } else {
        threads.to_string()
    };
    let wire = if cfg!(unix) {
        format!(
            "wire_shuffle + recovery_overhead multi-process with {workers} forked map worker(s)"
        )
    } else {
        "wire_shuffle + recovery_overhead skipped (non-Unix)".to_string()
    };
    format!(
        "running {} suite on {cores} core(s): engine modes pipelined vs reference (in-process), \
         {wire}; threads={budget}, best of {repeats} …",
        if fast { "fast" } else { "full" },
    )
}

fn print_table(records: &[BenchRecord]) {
    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>14} {:>8}",
        "bench", "pipelined_s", "reference_s", "speedup", "items/s", "match"
    );
    for r in records {
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>8.2}x {:>14.0} {:>8}",
            r.name,
            r.wall_s,
            r.reference_wall_s,
            r.speedup(),
            r.items_per_s,
            r.outputs_match
        );
    }
}

/// Appends `markdown` to the file `$GITHUB_STEP_SUMMARY` names, when the
/// Actions runner provides one. Failures are reported but never fatal —
/// the summary is a convenience, the exit code is the gate.
fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{markdown}"));
    if let Err(e) = appended {
        eprintln!("cannot append step summary to {path}: {e}");
    }
}

fn main() -> ExitCode {
    let mut fast = false;
    let mut baseline_mode = false;
    let mut threads = 0usize;
    let mut repeats: Option<usize> = None;
    let mut out = PathBuf::from("BENCH_PR10.json");
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--baseline" => baseline_mode = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--repeats" => {
                repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--check" => check = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if fast && baseline_mode {
        usage();
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Fast-mode workloads are tiny, so extra repetitions are cheap and
    // buy timing stability on shared CI runners.
    let repeats = repeats.unwrap_or(3);

    let json;
    let current: Vec<BenchRecord>;
    let section: String;
    if baseline_mode {
        // The committed baseline carries every section CI gates (the
        // fast 1- and 4-thread matrix legs) plus the unpinned full and
        // fast sections for local runs.
        let mut sections: Vec<(String, Vec<BenchRecord>)> = Vec::new();
        for (f, t) in [(false, 0usize), (true, 0), (true, 1), (true, 4)] {
            let name = section_for(f, t);
            eprintln!("{}", describe_run(f, t, cores, repeats));
            let records = run_suite(SuiteOptions {
                fast: f,
                repeats,
                threads: t,
            });
            println!("-- {name} --");
            print_table(&records);
            sections.push((name, records));
        }
        json = render_json(&sections, repeats);
        section = section_for(false, 0);
        current = sections.swap_remove(0).1;
    } else {
        section = section_for(fast, threads);
        eprintln!("{}", describe_run(fast, threads, cores, repeats));
        current = run_suite(SuiteOptions {
            fast,
            repeats,
            threads,
        });
        print_table(&current);
        json = render_json(&[(section.clone(), current.clone())], repeats);
    }

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());

    if let Some(baseline_path) = check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        // The delta table goes to the Actions step summary whether the
        // gate passes or fails — green runs document their headroom.
        append_step_summary(&render_delta_table(&baseline, &current, &section));
        match check_regression(&baseline, &current, &section, 0.25) {
            Ok(()) => eprintln!(
                "regression check vs {} [{}] passed (tolerance 25%)",
                baseline_path.display(),
                section
            ),
            Err(errors) => {
                for e in &errors {
                    eprintln!("REGRESSION: {e}");
                }
                return ExitCode::FAILURE;
            }
        }
        // The 4-thread gate leg also holds the serving tier to an
        // absolute rate: relative cost can stay flat while both sides
        // rot, but a deployment below this floor has lost the batched
        // fast path outright.
        if threads >= 4 {
            let serve = current.iter().find(|r| r.name == "serve_throughput");
            match serve {
                Some(r) if r.items_per_s < SERVE_T4_FLOOR_ESTIMATES_PER_S => {
                    eprintln!(
                        "REGRESSION: serve_throughput served {:.2}M estimates/s on {threads} \
                         threads — below the {:.0}M floor",
                        r.items_per_s / 1e6,
                        SERVE_T4_FLOOR_ESTIMATES_PER_S / 1e6
                    );
                    return ExitCode::FAILURE;
                }
                Some(r) => eprintln!(
                    "serve_throughput: {:.2}M estimates/s clears the {:.0}M floor",
                    r.items_per_s / 1e6,
                    SERVE_T4_FLOOR_ESTIMATES_PER_S / 1e6
                ),
                None => {
                    eprintln!("REGRESSION: serve_throughput missing from the checked run");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
