//! The immutable, query-optimized form of a built wavelet histogram.

use crate::error::QueryError;
use wh_core::WaveletHistogram;
use wh_wavelet::Domain;

/// A [`WaveletHistogram`] compiled for serving: the pruned error tree
/// flattened to its piecewise-constant segments, with per-segment prefix
/// sums.
///
/// All state is immutable after [`compile`](Self::compile), so the type
/// is `Sync` — a multi-threaded server shares one instance by reference.
/// Every query method is allocation-free and runs in `O(log k)` for `k`
/// retained coefficients (the segment count is at most `3k + 1`); the
/// batched methods ([`Self::range_sum_batch_into`] and friends)
/// amortize further.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledHistogram {
    domain: Domain,
    /// Segment start keys, strictly ascending; `starts[0] == 0`. Segment
    /// `i` covers `[starts[i], starts[i+1])`, the last running to `u`.
    starts: Vec<u64>,
    /// Estimated frequency of every key inside the segment.
    values: Vec<f64>,
    /// Estimated cumulative frequency of all keys *before* the segment.
    prefix: Vec<f64>,
    /// Estimated total frequency over the whole domain.
    total: f64,
}

impl CompiledHistogram {
    /// Compiles a built histogram. `O(k log u)` once; queries never touch
    /// the coefficient set again.
    pub fn compile(hist: &WaveletHistogram) -> Self {
        let mut compiled = Self {
            domain: hist.domain(),
            starts: Vec::new(),
            values: Vec::new(),
            prefix: Vec::new(),
            total: 0.0,
        };
        compiled.recompile(hist);
        compiled
    }

    /// Re-snapshots this compiled form from a (typically delta-merged)
    /// histogram in place, reusing the segment arrays' allocations — the
    /// compile side of the incremental-maintenance loop, where a fresh
    /// snapshot is compiled per delta batch before being handed to the
    /// serving tier. Equivalent to `*self = CompiledHistogram::compile(h)`
    /// bit for bit, without the three reallocations.
    pub fn recompile(&mut self, hist: &WaveletHistogram) {
        let domain = hist.domain();
        let segs = hist.segments();
        self.domain = domain;
        self.starts.clear();
        self.values.clear();
        self.prefix.clear();
        self.starts.reserve(segs.len());
        self.values.reserve(segs.len());
        self.prefix.reserve(segs.len());
        let mut acc = 0.0f64;
        for (i, &(start, value)) in segs.iter().enumerate() {
            self.starts.push(start);
            self.values.push(value);
            self.prefix.push(acc);
            let end = segs.get(i + 1).map_or(domain.u(), |&(s, _)| s);
            acc += value * ((end - start) as f64);
        }
        self.total = acc;
    }

    /// The key domain this histogram describes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of piecewise-constant segments (≤ `3k + 1`).
    pub fn num_segments(&self) -> usize {
        self.starts.len()
    }

    /// The segments as ascending `(start, value)` pairs.
    pub fn segments(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.starts.iter().copied().zip(self.values.iter().copied())
    }

    /// Estimated total frequency over the whole domain (equals
    /// `prefix_sum(u − 1)` bit for bit).
    pub fn total_estimate(&self) -> f64 {
        self.total
    }

    /// Index of the segment containing `x` (caller guarantees `x` is in
    /// the domain, so a segment always exists).
    #[inline]
    pub(crate) fn segment_of(&self, x: u64) -> usize {
        self.starts.partition_point(|&s| s <= x) - 1
    }

    /// The cumulative-estimate formula, shared verbatim by the single and
    /// batched paths so their answers are bit-identical.
    #[inline]
    pub(crate) fn prefix_at(&self, seg: usize, x: u64) -> f64 {
        self.prefix[seg] + self.values[seg] * ((x - self.starts[seg] + 1) as f64)
    }

    /// Start-key array, for the batched walk.
    #[inline]
    pub(crate) fn start_keys(&self) -> &[u64] {
        &self.starts
    }

    /// Per-key estimate of segment `seg`, for the batched walk.
    #[inline]
    pub(crate) fn value_at(&self, seg: usize) -> f64 {
        self.values[seg]
    }

    /// Per-segment value array, for the shard slicer.
    #[inline]
    pub(crate) fn value_slice(&self) -> &[f64] {
        &self.values
    }

    /// Per-segment prefix array, for the shard slicer.
    #[inline]
    pub(crate) fn prefix_slice(&self) -> &[f64] {
        &self.prefix
    }

    /// Checks that `x` lies in the domain, as a value.
    #[inline]
    pub(crate) fn check_key(&self, x: u64) -> Result<(), QueryError> {
        if self.domain.contains(x) {
            Ok(())
        } else {
            Err(QueryError::OutOfDomain {
                key: x,
                domain: self.domain,
            })
        }
    }

    /// Estimated frequency of the (0-based) key `x`, or the reason the
    /// query is malformed. This is the serve-path entry point: a bad key
    /// is an error value, never a panic.
    pub fn try_point_estimate(&self, x: u64) -> Result<f64, QueryError> {
        self.check_key(x)?;
        Ok(self.values[self.segment_of(x)])
    }

    /// Estimated cumulative frequency of keys `0..=x`, or the reason the
    /// query is malformed.
    pub fn try_prefix_sum(&self, x: u64) -> Result<f64, QueryError> {
        self.check_key(x)?;
        Ok(self.prefix_at(self.segment_of(x), x))
    }

    /// Estimated total frequency of keys in `[lo, hi]` (0-based,
    /// inclusive) — two cumulative estimates — or the reason the query is
    /// malformed.
    pub fn try_range_sum(&self, lo: u64, hi: u64) -> Result<f64, QueryError> {
        if lo > hi {
            return Err(QueryError::EmptyRange { lo, hi });
        }
        let hi_p = self.try_prefix_sum(hi)?;
        let lo_p = if lo == 0 {
            0.0
        } else {
            self.try_prefix_sum(lo - 1)?
        };
        Ok(hi_p - lo_p)
    }

    /// Estimated selectivity of `[lo, hi]` relative to `n` records,
    /// clamped to `[0, 1]`, or the reason the query is malformed.
    pub fn try_selectivity(&self, lo: u64, hi: u64, n: u64) -> Result<f64, QueryError> {
        if n == 0 {
            return Err(QueryError::ZeroRecords);
        }
        Ok((self.try_range_sum(lo, hi)? / n as f64).clamp(0.0, 1.0))
    }

    /// Estimated frequency of the (0-based) key `x`.
    ///
    /// Thin wrapper over [`Self::try_point_estimate`]; prefer the `try_`
    /// variant when the query comes from traffic you do not control.
    ///
    /// # Panics
    ///
    /// Panics when `x` is outside the domain.
    pub fn point_estimate(&self, x: u64) -> f64 {
        self.try_point_estimate(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Estimated cumulative frequency of keys `0..=x`.
    ///
    /// Thin wrapper over [`Self::try_prefix_sum`].
    ///
    /// # Panics
    ///
    /// Panics when `x` is outside the domain.
    pub fn prefix_sum(&self, x: u64) -> f64 {
        self.try_prefix_sum(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Estimated total frequency of keys in `[lo, hi]` (0-based,
    /// inclusive) — two cumulative estimates.
    ///
    /// Thin wrapper over [`Self::try_range_sum`].
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or `hi` is outside the domain.
    pub fn range_sum(&self, lo: u64, hi: u64) -> f64 {
        self.try_range_sum(lo, hi).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Estimated selectivity of `[lo, hi]` relative to `n` records,
    /// clamped to `[0, 1]`.
    ///
    /// Thin wrapper over [`Self::try_selectivity`].
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, `lo > hi`, or `hi` is outside the domain.
    pub fn selectivity(&self, lo: u64, hi: u64, n: u64) -> f64 {
        self.try_selectivity(lo, hi, n)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_wavelet::haar::forward;
    use wh_wavelet::select::top_k_magnitude;

    fn compiled_from_signal(v: &[f64], k: usize) -> (CompiledHistogram, WaveletHistogram) {
        let domain = Domain::covering(v.len() as u64).unwrap();
        assert_eq!(domain.u() as usize, v.len());
        let w = forward(v);
        let top = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
        let hist = WaveletHistogram::new(domain, top.iter().map(|e| (e.slot, e.value)));
        (CompiledHistogram::compile(&hist), hist)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matches_error_tree_on_full_and_truncated_retention() {
        let v: Vec<f64> = (0..128).map(|i| ((i * 17) % 23) as f64).collect();
        for k in [128usize, 9, 3, 1] {
            let (compiled, hist) = compiled_from_signal(&v, k);
            for x in 0..128u64 {
                assert!(
                    close(compiled.point_estimate(x), hist.point_estimate(x)),
                    "k={k} x={x}"
                );
                assert!(
                    close(compiled.prefix_sum(x), hist.prefix_sum(x)),
                    "k={k} x={x}"
                );
            }
            for (lo, hi) in [(0, 127), (5, 5), (31, 96), (0, 0), (127, 127)] {
                assert!(
                    close(compiled.range_sum(lo, hi), hist.range_sum(lo, hi)),
                    "k={k} [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn recompile_matches_fresh_compile_bitwise() {
        let a: Vec<f64> = (0..64).map(|i| ((i * 13) % 19) as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| ((i * 7) % 29) as f64 + 1.0).collect();
        let (mut reused, _) = compiled_from_signal(&a, 12);
        let (_, hist_b) = compiled_from_signal(&b, 9);
        reused.recompile(&hist_b);
        let fresh = CompiledHistogram::compile(&hist_b);
        assert_eq!(reused, fresh);
        assert_eq!(
            reused.total_estimate().to_bits(),
            fresh.total_estimate().to_bits()
        );
        for x in 0..64u64 {
            assert_eq!(
                reused.prefix_sum(x).to_bits(),
                fresh.prefix_sum(x).to_bits()
            );
        }
    }

    #[test]
    fn total_equals_last_prefix_bitwise() {
        let v: Vec<f64> = (0..64).map(|i| ((i * 31) % 11) as f64).collect();
        let (compiled, _) = compiled_from_signal(&v, 10);
        assert_eq!(
            compiled.total_estimate().to_bits(),
            compiled.prefix_sum(63).to_bits()
        );
    }

    #[test]
    fn empty_histogram_serves_zeros() {
        let domain = Domain::new(4).unwrap();
        let hist = WaveletHistogram::new(domain, std::iter::empty::<(u64, f64)>());
        let compiled = CompiledHistogram::compile(&hist);
        assert_eq!(compiled.num_segments(), 1);
        assert_eq!(compiled.point_estimate(7), 0.0);
        assert_eq!(compiled.range_sum(0, 15), 0.0);
        assert_eq!(compiled.selectivity(3, 9, 100), 0.0);
        assert_eq!(compiled.total_estimate(), 0.0);
    }

    #[test]
    fn selectivity_clamps_like_the_histogram() {
        let v = vec![10.0, 0.0, 0.0, 0.0];
        let (compiled, hist) = compiled_from_signal(&v, 4);
        assert_eq!(
            compiled.selectivity(0, 0, 10).to_bits(),
            hist.selectivity(0, 0, 10).to_bits()
        );
        assert!(compiled.selectivity(1, 3, 10) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_domain_panics() {
        let (compiled, _) = compiled_from_signal(&[1.0, 2.0], 2);
        compiled.point_estimate(2);
    }

    #[test]
    fn compiled_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<CompiledHistogram>();
    }
}
