//! # wh-query — serving selectivity queries from built wavelet histograms
//!
//! The paper builds best-`k`-term wavelet histograms *so that* a
//! coordinator can answer selectivity queries from them — "what fraction
//! of records has key in `[a, b]`?" is the question a query optimiser
//! asks per predicate, thousands of times per planning session. This
//! crate is that read path, opened as a first-class subsystem: it
//! compiles a built [`WaveletHistogram`] into an immutable,
//! query-optimized form and answers point and range estimates in
//! `O(log k)` per query with **no allocation and no hashing**, single or
//! batched.
//!
//! ## The compiled form
//!
//! A `k`-term Haar representation reconstructs to a *step function*: each
//! retained detail coefficient changes the estimate only at its dyadic
//! block's start, midpoint, and end. [`CompiledHistogram::compile`]
//! prunes the error tree down to those at most `3k + 1` breakpoints
//! (`ErrorTree::segments` in `wh-wavelet`) and lays the result out as
//! three parallel arrays:
//!
//! ```text
//! starts:  [0,      s₁,     s₂,    …]   segment start keys, ascending
//! values:  [v₀,     v₁,     v₂,    …]   estimated frequency per key
//! prefix:  [0,      Σ₀,     Σ₀₊₁,  …]   cumulative estimate before the segment
//! ```
//!
//! A point estimate is one binary search (`values[i]`); a cumulative
//! estimate is the same search plus one fused multiply-add
//! (`prefix[i] + values[i]·(x − starts[i] + 1)`); a range sum is two
//! cumulative estimates. Everything is immutable after compilation, so a
//! [`CompiledHistogram`] is `Sync` and a thread-per-core server can share
//! one instance by reference with zero coordination.
//!
//! ## Batched serving
//!
//! Heavy traffic arrives in batches, and adjacent queries touch adjacent
//! segments. [`CompiledHistogram::range_sum_batch_into`] exploits that:
//! it radix-sorts the batch's query endpoints (a stream-consumed LSD
//! counting sort whose buffers live in a caller-held [`BatchScratch`]),
//! then resolves every endpoint in **one monotone galloping walk** over
//! the segment array — `O(q + k)` segment probes for the whole batch
//! instead of `O(q log k)` independent binary searches — and is
//! **bit-identical** to asking the queries one at a time.
//!
//! ## Example
//!
//! ```
//! use wh_core::WaveletHistogram;
//! use wh_query::{BatchScratch, CompiledHistogram};
//! use wh_wavelet::Domain;
//!
//! // A tiny histogram: u = 8, average 16/√8 ⇒ two records per key.
//! let domain = Domain::new(3).unwrap();
//! let hist = WaveletHistogram::new(domain, [(0, 16.0 / 8f64.sqrt())]);
//! let compiled = CompiledHistogram::compile(&hist);
//!
//! assert!((compiled.point_estimate(5) - 2.0).abs() < 1e-9);
//! assert!((compiled.range_sum(2, 5) - 8.0).abs() < 1e-9);
//! assert!((compiled.selectivity(0, 3, 16) - 0.5).abs() < 1e-9);
//!
//! // The batched path answers the same queries bit-identically.
//! let queries = [(2, 5), (0, 3), (7, 7)];
//! let mut scratch = BatchScratch::new();
//! let mut out = [0.0; 3];
//! compiled.range_sum_batch_into(&queries, &mut scratch, &mut out);
//! for (&(lo, hi), &batched) in queries.iter().zip(&out) {
//!     assert_eq!(batched.to_bits(), compiled.range_sum(lo, hi).to_bits());
//! }
//! ```
//!
//! ## Fallible serving, and shards
//!
//! Every query method has a `try_*` variant returning
//! `Result<_, QueryError>`; the panicking methods are thin wrappers over
//! them. Code that serves traffic it does not control — the `wh-serve`
//! tier above this crate — uses only the `try_*` path, so a malformed
//! query is an error value instead of a downed serving thread.
//!
//! [`ShardedHistogram`] partitions a compiled histogram into key-range
//! shards by *slicing* the compiled arrays bitwise; routed, fanned-out,
//! merged answers stay bit-identical to the unsharded form (see
//! `shard.rs` for why slicing, not per-shard compilation, is what makes
//! that possible).
//!
//! The full build→serve dataflow across the workspace is described in
//! `docs/architecture.md` at the repository root.

mod batch;
mod compiled;
mod compiled2d;
mod error;
mod shard;

pub use batch::BatchScratch;
pub use compiled::CompiledHistogram;
pub use compiled2d::{BatchScratch2D, CompiledHistogram2D};
pub use error::QueryError;
pub use shard::{HistogramShard, ShardedHistogram};

// Re-exported so callers of this crate can name the input types without
// depending on `wh-core` directly.
pub use wh_core::twod::WaveletHistogram2d;
pub use wh_core::WaveletHistogram;
