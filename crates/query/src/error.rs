//! The query-path error type: every way a selectivity request can be
//! malformed, as a value instead of a panic.
//!
//! The serving tier (`wh-serve`) answers traffic it does not control — a
//! query optimizer with a stale domain size, a client with an off-by-one
//! range — and a panic there takes down a serving thread. Every query
//! method on [`crate::CompiledHistogram`] therefore has a `try_*`
//! variant returning `Result<_, QueryError>`; the panicking methods are
//! thin wrappers over them (they format the same messages), kept for
//! callers who construct their own queries and *want* a bug to abort.

use std::fmt;

use wh_wavelet::Domain;

/// Why a query (or a batch of queries) could not be answered. The
/// `Display` messages are exactly the panic messages of the panicking
/// query methods — the two APIs report one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// A range query with `lo > hi`.
    EmptyRange {
        /// The range's lower endpoint.
        lo: u64,
        /// The range's upper endpoint (smaller than `lo`).
        hi: u64,
    },
    /// A key outside the histogram's domain.
    OutOfDomain {
        /// The offending key.
        key: u64,
        /// The domain it missed.
        domain: Domain,
    },
    /// A selectivity query with a zero record count.
    ZeroRecords,
    /// A batch larger than the tag budget of the batched walk.
    BatchTooLarge {
        /// The offending batch length.
        len: usize,
        /// Base-2 log of the largest supported batch.
        max_log2: u32,
    },
    /// A batched call whose output buffer does not match the batch.
    OutputMismatch {
        /// Number of queries in the batch.
        queries: usize,
        /// Length of the output buffer.
        out: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryError::EmptyRange { lo, hi } => write!(f, "empty range [{lo}, {hi}]"),
            QueryError::OutOfDomain { key, domain } => write!(f, "key {key} outside {domain}"),
            QueryError::ZeroRecords => write!(f, "selectivity needs a positive record count"),
            QueryError::BatchTooLarge { len, max_log2 } => {
                write!(f, "batch of {len} exceeds the 2^{max_log2} tag budget")
            }
            QueryError::OutputMismatch { queries, out } => write!(
                f,
                "output buffer must match the batch length ({out} slots for {queries} queries)"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_the_panicking_api() {
        // The panicking wrappers format these very values, and existing
        // `#[should_panic(expected = …)]` tests pin substrings of them —
        // keep both in sync.
        assert_eq!(
            QueryError::EmptyRange { lo: 9, hi: 3 }.to_string(),
            "empty range [9, 3]"
        );
        let domain = Domain::new(4).unwrap();
        let msg = QueryError::OutOfDomain { key: 99, domain }.to_string();
        assert!(msg.starts_with("key 99 outside"), "{msg}");
        assert_eq!(
            QueryError::ZeroRecords.to_string(),
            "selectivity needs a positive record count"
        );
        assert!(QueryError::BatchTooLarge {
            len: 5,
            max_log2: 30
        }
        .to_string()
        .contains("2^30 tag budget"));
        assert!(QueryError::OutputMismatch { queries: 2, out: 1 }
            .to_string()
            .contains("output buffer must match the batch length"));
    }
}
