//! The batched query path: sort a batch's endpoints once, resolve them
//! all in one monotone walk over the compiled segments.
//!
//! Answers are **bit-identical** to the single-query methods: both paths
//! locate the same segment for every endpoint (segments partition the
//! domain, so the index is unique) and then evaluate the identical
//! [`CompiledHistogram::prefix_at`] expression, combining the two
//! endpoint prefixes of each range in the same order.

use crate::compiled::CompiledHistogram;
use crate::error::QueryError;

/// Reusable scratch of the batched query path: the endpoint buffer, its
/// sort swap space, the digit histograms, and the per-endpoint prefix
/// estimates. One per serving thread, recycled across batches — after
/// the first call at a given batch size, batched serving allocates
/// nothing. The scratch carries no per-histogram state: every batched
/// call rebuilds the endpoint and prefix buffers from its own inputs, so
/// one scratch serves any number of different compiled histograms (the
/// serve tier recycles it across shard snapshots).
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// `(key, tag)` endpoints; the tag's low bit distinguishes a range's
    /// `lo − 1` endpoint (0) from its `hi` endpoint (1), the rest is the
    /// query index.
    pub(crate) endpoints: Vec<(u64, u32)>,
    /// Ping-pong buffer of the LSD endpoint sort.
    swap: Vec<(u64, u32)>,
    /// Per-pass digit histograms of the endpoint sort.
    counts: Vec<u32>,
    /// Cumulative estimates indexed by tag.
    pub(crate) prefixes: Vec<f64>,
}

impl BatchScratch {
    /// Scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts the endpoint buffer ascending by key. See [`sort_endpoints`].
    pub(crate) fn sort(&mut self) {
        sort_endpoints(&mut self.endpoints, &mut self.swap, &mut self.counts);
    }
}

/// Digit width of the endpoint sort: 11-bit digits mean at most four
/// counting passes for the widest supported domain (`2^40`) and two for
/// anything up to `2^22`, with 2048-entry histograms that live in L1.
const DIGIT_BITS: u32 = 11;
const BUCKETS: usize = 1 << DIGIT_BITS;

/// LSD counting sort of the endpoint batch, ascending by key.
///
/// Purpose-built for serving rather than reusing the engine's
/// `wh-mapreduce` radix sorter: that sorter permutes the *original*
/// array in place (its callers keep pair identity), which costs an extra
/// random-access cycle walk — but the batched query path only consumes
/// the sorted *stream* (each endpoint carries its identity in the tag),
/// so here the last ping-pong buffer is simply swapped into place.
/// Passes cover the keys' min-rebased span, so a batch of nearby
/// predicates sorts in a single pass regardless of where in the domain
/// it lands; a pre-scan skips the sort entirely when the batch already
/// arrives in key order. Order among equal keys is irrelevant (every
/// endpoint is resolved independently), but counting passes are stable
/// anyway.
pub(crate) fn sort_endpoints(
    main: &mut Vec<(u64, u32)>,
    swap: &mut Vec<(u64, u32)>,
    counts: &mut Vec<u32>,
) {
    let n = main.len();
    if n <= 1 {
        return;
    }
    let mut min = u64::MAX;
    let mut max = 0u64;
    let mut prev = 0u64;
    let mut sorted = true;
    for &(k, _) in main.iter() {
        sorted &= k >= prev;
        prev = k;
        min = min.min(k);
        max = max.max(k);
    }
    if sorted {
        return;
    }
    let bits = 64 - (max - min).leading_zeros();
    let passes = bits.div_ceil(DIGIT_BITS) as usize;
    swap.clear();
    swap.resize(n, (0, 0));
    counts.clear();
    counts.resize(BUCKETS * passes, 0);
    for &(k, _) in main.iter() {
        let r = k - min;
        for p in 0..passes {
            let b = (r >> (p as u32 * DIGIT_BITS)) as usize & (BUCKETS - 1);
            counts[p * BUCKETS + b] += 1;
        }
    }
    let mut src_is_main = true;
    for p in 0..passes {
        let c = &mut counts[p * BUCKETS..(p + 1) * BUCKETS];
        // A digit where every key agrees permutes nothing: skip the pass.
        if c.iter().any(|&x| x as usize == n) {
            continue;
        }
        let mut sum = 0u32;
        for slot in c.iter_mut() {
            let next = sum + *slot;
            *slot = sum;
            sum = next;
        }
        let (src, dst) = if src_is_main {
            (&mut *main, &mut *swap)
        } else {
            (&mut *swap, &mut *main)
        };
        let shift = p as u32 * DIGIT_BITS;
        for &(k, t) in src.iter() {
            let b = ((k - min) >> shift) as usize & (BUCKETS - 1);
            dst[c[b] as usize] = (k, t);
            c[b] += 1;
        }
        src_is_main = !src_is_main;
    }
    if !src_is_main {
        std::mem::swap(main, swap);
    }
}

/// Largest index `i ≥ from` with `starts[i] <= x`, found by galloping
/// from the cursor: doubling probes bracket the target, a binary search
/// inside the bracket pins it. Adjacent endpoints land in adjacent
/// segments, so the common case is one or two probes; a sparse batch
/// still pays only `O(log gap)` instead of `O(log k)`.
///
/// Precondition (upheld by the callers): `starts[from] <= x`.
///
/// `#[inline]` is load-bearing: this runs once per endpoint inside every
/// batched walk (unsharded, sharded, and 2-D), and with call sites in
/// three modules the inliner otherwise outlines it — keeping `starts`
/// in a register across the gallop is worth ~2× on the large-`k`
/// sharded serving path.
#[inline]
pub(crate) fn advance(starts: &[u64], from: usize, x: u64) -> usize {
    debug_assert!(starts[from] <= x);
    let mut lo = from;
    let mut step = 1usize;
    loop {
        let probe = lo + step;
        if probe >= starts.len() || starts[probe] > x {
            break;
        }
        lo = probe;
        step <<= 1;
    }
    let window_end = (lo + step).min(starts.len());
    lo + starts[lo..window_end].partition_point(|&s| s <= x) - 1
}

impl CompiledHistogram {
    /// Answers a batch of inclusive range-sum queries into `out`,
    /// bit-identical to calling [`Self::try_range_sum`] per query, or
    /// reports the first malformed query. On `Err`, `out` is untouched.
    ///
    /// The batch's `2q` endpoints are radix-sorted (the LSD counting
    /// sort whose buffers live in `scratch`), then resolved in one
    /// galloping walk over the segment array — `O(q + k)` probes total
    /// versus `O(q log k)` for one-at-a-time serving. `scratch` and
    /// `out` are caller-owned, so a warm serving loop allocates nothing.
    pub fn try_range_sum_batch_into(
        &self,
        queries: &[(u64, u64)],
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if queries.len() != out.len() {
            return Err(QueryError::OutputMismatch {
                queries: queries.len(),
                out: out.len(),
            });
        }
        if queries.len() > 1 << 30 {
            return Err(QueryError::BatchTooLarge {
                len: queries.len(),
                max_log2: 30,
            });
        }
        scratch.endpoints.clear();
        scratch.endpoints.reserve(2 * queries.len());
        scratch.prefixes.clear();
        scratch.prefixes.resize(2 * queries.len(), 0.0);
        for (q, &(lo, hi)) in queries.iter().enumerate() {
            if lo > hi {
                return Err(QueryError::EmptyRange { lo, hi });
            }
            self.check_key(hi)?;
            let tag = (q as u32) << 1;
            // lo == 0 keeps its prefix slot at the 0.0 the resize wrote —
            // the same value the single-query path uses.
            if lo > 0 {
                scratch.endpoints.push((lo - 1, tag));
            }
            scratch.endpoints.push((hi, tag | 1));
        }
        scratch.sort();
        let starts = self.start_keys();
        let mut seg = 0usize;
        for &(x, tag) in scratch.endpoints.iter() {
            seg = advance(starts, seg, x);
            scratch.prefixes[tag as usize] = self.prefix_at(seg, x);
        }
        for (q, slot) in out.iter_mut().enumerate() {
            *slot = scratch.prefixes[2 * q + 1] - scratch.prefixes[2 * q];
        }
        Ok(())
    }

    /// Answers a batch of inclusive range-sum queries into `out`,
    /// bit-identical to calling [`Self::range_sum`] per query.
    ///
    /// Thin wrapper over [`Self::try_range_sum_batch_into`].
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != queries.len()`, on any invalid query
    /// (`lo > hi` or `hi` outside the domain), or when the batch exceeds
    /// `2^30` queries (tag budget).
    pub fn range_sum_batch_into(
        &self,
        queries: &[(u64, u64)],
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) {
        self.try_range_sum_batch_into(queries, scratch, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocating convenience wrapper over
    /// [`Self::range_sum_batch_into`].
    pub fn range_sum_batch(&self, queries: &[(u64, u64)]) -> Vec<f64> {
        let mut out = vec![0.0; queries.len()];
        self.range_sum_batch_into(queries, &mut BatchScratch::new(), &mut out);
        out
    }

    /// Answers a batch of selectivity queries relative to `n` records,
    /// bit-identical to calling [`Self::try_selectivity`] per query, or
    /// reports the first malformed query. On `Err`, `out` is untouched.
    pub fn try_selectivity_batch_into(
        &self,
        queries: &[(u64, u64)],
        n: u64,
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if n == 0 {
            return Err(QueryError::ZeroRecords);
        }
        self.try_range_sum_batch_into(queries, scratch, out)?;
        for slot in out.iter_mut() {
            *slot = (*slot / n as f64).clamp(0.0, 1.0);
        }
        Ok(())
    }

    /// Answers a batch of selectivity queries relative to `n` records,
    /// bit-identical to calling [`Self::selectivity`] per query.
    ///
    /// Thin wrapper over [`Self::try_selectivity_batch_into`].
    ///
    /// # Panics
    ///
    /// As [`Self::range_sum_batch_into`], plus `n == 0`.
    pub fn selectivity_batch_into(
        &self,
        queries: &[(u64, u64)],
        n: u64,
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) {
        self.try_selectivity_batch_into(queries, n, scratch, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Answers a batch of point estimates into `out`, bit-identical to
    /// calling [`Self::try_point_estimate`] per key — the same sorted
    /// galloping walk, resolving segment values instead of prefixes — or
    /// reports the first malformed key. On `Err`, `out` is untouched
    /// (every key is validated before the walk writes anything).
    pub fn try_point_estimate_batch_into(
        &self,
        keys: &[u64],
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if keys.len() != out.len() {
            return Err(QueryError::OutputMismatch {
                queries: keys.len(),
                out: out.len(),
            });
        }
        if keys.len() > 1 << 31 {
            return Err(QueryError::BatchTooLarge {
                len: keys.len(),
                max_log2: 31,
            });
        }
        scratch.endpoints.clear();
        scratch.endpoints.reserve(keys.len());
        for (i, &x) in keys.iter().enumerate() {
            self.check_key(x)?;
            scratch.endpoints.push((x, i as u32));
        }
        scratch.sort();
        let starts = self.start_keys();
        let mut seg = 0usize;
        for &(x, idx) in scratch.endpoints.iter() {
            seg = advance(starts, seg, x);
            out[idx as usize] = self.value_at(seg);
        }
        Ok(())
    }

    /// Answers a batch of point estimates into `out`, bit-identical to
    /// calling [`Self::point_estimate`] per key.
    ///
    /// Thin wrapper over [`Self::try_point_estimate_batch_into`].
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != keys.len()`, on any key outside the
    /// domain, or when the batch exceeds `2^31` keys.
    pub fn point_estimate_batch_into(
        &self,
        keys: &[u64],
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) {
        self.try_point_estimate_batch_into(keys, scratch, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_core::WaveletHistogram;
    use wh_wavelet::haar::forward;
    use wh_wavelet::select::top_k_magnitude;
    use wh_wavelet::Domain;

    fn compiled_from_signal(v: &[f64], k: usize) -> CompiledHistogram {
        let domain = Domain::covering(v.len() as u64).unwrap();
        let w = forward(v);
        let top = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
        CompiledHistogram::compile(&WaveletHistogram::new(
            domain,
            top.iter().map(|e| (e.slot, e.value)),
        ))
    }

    fn scramble(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^ (z >> 27)
    }

    fn random_queries(u: u64, count: usize) -> Vec<(u64, u64)> {
        (0..count as u64)
            .map(|i| {
                let lo = scramble(i) % u;
                let hi = lo + scramble(i ^ 0xdead) % (u - lo);
                (lo, hi)
            })
            .collect()
    }

    #[test]
    fn endpoint_sort_orders_any_key_material() {
        // Wide spreads, narrow high bands (min-rebase), heavy ties,
        // already-sorted input (skip path), and trivial lengths.
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            (0..1000).map(scramble).collect(),
            (0..1000).map(|i| scramble(i) % 5).collect(),
            (0..1000).map(|i| (1 << 39) + scramble(i) % 300).collect(),
            (0..1000).collect(),
        ];
        for keys in cases {
            let mut main: Vec<(u64, u32)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u32))
                .collect();
            let mut want = main.clone();
            want.sort_unstable();
            let mut swap = Vec::new();
            let mut counts = Vec::new();
            sort_endpoints(&mut main, &mut swap, &mut counts);
            // Ascending by key, and no endpoint lost or duplicated (tie
            // order is irrelevant to the walk, so normalize fully).
            assert!(main.windows(2).all(|w| w[0].0 <= w[1].0));
            main.sort_unstable();
            assert_eq!(main, want);
        }
    }

    #[test]
    fn advance_finds_the_segment_from_any_cursor() {
        let starts = [0u64, 4, 5, 9, 100, 101];
        for (x, want) in [(0, 0), (3, 0), (4, 1), (8, 2), (99, 3), (100, 4), (500, 5)] {
            for from in 0..=want {
                assert_eq!(advance(&starts, from, x), want, "x={x} from={from}");
            }
        }
    }

    #[test]
    fn batched_range_sums_are_bit_identical_to_single() {
        let v: Vec<f64> = (0..256)
            .map(|i| ((i * 37) % 19) as f64 - ((i % 5) as f64))
            .collect();
        for k in [256usize, 17, 2, 0] {
            let compiled = compiled_from_signal(&v, k);
            let queries = random_queries(256, 500);
            let mut scratch = BatchScratch::new();
            let mut out = vec![0.0; queries.len()];
            compiled.range_sum_batch_into(&queries, &mut scratch, &mut out);
            for (&(lo, hi), &batched) in queries.iter().zip(&out) {
                assert_eq!(
                    batched.to_bits(),
                    compiled.range_sum(lo, hi).to_bits(),
                    "k={k} [{lo},{hi}]"
                );
            }
            // Scratch reuse across batches must not change answers.
            let more = random_queries(256, 73);
            let mut out2 = vec![0.0; more.len()];
            compiled.range_sum_batch_into(&more, &mut scratch, &mut out2);
            for (&(lo, hi), &batched) in more.iter().zip(&out2) {
                assert_eq!(batched.to_bits(), compiled.range_sum(lo, hi).to_bits());
            }
        }
    }

    #[test]
    fn batched_selectivities_and_points_match_single() {
        let v: Vec<f64> = (0..128).map(|i| ((i * 13) % 29) as f64).collect();
        let compiled = compiled_from_signal(&v, 11);
        let n = 1000u64;
        let queries = random_queries(128, 200);
        let mut scratch = BatchScratch::new();
        let mut out = vec![0.0; queries.len()];
        compiled.selectivity_batch_into(&queries, n, &mut scratch, &mut out);
        for (&(lo, hi), &batched) in queries.iter().zip(&out) {
            assert_eq!(batched.to_bits(), compiled.selectivity(lo, hi, n).to_bits());
        }
        let keys: Vec<u64> = (0..300u64).map(|i| scramble(i) % 128).collect();
        let mut pts = vec![0.0; keys.len()];
        compiled.point_estimate_batch_into(&keys, &mut scratch, &mut pts);
        for (&x, &batched) in keys.iter().zip(&pts) {
            assert_eq!(batched.to_bits(), compiled.point_estimate(x).to_bits());
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let compiled = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        let mut scratch = BatchScratch::new();
        let mut out: [f64; 0] = [];
        compiled.range_sum_batch_into(&[], &mut scratch, &mut out);
        assert!(compiled.range_sum_batch(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "output buffer")]
    fn mismatched_output_length_panics() {
        let compiled = compiled_from_signal(&[1.0, 2.0], 2);
        let mut out = [0.0; 1];
        compiled.range_sum_batch_into(&[(0, 1), (0, 0)], &mut BatchScratch::new(), &mut out);
    }

    #[test]
    fn scratch_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<BatchScratch>();
    }

    #[test]
    fn try_batches_report_errors_and_leave_out_untouched() {
        use crate::error::QueryError;
        let compiled = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        let mut scratch = BatchScratch::new();
        let sentinel = [-7.0, -7.0];
        let mut out = sentinel;

        let err = compiled
            .try_range_sum_batch_into(&[(0, 1), (3, 2)], &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, QueryError::EmptyRange { lo: 3, hi: 2 });
        assert_eq!(out, sentinel);

        let err = compiled
            .try_range_sum_batch_into(&[(0, 1), (0, 99)], &mut scratch, &mut out)
            .unwrap_err();
        assert!(matches!(err, QueryError::OutOfDomain { key: 99, .. }));
        assert_eq!(out, sentinel);

        let err = compiled
            .try_range_sum_batch_into(&[(0, 1)], &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, QueryError::OutputMismatch { queries: 1, out: 2 });

        let err = compiled
            .try_selectivity_batch_into(&[(0, 1), (1, 2)], 0, &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, QueryError::ZeroRecords);
        assert_eq!(out, sentinel);

        let err = compiled
            .try_point_estimate_batch_into(&[0, 99], &mut scratch, &mut out)
            .unwrap_err();
        assert!(matches!(err, QueryError::OutOfDomain { key: 99, .. }));
        assert_eq!(out, sentinel);

        // The same scratch then serves a valid batch bit-identically —
        // a failed validation leaves no sticky state behind.
        compiled
            .try_range_sum_batch_into(&[(0, 1), (1, 3)], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out[0].to_bits(), compiled.range_sum(0, 1).to_bits());
        assert_eq!(out[1].to_bits(), compiled.range_sum(1, 3).to_bits());
    }

    #[test]
    fn try_single_queries_match_the_panicking_api() {
        use crate::error::QueryError;
        let compiled = compiled_from_signal(&[5.0, 1.0, 0.0, 2.0], 4);
        assert_eq!(
            compiled.try_range_sum(1, 3).unwrap().to_bits(),
            compiled.range_sum(1, 3).to_bits()
        );
        assert_eq!(
            compiled.try_selectivity(0, 2, 8).unwrap().to_bits(),
            compiled.selectivity(0, 2, 8).to_bits()
        );
        assert_eq!(
            compiled.try_point_estimate(3).unwrap().to_bits(),
            compiled.point_estimate(3).to_bits()
        );
        assert_eq!(
            compiled.try_prefix_sum(2).unwrap().to_bits(),
            compiled.prefix_sum(2).to_bits()
        );
        assert_eq!(
            compiled.try_range_sum(2, 1),
            Err(QueryError::EmptyRange { lo: 2, hi: 1 })
        );
        assert_eq!(
            compiled.try_selectivity(0, 1, 0),
            Err(QueryError::ZeroRecords)
        );
        assert!(matches!(
            compiled.try_point_estimate(4),
            Err(QueryError::OutOfDomain { key: 4, .. })
        ));
    }
}
