//! The immutable, query-optimized form of a built **2-D** wavelet
//! histogram: rectangle sums as four corner evaluations over a segment
//! grid.
//!
//! A k-term nonstandard 2-D Haar representation reconstructs to a
//! function that is constant on a grid: each retained coefficient is a
//! tensor product of two 1-D basis functions, each piecewise constant on
//! its dyadic block's start/midpoint/end breakpoints. Collecting the row
//! breakpoints of every retained `(row_slot, col_slot)` address gives at
//! most `3k + 1` row segments (likewise columns), and the estimate is
//! one value per grid cell.
//!
//! [`CompiledHistogram2D::compile`] materializes that grid once, then
//! precomputes the 2-D analogue of the 1-D prefix array — a summed-area
//! decomposition per cell — so the *corner function*
//! `F(x, y) = Σ_{x'≤x, y'≤y} est(x', y')` is a closed-form expression in
//! the cell's four precomputed terms. A rectangle sum is then exactly
//! four corner evaluations (inclusion–exclusion), `O(log k)` per query
//! and allocation-free; the batched path sorts each axis's endpoints and
//! resolves them in one monotone galloping walk, reusing the 1-D
//! endpoint sort, and is **bit-identical** to one-at-a-time serving
//! because both paths resolve the same unique segment indices and then
//! evaluate the identical corner expression in the identical order.

use crate::batch::{advance, sort_endpoints};
use crate::error::QueryError;
use wh_core::twod::WaveletHistogram2d;
use wh_wavelet::twod::{point_estimate2d, unpack_slot, SparseCoefs2d};
use wh_wavelet::Domain;

/// A [`WaveletHistogram2d`] compiled for serving 2-D range-selectivity
/// estimates. Immutable after compilation, hence `Sync`; every query
/// method is allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledHistogram2D {
    domain: Domain,
    /// Row-segment start keys, strictly ascending; `starts_r[0] == 0`.
    /// Row segment `i` covers `[starts_r[i], starts_r[i+1])`, the last
    /// running to `u`.
    starts_r: Vec<u64>,
    /// Column-segment start keys, same shape.
    starts_c: Vec<u64>,
    /// `cell[i·nc + j]`: estimated frequency of every cell of grid
    /// segment `(i, j)`.
    cell: Vec<f64>,
    /// `block[i·nc + j]`: estimated mass of all grid segments strictly
    /// before `(i, j)` on both axes (the summed-area corner term).
    block: Vec<f64>,
    /// `row_band[i·nc + j]`: estimated mass per *row of keys* of row
    /// segment `i` over all column segments strictly before `j`.
    row_band: Vec<f64>,
    /// `col_band[i·nc + j]`: estimated mass per *column of keys* of
    /// column segment `j` over all row segments strictly before `i`.
    col_band: Vec<f64>,
    /// Estimated total mass over the whole `[u]²` grid.
    total: f64,
}

/// Appends the 1-D breakpoints of `slot`'s basis function: nothing for
/// the average (slot 0, constant over the axis), the dyadic block's
/// start, midpoint, and end for a detail slot.
fn push_breakpoints(starts: &mut Vec<u64>, slot: u64, u: u64) {
    if slot == 0 {
        return;
    }
    let level = 63 - slot.leading_zeros();
    let block = slot - (1u64 << level);
    let b = u >> level;
    let start = block * b;
    starts.push(start);
    starts.push(start + b / 2);
    if start + b < u {
        starts.push(start + b);
    }
}

impl CompiledHistogram2D {
    /// Compiles a built 2-D histogram. `O((3k)² (log u)²)` once; queries
    /// never touch the coefficient set again.
    pub fn compile(hist: &WaveletHistogram2d) -> Self {
        let mut compiled = Self {
            domain: hist.domain(),
            starts_r: Vec::new(),
            starts_c: Vec::new(),
            cell: Vec::new(),
            block: Vec::new(),
            row_band: Vec::new(),
            col_band: Vec::new(),
            total: 0.0,
        };
        compiled.recompile(hist);
        compiled
    }

    /// Re-snapshots this compiled form from a rebuilt histogram in
    /// place, reusing the grid allocations. Equivalent to
    /// `*self = CompiledHistogram2D::compile(h)` bit for bit.
    pub fn recompile(&mut self, hist: &WaveletHistogram2d) {
        let domain = hist.domain();
        let u = domain.u();
        self.domain = domain;
        self.starts_r.clear();
        self.starts_c.clear();
        self.starts_r.push(0);
        self.starts_c.push(0);
        for &(slot, _) in hist.coefficients() {
            let (row_slot, col_slot) = unpack_slot(slot);
            push_breakpoints(&mut self.starts_r, row_slot, u);
            push_breakpoints(&mut self.starts_c, col_slot, u);
        }
        self.starts_r.sort_unstable();
        self.starts_r.dedup();
        self.starts_c.sort_unstable();
        self.starts_c.dedup();
        let (nr, nc) = (self.starts_r.len(), self.starts_c.len());

        // The reconstruction is constant on every grid segment, so one
        // tree evaluation at the segment's corner is the whole cell.
        let map: SparseCoefs2d = hist.coefficients().iter().copied().collect();
        self.cell.clear();
        self.cell.reserve(nr * nc);
        for i in 0..nr {
            for j in 0..nc {
                self.cell.push(point_estimate2d(
                    domain,
                    &map,
                    self.starts_r[i],
                    self.starts_c[j],
                ));
            }
        }

        let len_r =
            |i: usize| (self.starts_r.get(i + 1).copied().unwrap_or(u) - self.starts_r[i]) as f64;
        let len_c =
            |j: usize| (self.starts_c.get(j + 1).copied().unwrap_or(u) - self.starts_c[j]) as f64;
        // Fixed accumulation orders: ascending j inside each row band,
        // ascending i inside each column band and block column — the
        // orders the bit-identity contract pins.
        self.row_band.clear();
        self.row_band.resize(nr * nc, 0.0);
        for i in 0..nr {
            let mut acc = 0.0f64;
            for j in 0..nc {
                self.row_band[i * nc + j] = acc;
                acc += self.cell[i * nc + j] * len_c(j);
            }
        }
        self.col_band.clear();
        self.col_band.resize(nr * nc, 0.0);
        self.block.clear();
        self.block.resize(nr * nc, 0.0);
        for j in 0..nc {
            let mut band = 0.0f64;
            let mut blk = 0.0f64;
            for i in 0..nr {
                self.col_band[i * nc + j] = band;
                band += self.cell[i * nc + j] * len_r(i);
                self.block[i * nc + j] = blk;
                blk += self.row_band[i * nc + j] * len_r(i);
            }
        }
        self.total = self.corner(nr - 1, u - 1, nc - 1, u - 1);
    }

    /// The per-dimension key domain this histogram describes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of row segments (≤ `3k + 1`, and ≤ `u`).
    pub fn num_row_segments(&self) -> usize {
        self.starts_r.len()
    }

    /// Number of column segments.
    pub fn num_col_segments(&self) -> usize {
        self.starts_c.len()
    }

    /// Estimated total mass over the whole grid (equals
    /// `rectangle_sum(0, u−1, 0, u−1)` bit for bit).
    pub fn total_estimate(&self) -> f64 {
        self.total
    }

    /// Index of the row segment containing `x` (caller guarantees `x`
    /// is in the domain).
    #[inline]
    fn row_segment_of(&self, x: u64) -> usize {
        self.starts_r.partition_point(|&s| s <= x) - 1
    }

    /// Index of the column segment containing `y`.
    #[inline]
    fn col_segment_of(&self, y: u64) -> usize {
        self.starts_c.partition_point(|&s| s <= y) - 1
    }

    /// The corner function `F(x, y) = Σ_{x'≤x, y'≤y} est(x', y')`,
    /// given the grid segment `(i, j)` containing `(x, y)`. Shared
    /// verbatim by the single and batched paths so their answers are
    /// bit-identical.
    #[inline]
    fn corner(&self, i: usize, x: u64, j: usize, y: u64) -> f64 {
        let idx = i * self.starts_c.len() + j;
        let dx = (x - self.starts_r[i] + 1) as f64;
        let dy = (y - self.starts_c[j] + 1) as f64;
        self.block[idx]
            + dx * self.row_band[idx]
            + dy * self.col_band[idx]
            + dx * dy * self.cell[idx]
    }

    /// Inclusion–exclusion over the four corners, with `F` taken as 0
    /// below the grid. The segment indices for `xlo − 1` / `ylo − 1`
    /// are only read when `xlo > 0` / `ylo > 0`. One fixed combination
    /// order, shared by the single and batched paths.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn rect_value(
        &self,
        (xlo, xhi, ylo, yhi): (u64, u64, u64, u64),
        sxl: usize,
        sxh: usize,
        syl: usize,
        syh: usize,
    ) -> f64 {
        let a = self.corner(sxh, xhi, syh, yhi);
        let b = if xlo > 0 {
            self.corner(sxl, xlo - 1, syh, yhi)
        } else {
            0.0
        };
        let c = if ylo > 0 {
            self.corner(sxh, xhi, syl, ylo - 1)
        } else {
            0.0
        };
        let d = if xlo > 0 && ylo > 0 {
            self.corner(sxl, xlo - 1, syl, ylo - 1)
        } else {
            0.0
        };
        (a - b) - c + d
    }

    /// Validates one rectangle: `x` then `y`, emptiness then domain —
    /// the single and batched paths report identical first errors.
    #[inline]
    fn check_rect(&self, (xlo, xhi, ylo, yhi): (u64, u64, u64, u64)) -> Result<(), QueryError> {
        if xlo > xhi {
            return Err(QueryError::EmptyRange { lo: xlo, hi: xhi });
        }
        if ylo > yhi {
            return Err(QueryError::EmptyRange { lo: ylo, hi: yhi });
        }
        for key in [xhi, yhi] {
            if !self.domain.contains(key) {
                return Err(QueryError::OutOfDomain {
                    key,
                    domain: self.domain,
                });
            }
        }
        Ok(())
    }

    /// Estimated frequency of the cell `(x, y)`, or the reason the
    /// query is malformed.
    pub fn try_point_estimate(&self, x: u64, y: u64) -> Result<f64, QueryError> {
        for key in [x, y] {
            if !self.domain.contains(key) {
                return Err(QueryError::OutOfDomain {
                    key,
                    domain: self.domain,
                });
            }
        }
        Ok(self.cell[self.row_segment_of(x) * self.starts_c.len() + self.col_segment_of(y)])
    }

    /// Estimated total frequency of cells in the inclusive rectangle
    /// `[xlo, xhi] × [ylo, yhi]`, or the reason the query is malformed.
    pub fn try_rectangle_sum(&self, query: (u64, u64, u64, u64)) -> Result<f64, QueryError> {
        self.check_rect(query)?;
        let (xlo, xhi, ylo, yhi) = query;
        let sxl = if xlo > 0 {
            self.row_segment_of(xlo - 1)
        } else {
            0
        };
        let syl = if ylo > 0 {
            self.col_segment_of(ylo - 1)
        } else {
            0
        };
        Ok(self.rect_value(
            query,
            sxl,
            self.row_segment_of(xhi),
            syl,
            self.col_segment_of(yhi),
        ))
    }

    /// Estimated selectivity of the rectangle relative to `n` records,
    /// clamped to `[0, 1]`, or the reason the query is malformed.
    pub fn try_selectivity(&self, query: (u64, u64, u64, u64), n: u64) -> Result<f64, QueryError> {
        if n == 0 {
            return Err(QueryError::ZeroRecords);
        }
        Ok((self.try_rectangle_sum(query)? / n as f64).clamp(0.0, 1.0))
    }

    /// Estimated frequency of the cell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` is outside the domain.
    pub fn point_estimate(&self, x: u64, y: u64) -> f64 {
        self.try_point_estimate(x, y)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Estimated total frequency of the inclusive rectangle.
    ///
    /// # Panics
    ///
    /// Panics when a range is empty or an upper endpoint is outside the
    /// domain.
    pub fn rectangle_sum(&self, query: (u64, u64, u64, u64)) -> f64 {
        self.try_rectangle_sum(query)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Estimated selectivity of the rectangle relative to `n` records,
    /// clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// As [`Self::rectangle_sum`], plus `n == 0`.
    pub fn selectivity(&self, query: (u64, u64, u64, u64), n: u64) -> f64 {
        self.try_selectivity(query, n)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Answers a batch of rectangle sums into `out`, bit-identical to
    /// calling [`Self::try_rectangle_sum`] per query, or reports the
    /// first malformed query. On `Err`, `out` is untouched.
    ///
    /// Each axis's `2q` endpoints are radix-sorted (the same LSD
    /// counting sort as the 1-D batch path) and resolved in one
    /// galloping walk over that axis's segment starts — `O(q + k)`
    /// probes per axis instead of `O(q log k)` binary searches — then
    /// every query combines its four corners in the single-path order.
    pub fn try_rectangle_sum_batch_into(
        &self,
        queries: &[(u64, u64, u64, u64)],
        scratch: &mut BatchScratch2D,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if queries.len() != out.len() {
            return Err(QueryError::OutputMismatch {
                queries: queries.len(),
                out: out.len(),
            });
        }
        if queries.len() > 1 << 30 {
            return Err(QueryError::BatchTooLarge {
                len: queries.len(),
                max_log2: 30,
            });
        }
        for &query in queries {
            self.check_rect(query)?;
        }
        scratch.resolve_axis(
            &self.starts_r,
            queries.iter().map(|&(xlo, xhi, _, _)| (xlo, xhi)),
        );
        std::mem::swap(&mut scratch.segs, &mut scratch.x_segs);
        scratch.resolve_axis(
            &self.starts_c,
            queries.iter().map(|&(_, _, ylo, yhi)| (ylo, yhi)),
        );
        for (q, (&query, slot)) in queries.iter().zip(out.iter_mut()).enumerate() {
            *slot = self.rect_value(
                query,
                scratch.x_segs[2 * q] as usize,
                scratch.x_segs[2 * q + 1] as usize,
                scratch.segs[2 * q] as usize,
                scratch.segs[2 * q + 1] as usize,
            );
        }
        Ok(())
    }

    /// Answers a batch of rectangle sums into `out`, bit-identical to
    /// calling [`Self::rectangle_sum`] per query.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != queries.len()`, on any invalid query,
    /// or when the batch exceeds `2^30` queries (tag budget).
    pub fn rectangle_sum_batch_into(
        &self,
        queries: &[(u64, u64, u64, u64)],
        scratch: &mut BatchScratch2D,
        out: &mut [f64],
    ) {
        self.try_rectangle_sum_batch_into(queries, scratch, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Answers a batch of selectivity queries relative to `n` records,
    /// bit-identical to calling [`Self::try_selectivity`] per query, or
    /// reports the first malformed query. On `Err`, `out` is untouched.
    pub fn try_selectivity_batch_into(
        &self,
        queries: &[(u64, u64, u64, u64)],
        n: u64,
        scratch: &mut BatchScratch2D,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if n == 0 {
            return Err(QueryError::ZeroRecords);
        }
        self.try_rectangle_sum_batch_into(queries, scratch, out)?;
        for slot in out.iter_mut() {
            *slot = (*slot / n as f64).clamp(0.0, 1.0);
        }
        Ok(())
    }

    /// Answers a batch of selectivity queries relative to `n` records,
    /// bit-identical to calling [`Self::selectivity`] per query.
    ///
    /// # Panics
    ///
    /// As [`Self::rectangle_sum_batch_into`], plus `n == 0`.
    pub fn selectivity_batch_into(
        &self,
        queries: &[(u64, u64, u64, u64)],
        n: u64,
        scratch: &mut BatchScratch2D,
        out: &mut [f64],
    ) {
        self.try_selectivity_batch_into(queries, n, scratch, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Reusable scratch of the batched 2-D query path: one endpoint buffer
/// (reused for both axes), the sort's swap/digit buffers, and the
/// resolved segment indices per axis. One per serving thread, recycled
/// across batches and across different compiled histograms — the
/// scratch carries no per-histogram state.
#[derive(Debug, Default)]
pub struct BatchScratch2D {
    /// `(key, tag)` endpoints of the axis being resolved; the tag's low
    /// bit distinguishes a range's `lo − 1` endpoint (0) from its `hi`
    /// endpoint (1), the rest is the query index.
    endpoints: Vec<(u64, u32)>,
    /// Ping-pong buffer of the LSD endpoint sort.
    swap: Vec<(u64, u32)>,
    /// Per-pass digit histograms of the endpoint sort.
    counts: Vec<u32>,
    /// Segment indices of the axis just resolved, indexed by tag.
    segs: Vec<u32>,
    /// Segment indices of the x axis, parked here while y resolves.
    x_segs: Vec<u32>,
}

impl BatchScratch2D {
    /// Scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves one axis's endpoints to segment indices in `self.segs`:
    /// collect, sort, one galloping walk. A range with `lo == 0` leaves
    /// its lo-slot at the 0 the resize wrote; [`CompiledHistogram2D`]
    /// never reads it.
    fn resolve_axis(&mut self, starts: &[u64], ranges: impl Iterator<Item = (u64, u64)>) {
        self.endpoints.clear();
        self.segs.clear();
        for (q, (lo, hi)) in ranges.enumerate() {
            let tag = (q as u32) << 1;
            if lo > 0 {
                self.endpoints.push((lo - 1, tag));
            }
            self.endpoints.push((hi, tag | 1));
            self.segs.push(0);
            self.segs.push(0);
        }
        sort_endpoints(&mut self.endpoints, &mut self.swap, &mut self.counts);
        let mut seg = 0usize;
        for &(x, tag) in &self.endpoints {
            seg = advance(starts, seg, x);
            self.segs[tag as usize] = seg as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_wavelet::twod::{forward2d, pack_slot};

    fn scramble(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^ (z >> 27)
    }

    /// A small dense row-major grid, transformed and truncated to k terms.
    fn compiled_from_grid(grid: &[f64], k: usize) -> (CompiledHistogram2D, WaveletHistogram2d) {
        let u = (grid.len() as f64).sqrt() as usize;
        assert_eq!(u * u, grid.len());
        let domain = Domain::covering(u as u64).unwrap();
        assert_eq!(domain.u() as usize, u);
        let w = forward2d(domain, grid);
        let entries = w
            .iter()
            .enumerate()
            .map(|(i, &v)| (pack_slot((i / u) as u64, (i % u) as u64), v));
        let top = wh_wavelet::select::top_k_magnitude(entries, k);
        let hist = WaveletHistogram2d::new(domain, top.into_iter().map(|e| (e.slot, e.value)));
        (CompiledHistogram2D::compile(&hist), hist)
    }

    fn test_grid(u: usize) -> Vec<f64> {
        (0..u * u)
            .map(|i| (((i / u) * 13 + (i % u) * 7) % 19) as f64)
            .collect()
    }

    fn random_rects(u: u64, count: usize) -> Vec<(u64, u64, u64, u64)> {
        (0..count as u64)
            .map(|i| {
                let xlo = scramble(i) % u;
                let xhi = xlo + scramble(i ^ 0xaaaa) % (u - xlo);
                let ylo = scramble(i ^ 0x5555) % u;
                let yhi = ylo + scramble(i ^ 0xffff) % (u - ylo);
                (xlo, xhi, ylo, yhi)
            })
            .collect()
    }

    #[test]
    fn matches_tree_evaluation_on_full_and_truncated_retention() {
        let grid = test_grid(16);
        for k in [256usize, 20, 5, 1] {
            let (compiled, hist) = compiled_from_grid(&grid, k);
            for x in 0..16u64 {
                for y in 0..16u64 {
                    let tree = hist.point_estimate(x, y);
                    let got = compiled.point_estimate(x, y);
                    assert!(
                        (tree - got).abs() <= 1e-9 * (1.0 + tree.abs()),
                        "k={k} ({x},{y}): {got} vs {tree}"
                    );
                }
            }
        }
    }

    #[test]
    fn rectangle_sum_matches_summed_points() {
        let grid = test_grid(16);
        for k in [256usize, 12] {
            let (compiled, _) = compiled_from_grid(&grid, k);
            for &(xlo, xhi, ylo, yhi) in &random_rects(16, 60) {
                let mut want = 0.0f64;
                for x in xlo..=xhi {
                    for y in ylo..=yhi {
                        want += compiled.point_estimate(x, y);
                    }
                }
                let got = compiled.rectangle_sum((xlo, xhi, ylo, yhi));
                assert!(
                    (want - got).abs() <= 1e-6 * (1.0 + want.abs()),
                    "k={k} [{xlo},{xhi}]x[{ylo},{yhi}]: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn batched_rectangles_are_bit_identical_to_single() {
        let grid = test_grid(32);
        for k in [1024usize, 33, 3] {
            let (compiled, _) = compiled_from_grid(&grid, k);
            let queries = random_rects(32, 400);
            let mut scratch = BatchScratch2D::new();
            let mut out = vec![0.0; queries.len()];
            compiled.rectangle_sum_batch_into(&queries, &mut scratch, &mut out);
            for (&q, &batched) in queries.iter().zip(&out) {
                assert_eq!(
                    batched.to_bits(),
                    compiled.rectangle_sum(q).to_bits(),
                    "k={k} {q:?}"
                );
            }
            // Scratch reuse across batches must not change answers.
            let more = random_rects(32, 57);
            let mut out2 = vec![0.0; more.len()];
            compiled.selectivity_batch_into(&more, 1000, &mut scratch, &mut out2);
            for (&q, &batched) in more.iter().zip(&out2) {
                assert_eq!(batched.to_bits(), compiled.selectivity(q, 1000).to_bits());
            }
        }
    }

    #[test]
    fn recompile_matches_fresh_compile_bitwise() {
        let (mut reused, _) = compiled_from_grid(&test_grid(16), 9);
        let other: Vec<f64> = (0..32 * 32)
            .map(|i| (((i / 32) * 5 + (i % 32) * 11) % 23) as f64)
            .collect();
        let (_, hist_b) = compiled_from_grid(&other, 14);
        reused.recompile(&hist_b);
        let fresh = CompiledHistogram2D::compile(&hist_b);
        assert_eq!(reused, fresh);
        assert_eq!(
            reused.total_estimate().to_bits(),
            fresh.total_estimate().to_bits()
        );
    }

    #[test]
    fn total_equals_full_rectangle_bitwise() {
        let (compiled, _) = compiled_from_grid(&test_grid(16), 10);
        assert_eq!(
            compiled.total_estimate().to_bits(),
            compiled.rectangle_sum((0, 15, 0, 15)).to_bits()
        );
    }

    #[test]
    fn empty_histogram_serves_zeros() {
        let domain = Domain::new(4).unwrap();
        let hist = WaveletHistogram2d::new(domain, std::iter::empty::<(u64, f64)>());
        let compiled = CompiledHistogram2D::compile(&hist);
        assert_eq!(compiled.num_row_segments(), 1);
        assert_eq!(compiled.num_col_segments(), 1);
        assert_eq!(compiled.point_estimate(7, 3), 0.0);
        assert_eq!(compiled.rectangle_sum((0, 15, 2, 9)), 0.0);
        assert_eq!(compiled.selectivity((3, 9, 0, 15), 100), 0.0);
    }

    #[test]
    fn try_queries_report_errors_and_leave_out_untouched() {
        let (compiled, _) = compiled_from_grid(&test_grid(16), 8);
        let mut scratch = BatchScratch2D::new();
        let sentinel = [-7.0, -7.0];
        let mut out = sentinel;

        let err = compiled
            .try_rectangle_sum_batch_into(&[(0, 1, 0, 1), (3, 2, 0, 1)], &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, QueryError::EmptyRange { lo: 3, hi: 2 });
        assert_eq!(out, sentinel);

        let err = compiled
            .try_rectangle_sum_batch_into(&[(0, 1, 0, 99), (0, 1, 0, 1)], &mut scratch, &mut out)
            .unwrap_err();
        assert!(matches!(err, QueryError::OutOfDomain { key: 99, .. }));
        assert_eq!(out, sentinel);

        let err = compiled
            .try_selectivity_batch_into(&[(0, 1, 0, 1), (0, 1, 0, 1)], 0, &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, QueryError::ZeroRecords);
        assert_eq!(out, sentinel);

        assert_eq!(
            compiled.try_rectangle_sum((2, 1, 0, 3)),
            Err(QueryError::EmptyRange { lo: 2, hi: 1 })
        );
        assert_eq!(
            compiled.try_rectangle_sum((0, 3, 5, 4)),
            Err(QueryError::EmptyRange { lo: 5, hi: 4 })
        );
        assert!(matches!(
            compiled.try_point_estimate(16, 0),
            Err(QueryError::OutOfDomain { key: 16, .. })
        ));

        // The same scratch then serves a valid batch bit-identically.
        compiled
            .try_rectangle_sum_batch_into(&[(0, 1, 0, 1), (1, 3, 2, 9)], &mut scratch, &mut out)
            .unwrap();
        assert_eq!(
            out[1].to_bits(),
            compiled.rectangle_sum((1, 3, 2, 9)).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_domain_panics() {
        let (compiled, _) = compiled_from_grid(&test_grid(16), 4);
        compiled.rectangle_sum((0, 3, 0, 16));
    }

    #[test]
    fn compiled_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<CompiledHistogram2D>();
        assert_sync_send::<BatchScratch2D>();
    }
}
