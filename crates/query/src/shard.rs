//! Key-range sharding of a compiled histogram: the partitioned form the
//! serving tier (`wh-serve`) fans batches out to.
//!
//! A [`ShardedHistogram`] is built by **slicing** a fully compiled
//! [`CompiledHistogram`] into contiguous key ranges — every shard copies
//! its segment window of the global `starts`/`values`/`prefix` arrays
//! bit for bit. Sharding therefore changes *where* a segment lives, never
//! *what* it answers: a shard locates the same (unique) segment the
//! unsharded form would and evaluates the identical
//! `prefix[i] + values[i]·(x − starts[i] + 1)` expression on the same
//! f64s, so every estimate — single or batched, merged across shards —
//! is **bit-identical** to the unsharded answer. (Compiling each shard
//! independently from the error tree could not promise that: the global
//! prefix accumulator runs sequentially across all segments.)
//!
//! The batched path mirrors the unsharded one: sort the batch's
//! endpoints once (the same LSD counting sort, buffers recycled in the
//! caller's [`BatchScratch`]), split the sorted stream into per-shard
//! sub-slices by binary search on the shard bounds, resolve each
//! sub-slice with the same monotone galloping walk over that shard's
//! local segment array, and combine the two endpoint prefixes of each
//! range in the same order the unsharded path does.
//!
//! Everything here is fallible ([`QueryError`], no panicking
//! counterparts): shards exist to serve traffic the process does not
//! control.

use crate::batch::{advance, BatchScratch};
use crate::compiled::CompiledHistogram;
use crate::error::QueryError;
use wh_wavelet::Domain;

/// One key-range shard: a contiguous window of the compiled segment
/// arrays, copied bitwise. Covers keys `[key_lo, key_hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramShard {
    key_lo: u64,
    key_hi: u64,
    /// Segment start keys of this window; `starts[0] == key_lo`.
    starts: Vec<u64>,
    /// Per-key estimates, copied from the global array.
    values: Vec<f64>,
    /// *Global* cumulative estimates before each segment — kept global
    /// (not rebased to the shard) precisely so the evaluated expression
    /// is the unsharded one.
    prefix: Vec<f64>,
}

impl HistogramShard {
    /// The half-open key range `[lo, hi)` this shard answers for.
    pub fn key_range(&self) -> (u64, u64) {
        (self.key_lo, self.key_hi)
    }

    /// Number of segments in this shard's window.
    pub fn num_segments(&self) -> usize {
        self.starts.len()
    }

    /// Index of the local segment containing `x` (caller guarantees
    /// `key_lo <= x < key_hi`).
    #[inline]
    fn segment_of(&self, x: u64) -> usize {
        self.starts.partition_point(|&s| s <= x) - 1
    }

    /// The shared cumulative-estimate formula, on this shard's copies of
    /// the global f64s — bit-identical to the unsharded evaluation.
    #[inline]
    fn prefix_at(&self, seg: usize, x: u64) -> f64 {
        self.prefix[seg] + self.values[seg] * ((x - self.starts[seg] + 1) as f64)
    }
}

/// A compiled histogram partitioned into key-range shards, answering
/// every query bit-identically to the [`CompiledHistogram`] it was
/// sliced from.
///
/// Like the unsharded form it is immutable and `Sync`: the serving tier
/// shares one instance across threads behind an `Arc` and swaps whole
/// instances atomically on rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedHistogram {
    domain: Domain,
    total: f64,
    /// `bounds[i]` is shard `i`'s first key; `bounds[shards.len()] == u`.
    /// Strictly ascending, `bounds[0] == 0`.
    bounds: Vec<u64>,
    shards: Vec<HistogramShard>,
}

impl ShardedHistogram {
    /// Slices `compiled` into (at most) `num_shards` key-range shards of
    /// near-equal segment count. Requests for more shards than segments
    /// clamp to one shard per segment; `num_shards == 0` is treated as 1.
    pub fn shard(compiled: &CompiledHistogram, num_shards: usize) -> Self {
        let starts = compiled.start_keys();
        let values = compiled.value_slice();
        let prefix = compiled.prefix_slice();
        let segs = starts.len();
        let m = num_shards.clamp(1, segs);
        let u = compiled.domain().u();
        let mut bounds = Vec::with_capacity(m + 1);
        let mut shards = Vec::with_capacity(m);
        for j in 0..m {
            let seg_lo = j * segs / m;
            let seg_hi = (j + 1) * segs / m;
            let key_lo = starts[seg_lo];
            let key_hi = starts.get(seg_hi).copied().unwrap_or(u);
            bounds.push(key_lo);
            shards.push(HistogramShard {
                key_lo,
                key_hi,
                starts: starts[seg_lo..seg_hi].to_vec(),
                values: values[seg_lo..seg_hi].to_vec(),
                prefix: prefix[seg_lo..seg_hi].to_vec(),
            });
        }
        bounds.push(u);
        Self {
            domain: compiled.domain(),
            total: compiled.total_estimate(),
            bounds,
            shards,
        }
    }

    /// The key domain this histogram describes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of key-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, ascending by key range.
    pub fn shards(&self) -> impl Iterator<Item = &HistogramShard> {
        self.shards.iter()
    }

    /// Estimated total frequency over the whole domain, copied bitwise
    /// from the compiled form.
    pub fn total_estimate(&self) -> f64 {
        self.total
    }

    /// Index of the shard whose key range contains `x` (caller
    /// guarantees `x` is in the domain).
    #[inline]
    fn shard_of(&self, x: u64) -> usize {
        self.bounds.partition_point(|&b| b <= x) - 1
    }

    #[inline]
    fn check_key(&self, x: u64) -> Result<(), QueryError> {
        if self.domain.contains(x) {
            Ok(())
        } else {
            Err(QueryError::OutOfDomain {
                key: x,
                domain: self.domain,
            })
        }
    }

    /// Estimated frequency of key `x`, bit-identical to
    /// [`CompiledHistogram::try_point_estimate`].
    pub fn try_point_estimate(&self, x: u64) -> Result<f64, QueryError> {
        self.check_key(x)?;
        let shard = &self.shards[self.shard_of(x)];
        Ok(shard.values[shard.segment_of(x)])
    }

    /// Estimated cumulative frequency of keys `0..=x`, bit-identical to
    /// [`CompiledHistogram::try_prefix_sum`].
    pub fn try_prefix_sum(&self, x: u64) -> Result<f64, QueryError> {
        self.check_key(x)?;
        let shard = &self.shards[self.shard_of(x)];
        Ok(shard.prefix_at(shard.segment_of(x), x))
    }

    /// Estimated total frequency of keys in `[lo, hi]`, bit-identical to
    /// [`CompiledHistogram::try_range_sum`] — the two cumulative
    /// estimates may come from different shards; they are combined in
    /// the same order.
    pub fn try_range_sum(&self, lo: u64, hi: u64) -> Result<f64, QueryError> {
        if lo > hi {
            return Err(QueryError::EmptyRange { lo, hi });
        }
        let hi_p = self.try_prefix_sum(hi)?;
        let lo_p = if lo == 0 {
            0.0
        } else {
            self.try_prefix_sum(lo - 1)?
        };
        Ok(hi_p - lo_p)
    }

    /// Estimated selectivity of `[lo, hi]` relative to `n` records,
    /// bit-identical to [`CompiledHistogram::try_selectivity`].
    pub fn try_selectivity(&self, lo: u64, hi: u64, n: u64) -> Result<f64, QueryError> {
        if n == 0 {
            return Err(QueryError::ZeroRecords);
        }
        Ok((self.try_range_sum(lo, hi)? / n as f64).clamp(0.0, 1.0))
    }

    /// Resolves the sorted endpoint stream in `scratch.endpoints` into
    /// `scratch.prefixes`, fanning contiguous sub-slices out to shards.
    fn resolve_prefixes(&self, scratch: &mut BatchScratch) {
        let mut at = 0usize;
        for (j, shard) in self.shards.iter().enumerate() {
            if at == scratch.endpoints.len() {
                break;
            }
            let hi_bound = self.bounds[j + 1];
            let end = at + scratch.endpoints[at..].partition_point(|&(k, _)| k < hi_bound);
            let mut seg = 0usize;
            for &(x, tag) in &scratch.endpoints[at..end] {
                seg = advance(&shard.starts, seg, x);
                scratch.prefixes[tag as usize] = shard.prefix_at(seg, x);
            }
            at = end;
        }
    }

    /// Answers a batch of inclusive range-sum queries into `out`,
    /// bit-identical to [`CompiledHistogram::try_range_sum_batch_into`]
    /// on the unsharded form: the same endpoint sort, a per-shard
    /// galloping walk instead of a global one, and the same
    /// `hi − (lo − 1)` prefix combination per query. On `Err`, `out` is
    /// untouched.
    pub fn try_range_sum_batch_into(
        &self,
        queries: &[(u64, u64)],
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if queries.len() != out.len() {
            return Err(QueryError::OutputMismatch {
                queries: queries.len(),
                out: out.len(),
            });
        }
        if queries.len() > 1 << 30 {
            return Err(QueryError::BatchTooLarge {
                len: queries.len(),
                max_log2: 30,
            });
        }
        scratch.endpoints.clear();
        scratch.endpoints.reserve(2 * queries.len());
        scratch.prefixes.clear();
        scratch.prefixes.resize(2 * queries.len(), 0.0);
        for (q, &(lo, hi)) in queries.iter().enumerate() {
            if lo > hi {
                return Err(QueryError::EmptyRange { lo, hi });
            }
            self.check_key(hi)?;
            let tag = (q as u32) << 1;
            if lo > 0 {
                scratch.endpoints.push((lo - 1, tag));
            }
            scratch.endpoints.push((hi, tag | 1));
        }
        scratch.sort();
        self.resolve_prefixes(scratch);
        for (q, slot) in out.iter_mut().enumerate() {
            *slot = scratch.prefixes[2 * q + 1] - scratch.prefixes[2 * q];
        }
        Ok(())
    }

    /// Answers a batch of selectivity queries relative to `n` records,
    /// bit-identical to
    /// [`CompiledHistogram::try_selectivity_batch_into`]. On `Err`,
    /// `out` is untouched.
    pub fn try_selectivity_batch_into(
        &self,
        queries: &[(u64, u64)],
        n: u64,
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if n == 0 {
            return Err(QueryError::ZeroRecords);
        }
        self.try_range_sum_batch_into(queries, scratch, out)?;
        for slot in out.iter_mut() {
            *slot = (*slot / n as f64).clamp(0.0, 1.0);
        }
        Ok(())
    }

    /// Answers a batch of point estimates into `out`, bit-identical to
    /// [`CompiledHistogram::try_point_estimate_batch_into`]. On `Err`,
    /// `out` is untouched.
    pub fn try_point_estimate_batch_into(
        &self,
        keys: &[u64],
        scratch: &mut BatchScratch,
        out: &mut [f64],
    ) -> Result<(), QueryError> {
        if keys.len() != out.len() {
            return Err(QueryError::OutputMismatch {
                queries: keys.len(),
                out: out.len(),
            });
        }
        if keys.len() > 1 << 31 {
            return Err(QueryError::BatchTooLarge {
                len: keys.len(),
                max_log2: 31,
            });
        }
        scratch.endpoints.clear();
        scratch.endpoints.reserve(keys.len());
        for (i, &x) in keys.iter().enumerate() {
            self.check_key(x)?;
            scratch.endpoints.push((x, i as u32));
        }
        scratch.sort();
        let mut at = 0usize;
        for (j, shard) in self.shards.iter().enumerate() {
            if at == scratch.endpoints.len() {
                break;
            }
            let hi_bound = self.bounds[j + 1];
            let end = at + scratch.endpoints[at..].partition_point(|&(k, _)| k < hi_bound);
            let mut seg = 0usize;
            for &(x, idx) in &scratch.endpoints[at..end] {
                seg = advance(&shard.starts, seg, x);
                out[idx as usize] = shard.values[seg];
            }
            at = end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_core::WaveletHistogram;
    use wh_wavelet::haar::forward;
    use wh_wavelet::select::top_k_magnitude;

    fn compiled_from_signal(v: &[f64], k: usize) -> CompiledHistogram {
        let domain = Domain::covering(v.len() as u64).unwrap();
        let w = forward(v);
        let top = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
        CompiledHistogram::compile(&WaveletHistogram::new(
            domain,
            top.iter().map(|e| (e.slot, e.value)),
        ))
    }

    fn scramble(x: u64) -> u64 {
        let mut z = x.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^ (z >> 27)
    }

    fn random_queries(u: u64, count: usize) -> Vec<(u64, u64)> {
        (0..count as u64)
            .map(|i| {
                let lo = scramble(i) % u;
                let hi = lo + scramble(i ^ 0xdead) % (u - lo);
                (lo, hi)
            })
            .collect()
    }

    #[test]
    fn shards_partition_the_domain() {
        let v: Vec<f64> = (0..256).map(|i| ((i * 37) % 19) as f64).collect();
        let compiled = compiled_from_signal(&v, 20);
        for m in [1usize, 2, 3, 7, 64, 10_000] {
            let sharded = ShardedHistogram::shard(&compiled, m);
            assert!(sharded.num_shards() <= compiled.num_segments());
            assert!(sharded.num_shards() <= m.max(1));
            let mut expect_lo = 0u64;
            let mut segs = 0usize;
            for shard in sharded.shards() {
                let (lo, hi) = shard.key_range();
                assert_eq!(lo, expect_lo, "m={m}");
                assert!(hi > lo, "m={m}");
                expect_lo = hi;
                segs += shard.num_segments();
            }
            assert_eq!(expect_lo, compiled.domain().u(), "m={m}");
            assert_eq!(segs, compiled.num_segments(), "m={m}");
        }
    }

    #[test]
    fn sharded_single_queries_are_bit_identical() {
        let v: Vec<f64> = (0..256)
            .map(|i| ((i * 37) % 19) as f64 - ((i % 5) as f64))
            .collect();
        for k in [256usize, 17, 2, 0] {
            let compiled = compiled_from_signal(&v, k);
            for m in [1usize, 2, 5, 33] {
                let sharded = ShardedHistogram::shard(&compiled, m);
                assert_eq!(
                    sharded.total_estimate().to_bits(),
                    compiled.total_estimate().to_bits()
                );
                for x in 0..256u64 {
                    assert_eq!(
                        sharded.try_point_estimate(x).unwrap().to_bits(),
                        compiled.point_estimate(x).to_bits(),
                        "k={k} m={m} x={x}"
                    );
                    assert_eq!(
                        sharded.try_prefix_sum(x).unwrap().to_bits(),
                        compiled.prefix_sum(x).to_bits(),
                        "k={k} m={m} x={x}"
                    );
                }
                for &(lo, hi) in &random_queries(256, 300) {
                    assert_eq!(
                        sharded.try_range_sum(lo, hi).unwrap().to_bits(),
                        compiled.range_sum(lo, hi).to_bits(),
                        "k={k} m={m} [{lo},{hi}]"
                    );
                    assert_eq!(
                        sharded.try_selectivity(lo, hi, 999).unwrap().to_bits(),
                        compiled.selectivity(lo, hi, 999).to_bits(),
                        "k={k} m={m} [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_batches_are_bit_identical() {
        let v: Vec<f64> = (0..512).map(|i| ((i * 131) % 41) as f64).collect();
        let compiled = compiled_from_signal(&v, 25);
        let queries = random_queries(512, 700);
        let keys: Vec<u64> = (0..400u64).map(|i| scramble(i) % 512).collect();

        let mut scratch = BatchScratch::new();
        let mut expect_sums = vec![0.0; queries.len()];
        compiled.range_sum_batch_into(&queries, &mut scratch, &mut expect_sums);
        let mut expect_sels = vec![0.0; queries.len()];
        compiled.selectivity_batch_into(&queries, 4242, &mut scratch, &mut expect_sels);
        let mut expect_pts = vec![0.0; keys.len()];
        compiled.point_estimate_batch_into(&keys, &mut scratch, &mut expect_pts);

        for m in [1usize, 2, 4, 13, 76] {
            let sharded = ShardedHistogram::shard(&compiled, m);
            // One scratch recycled across shard counts and batch kinds.
            let mut sums = vec![0.0; queries.len()];
            sharded
                .try_range_sum_batch_into(&queries, &mut scratch, &mut sums)
                .unwrap();
            let mut sels = vec![0.0; queries.len()];
            sharded
                .try_selectivity_batch_into(&queries, 4242, &mut scratch, &mut sels)
                .unwrap();
            let mut pts = vec![0.0; keys.len()];
            sharded
                .try_point_estimate_batch_into(&keys, &mut scratch, &mut pts)
                .unwrap();
            for (i, (a, b)) in expect_sums.iter().zip(&sums).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "m={m} query {i}");
            }
            for (i, (a, b)) in expect_sels.iter().zip(&sels).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "m={m} query {i}");
            }
            for (i, (a, b)) in expect_pts.iter().zip(&pts).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "m={m} key {i}");
            }
        }
    }

    #[test]
    fn sharded_errors_match_the_unsharded_ones() {
        let compiled = compiled_from_signal(&[1.0, 2.0, 3.0, 4.0], 4);
        let sharded = ShardedHistogram::shard(&compiled, 2);
        let mut scratch = BatchScratch::new();
        let sentinel = [-3.0, -3.0];
        let mut out = sentinel;

        assert_eq!(sharded.try_range_sum(3, 1), compiled.try_range_sum(3, 1));
        assert_eq!(
            sharded.try_point_estimate(77),
            compiled.try_point_estimate(77)
        );
        assert_eq!(
            sharded.try_selectivity(0, 1, 0),
            compiled.try_selectivity(0, 1, 0)
        );
        let err = sharded
            .try_range_sum_batch_into(&[(0, 1), (2, 9)], &mut scratch, &mut out)
            .unwrap_err();
        assert!(matches!(err, QueryError::OutOfDomain { key: 9, .. }));
        assert_eq!(out, sentinel);
        let err = sharded
            .try_point_estimate_batch_into(&[1], &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, QueryError::OutputMismatch { queries: 1, out: 2 });
    }

    #[test]
    fn empty_histogram_shards_and_serves_zeros() {
        let domain = Domain::new(4).unwrap();
        let hist = WaveletHistogram::new(domain, std::iter::empty::<(u64, f64)>());
        let compiled = CompiledHistogram::compile(&hist);
        let sharded = ShardedHistogram::shard(&compiled, 8);
        assert_eq!(sharded.num_shards(), 1); // one segment, clamped
        assert_eq!(sharded.try_point_estimate(7).unwrap(), 0.0);
        assert_eq!(sharded.try_range_sum(0, 15).unwrap(), 0.0);
    }

    #[test]
    fn sharded_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<ShardedHistogram>();
    }
}
