//! # wh-sketch — linear sketches for wavelet approximation
//!
//! The paper's Send-Sketch baseline (§4, choice (ii)) summarises each
//! split's local wavelet coefficient vector with a small linear sketch,
//! ships the sketches (they merge by addition), and extracts the top-k
//! coefficients at the reducer. Two sketches from the literature are
//! implemented:
//!
//! * [`ams::AmsWaveletSketch`] — the Gilbert et al. (VLDB'01) approach — a
//!   CountSketch over the coefficient domain whose query side must scan
//!   every coefficient index (fast update, slow `O(u)` query);
//! * [`gcs::GroupCountSketch`] — the Group-Count Sketch of Cormode,
//!   Garofalakis & Sacharidis (EDBT'06): a hierarchy of sketches over
//!   dyadic groups of coefficient indices (branching factor `b`, e.g.
//!   GCS-8) supporting best-first descent to the high-energy coefficients
//!   (`polylog` query at `log_b u`-times-higher update cost — the
//!   trade-off the paper's GCS-8 setting balances).
//!
//! Both are built from [`count_sketch::CountSketch`] and the 4-wise
//! independent polynomial hashing in [`hash`]. All sketches constructed
//! from the same parameters (including seed) are **mergeable by addition**,
//! which is what makes them shippable through a Combine-less MapReduce
//! round.

pub mod ams;
pub mod count_sketch;
pub mod gcs;
pub mod hash;

pub use ams::AmsWaveletSketch;
pub use count_sketch::CountSketch;
pub use gcs::{GcsParams, GroupCountSketch};
