//! The AMS-style wavelet sketch (Gilbert et al., VLDB'01 — the paper's
//! reference \[20\]).
//!
//! A CountSketch is maintained over the **wavelet coefficient domain**:
//! every key arrival translates into `log u + 1` coefficient updates (the
//! sparse-transform path), each applied to the sketch. The sketch of the
//! global coefficient vector is the sum of the splits' sketches. Extraction
//! is the approach's weakness: every coefficient index must be probed, an
//! `O(u · rows)` scan — the cost the Group-Count Sketch removes.

use crate::count_sketch::CountSketch;
use wh_wavelet::select::{top_k_magnitude, CoefEntry};
use wh_wavelet::{sparse, Domain};

/// CountSketch over the coefficient vector of a frequency signal.
#[derive(Debug, Clone, PartialEq)]
pub struct AmsWaveletSketch {
    domain: Domain,
    sketch: CountSketch,
}

impl AmsWaveletSketch {
    /// Creates an empty sketch. All sketches built with the same
    /// `(domain, rows, cols, seed)` merge.
    pub fn new(domain: Domain, rows: usize, cols: usize, seed: u64) -> Self {
        Self {
            domain,
            sketch: CountSketch::new(rows, cols, seed),
        }
    }

    /// The signal domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Adds `count` occurrences of key `x`; returns the number of sketch
    /// row-updates performed (for CPU accounting).
    pub fn update_key(&mut self, x: u64, count: f64) -> u64 {
        let mut updates = 0;
        sparse::coefficient_updates(self.domain, x, count, |slot, delta| {
            self.sketch.update(slot, delta);
            updates += 1;
        });
        updates * self.sketch.rows() as u64
    }

    /// Adds `delta` directly to coefficient `slot` (for tests).
    pub fn update_coefficient(&mut self, slot: u64, delta: f64) {
        self.sketch.update(slot, delta);
    }

    /// Estimates coefficient `slot`.
    pub fn estimate(&self, slot: u64) -> f64 {
        self.sketch.estimate(slot)
    }

    /// Extracts the k estimated-largest-magnitude coefficients by probing
    /// **every** slot — the `O(u)` query of the AMS approach.
    pub fn topk_exhaustive(&self, k: usize) -> Vec<CoefEntry> {
        top_k_magnitude(
            (0..self.domain.u()).map(|slot| (slot, self.sketch.estimate(slot))),
            k,
        )
    }

    /// Merges another split's sketch.
    pub fn merge(&mut self, other: &AmsWaveletSketch) {
        assert_eq!(
            self.domain, other.domain,
            "merging sketches over different domains"
        );
        self.sketch.merge(&other.sketch);
    }

    /// Non-zero counters (what is shipped to the reducer).
    pub fn nonzero_counters(&self) -> usize {
        self.sketch.nonzero_counters()
    }

    /// Non-zero counters as `(index, value)` pairs for shipping.
    pub fn counter_entries(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.sketch.counter_entries()
    }

    /// Adds a shipped counter into this sketch.
    pub fn add_counter(&mut self, index: u64, value: f64) {
        self.sketch.add_counter(index, value);
    }

    /// Rows × cols of the underlying CountSketch (for CPU accounting).
    pub fn dims(&self) -> (usize, usize) {
        (self.sketch.rows(), self.sketch.cols())
    }

    /// Underlying sketch (read-only).
    pub fn sketch(&self) -> &CountSketch {
        &self.sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn recovers_dominant_coefficients() {
        let domain = Domain::new(8).unwrap();
        let mut sk = AmsWaveletSketch::new(domain, 7, 512, 42);
        // Heavy spike at key 17 (300 occurrences) over light noise.
        sk.update_key(17, 300.0);
        for x in 0..256u64 {
            sk.update_key(x, 1.0);
        }
        let exact = wh_wavelet::sparse::sparse_transform(
            domain,
            (0..256u64).map(|x| (x, 1.0 + if x == 17 { 300.0 } else { 0.0 })),
        );
        // The largest-magnitude coefficient is the leaf detail of the spike:
        // slot 2^7 + (17 >> 1) = 136, value −300/√2.
        let top = sk.topk_exhaustive(4);
        let leaf = top
            .iter()
            .find(|e| e.slot == 136)
            .expect("slot 136 in top-4");
        let true_leaf = exact[&136];
        assert!(
            close(leaf.value, true_leaf, 0.2 * true_leaf.abs()),
            "{} vs {true_leaf}",
            leaf.value
        );
    }

    #[test]
    fn merge_matches_single_stream() {
        let domain = Domain::new(6).unwrap();
        let mut a = AmsWaveletSketch::new(domain, 3, 64, 7);
        let mut b = AmsWaveletSketch::new(domain, 3, 64, 7);
        let mut whole = AmsWaveletSketch::new(domain, 3, 64, 7);
        for x in 0..32u64 {
            a.update_key(x, 2.0);
            whole.update_key(x, 2.0);
        }
        for x in 16..64u64 {
            b.update_key(x, 1.0);
            whole.update_key(x, 1.0);
        }
        a.merge(&b);
        // Summation order differs between the merged and single-stream
        // sketches, so compare with a float tolerance.
        for (x, y) in a.sketch().counters().iter().zip(whole.sketch().counters()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn update_cost_accounting() {
        let domain = Domain::new(10).unwrap();
        let mut sk = AmsWaveletSketch::new(domain, 5, 32, 1);
        let ops = sk.update_key(3, 1.0);
        assert_eq!(ops, 11 * 5); // (log u + 1) coefficient updates × rows
    }

    #[test]
    fn estimate_exact_for_lone_signal() {
        let domain = Domain::new(4).unwrap();
        let mut sk = AmsWaveletSketch::new(domain, 5, 64, 9);
        sk.update_coefficient(3, 2.5);
        assert!((sk.estimate(3) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn coefficient_estimates_unbiased_across_seeds() {
        // Feed the same key stream into 1-row sketches under many
        // independent seeds; the mean estimate of each coefficient must
        // converge on the exact orthonormal Haar coefficient of the
        // stream's frequency vector.
        let domain = Domain::new(5).unwrap();
        let mut freq = vec![0.0f64; 32];
        let keys: Vec<(u64, f64)> = (0..32u64).map(|x| (x, ((x * 7) % 13) as f64)).collect();
        for &(x, c) in &keys {
            freq[x as usize] += c;
        }
        let exact = wh_wavelet::haar::forward(&freq);
        let trials = 300;
        for slot in [0u64, 1, 5, 17] {
            let mut sum = 0.0;
            for seed in 0..trials {
                let mut sk = AmsWaveletSketch::new(domain, 1, 16, seed);
                for &(x, c) in &keys {
                    sk.update_key(x, c);
                }
                sum += sk.estimate(slot);
            }
            let mean = sum / trials as f64;
            let want = exact[slot as usize];
            assert!(
                (mean - want).abs() < 4.0,
                "slot {slot}: mean {mean} vs exact {want}"
            );
        }
    }
}
