//! The Group-Count Sketch (Cormode, Garofalakis, Sacharidis — EDBT'06, the
//! paper's reference \[13\]).
//!
//! GCS organises the coefficient domain into a `b`-ary hierarchy: level 0
//! is the individual coefficients, level `l` groups `b^l` consecutive
//! coefficient slots. One sub-bucketed CountSketch per level estimates the
//! **energy** (squared L2 mass) of any group at that level, so the heavy
//! coefficients can be found by best-first descent from the root instead of
//! probing all `u` slots — this is the query-time advantage over the AMS
//! approach, bought with `log_b u`-times more work per update (the paper's
//! "GCS-8" balances the two with `b = 8`).
//!
//! Per level, each row hashes the *group* to a bucket and the *item* to a
//! sub-bucket inside it, with a 4-wise sign on the item:
//!
//! ```text
//! table[row][bucket(group)][sub(item)] += sign(item) · delta
//! ```
//!
//! The energy of a group is estimated as the median over rows of the sum
//! of squared sub-counters in the group's bucket; value estimates at level
//! 0 use the plain CountSketch estimator.

use crate::count_sketch::median;
use crate::hash::PolyHash;
use wh_wavelet::select::{sort_by_magnitude, CoefEntry};
use wh_wavelet::Domain;

/// Sizing of a [`GroupCountSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcsParams {
    /// Branching factor `b` of the group hierarchy (power of two).
    pub branching: usize,
    /// Independent rows (median repetitions).
    pub rows: usize,
    /// Buckets per row.
    pub buckets: usize,
    /// Sub-buckets per bucket.
    pub subbuckets: usize,
    /// Hash seed; equal seeds ⇒ mergeable sketches.
    pub seed: u64,
}

impl GcsParams {
    /// The paper's recommended configuration: GCS-8 with a space budget of
    /// roughly `20 KB · log₂ u` across all levels.
    pub fn paper_default(domain: Domain, seed: u64) -> Self {
        Self::with_budget(domain, 8, 20 * 1024 * domain.log_u().max(1) as usize, seed)
    }

    /// Builds parameters targeting `total_bytes` of counter space split
    /// evenly over the hierarchy levels, with `rows` = 3 and a 4:1
    /// bucket:sub-bucket split.
    pub fn with_budget(domain: Domain, branching: usize, total_bytes: usize, seed: u64) -> Self {
        assert!(
            branching >= 2 && branching.is_power_of_two(),
            "branching must be a power of two ≥ 2"
        );
        let levels = num_levels(domain, branching);
        let rows = 3;
        // counters = levels × rows × buckets × subbuckets × 8 bytes.
        let per_level = (total_bytes / 8 / levels / rows).max(16);
        let subbuckets = (per_level as f64).sqrt().max(2.0) as usize / 2 * 2;
        let subbuckets = subbuckets.clamp(2, 64);
        let buckets = (per_level / subbuckets).max(2);
        Self {
            branching,
            rows,
            buckets,
            subbuckets,
            seed,
        }
    }
}

/// Number of levels for `domain` under branching `b` (level 0 included).
fn num_levels(domain: Domain, branching: usize) -> usize {
    let lb = branching.trailing_zeros();
    (domain.log_u() as usize).div_ceil(lb as usize) + 1
}

/// One level's sketch.
#[derive(Debug, Clone, PartialEq)]
struct LevelSketch {
    buckets: usize,
    subbuckets: usize,
    rows: usize,
    table: Vec<f64>, // rows × buckets × subbuckets
    group_hash: Vec<PolyHash>,
    item_hash: Vec<PolyHash>,
    sign_hash: Vec<PolyHash>,
}

impl LevelSketch {
    fn new(params: &GcsParams, level: usize) -> Self {
        let rows = params.rows;
        let mk = |kind: u64| {
            (0..rows)
                .map(|r| {
                    PolyHash::from_seed(params.seed, (level as u64) << 32 | kind << 16 | r as u64)
                })
                .collect::<Vec<_>>()
        };
        Self {
            buckets: params.buckets,
            subbuckets: params.subbuckets,
            rows,
            table: vec![0.0; rows * params.buckets * params.subbuckets],
            group_hash: mk(0),
            item_hash: mk(1),
            sign_hash: mk(2),
        }
    }

    #[inline]
    fn slot_index(&self, row: usize, group: u64, item: u64) -> usize {
        let b = self.group_hash[row].bucket(group, self.buckets as u64) as usize;
        let s = self.item_hash[row].bucket(item, self.subbuckets as u64) as usize;
        (row * self.buckets + b) * self.subbuckets + s
    }

    #[inline]
    fn update(&mut self, group: u64, item: u64, delta: f64) {
        for r in 0..self.rows {
            let idx = self.slot_index(r, group, item);
            self.table[idx] += self.sign_hash[r].sign(item) * delta;
        }
    }

    fn group_energy(&self, group: u64) -> f64 {
        let mut per_row: Vec<f64> = (0..self.rows)
            .map(|r| {
                let b = self.group_hash[r].bucket(group, self.buckets as u64) as usize;
                let base = (r * self.buckets + b) * self.subbuckets;
                self.table[base..base + self.subbuckets]
                    .iter()
                    .map(|x| x * x)
                    .sum()
            })
            .collect();
        median(&mut per_row)
    }

    fn item_estimate(&self, group: u64, item: u64) -> f64 {
        let mut per_row: Vec<f64> = (0..self.rows)
            .map(|r| {
                let idx = self.slot_index(r, group, item);
                self.sign_hash[r].sign(item) * self.table[idx]
            })
            .collect();
        median(&mut per_row)
    }
}

/// The full hierarchical sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCountSketch {
    domain: Domain,
    params: GcsParams,
    /// `levels[0]` is the leaf level (groups of size 1).
    levels: Vec<LevelSketch>,
    log_b: u32,
}

impl GroupCountSketch {
    /// An empty sketch over `domain`.
    pub fn new(domain: Domain, params: GcsParams) -> Self {
        let n = num_levels(domain, params.branching);
        let levels = (0..n).map(|l| LevelSketch::new(&params, l)).collect();
        Self {
            domain,
            params,
            levels,
            log_b: params.branching.trailing_zeros(),
        }
    }

    /// The sketch parameters.
    pub fn params(&self) -> &GcsParams {
        &self.params
    }

    /// The signal domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of hierarchy levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Adds `delta` to coefficient `slot`; returns row-updates performed
    /// (for CPU accounting).
    pub fn update_coefficient(&mut self, slot: u64, delta: f64) -> u64 {
        debug_assert!(slot < self.domain.u());
        for (l, level) in self.levels.iter_mut().enumerate() {
            let group = slot >> (self.log_b as usize * l).min(63);
            level.update(group, slot, delta);
        }
        (self.levels.len() * self.params.rows) as u64
    }

    /// Adds `count` occurrences of key `x` (expands to the `log u + 1`
    /// wavelet coefficient updates); returns row-updates performed.
    pub fn update_key(&mut self, x: u64, count: f64) -> u64 {
        let mut ops = 0;
        wh_wavelet::sparse::coefficient_updates(self.domain, x, count, |slot, delta| {
            ops += self.update_coefficient(slot, delta);
        });
        ops
    }

    /// Merges another sketch built with identical parameters.
    pub fn merge(&mut self, other: &GroupCountSketch) {
        assert_eq!(
            self.params, other.params,
            "merging incompatible GCS sketches"
        );
        assert_eq!(
            self.domain, other.domain,
            "merging GCS over different domains"
        );
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            for (x, y) in a.table.iter_mut().zip(&b.table) {
                *x += y;
            }
        }
    }

    /// Estimated value of coefficient `slot` (leaf-level CountSketch).
    pub fn estimate(&self, slot: u64) -> f64 {
        self.levels[0].item_estimate(slot, slot)
    }

    /// Estimated energy of the level-`l` group `g`.
    pub fn group_energy(&self, level: usize, group: u64) -> f64 {
        self.levels[level].group_energy(group)
    }

    /// Best-first search for the `k` highest-energy coefficients.
    ///
    /// Expands at most `expansion_budget` groups (defaulting callers should
    /// pass ~`4·k·log_b u`); descent always expands the frontier group of
    /// highest estimated energy, so with an adequate budget the true heavy
    /// coefficients are visited with high probability.
    pub fn topk(&self, k: usize, expansion_budget: usize) -> Vec<CoefEntry> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Frontier {
            energy: f64,
            level: usize,
            group: u64,
        }
        impl Eq for Frontier {}
        impl Ord for Frontier {
            fn cmp(&self, other: &Self) -> Ordering {
                self.energy
                    .partial_cmp(&other.energy)
                    .expect("no NaN energies")
                    .then_with(|| other.group.cmp(&self.group))
            }
        }
        impl PartialOrd for Frontier {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        if k == 0 {
            return Vec::new();
        }
        let top_level = self.levels.len() - 1;
        let top_groups = self.groups_at_level(top_level);
        let mut heap = BinaryHeap::new();
        for g in 0..top_groups {
            let e = self.group_energy(top_level, g);
            if e > 0.0 {
                heap.push(Frontier {
                    energy: e,
                    level: top_level,
                    group: g,
                });
            }
        }
        let mut leaves: Vec<CoefEntry> = Vec::new();
        let mut expansions = 0usize;
        while let Some(f) = heap.pop() {
            if f.level == 0 {
                let value = self.estimate(f.group);
                if value != 0.0 {
                    leaves.push(CoefEntry {
                        slot: f.group,
                        value,
                    });
                }
                if leaves.len() >= 4 * k {
                    break; // enough candidates to pick k from
                }
                continue;
            }
            expansions += 1;
            if expansions > expansion_budget {
                break;
            }
            let child_level = f.level - 1;
            let first_child = f.group << self.log_b;
            for c in 0..self.params.branching as u64 {
                let child = first_child + c;
                if child >= self.groups_at_level(child_level) {
                    break;
                }
                let e = self.group_energy(child_level, child);
                if e > 0.0 {
                    heap.push(Frontier {
                        energy: e,
                        level: child_level,
                        group: child,
                    });
                }
            }
        }
        let mut out = leaves;
        sort_by_magnitude(&mut out);
        out.truncate(k);
        out
    }

    /// Number of groups existing at `level`.
    fn groups_at_level(&self, level: usize) -> u64 {
        let shift = (self.log_b as usize * level).min(63);
        (self.domain.u() + (1 << shift) - 1) >> shift
    }

    /// Iterates over non-zero counters as `(global_index, value)` pairs —
    /// the representation a mapper ships to the reducer. Global indices
    /// enumerate level 0's table first, then level 1's, and so on.
    pub fn counter_entries(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let mut offset = 0u64;
        self.levels.iter().flat_map(move |l| {
            let base = offset;
            offset += l.table.len() as u64;
            l.table
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(move |(i, &v)| (base + i as u64, v))
        })
    }

    /// Adds `value` to the counter at `global_index` (merging shipped
    /// counters into a fresh sketch with identical parameters).
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn add_counter(&mut self, global_index: u64, value: f64) {
        let mut idx = global_index;
        for l in &mut self.levels {
            if (idx as usize) < l.table.len() {
                l.table[idx as usize] += value;
                return;
            }
            idx -= l.table.len() as u64;
        }
        panic!("counter index {global_index} out of range");
    }

    /// Non-zero counters across all levels (what a mapper ships).
    pub fn nonzero_counters(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.table.iter().filter(|x| **x != 0.0).count())
            .sum()
    }

    /// Total counters across all levels.
    pub fn total_counters(&self) -> usize {
        self.levels.iter().map(|l| l.table.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_params(seed: u64) -> GcsParams {
        GcsParams {
            branching: 8,
            rows: 5,
            buckets: 64,
            subbuckets: 16,
            seed,
        }
    }

    #[test]
    fn levels_cover_domain() {
        let domain = Domain::new(12).unwrap();
        let g = GroupCountSketch::new(domain, test_params(1));
        assert_eq!(g.num_levels(), 5); // ceil(12/3) + 1
        assert_eq!(g.groups_at_level(0), 1 << 12);
        assert_eq!(g.groups_at_level(4), 1);
    }

    #[test]
    fn finds_planted_heavy_coefficients() {
        let domain = Domain::new(14).unwrap();
        let mut g = GroupCountSketch::new(domain, test_params(7));
        // Plant 5 heavy coefficients among light noise.
        let heavy = [3u64, 1000, 5000, 9000, 16000];
        for (i, &slot) in heavy.iter().enumerate() {
            g.update_coefficient(slot, 500.0 + i as f64 * 100.0);
        }
        for slot in (0..(1 << 14)).step_by(37) {
            g.update_coefficient(slot, 1.0);
        }
        let top = g.topk(5, 2000);
        let got: std::collections::BTreeSet<u64> = top.iter().map(|e| e.slot).collect();
        for &h in &heavy {
            assert!(got.contains(&h), "missing heavy slot {h}: got {got:?}");
        }
    }

    #[test]
    fn value_estimates_close_for_heavies() {
        let domain = Domain::new(12).unwrap();
        let mut g = GroupCountSketch::new(domain, test_params(9));
        g.update_coefficient(77, -800.0);
        for slot in (0..(1 << 12)).step_by(29) {
            g.update_coefficient(slot, 1.0);
        }
        let est = g.estimate(77);
        assert!((est - -800.0).abs() < 40.0, "estimate {est}");
    }

    #[test]
    fn merge_matches_single_stream() {
        let domain = Domain::new(8).unwrap();
        let p = test_params(5);
        let mut a = GroupCountSketch::new(domain, p);
        let mut b = GroupCountSketch::new(domain, p);
        let mut whole = GroupCountSketch::new(domain, p);
        for x in 0..100u64 {
            a.update_key(x % 256, 1.0);
            whole.update_key(x % 256, 1.0);
        }
        for x in 0..60u64 {
            b.update_key((x * 3) % 256, 2.0);
            whole.update_key((x * 3) % 256, 2.0);
        }
        a.merge(&b);
        // Compare counters with a float tolerance: merged vs single-stream
        // summation order differs.
        for (la, lw) in a.levels.iter().zip(&whole.levels) {
            for (x, y) in la.table.iter().zip(&lw.table) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn update_cost_scales_with_levels_and_rows() {
        let domain = Domain::new(9).unwrap();
        let mut g = GroupCountSketch::new(domain, test_params(2));
        let ops = g.update_coefficient(1, 1.0);
        assert_eq!(ops, (g.num_levels() * 5) as u64);
        let key_ops = g.update_key(3, 1.0);
        assert_eq!(key_ops, ops * 10); // (log u + 1) coefficient updates
    }

    #[test]
    fn paper_default_within_budget() {
        let domain = Domain::new(20).unwrap();
        let p = GcsParams::paper_default(domain, 3);
        let g = GroupCountSketch::new(domain, p);
        let bytes = g.total_counters() * 8;
        let budget = 20 * 1024 * 20;
        assert!(bytes <= budget * 2, "sketch {bytes} B vs budget {budget} B");
        assert!(bytes >= budget / 8, "sketch suspiciously small: {bytes} B");
    }

    #[test]
    fn empty_sketch_topk_empty() {
        let domain = Domain::new(8).unwrap();
        let g = GroupCountSketch::new(domain, test_params(4));
        assert!(g.topk(5, 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_different_params_panics() {
        let domain = Domain::new(8).unwrap();
        let mut a = GroupCountSketch::new(domain, test_params(1));
        let b = GroupCountSketch::new(domain, test_params(2));
        a.merge(&b);
    }
}

#[cfg(test)]
mod flat_counter_tests {
    use super::*;

    #[test]
    fn counter_entries_roundtrip_through_add() {
        let domain = Domain::new(10).unwrap();
        let p = GcsParams {
            branching: 4,
            rows: 3,
            buckets: 32,
            subbuckets: 8,
            seed: 6,
        };
        let mut src = GroupCountSketch::new(domain, p);
        for x in 0..200u64 {
            src.update_key(x % 1024, (x % 5) as f64 + 1.0);
        }
        let mut dst = GroupCountSketch::new(domain, p);
        for (idx, v) in src.counter_entries() {
            dst.add_counter(idx, v);
        }
        assert_eq!(src, dst);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_counter_bounds_checked() {
        let domain = Domain::new(4).unwrap();
        let p = GcsParams {
            branching: 4,
            rows: 2,
            buckets: 4,
            subbuckets: 2,
            seed: 1,
        };
        let mut g = GroupCountSketch::new(domain, p);
        let total = g.total_counters() as u64;
        g.add_counter(total, 1.0);
    }
}
