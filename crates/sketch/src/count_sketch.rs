//! CountSketch (Charikar–Chen–Farach-Colton): an unbiased linear estimator
//! of any coordinate of a high-dimensional vector, with variance
//! `‖v‖² / cols` per row and a median over rows for concentration.

use crate::hash::PolyHash;
use wh_wavelet::Domain;

/// A `rows × cols` CountSketch of a vector indexed by `u64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CountSketch {
    rows: usize,
    cols: usize,
    seed: u64,
    table: Vec<f64>,
    bucket_hash: Vec<PolyHash>,
    sign_hash: Vec<PolyHash>,
}

impl CountSketch {
    /// Creates an empty sketch; sketches with equal `(rows, cols, seed)`
    /// are mergeable.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        assert!(
            rows >= 1 && cols >= 1,
            "sketch must have positive dimensions"
        );
        let bucket_hash = (0..rows)
            .map(|r| PolyHash::from_seed(seed, 2 * r as u64))
            .collect();
        let sign_hash = (0..rows)
            .map(|r| PolyHash::from_seed(seed, 2 * r as u64 + 1))
            .collect();
        Self {
            rows,
            cols,
            seed,
            table: vec![0.0; rows * cols],
            bucket_hash,
            sign_hash,
        }
    }

    /// Rows (independent repetitions).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds `delta` to coordinate `item`.
    #[inline]
    pub fn update(&mut self, item: u64, delta: f64) {
        for r in 0..self.rows {
            let b = self.bucket_hash[r].bucket(item, self.cols as u64) as usize;
            let s = self.sign_hash[r].sign(item);
            self.table[r * self.cols + b] += s * delta;
        }
    }

    /// Streaming update in *key* space for a sketch over wavelet
    /// coefficients: translates `count` arriving occurrences of key `x`
    /// into the `log u + 1` coefficient-space updates on `x`'s
    /// root-to-leaf path (see [`wh_wavelet::sparse::coefficient_updates`])
    /// and applies each via [`Self::update`]. This is the delta-build
    /// equivalent for the sketch path: by linearity, streaming a new
    /// segment into an existing sketch yields the same estimator (up to
    /// float summation order) as sketching the concatenated data, without
    /// re-reading the base. Returns the number of coefficient updates
    /// applied.
    pub fn update_key(&mut self, domain: Domain, x: u64, count: f64) -> u64 {
        let mut ops = 0;
        wh_wavelet::sparse::coefficient_updates(domain, x, count, |slot, delta| {
            self.update(slot, delta);
            ops += 1;
        });
        ops
    }

    /// Median-of-rows estimate of coordinate `item`.
    pub fn estimate(&self, item: u64) -> f64 {
        let mut per_row: Vec<f64> = (0..self.rows)
            .map(|r| {
                let b = self.bucket_hash[r].bucket(item, self.cols as u64) as usize;
                self.sign_hash[r].sign(item) * self.table[r * self.cols + b]
            })
            .collect();
        median(&mut per_row)
    }

    /// Median-of-rows estimate of the sketched vector's squared L2 norm.
    pub fn l2_squared_estimate(&self) -> f64 {
        let mut per_row: Vec<f64> = (0..self.rows)
            .map(|r| {
                self.table[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .map(|x| x * x)
                    .sum()
            })
            .collect();
        median(&mut per_row)
    }

    /// Adds `other` into `self` (linearity).
    ///
    /// # Panics
    ///
    /// Panics when dimensions or seeds differ.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(
            (self.rows, self.cols, self.seed),
            (other.rows, other.cols, other.seed),
            "merging incompatible sketches"
        );
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
    }

    /// Number of non-zero counters (what a mapper actually emits).
    pub fn nonzero_counters(&self) -> usize {
        self.table.iter().filter(|x| **x != 0.0).count()
    }

    /// Total counters.
    pub fn total_counters(&self) -> usize {
        self.table.len()
    }

    /// Raw table access for wire-size computations.
    pub fn counters(&self) -> &[f64] {
        &self.table
    }

    /// Iterates over non-zero counters as `(index, value)` pairs — what a
    /// mapper ships to the reducer.
    pub fn counter_entries(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(i, &v)| (i as u64, v))
    }

    /// Adds `value` to counter `index` (merging shipped counters into a
    /// fresh sketch with identical parameters).
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn add_counter(&mut self, index: u64, value: f64) {
        self.table[usize::try_from(index).expect("index fits")] += value;
    }
}

/// In-place median (lower median for even lengths).
pub(crate) fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mid = (values.len() - 1) / 2;
    values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("no NaN"));
    values[mid]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_single_item() {
        let mut cs = CountSketch::new(5, 64, 1);
        cs.update(42, 7.5);
        assert_eq!(cs.estimate(42), 7.5);
    }

    #[test]
    fn unbiased_ish_on_many_items() {
        let mut cs = CountSketch::new(7, 256, 2);
        // 200 items of weight 1, one heavy item of weight 100.
        for i in 0..200 {
            cs.update(i, 1.0);
        }
        cs.update(999, 100.0);
        let est = cs.estimate(999);
        assert!((est - 100.0).abs() < 15.0, "estimate {est}");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = CountSketch::new(3, 32, 5);
        let mut b = CountSketch::new(3, 32, 5);
        let mut c = CountSketch::new(3, 32, 5);
        for i in 0..50 {
            a.update(i, i as f64);
            c.update(i, i as f64);
        }
        for i in 25..75 {
            b.update(i, 2.0);
            c.update(i, 2.0);
        }
        a.merge(&b);
        assert_eq!(a.counters(), c.counters());
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_mismatched_seeds_panics() {
        let mut a = CountSketch::new(3, 32, 5);
        let b = CountSketch::new(3, 32, 6);
        a.merge(&b);
    }

    #[test]
    fn l2_estimate_in_range() {
        let mut cs = CountSketch::new(9, 512, 3);
        let mut true_l2 = 0.0;
        for i in 0..300u64 {
            let w = ((i * 37) % 11) as f64 - 5.0;
            cs.update(i, w);
            true_l2 += w * w;
        }
        let est = cs.l2_squared_estimate();
        assert!(
            (est - true_l2).abs() < 0.35 * true_l2,
            "l2 estimate {est} vs true {true_l2}"
        );
    }

    #[test]
    fn update_key_equals_explicit_coefficient_updates() {
        let domain = Domain::new(6).unwrap();
        let mut streamed = CountSketch::new(5, 64, 9);
        let mut explicit = CountSketch::new(5, 64, 9);
        for x in [0u64, 5, 31, 32, 63] {
            let ops = streamed.update_key(domain, x, 2.0);
            assert_eq!(ops, u64::from(domain.log_u()) + 1);
            wh_wavelet::sparse::coefficient_updates(domain, x, 2.0, |slot, delta| {
                explicit.update(slot, delta);
            });
        }
        assert_eq!(streamed.counters(), explicit.counters());
    }

    #[test]
    fn streaming_a_delta_matches_merging_segment_sketches() {
        // Linearity: base sketch + streamed delta keys ≡ sketch(base) ⊕
        // sketch(delta). Identical per-counter update sets; only float
        // summation order differs, so compare with a tolerance.
        let domain = Domain::new(8).unwrap();
        let base_keys: Vec<u64> = (0..300u64).map(|i| (i * 37) % 256).collect();
        let delta_keys: Vec<u64> = (0..40u64).map(|i| (i * 91) % 256).collect();

        let mut streamed = CountSketch::new(5, 128, 12);
        for &x in &base_keys {
            streamed.update_key(domain, x, 1.0);
        }
        for &x in &delta_keys {
            streamed.update_key(domain, x, 1.0);
        }

        let mut merged = CountSketch::new(5, 128, 12);
        for &x in &base_keys {
            merged.update_key(domain, x, 1.0);
        }
        let mut delta_sketch = CountSketch::new(5, 128, 12);
        for &x in &delta_keys {
            delta_sketch.update_key(domain, x, 1.0);
        }
        merged.merge(&delta_sketch);

        for (a, b) in streamed.counters().iter().zip(merged.counters()) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn negative_updates_cancel() {
        let mut cs = CountSketch::new(3, 16, 4);
        cs.update(5, 10.0);
        cs.update(5, -10.0);
        assert_eq!(cs.estimate(5), 0.0);
        assert_eq!(cs.nonzero_counters(), 0);
    }

    #[test]
    fn median_lower_of_even() {
        let mut v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&mut v), 2.0);
        let mut v = [3.0, 1.0, 2.0];
        assert_eq!(median(&mut v), 2.0);
    }

    #[test]
    fn single_row_estimator_is_unbiased_across_seeds() {
        // A 1-row sketch (no median) is the raw CCF estimator, which is
        // exactly unbiased: E[ĝ(x)] = f(x). Average it over many
        // independent hash seeds and check the mean converges.
        // Signal: f(7) = 100 plus 50 colliding items of weight 10.
        // Per-seed variance ≤ ‖v‖²/cols = (100² + 50·10²)/16 ≈ 937,
        // so the mean of 400 seeds has σ ≈ √(937/400) ≈ 1.5.
        let trials = 400;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut cs = CountSketch::new(1, 16, seed);
            cs.update(7, 100.0);
            for i in 0..50u64 {
                cs.update(1000 + i, 10.0);
            }
            sum += cs.estimate(7);
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - 100.0).abs() < 8.0,
            "estimator biased: mean {mean} vs 100"
        );
    }
}
