//! 4-wise independent hashing over the Mersenne prime `p = 2^61 − 1`.
//!
//! CountSketch's variance analysis needs 4-wise independence for the sign
//! hash; degree-3 polynomials over a prime field provide it. Arithmetic
//! mod `2^61 − 1` reduces with shifts instead of division, so a hash costs
//! three multiply-reduce steps.

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// `a*b mod (2^61−1)` via 128-bit arithmetic and Mersenne folding.
#[inline]
pub fn mulmod(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    let lo = (prod & MERSENNE_P as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// `a+b mod (2^61−1)`.
#[inline]
pub fn addmod(a: u64, b: u64) -> u64 {
    let mut s = a + b; // both < 2^61, no overflow in u64
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// A degree-3 polynomial hash: 4-wise independent over `[0, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyHash {
    coeffs: [u64; 4],
}

impl PolyHash {
    /// Derives a hash function deterministically from `(seed, salt)`.
    /// Different salts give independent functions; identical inputs give
    /// identical functions — required for sketch mergeability.
    pub fn from_seed(seed: u64, salt: u64) -> Self {
        let mut coeffs = [0u64; 4];
        let mut state = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for (d, c) in coeffs.iter_mut().enumerate() {
            // SplitMix-style expansion, reduced into the field.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state ^ (d as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *c = z % MERSENNE_P;
        }
        // Leading coefficient must be non-zero for full independence.
        if coeffs[3] == 0 {
            coeffs[3] = 1;
        }
        Self { coeffs }
    }

    /// Evaluates the polynomial at `x` (Horner), returning a value in
    /// `[0, p)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = self.coeffs[3];
        for &c in self.coeffs[..3].iter().rev() {
            acc = addmod(mulmod(acc, x), c);
        }
        acc
    }

    /// Bucket index in `[0, buckets)`.
    #[inline]
    pub fn bucket(&self, x: u64, buckets: u64) -> u64 {
        self.eval(x) % buckets
    }

    /// ±1 sign.
    #[inline]
    pub fn sign(&self, x: u64) -> f64 {
        if self.eval(x) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_small_cases() {
        assert_eq!(mulmod(3, 4), 12);
        assert_eq!(mulmod(MERSENNE_P - 1, 1), MERSENNE_P - 1);
        assert_eq!(mulmod(MERSENNE_P, 5), 0);
        // (p-1)² mod p = 1.
        assert_eq!(mulmod(MERSENNE_P - 1, MERSENNE_P - 1), 1);
    }

    #[test]
    fn addmod_wraps() {
        assert_eq!(addmod(MERSENNE_P - 1, 2), 1);
        assert_eq!(addmod(1, 2), 3);
    }

    #[test]
    fn deterministic_and_salt_sensitive() {
        let a = PolyHash::from_seed(7, 0);
        let b = PolyHash::from_seed(7, 0);
        let c = PolyHash::from_seed(7, 1);
        assert_eq!(a, b);
        assert_ne!(a.eval(123), c.eval(123));
    }

    #[test]
    fn buckets_roughly_uniform() {
        let h = PolyHash::from_seed(42, 3);
        let buckets = 16u64;
        let mut counts = vec![0u32; buckets as usize];
        let n = 64_000;
        for x in 0..n {
            counts[h.bucket(x, buckets) as usize] += 1;
        }
        let expect = n as f64 / buckets as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 0.1 * expect,
                "bucket {b}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn signs_roughly_balanced_and_pairwise_uncorrelated() {
        let h = PolyHash::from_seed(9, 1);
        let n = 50_000i64;
        let sum: i64 = (0..n as u64)
            .map(|x| if h.sign(x) > 0.0 { 1 } else { -1 })
            .sum();
        assert!(sum.abs() < 1000, "sign bias {sum}");
        // Correlation of sign(x) with sign(x+1).
        let corr: i64 = (0..(n - 1) as u64)
            .map(|x| if h.sign(x) == h.sign(x + 1) { 1 } else { -1 })
            .sum();
        assert!(corr.abs() < 1200, "adjacent sign correlation {corr}");
    }
}
