//! A minimal fixed-capacity bitset — the coordinator's per-item `F_i`
//! vector from Appendix A ("a bit vector of size m such that F_i(j) = 0 if
//! w_{i,j} has been received").

/// Fixed-capacity bitset over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// All-zeros bitset with room for `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= capacity`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits (within capacity).
    pub fn count_zeros(&self) -> usize {
        self.capacity - self.count_ones()
    }

    /// Iterates over set-bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = BitSet::new(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.count_zeros(), 127);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 190] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 190]);
    }

    #[test]
    fn idempotent_set() {
        let mut b = BitSet::new(10);
        b.set(3);
        b.set(3);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_panics() {
        BitSet::new(10).set(10);
    }
}
