//! # wh-topk — distributed top-k aggregation
//!
//! The exact algorithm of the paper (§3) reduces wavelet-histogram
//! construction to a *distributed top-k* problem: every split holds local
//! wavelet coefficients `w_{i,j}`, the global coefficient is
//! `w_i = Σ_j w_{i,j}`, and we need the k global coefficients of largest
//! **magnitude**. Classic threshold algorithms (TPUT and friends) assume
//! non-negative scores, so their partial-sum pruning breaks when unseen
//! scores may be very negative.
//!
//! This crate provides:
//!
//! * [`tput`] — classic three-round TPUT for non-negative scores (the
//!   reference point the paper modifies);
//! * [`two_sided`] — the paper's modified algorithm: two interleaved TPUT
//!   instances tracking upper/lower bounds `τ⁺/τ⁻`, magnitude thresholds
//!   `T₁`/`T₂`, and three rounds of pruning. The coordinator logic is a
//!   standalone state machine ([`two_sided::Coordinator`]) so the MapReduce
//!   implementation in `wh-core` can drive it round by round, exactly like
//!   the in-memory driver here;
//! * [`node`] — the node-side abstraction and an in-memory implementation;
//! * [`exact`] — a brute-force reference for tests.
//!
//! All drivers report per-round communication in pairs and bytes so the
//! experiments can attribute cost to rounds.

pub mod bitset;
pub mod exact;
pub mod node;
pub mod tput;
pub mod two_sided;

pub use node::{InMemoryNode, ScoreNode};
pub use two_sided::{two_sided_topk, Coordinator};
