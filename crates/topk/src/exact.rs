//! Brute-force references for distributed top-k — the oracles the protocol
//! implementations are tested against.

use crate::node::ScoreNode;
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::{sort_by_magnitude, CoefEntry};

/// Aggregates all nodes' scores exactly.
pub fn aggregate_all<N: ScoreNode>(nodes: &[N]) -> FxHashMap<u64, f64> {
    let mut total = FxHashMap::default();
    for node in nodes {
        for (item, score) in node.items_above_magnitude(f64::NEG_INFINITY) {
            *total.entry(item).or_insert(0.0) += score;
        }
    }
    total.retain(|_, s| *s != 0.0);
    total
}

/// The exact k items of largest aggregated |score| (descending magnitude,
/// ties by ascending item id).
pub fn topk_by_magnitude<N: ScoreNode>(nodes: &[N], k: usize) -> Vec<(u64, f64)> {
    let total = aggregate_all(nodes);
    let mut entries: Vec<CoefEntry> = total
        .into_iter()
        .map(|(slot, value)| CoefEntry { slot, value })
        .collect();
    sort_by_magnitude(&mut entries);
    entries.truncate(k);
    entries.into_iter().map(|e| (e.slot, e.value)).collect()
}

/// The exact k items of largest aggregated signed score (classic TPUT's
/// objective), descending.
pub fn topk_by_value<N: ScoreNode>(nodes: &[N], k: usize) -> Vec<(u64, f64)> {
    let total = aggregate_all(nodes);
    let mut v: Vec<(u64, f64)> = total.into_iter().collect();
    v.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("no NaN scores")
            .then_with(|| a.0.cmp(&b.0))
    });
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::InMemoryNode;

    #[test]
    fn aggregation_sums_across_nodes() {
        let nodes = vec![
            InMemoryNode::new([(1, 2.0), (2, -1.0)]),
            InMemoryNode::new([(1, 3.0), (3, 4.0)]),
        ];
        let total = aggregate_all(&nodes);
        assert_eq!(total.get(&1), Some(&5.0));
        assert_eq!(total.get(&2), Some(&-1.0));
        assert_eq!(total.get(&3), Some(&4.0));
    }

    #[test]
    fn magnitude_vs_value_ordering_differ() {
        let nodes = vec![InMemoryNode::new([(1, -10.0), (2, 5.0), (3, 1.0)])];
        assert_eq!(topk_by_magnitude(&nodes, 2), vec![(1, -10.0), (2, 5.0)]);
        assert_eq!(topk_by_value(&nodes, 2), vec![(2, 5.0), (3, 1.0)]);
    }

    #[test]
    fn cancellation_across_nodes() {
        let nodes = vec![
            InMemoryNode::new([(1, 100.0), (2, 1.0)]),
            InMemoryNode::new([(1, -100.0)]),
        ];
        // Item 1 cancels to zero and must not appear.
        assert_eq!(topk_by_magnitude(&nodes, 2), vec![(2, 1.0)]);
    }
}
