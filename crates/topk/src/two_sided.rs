//! The paper's modified TPUT (§3): exact distributed top-k by **magnitude**
//! over scores that may be positive or negative.
//!
//! The coordinator maintains, for every item ever received, a partial sum
//! and the set of nodes whose score is known, and derives per-item bounds:
//!
//! * `τ⁺(x) ≥ r(x) ≥ τ⁻(x)` — the unseen contribution of node `j` is
//!   bounded above by its k-th highest round-1 score and below by its k-th
//!   lowest (clamped against 0, since an item a node never held scores
//!   exactly 0 there — a sharpening the paper leaves implicit but that is
//!   required for exactness when a node's k-th lowest score is positive);
//! * a magnitude lower bound `τ(x) = min(|τ⁺|, |τ⁻|)` when both bounds have
//!   the same sign, else 0; the k-th largest `τ(x)` is the round-1
//!   threshold `T₁`;
//! * after round 2 (every node ships all items with `|score| > T₁/m`),
//!   unseen contributions are within `±T₁/m`, tightening the bounds and
//!   yielding `T₂`; items with `max(|τ⁺|, |τ⁻|) < T₂` cannot be in the
//!   top-k and are pruned;
//! * round 3 fetches exact scores for the surviving candidate set `R`.
//!
//! [`Coordinator`] is a pure state machine over received messages, so the
//! same logic drives both the in-memory executor here
//! ([`two_sided_topk`]) and the three MapReduce rounds of `wh-core`'s
//! H-WTopk builder.

use crate::bitset::BitSet;
use crate::node::ScoreNode;
use crate::tput::TputComm;
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::{sort_by_magnitude, CoefEntry};

/// Coordinator state for one two-sided TPUT execution.
#[derive(Debug)]
pub struct Coordinator {
    m: usize,
    k: usize,
    items: FxHashMap<u64, ItemState>,
    /// Per node: k-th highest score sent in round 1, clamped to ≥ 0
    /// (0 when the node sent fewer than k items).
    kth_high: Vec<f64>,
    /// Per node: k-th lowest, clamped to ≤ 0.
    kth_low: Vec<f64>,
    t1: Option<f64>,
    t2: Option<f64>,
}

#[derive(Debug, Clone)]
struct ItemState {
    partial: f64,
    seen: BitSet,
}

impl Coordinator {
    /// A coordinator for `m` nodes and target size `k`.
    pub fn new(m: usize, k: usize) -> Self {
        Self {
            m,
            k,
            items: FxHashMap::default(),
            kth_high: vec![0.0; m],
            kth_low: vec![0.0; m],
            t1: None,
            t2: None,
        }
    }

    /// Number of distinct items received so far.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Round-1 threshold `T₁` (available after [`Self::finish_round1`]).
    pub fn t1(&self) -> Option<f64> {
        self.t1
    }

    /// Round-2 threshold `T₂` (available after [`Self::finish_round2`]).
    pub fn t2(&self) -> Option<f64> {
        self.t2
    }

    fn record(&mut self, node: usize, item: u64, score: f64) {
        assert!(node < self.m, "node {node} out of {}", self.m);
        let m = self.m;
        let state = self.items.entry(item).or_insert_with(|| ItemState {
            partial: 0.0,
            seen: BitSet::new(m),
        });
        assert!(!state.seen.get(node), "node {node} sent item {item} twice");
        state.partial += score;
        state.seen.set(node);
    }

    /// Absorbs node `j`'s round-1 message: its local top-k and bottom-k
    /// (which may overlap when the node holds fewer than 2k items — overlap
    /// is deduplicated here), plus the marked k-th highest / k-th lowest
    /// values.
    ///
    /// `kth_high`/`kth_low` must be `None` when the node sent *all* its
    /// items (fewer than k available), in which case unseen scores at that
    /// node are exactly 0.
    pub fn absorb_round1(
        &mut self,
        node: usize,
        top: &[(u64, f64)],
        bottom: &[(u64, f64)],
        kth_high: Option<f64>,
        kth_low: Option<f64>,
    ) {
        let mut sent: FxHashMap<u64, f64> = FxHashMap::default();
        for &(i, s) in top.iter().chain(bottom) {
            sent.entry(i).or_insert(s);
        }
        let mut pairs: Vec<(u64, f64)> = sent.into_iter().collect();
        pairs.sort_unstable_by_key(|p| p.0);
        for (i, s) in pairs {
            self.record(node, i, s);
        }
        // Clamp against 0: an unseen item may simply be absent from the node.
        self.kth_high[node] = kth_high.map_or(0.0, |v| v.max(0.0));
        self.kth_low[node] = kth_low.map_or(0.0, |v| v.min(0.0));
    }

    /// Computes `T₁` from the round-1 state.
    pub fn finish_round1(&mut self) -> f64 {
        let total_high: f64 = self.kth_high.iter().sum();
        let total_low: f64 = self.kth_low.iter().sum();
        let mut taus: Vec<f64> = Vec::with_capacity(self.items.len());
        for state in self.items.values() {
            let mut seen_high = 0.0;
            let mut seen_low = 0.0;
            for j in state.seen.iter_ones() {
                seen_high += self.kth_high[j];
                seen_low += self.kth_low[j];
            }
            let tau_plus = state.partial + (total_high - seen_high);
            let tau_minus = state.partial + (total_low - seen_low);
            taus.push(magnitude_lower_bound(tau_plus, tau_minus));
        }
        let t1 = kth_largest_or_zero(&mut taus, self.k);
        self.t1 = Some(t1);
        t1
    }

    /// Absorbs node `j`'s round-2 message: all items with
    /// `|score| > T₁/m` not already sent in round 1.
    pub fn absorb_round2(&mut self, node: usize, items: &[(u64, f64)]) {
        assert!(self.t1.is_some(), "round 2 before finish_round1");
        for &(i, s) in items {
            self.record(node, i, s);
        }
    }

    /// Computes `T₂`, prunes the candidate set, and returns the surviving
    /// item ids (`R`), sorted ascending.
    pub fn finish_round2(&mut self) -> (f64, Vec<u64>) {
        let t1 = self.t1.expect("finish_round1 first");
        let slack = t1 / self.m as f64;
        // Per-node residual bound after round 2: unseen score magnitude at
        // node j is ≤ min(T₁/m, max(kth_high, −kth_low))? The paper uses
        // T₁/m directly; the round-1 bounds still apply, so take the
        // tighter of the two per side.
        let mut t2_taus: Vec<f64> = Vec::with_capacity(self.items.len());
        let mut bounds: FxHashMap<u64, (f64, f64)> = FxHashMap::default();
        for (&item, state) in &self.items {
            let mut tau_plus = state.partial;
            let mut tau_minus = state.partial;
            let unseen = state.seen.count_zeros();
            if unseen > 0 {
                // Start from the uniform T₁/m slack…
                let mut high = unseen as f64 * slack;
                let mut low = -(unseen as f64) * slack;
                // …and tighten with round-1 per-node caps.
                let mut seen_high = 0.0;
                let mut seen_low = 0.0;
                for j in state.seen.iter_ones() {
                    seen_high += self.kth_high[j].min(slack);
                    seen_low += self.kth_low[j].max(-slack);
                }
                let total_high: f64 = self.kth_high.iter().map(|v| v.min(slack)).sum();
                let total_low: f64 = self.kth_low.iter().map(|v| v.max(-slack)).sum();
                high = high.min(total_high - seen_high);
                low = low.max(total_low - seen_low);
                tau_plus += high;
                tau_minus += low;
            }
            bounds.insert(item, (tau_plus, tau_minus));
            t2_taus.push(magnitude_lower_bound(tau_plus, tau_minus));
        }
        let t2 = kth_largest_or_zero(&mut t2_taus, self.k);
        self.t2 = Some(t2);
        let mut survivors: Vec<u64> = self
            .items
            .iter()
            .filter(|(item, _)| {
                let (tau_plus, tau_minus) = bounds[*item];
                tau_plus.abs().max(tau_minus.abs()) >= t2
            })
            .map(|(&item, _)| item)
            .collect();
        survivors.sort_unstable();
        // Drop pruned items so round 3 state stays small.
        let keep: wh_wavelet::hash::FxHashSet<u64> = survivors.iter().copied().collect();
        self.items.retain(|item, _| keep.contains(item));
        (t2, survivors)
    }

    /// Whether node `j` already sent `item` in an earlier round (the
    /// node-side bookkeeping of round 3).
    pub fn has_seen(&self, node: usize, item: u64) -> bool {
        self.items.get(&item).is_some_and(|s| s.seen.get(node))
    }

    /// Absorbs node `j`'s round-3 message: exact scores for candidate
    /// items not previously sent.
    pub fn absorb_round3(&mut self, node: usize, items: &[(u64, f64)]) {
        assert!(self.t2.is_some(), "round 3 before finish_round2");
        for &(i, s) in items {
            assert!(
                self.items.contains_key(&i),
                "round-3 item {i} not in candidate set"
            );
            self.record(node, i, s);
        }
    }

    /// Final result: the k candidates of largest exact |sum|.
    ///
    /// After round 3 the partial sums of surviving candidates are exact:
    /// any node that never sent a score for a candidate holds 0 for it.
    pub fn finish(self) -> Vec<(u64, f64)> {
        let mut entries: Vec<CoefEntry> = self
            .items
            .into_iter()
            .filter(|(_, s)| s.partial != 0.0)
            .map(|(item, s)| CoefEntry {
                slot: item,
                value: s.partial,
            })
            .collect();
        sort_by_magnitude(&mut entries);
        entries.truncate(self.k);
        entries.into_iter().map(|e| (e.slot, e.value)).collect()
    }
}

/// `τ(x)`: lower bound on `|r(x)|` given `τ⁻ ≤ r(x) ≤ τ⁺`.
#[inline]
fn magnitude_lower_bound(tau_plus: f64, tau_minus: f64) -> f64 {
    if tau_plus.signum() != tau_minus.signum() || tau_plus == 0.0 || tau_minus == 0.0 {
        0.0
    } else {
        tau_plus.abs().min(tau_minus.abs())
    }
}

/// k-th largest value, or 0 when fewer than k values exist (no pruning).
fn kth_largest_or_zero(values: &mut [f64], k: usize) -> f64 {
    if values.len() < k || k == 0 {
        return 0.0;
    }
    values.sort_by(|a, b| b.partial_cmp(a).expect("no NaN bounds"));
    values[k - 1].max(0.0)
}

/// Result of an in-memory two-sided TPUT run.
#[derive(Debug, Clone)]
pub struct TwoSidedResult {
    /// The k items of largest aggregated magnitude (descending |score|).
    pub topk: Vec<(u64, f64)>,
    /// Per-round communication.
    pub comm: TputComm,
    /// `T₁` and `T₂` (diagnostics).
    pub thresholds: (f64, f64),
}

/// Runs the full three-round protocol against in-memory nodes.
pub fn two_sided_topk<N: ScoreNode>(nodes: &[N], k: usize) -> TwoSidedResult {
    let m = nodes.len();
    let mut comm = TputComm::default();
    if m == 0 || k == 0 {
        return TwoSidedResult {
            topk: Vec::new(),
            comm,
            thresholds: (0.0, 0.0),
        };
    }
    let mut coord = Coordinator::new(m, k);

    // ---- Round 1 ----
    let mut round1 = 0u64;
    let mut sent_r1: Vec<wh_wavelet::hash::FxHashSet<u64>> = vec![Default::default(); m];
    for (j, node) in nodes.iter().enumerate() {
        let top = node.top_k(k);
        let bottom = node.bottom_k(k);
        let kth_high = (node.len() >= k).then(|| top.last().expect("k≥1 items").1);
        let kth_low = (node.len() >= k).then(|| bottom.last().expect("k≥1 items").1);
        for &(i, _) in top.iter().chain(bottom.iter()) {
            sent_r1[j].insert(i);
        }
        round1 += sent_r1[j].len() as u64;
        coord.absorb_round1(j, &top, &bottom, kth_high, kth_low);
    }
    comm.pairs_per_round.push(round1);
    let t1 = coord.finish_round1();

    // ---- Round 2 ----
    let mut round2 = 0u64;
    let tau = t1 / m as f64;
    for (j, node) in nodes.iter().enumerate() {
        let fresh: Vec<(u64, f64)> = node
            .items_above_magnitude(tau)
            .into_iter()
            .filter(|(i, _)| !sent_r1[j].contains(i))
            .collect();
        round2 += fresh.len() as u64;
        coord.absorb_round2(j, &fresh);
    }
    comm.pairs_per_round.push(round2);
    let (t2, candidates) = coord.finish_round2();

    // ---- Round 3 ----
    comm.broadcast_items += candidates.len() as u64;
    let mut round3 = 0u64;
    for (j, node) in nodes.iter().enumerate() {
        let fresh: Vec<(u64, f64)> = candidates
            .iter()
            .filter(|&&i| !coord.has_seen(j, i))
            .filter_map(|&i| {
                let s = node.score(i);
                (s != 0.0).then_some((i, s))
            })
            .collect();
        round3 += fresh.len() as u64;
        coord.absorb_round3(j, &fresh);
    }
    comm.pairs_per_round.push(round3);

    TwoSidedResult {
        topk: coord.finish(),
        comm,
        thresholds: (t1, t2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::topk_by_magnitude;
    use crate::node::InMemoryNode;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn make_nodes(seed: u64, m: usize, items: u64, density: u64) -> Vec<InMemoryNode> {
        let mut s = seed;
        (0..m)
            .map(|_| {
                let pairs: Vec<(u64, f64)> = (0..items)
                    .filter_map(|i| {
                        let r = lcg(&mut s);
                        r.is_multiple_of(density)
                            .then_some((i, (r % 2001) as f64 - 1000.0))
                    })
                    .collect();
                InMemoryNode::new(pairs)
            })
            .collect()
    }

    /// Compares by the guarantee that matters: the returned set achieves the
    /// same magnitudes as the reference (ties at the k-th place may swap
    /// equal-magnitude items).
    fn assert_topk_equivalent(got: &[(u64, f64)], want: &[(u64, f64)]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g.1.abs() - w.1.abs()).abs() < 1e-9,
                "magnitude mismatch: got {g:?} want {w:?}"
            );
        }
        // Non-tied prefix must match exactly.
        let kth = want.last().map_or(0.0, |w| w.1.abs());
        let want_map: wh_wavelet::hash::FxHashMap<u64, f64> = want.iter().copied().collect();
        for g in got {
            if g.1.abs() > kth + 1e-9 {
                assert_eq!(want_map.get(&g.0), Some(&g.1));
            }
        }
    }

    #[test]
    fn matches_brute_force_randomized() {
        for seed in 1..12u64 {
            let nodes = make_nodes(seed, 6, 60, 3);
            let got = two_sided_topk(&nodes, 8);
            let want = topk_by_magnitude(&nodes, 8);
            assert_topk_equivalent(&got.topk, &want);
        }
    }

    #[test]
    fn negative_heavy_items_found() {
        // An item that is strongly negative on every node must rank first —
        // the case that breaks classic TPUT.
        let mut nodes = make_nodes(99, 5, 40, 2);
        for n in &mut nodes {
            let mut pairs: Vec<(u64, f64)> = n.scores().iter().map(|(&i, &s)| (i, s)).collect();
            pairs.push((777, -5000.0));
            *n = InMemoryNode::new(pairs);
        }
        let got = two_sided_topk(&nodes, 3);
        assert_eq!(got.topk[0].0, 777);
        assert!((got.topk[0].1 - -25000.0).abs() < 1e-9);
    }

    #[test]
    fn cancellation_excluded() {
        let nodes = vec![
            InMemoryNode::new([(1, 1000.0), (2, 5.0), (3, -2.0)]),
            InMemoryNode::new([(1, -1000.0), (2, 5.0), (4, 1.0)]),
        ];
        let got = two_sided_topk(&nodes, 2);
        let want = topk_by_magnitude(&nodes, 2);
        assert_topk_equivalent(&got.topk, &want);
        assert_eq!(got.topk[0].0, 2);
    }

    #[test]
    fn single_node() {
        let nodes = vec![InMemoryNode::new([(1, -3.0), (2, 7.0), (3, 1.0)])];
        let got = two_sided_topk(&nodes, 2);
        assert_eq!(got.topk, vec![(2, 7.0), (1, -3.0)]);
    }

    #[test]
    fn k_exceeds_distinct_items() {
        let nodes = vec![
            InMemoryNode::new([(1, 1.0)]),
            InMemoryNode::new([(2, -2.0)]),
        ];
        let got = two_sided_topk(&nodes, 10);
        assert_topk_equivalent(&got.topk, &topk_by_magnitude(&nodes, 10));
    }

    #[test]
    fn empty_input() {
        let nodes: Vec<InMemoryNode> = vec![];
        assert!(two_sided_topk(&nodes, 5).topk.is_empty());
        let nodes = vec![InMemoryNode::default()];
        assert!(two_sided_topk(&nodes, 5).topk.is_empty());
    }

    #[test]
    fn communication_beats_send_all_on_skewed_data() {
        // Mimics wavelet coefficients: few large, many near zero.
        let mut s = 7u64;
        let m = 16;
        let nodes: Vec<InMemoryNode> = (0..m)
            .map(|_| {
                let pairs: Vec<(u64, f64)> = (0..2000u64)
                    .map(|i| {
                        let r = lcg(&mut s);
                        let mag = if i < 10 { 1e5 } else { 2.0 };
                        (i, ((r % 1000) as f64 / 1000.0 - 0.5) * mag)
                    })
                    .collect();
                InMemoryNode::new(pairs)
            })
            .collect();
        let got = two_sided_topk(&nodes, 10);
        let send_all: u64 = nodes.iter().map(|n| n.len() as u64).sum();
        assert!(
            got.comm.total_pairs() < send_all / 5,
            "two-sided {} vs send-all {send_all}",
            got.comm.total_pairs()
        );
        assert_topk_equivalent(&got.topk, &topk_by_magnitude(&nodes, 10));
    }

    #[test]
    fn thresholds_are_monotone() {
        let nodes = make_nodes(5, 8, 100, 4);
        let got = two_sided_topk(&nodes, 10);
        let (t1, t2) = got.thresholds;
        assert!(t2 >= t1, "T2 {t2} should refine (≥) T1 {t1}");
    }

    #[test]
    fn sparse_nodes_fewer_than_k_items() {
        // Nodes holding fewer than k items send everything; unseen = absent.
        let nodes = vec![
            InMemoryNode::new([(1, 9.0)]),
            InMemoryNode::new([(2, -4.0), (3, 2.0)]),
            InMemoryNode::new([]),
        ];
        let got = two_sided_topk(&nodes, 2);
        assert_topk_equivalent(&got.topk, &topk_by_magnitude(&nodes, 2));
    }
}
