//! Node-side abstraction for distributed top-k.
//!
//! A node holds a local score map (in the wavelet setting: the non-zero
//! local coefficients of one split). Items the node does not hold score 0.

use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::TopBottomK;

/// The per-node operations the TPUT-family drivers need.
pub trait ScoreNode {
    /// The `k` highest-scored items, sorted by descending score
    /// (ties: ascending item id). Shorter when the node holds fewer items.
    fn top_k(&self, k: usize) -> Vec<(u64, f64)>;

    /// The `k` lowest-scored items, sorted ascending (ties: ascending id).
    fn bottom_k(&self, k: usize) -> Vec<(u64, f64)>;

    /// All held items with `|score| > threshold`.
    fn items_above_magnitude(&self, threshold: f64) -> Vec<(u64, f64)>;

    /// All held items with `score > threshold` (classic TPUT's phase 2).
    fn items_above(&self, threshold: f64) -> Vec<(u64, f64)>;

    /// The exact local score of `item` (0 when not held).
    fn score(&self, item: u64) -> f64;

    /// Number of held items.
    fn len(&self) -> usize;

    /// Whether the node holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A node backed by a hash map of local scores.
#[derive(Debug, Clone, Default)]
pub struct InMemoryNode {
    scores: FxHashMap<u64, f64>,
}

impl InMemoryNode {
    /// Builds a node from `(item, score)` pairs; duplicate items accumulate.
    pub fn new(pairs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut scores = FxHashMap::default();
        for (i, s) in pairs {
            *scores.entry(i).or_insert(0.0) += s;
        }
        scores.retain(|_, s| *s != 0.0);
        Self { scores }
    }

    /// Read-only view of the underlying map.
    pub fn scores(&self) -> &FxHashMap<u64, f64> {
        &self.scores
    }
}

impl ScoreNode for InMemoryNode {
    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut tb = TopBottomK::new(k);
        for (&i, &s) in &self.scores {
            tb.offer(i, s);
        }
        tb.top().into_iter().map(|e| (e.slot, e.value)).collect()
    }

    fn bottom_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut tb = TopBottomK::new(k);
        for (&i, &s) in &self.scores {
            tb.offer(i, s);
        }
        tb.bottom().into_iter().map(|e| (e.slot, e.value)).collect()
    }

    fn items_above_magnitude(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .scores
            .iter()
            .filter(|(_, s)| s.abs() > threshold)
            .map(|(&i, &s)| (i, s))
            .collect();
        v.sort_by_key(|&(i, _)| i);
        v
    }

    fn items_above(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .scores
            .iter()
            .filter(|(_, s)| **s > threshold)
            .map(|(&i, &s)| (i, s))
            .collect();
        v.sort_by_key(|&(i, _)| i);
        v
    }

    fn score(&self, item: u64) -> f64 {
        self.scores.get(&item).copied().unwrap_or(0.0)
    }

    fn len(&self) -> usize {
        self.scores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> InMemoryNode {
        InMemoryNode::new([(1, 5.0), (2, -3.0), (3, 0.5), (4, -8.0), (5, 2.0)])
    }

    #[test]
    fn top_and_bottom() {
        let n = node();
        assert_eq!(n.top_k(2), vec![(1, 5.0), (5, 2.0)]);
        assert_eq!(n.bottom_k(2), vec![(4, -8.0), (2, -3.0)]);
    }

    #[test]
    fn k_exceeds_items() {
        let n = InMemoryNode::new([(9, 1.0)]);
        assert_eq!(n.top_k(5), vec![(9, 1.0)]);
        assert_eq!(n.bottom_k(5), vec![(9, 1.0)]);
    }

    #[test]
    fn magnitude_filter() {
        let n = node();
        assert_eq!(
            n.items_above_magnitude(2.5),
            vec![(1, 5.0), (2, -3.0), (4, -8.0)]
        );
        assert!(n.items_above_magnitude(100.0).is_empty());
    }

    #[test]
    fn signed_filter() {
        let n = node();
        assert_eq!(n.items_above(1.0), vec![(1, 5.0), (5, 2.0)]);
    }

    #[test]
    fn absent_items_score_zero() {
        let n = node();
        assert_eq!(n.score(99), 0.0);
        assert_eq!(n.score(1), 5.0);
    }

    #[test]
    fn duplicates_accumulate_and_zeros_drop() {
        let n = InMemoryNode::new([(1, 2.0), (1, 3.0), (2, 1.0), (2, -1.0)]);
        assert_eq!(n.len(), 1);
        assert_eq!(n.score(1), 5.0);
        assert_eq!(n.score(2), 0.0);
    }
}
