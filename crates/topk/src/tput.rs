//! Classic TPUT (Cao & Wang, PODC'04): exact three-phase distributed top-k
//! for **non-negative** scores.
//!
//! Included as the reference point the paper starts from. Phase 1 collects
//! each node's local top-k and establishes a phase-1 threshold `τ` from
//! partial sums; phase 2 fetches everything above `τ/m` and prunes; phase 3
//! resolves the survivors exactly. The partial-sum pruning is only sound
//! when unseen scores are ≥ 0 — the limitation the two-sided variant
//! removes.

use crate::node::ScoreNode;
use wh_wavelet::hash::{FxHashMap, FxHashSet};

/// Per-round communication of a TPUT-style run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TputComm {
    /// `(item, score)` pairs uploaded to the coordinator per round.
    pub pairs_per_round: Vec<u64>,
    /// Item ids broadcast to nodes (thresholds are O(1) and ignored).
    pub broadcast_items: u64,
}

impl TputComm {
    /// Total uploaded pairs.
    pub fn total_pairs(&self) -> u64 {
        self.pairs_per_round.iter().sum()
    }
}

/// Result of a TPUT run.
#[derive(Debug, Clone)]
pub struct TputResult {
    /// The k items of largest aggregated score, descending.
    pub topk: Vec<(u64, f64)>,
    /// Communication accounting.
    pub comm: TputComm,
}

/// Runs classic TPUT against `nodes`.
///
/// # Panics
///
/// Panics when any node reports a negative score — classic TPUT's
/// correctness contract.
pub fn tput_topk<N: ScoreNode>(nodes: &[N], k: usize) -> TputResult {
    let m = nodes.len();
    let mut comm = TputComm::default();
    if m == 0 || k == 0 {
        return TputResult {
            topk: Vec::new(),
            comm,
        };
    }

    // ---- Phase 1: local top-k, partial sums. ----
    let mut partial: FxHashMap<u64, f64> = FxHashMap::default();
    let mut seen: FxHashMap<u64, FxHashSet<usize>> = FxHashMap::default();
    let mut round1 = 0u64;
    for (j, node) in nodes.iter().enumerate() {
        for (item, score) in node.top_k(k) {
            assert!(score >= 0.0, "classic TPUT requires non-negative scores");
            *partial.entry(item).or_insert(0.0) += score;
            seen.entry(item).or_default().insert(j);
            round1 += 1;
        }
    }
    comm.pairs_per_round.push(round1);

    // Phase-1 threshold: k-th largest partial sum (0 when fewer than k).
    let t1 = kth_largest(partial.values().copied(), k).max(0.0);

    // ---- Phase 2: fetch everything above t1/m. ----
    let mut round2 = 0u64;
    let tau = t1 / m as f64;
    for (j, node) in nodes.iter().enumerate() {
        for (item, score) in node.items_above(tau) {
            let seen_j = seen.entry(item).or_default();
            if seen_j.contains(&j) {
                continue; // sent in phase 1
            }
            *partial.entry(item).or_insert(0.0) += score;
            seen_j.insert(j);
            round2 += 1;
        }
    }
    comm.pairs_per_round.push(round2);

    // Refined threshold and pruning: upper bound = partial + unseen·t1/m.
    let t2 = kth_largest(partial.values().copied(), k).max(0.0);
    let candidates: Vec<u64> = partial
        .iter()
        .filter(|(item, &p)| {
            let unseen = m - seen.get(*item).map_or(0, FxHashSet::len);
            p + unseen as f64 * tau >= t2
        })
        .map(|(&item, _)| item)
        .collect();

    // ---- Phase 3: resolve candidates exactly. ----
    // Partial sums already hold every contribution received in phases 1–2;
    // each node only sends scores it has not sent before.
    comm.broadcast_items += candidates.len() as u64;
    let mut round3 = 0u64;
    let mut exact: FxHashMap<u64, f64> = candidates
        .iter()
        .map(|&item| (item, partial.get(&item).copied().unwrap_or(0.0)))
        .collect();
    for (j, node) in nodes.iter().enumerate() {
        for &item in &candidates {
            if seen.get(&item).is_some_and(|s| s.contains(&j)) {
                continue; // already counted, nothing resent
            }
            let s = node.score(item);
            if s != 0.0 {
                round3 += 1;
                *exact.get_mut(&item).expect("candidate present") += s;
            }
        }
    }
    comm.pairs_per_round.push(round3);

    let mut topk: Vec<(u64, f64)> = exact.into_iter().collect();
    topk.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("no NaN scores")
            .then_with(|| a.0.cmp(&b.0))
    });
    topk.truncate(k);
    TputResult { topk, comm }
}

/// The k-th largest of an iterator (−∞ when fewer than k values).
fn kth_largest(values: impl Iterator<Item = f64>, k: usize) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.len() < k || k == 0 {
        return f64::NEG_INFINITY;
    }
    v.sort_by(|a, b| b.partial_cmp(a).expect("no NaN scores"));
    v[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::topk_by_value;
    use crate::node::InMemoryNode;
    use wh_wavelet::hash::FxHashMap;

    fn make_nodes(seed: u64, m: usize, items: u64) -> Vec<InMemoryNode> {
        // Deterministic pseudo-random non-negative scores.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..m)
            .map(|_| {
                let pairs: Vec<(u64, f64)> = (0..items)
                    .filter_map(|i| {
                        let r = next();
                        (r % 3 == 0).then_some((i, (r % 1000) as f64))
                    })
                    .collect();
                InMemoryNode::new(pairs)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_small() {
        for seed in 1..6u64 {
            let nodes = make_nodes(seed, 5, 40);
            let got = tput_topk(&nodes, 10).topk;
            let want = topk_by_value(&nodes, 10);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn k_one() {
        let nodes = make_nodes(9, 3, 20);
        let got = tput_topk(&nodes, 1).topk;
        assert_eq!(got, topk_by_value(&nodes, 1));
    }

    #[test]
    fn k_larger_than_universe() {
        let nodes = vec![InMemoryNode::new([(1, 1.0), (2, 2.0)])];
        let got = tput_topk(&nodes, 10).topk;
        assert_eq!(got, vec![(2, 2.0), (1, 1.0)]);
    }

    #[test]
    fn communication_less_than_send_all() {
        // With concentrated scores, TPUT should move far fewer pairs than
        // shipping every local score.
        let m = 20;
        let mut nodes = Vec::new();
        for j in 0..m {
            let mut pairs: Vec<(u64, f64)> = (0..500u64).map(|i| (i, 1.0)).collect();
            pairs.push((1000 + j as u64 % 3, 10_000.0));
            nodes.push(InMemoryNode::new(pairs));
        }
        let result = tput_topk(&nodes, 3);
        let send_all: u64 = nodes.iter().map(|n| n.len() as u64).sum();
        assert!(
            result.comm.total_pairs() < send_all / 4,
            "tput {} vs send-all {send_all}",
            result.comm.total_pairs()
        );
        assert_eq!(result.topk.len(), 3);
        assert_eq!(result.topk, topk_by_value(&nodes, 3));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scores_rejected() {
        let nodes = vec![InMemoryNode::new([(1, -1.0)])];
        tput_topk(&nodes, 1);
    }

    #[test]
    fn empty_nodes() {
        let nodes: Vec<InMemoryNode> = vec![];
        assert!(tput_topk(&nodes, 5).topk.is_empty());
        let nodes = vec![InMemoryNode::default(), InMemoryNode::default()];
        assert!(tput_topk(&nodes, 5).topk.is_empty());
    }

    #[test]
    fn heavy_tail_stress_matches_reference() {
        // Larger randomized instance.
        let nodes = make_nodes(0xabcdef, 12, 300);
        let got = tput_topk(&nodes, 25).topk;
        let want = topk_by_value(&nodes, 25);
        let to_map = |v: &[(u64, f64)]| -> FxHashMap<u64, f64> { v.iter().copied().collect() };
        // Ties may reorder equal scores; compare as maps of score sets.
        assert_eq!(to_map(&got).len(), to_map(&want).len());
        let min_got = got.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let min_want = want.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        assert_eq!(min_got, min_want);
        for (i, s) in &want {
            if *s > min_want {
                assert_eq!(to_map(&got).get(i), Some(s));
            }
        }
    }
}
