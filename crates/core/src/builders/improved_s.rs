//! Improved-S: sampling with low-frequency suppression (§4).
//!
//! Identical to Basic-S except each split only emits keys whose local
//! sample count reaches `ε·t_j`, bounding emission at `1/ε` pairs per
//! split (`O(m/ε)` total) at the price of a biased estimator — the
//! reducer never sees the dropped counts, so `E[v̂(x)]` can sit `εn` below
//! `v(x)` (the widening SSE gap of Figs. 6–7).

use std::sync::Arc;

use parking_lot::Mutex;

use super::sample_common::first_level_counts;
use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::wire::{Sized as WSized, WKey};
use wh_mapreduce::{run_job, ClusterConfig, EngineConfig, JobSpec, MapTask};
use wh_sampling::SamplingConfig;
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::top_k_magnitude;

/// The Improved-S sampling builder.
#[derive(Debug, Clone, Copy)]
pub struct ImprovedS {
    epsilon: f64,
    seed: u64,
    engine: EngineConfig,
}

impl ImprovedS {
    /// Improved sampling with error parameter `ε` and a sampling seed.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        Self {
            epsilon,
            seed,
            engine: EngineConfig::default(),
        }
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

impl HistogramBuilder for ImprovedS {
    fn name(&self) -> &'static str {
        "Improved-S"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        let cfg = SamplingConfig::new(self.epsilon, dataset.num_splits(), dataset.num_records());
        let key_bytes = dataset.key_bytes() as u8;
        let seed = self.seed;
        let epsilon = self.epsilon;

        let map_tasks: Vec<MapTask<WKey, WSized<u64>>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let (counts, t_j) = first_level_counts(&ds, &cfg, j, seed, ctx);
                    for (x, c) in wh_sampling::improved::emit(&counts, epsilon, t_j) {
                        ctx.emit(WKey::new(x, key_bytes), WSized::new(c, 4));
                    }
                })
            })
            .collect();

        let s: Arc<Mutex<FxHashMap<u64, u64>>> = Arc::new(Mutex::new(FxHashMap::default()));
        let s_reduce = Arc::clone(&s);
        let reduce = move |key: &WKey,
                           vals: &[WSized<u64>],
                           ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
            ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
            s_reduce
                .lock()
                .insert(key.id, vals.iter().map(|v| v.value).sum());
        };
        let s_finish = Arc::clone(&s);
        let p = cfg.p();
        // Sampled item keys live in [0, u); `u` is the tightest static
        // bound (the emitted subset is data-dependent), and the
        // dense-reduce tables shrink to each partition's actual key range
        // at run time, so the loose-looking hint costs nothing.
        let spec = JobSpec::new("improved-s", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(self.engine.with_key_domain(domain.u()))
            .with_finish(move |ctx| {
                let s = s_finish.lock();
                // Iterate the shared accumulator in key order: with parallel reduce
                // partitions, hash-map layout depends on racy cross-partition
                // insertion interleaving, and float accumulation must not.
                let mut entries: Vec<(u64, u64)> = s.iter().map(|(&x, &c)| (x, c)).collect();
                entries.sort_unstable_by_key(|&(x, _)| x);
                let coefs = wh_wavelet::sparse::sparse_transform(
                    domain,
                    entries.iter().map(|&(x, c)| (x, c as f64 / p)),
                );
                ctx.charge(s.len() as f64 * (domain.log_u() + 1) as f64 * ops::COEF_UPDATE);
                ctx.charge(coefs.len() as f64 * ops::HEAP_OFFER);
                for e in top_k_magnitude(coefs, k) {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = run_job(cluster, spec);
        let histogram = WaveletHistogram::new(domain, out.outputs);
        BuildResult {
            histogram,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::BasicS;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    fn ds() -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(10).unwrap())
            .records(40_000)
            .splits(16)
            .seed(33)
            .build()
    }

    #[test]
    fn communication_bounded_by_m_over_eps() {
        let eps = 0.05;
        let result = ImprovedS::new(eps, 1).build(&ds(), &ClusterConfig::paper_cluster(), 8);
        let bound = 16.0 / eps; // m/ε pairs
        assert!(
            (result.metrics.map_output_pairs as f64) <= bound,
            "pairs {} exceed m/ε = {bound}",
            result.metrics.map_output_pairs
        );
    }

    #[test]
    fn never_emits_more_than_basic() {
        let eps = 0.02;
        let cluster = ClusterConfig::paper_cluster();
        let basic = BasicS::new(eps, 5).build(&ds(), &cluster, 8);
        let improved = ImprovedS::new(eps, 5).build(&ds(), &cluster, 8);
        assert!(improved.metrics.map_output_pairs <= basic.metrics.map_output_pairs);
    }

    #[test]
    fn bias_underestimates_total_mass() {
        // Dropped counts can only shrink the estimated total.
        let result = ImprovedS::new(0.02, 7).build(&ds(), &ClusterConfig::paper_cluster(), 128);
        let total = result.histogram.range_sum(0, 1023);
        assert!(
            total <= 40_000.0 * 1.05,
            "total {total} should not exceed n"
        );
    }
}
