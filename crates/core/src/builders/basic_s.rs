//! Basic-S: one-round random sampling (§4).
//!
//! First-level sample per split, keys aggregated by the Combine function
//! into `(x, s_j(x))` pairs (set [`BasicS::combined`] to `false` for the
//! naive `(x, 1)` emission — an ablation the paper mentions as "a simple
//! optimization for executing any MapReduce job"). The reducer builds the
//! scaled estimate `v̂ = s/p`, transforms it, and keeps the top-k.

use std::sync::Arc;

use parking_lot::Mutex;

use super::sample_common::first_level_counts;
use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::wire::{Sized as WSized, WKey};
use wh_mapreduce::{run_job, ClusterConfig, EngineConfig, JobSpec, MapTask};
use wh_sampling::SamplingConfig;
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::top_k_magnitude;

/// The Basic-S sampling builder.
#[derive(Debug, Clone, Copy)]
pub struct BasicS {
    epsilon: f64,
    seed: u64,
    combined: bool,
    engine: EngineConfig,
}

impl BasicS {
    /// Basic sampling with error parameter `ε` and a sampling seed.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        Self {
            epsilon,
            seed,
            combined: true,
            engine: EngineConfig::default(),
        }
    }

    /// Enables/disables the Combine aggregation (ablation).
    pub fn combined(mut self, combined: bool) -> Self {
        self.combined = combined;
        self
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

impl HistogramBuilder for BasicS {
    fn name(&self) -> &'static str {
        "Basic-S"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        let cfg = SamplingConfig::new(self.epsilon, dataset.num_splits(), dataset.num_records());
        let key_bytes = dataset.key_bytes() as u8;
        let combined = self.combined;
        let seed = self.seed;

        let map_tasks: Vec<MapTask<WKey, WSized<u64>>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let (counts, _t_j) = first_level_counts(&ds, &cfg, j, seed, ctx);
                    let mut keys: Vec<u64> = counts.keys().copied().collect();
                    keys.sort_unstable();
                    if combined {
                        for x in keys {
                            ctx.emit(WKey::new(x, key_bytes), WSized::new(counts[&x], 4));
                        }
                    } else {
                        for x in keys {
                            for _ in 0..counts[&x] {
                                ctx.emit(WKey::new(x, key_bytes), WSized::new(1, 4));
                            }
                        }
                    }
                })
            })
            .collect();

        let s: Arc<Mutex<FxHashMap<u64, u64>>> = Arc::new(Mutex::new(FxHashMap::default()));
        let s_reduce = Arc::clone(&s);
        let reduce = move |key: &WKey,
                           vals: &[WSized<u64>],
                           ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
            ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
            s_reduce
                .lock()
                .insert(key.id, vals.iter().map(|v| v.value).sum());
        };
        let s_finish = Arc::clone(&s);
        let p = cfg.p();
        // Sampled item keys live in [0, u); `u` is the tightest static
        // bound (the sample itself is data-dependent), and the
        // dense-reduce tables shrink to each partition's actual sampled
        // key range at run time, so the loose-looking hint costs nothing.
        let spec = JobSpec::new("basic-s", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(self.engine.with_key_domain(domain.u()))
            .with_finish(move |ctx| {
                let s = s_finish.lock();
                // Iterate the shared accumulator in key order: with parallel reduce
                // partitions, hash-map layout depends on racy cross-partition
                // insertion interleaving, and float accumulation must not.
                let mut entries: Vec<(u64, u64)> = s.iter().map(|(&x, &c)| (x, c)).collect();
                entries.sort_unstable_by_key(|&(x, _)| x);
                let coefs = wh_wavelet::sparse::sparse_transform(
                    domain,
                    entries.iter().map(|&(x, c)| (x, c as f64 / p)),
                );
                ctx.charge(s.len() as f64 * (domain.log_u() + 1) as f64 * ops::COEF_UPDATE);
                ctx.charge(coefs.len() as f64 * ops::HEAP_OFFER);
                for e in top_k_magnitude(coefs, k) {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = run_job(cluster, spec);
        let histogram = WaveletHistogram::new(domain, out.outputs);
        BuildResult {
            histogram,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    fn ds() -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(8).unwrap())
            .records(40_000)
            .splits(8)
            .seed(21)
            .build()
    }

    #[test]
    fn sample_size_tracks_one_over_eps_squared() {
        let eps = 0.02; // 1/ε² = 2500
        let result = BasicS::new(eps, 1).build(&ds(), &ClusterConfig::paper_cluster(), 8);
        let scanned = result.metrics.records_scanned;
        assert!(
            (1_800..3_200).contains(&scanned),
            "scanned {scanned}, expected ≈ 2500"
        );
    }

    #[test]
    fn combined_emits_fewer_pairs_than_uncombined() {
        let eps = 0.02;
        let cluster = ClusterConfig::paper_cluster();
        let with = BasicS::new(eps, 1).build(&ds(), &cluster, 8);
        let without = BasicS::new(eps, 1)
            .combined(false)
            .build(&ds(), &cluster, 8);
        assert!(with.metrics.map_output_pairs < without.metrics.map_output_pairs);
        // Uncombined sends exactly the sample size.
        assert_eq!(
            without.metrics.map_output_pairs,
            without.metrics.records_scanned
        );
    }

    #[test]
    fn estimates_total_mass_roughly() {
        // The histogram's full-range sum estimates n.
        let result = BasicS::new(0.02, 3).build(&ds(), &ClusterConfig::paper_cluster(), 64);
        let total = result.histogram.range_sum(0, 255);
        assert!(
            (total - 40_000.0).abs() < 8_000.0,
            "total estimate {total}, want ≈ 40000"
        );
    }
}
