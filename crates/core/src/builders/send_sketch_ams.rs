//! Send-Sketch (AMS variant): the Gilbert-et-al. wavelet sketch (§4's
//! reference [20]) in the same Send-Sketch pipeline.
//!
//! Mapper-side it is a plain CountSketch over the coefficient domain, so
//! per-key updates are `log_b u`-times cheaper than GCS — but extraction
//! must probe **every** coefficient index (`O(u · rows)`), which is why
//! the paper (and [13]) moved to the Group-Count Sketch. This builder
//! exists as the ablation partner of [`super::SendSketch`].

use std::sync::Arc;

use parking_lot::Mutex;

use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::wire::WKey;
use wh_mapreduce::{run_job, ClusterConfig, EngineConfig, JobSpec, MapTask};
use wh_sketch::AmsWaveletSketch;
use wh_wavelet::hash::FxHashMap;

/// The AMS Send-Sketch builder.
#[derive(Debug, Clone, Copy)]
pub struct SendSketchAms {
    seed: u64,
    rows: usize,
    cols: usize,
    engine: EngineConfig,
}

impl SendSketchAms {
    /// AMS sketch sized to roughly match the GCS paper default's space
    /// (rows × cols × 8 B ≈ 20 KB · log₂ u).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rows: 5,
            cols: 0,
            engine: EngineConfig::default(),
        }
    }

    /// Overrides the sketch dimensions.
    pub fn with_dims(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    fn dims_for(&self, dataset: &Dataset) -> (usize, usize) {
        if self.cols > 0 {
            return (self.rows, self.cols);
        }
        let budget_bytes = 20 * 1024 * dataset.domain().log_u().max(1) as usize;
        (self.rows, (budget_bytes / 8 / self.rows).max(16))
    }
}

impl HistogramBuilder for SendSketchAms {
    fn name(&self) -> &'static str {
        "Send-Sketch-AMS"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        assert!(
            domain.log_u() <= 22,
            "AMS extraction probes every coefficient; u ≤ 2^22 required, got {domain}"
        );
        let (rows, cols) = self.dims_for(dataset);
        let seed = self.seed;

        let map_tasks: Vec<MapTask<WKey, f64>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let meta = ds.split_meta(j);
                    ctx.note_read(meta.records, meta.bytes);
                    let mut local: FxHashMap<u64, u64> = FxHashMap::default();
                    for r in ds.scan_split(j) {
                        *local.entry(r.key).or_insert(0) += 1;
                    }
                    ctx.charge(meta.records as f64 * (ops::RECORD_SCAN + ops::HASH_UPSERT));
                    let mut sketch = AmsWaveletSketch::new(domain, rows, cols, seed);
                    let mut row_updates = 0u64;
                    for (&x, &c) in &local {
                        row_updates += sketch.update_key(x, c as f64);
                    }
                    ctx.charge(row_updates as f64 * ops::SKETCH_ROW_UPDATE);
                    for (idx, v) in sketch.counter_entries() {
                        ctx.emit(WKey::four(idx), v);
                    }
                })
            })
            .collect();

        let merged: Arc<Mutex<AmsWaveletSketch>> =
            Arc::new(Mutex::new(AmsWaveletSketch::new(domain, rows, cols, seed)));
        let merged_reduce = Arc::clone(&merged);
        let reduce =
            move |key: &WKey, vals: &[f64], ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
                ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
                merged_reduce.lock().add_counter(key.id, vals.iter().sum());
            };
        let merged_finish = Arc::clone(&merged);
        // Keys are CountSketch counter indices in [0, rows · cols): the
        // tight exclusive bound of `counter_entries`, far smaller than
        // `u` — dense-reduce slot arrays stay a few KB per partition.
        let spec = JobSpec::new("send-sketch-ams", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(self.engine.with_key_domain((rows * cols) as u64))
            .with_finish(move |ctx| {
                let sketch = merged_finish.lock();
                // Exhaustive query: probe every slot.
                ctx.charge(domain.u_f64() * rows as f64 * ops::SKETCH_ROW_UPDATE);
                for e in sketch.topk_exhaustive(k) {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = run_job(cluster, spec);
        let histogram = WaveletHistogram::new(domain, out.outputs);
        BuildResult {
            histogram,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{Centralized, SendSketch};
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    fn ds() -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(10).unwrap())
            .records(30_000)
            .splits(6)
            .seed(44)
            .build()
    }

    #[test]
    fn recovers_top_coefficients() {
        let cluster = ClusterConfig::paper_cluster();
        let k = 10;
        let exact = Centralized::new().build(&ds(), &cluster, k);
        let ams = SendSketchAms::new(4).build(&ds(), &cluster, k);
        let truth: std::collections::BTreeSet<u64> = exact
            .histogram
            .coefficients()
            .iter()
            .map(|&(s, _)| s)
            .collect();
        let found = ams
            .histogram
            .coefficients()
            .iter()
            .filter(|&&(s, _)| truth.contains(&s))
            .count();
        assert!(
            found >= k / 2,
            "only {found}/{k} true coefficients recovered"
        );
    }

    #[test]
    fn ams_query_cost_scales_linearly_with_u() {
        // AMS pays at query time (probe all u), GCS does not — the
        // trade-off behind the paper's choice of GCS. Grow the domain 16×
        // on (almost) fixed data: AMS total CPU must blow up much faster
        // than GCS total CPU.
        let cluster = ClusterConfig::paper_cluster();
        let tiny = |log_u: u32| {
            DatasetBuilder::new()
                .domain(Domain::new(log_u).unwrap())
                .records(2_000)
                .splits(2)
                .seed(9)
                .build()
        };
        let ams_small = SendSketchAms::new(1).build(&tiny(14), &cluster, 5);
        let ams_big = SendSketchAms::new(1).build(&tiny(18), &cluster, 5);
        let gcs_small = SendSketch::new(1).build(&tiny(14), &cluster, 5);
        let gcs_big = SendSketch::new(1).build(&tiny(18), &cluster, 5);
        let ams_growth = ams_big.metrics.cpu_ops / ams_small.metrics.cpu_ops;
        let gcs_growth = gcs_big.metrics.cpu_ops / gcs_small.metrics.cpu_ops;
        assert!(
            ams_growth > 4.0 * gcs_growth,
            "AMS growth {ams_growth:.1}x should dwarf GCS growth {gcs_growth:.1}x"
        );
    }

    #[test]
    #[should_panic(expected = "u ≤ 2^22")]
    fn huge_domain_rejected() {
        let big = DatasetBuilder::new()
            .domain(Domain::new(30).unwrap())
            .records(100)
            .splits(1)
            .build();
        SendSketchAms::new(1).build(&big, &ClusterConfig::paper_cluster(), 5);
    }
}
