//! Shared map-side machinery of the three sampling builders: the
//! first-level sample (the RandomRecordReader of Appendix B) aggregated
//! into local counts.

use super::ops;
use wh_data::Dataset;
use wh_mapreduce::MapContext;
use wh_sampling::SamplingConfig;
use wh_wavelet::hash::FxHashMap;

/// Draws split `j`'s first-level sample and aggregates it into local
/// counts `s_j`, charging IO/CPU to `ctx`. Returns `(counts, t_j)`.
pub fn first_level_counts<K, V>(
    ds: &Dataset,
    cfg: &SamplingConfig,
    j: u32,
    sample_seed: u64,
    ctx: &mut MapContext<K, V>,
) -> (FxHashMap<u64, u64>, u64)
where
    K: wh_mapreduce::WireSize,
    V: wh_mapreduce::WireSize,
{
    let meta = ds.split_meta(j);
    let t_j = cfg.split_sample_size_seeded(meta.records, sample_seed ^ (u64::from(j) << 40));
    let records = ds.sample_split(j, t_j, sample_seed);
    // Only the sampled records are read from storage.
    ctx.note_read(
        records.len() as u64,
        records.len() as u64 * u64::from(ds.record_bytes()),
    );
    ctx.charge(records.len() as f64 * (ops::SAMPLE_RECORD + ops::HASH_UPSERT));
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    for r in &records {
        *counts.entry(r.key).or_insert(0) += 1;
    }
    (counts, t_j)
}
