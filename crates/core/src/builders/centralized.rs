//! The centralized oracle: scan everything on one machine, run the
//! `O(u)` transform, pick the top-k (§2.1). Ground truth for every other
//! builder, and the method the paper argues is only sensible for small
//! data.

use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::cost::TaskWork;
use wh_mapreduce::{ClusterConfig, RunMetrics};
use wh_wavelet::select::top_k_magnitude;

/// Single-machine exact construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Centralized;

impl Centralized {
    /// Creates the oracle builder.
    pub fn new() -> Self {
        Self
    }

    /// The exact dense coefficient vector of `dataset` — used by the
    /// evaluation harness for SSE ground truth.
    ///
    /// # Panics
    ///
    /// Panics when `u > 2^26` (the dense vector would not fit evaluation
    /// memory budgets; the experiments keep evaluation domains below this).
    pub fn exact_coefficients(dataset: &Dataset) -> Vec<f64> {
        let domain = dataset.domain();
        assert!(
            domain.log_u() <= 26,
            "dense ground truth limited to u ≤ 2^26, got {domain}"
        );
        let v = dataset.exact_frequency_vector();
        let mut w: Vec<f64> = v.into_iter().map(|c| c as f64).collect();
        wh_wavelet::haar::forward_in_place(&mut w);
        w
    }
}

impl HistogramBuilder for Centralized {
    fn name(&self) -> &'static str {
        "Centralized"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        let w = Self::exact_coefficients(dataset);
        let top = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), k);
        let histogram = WaveletHistogram::new(domain, top.iter().map(|e| (e.slot, e.value)));

        // Time model: one machine scans the whole dataset and transforms.
        let n = dataset.num_records();
        let cpu_ops = n as f64 * (ops::RECORD_SCAN + ops::HASH_UPSERT)
            + domain.u_f64() * ops::COEF_UPDATE
            + domain.u_f64() * ops::HEAP_OFFER; // top-k pass
        let work = TaskWork {
            bytes_scanned: dataset.total_bytes(),
            cpu_ops,
        };
        let sim_time_s = wh_mapreduce::cost::round_time(
            cluster,
            std::slice::from_ref(&work),
            wh_mapreduce::cost::ReduceWork::default(),
            0,
            0,
        );
        let metrics = RunMetrics {
            rounds: 0,
            records_scanned: n,
            bytes_scanned: dataset.total_bytes(),
            cpu_ops,
            sim_time_s,
            ..Default::default()
        };
        BuildResult { histogram, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    #[test]
    fn histogram_matches_manual_computation() {
        let ds = DatasetBuilder::new()
            .domain(Domain::new(6).unwrap())
            .records(5_000)
            .splits(4)
            .seed(3)
            .build();
        let result = Centralized::new().build(&ds, &ClusterConfig::paper_cluster(), 8);

        let v = ds.exact_frequency_vector();
        let w = wh_wavelet::haar::forward(&v.iter().map(|&c| c as f64).collect::<Vec<_>>());
        let top = top_k_magnitude(w.iter().enumerate().map(|(s, &c)| (s as u64, c)), 8);
        assert_eq!(result.histogram.len(), top.len());
        for (got, want) in result.histogram.coefficients().iter().zip(&top) {
            assert_eq!(got.0, want.slot);
            assert!((got.1 - want.value).abs() < 1e-9);
        }
        // No communication at all.
        assert_eq!(result.metrics.total_comm_bytes(), 0);
        assert!(result.metrics.sim_time_s > 0.0);
    }

    #[test]
    fn exact_coefficients_preserve_energy() {
        let ds = DatasetBuilder::new()
            .domain(Domain::new(8).unwrap())
            .records(10_000)
            .splits(2)
            .build();
        let v = ds.exact_frequency_vector();
        let ev: f64 = v.iter().map(|&c| (c * c) as f64).sum();
        let w = Centralized::exact_coefficients(&ds);
        let ew: f64 = w.iter().map(|c| c * c).sum();
        assert!((ev - ew).abs() < 1e-6 * ev.max(1.0));
    }
}
