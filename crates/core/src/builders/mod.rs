//! The seven histogram builders of the paper, plus the centralized oracle.
//!
//! Every builder consumes a [`Dataset`] and a [`ClusterConfig`] and returns
//! a [`BuildResult`]: the k-term [`WaveletHistogram`] plus the exact
//! [`RunMetrics`] of the MapReduce execution that produced it. Exact
//! builders ([`SendV`], [`SendCoef`], [`HWTopk`], [`Centralized`]) all
//! return the *same* histogram for the same dataset; the approximations
//! trade quality for communication and scan cost.

mod basic_s;
mod centralized;
mod h_wtopk;
mod improved_s;
mod sample_common;
mod send_coef;
mod send_sketch;
mod send_sketch_ams;
mod send_v;
mod two_level_s;

pub use basic_s::BasicS;
pub use centralized::Centralized;
pub use h_wtopk::HWTopk;
pub use improved_s::ImprovedS;
pub use send_coef::SendCoef;
pub use send_sketch::SendSketch;
pub use send_sketch_ams::SendSketchAms;
pub use send_v::SendV;
pub use two_level_s::TwoLevelS;

use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::{ClusterConfig, RunMetrics};

/// Output of one histogram construction.
#[derive(Debug, Clone)]
pub struct BuildResult {
    /// The constructed k-term histogram.
    pub histogram: WaveletHistogram,
    /// Exact measurements of the construction.
    pub metrics: RunMetrics,
}

/// A wavelet-histogram construction algorithm.
pub trait HistogramBuilder {
    /// Short name used in experiment tables (matches the paper:
    /// "Send-V", "H-WTopk", "TwoLevel-S", …).
    fn name(&self) -> &'static str;

    /// Builds the best-k-term histogram of `dataset` on `cluster`.
    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult;
}

/// Cost-model constants shared by the builders: abstract CPU ops charged
/// per unit of algorithmic work. Centralised here so ablations can reason
/// about them.
pub mod ops {
    /// Reading + parsing one record in a scan.
    pub const RECORD_SCAN: f64 = 1.0;
    /// One hash-map upsert while building a local frequency vector.
    pub const HASH_UPSERT: f64 = 2.0;
    /// One wavelet coefficient update in the sparse transform.
    pub const COEF_UPDATE: f64 = 2.0;
    /// One priority-queue offer.
    pub const HEAP_OFFER: f64 = 3.0;
    /// One sketch row-update (GCS/AMS inner loop).
    pub const SKETCH_ROW_UPDATE: f64 = 4.0;
    /// Reducer-side work per received pair.
    pub const REDUCE_PAIR: f64 = 2.0;
    /// Random-access sampling of one record (seek + read + hash).
    pub const SAMPLE_RECORD: f64 = 6.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    fn tiny_dataset() -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(8).unwrap())
            .records(20_000)
            .splits(8)
            .seed(7)
            .build()
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::paper_cluster()
    }

    #[test]
    fn exact_builders_agree_up_to_float_associativity() {
        let ds = tiny_dataset();
        let k = 12;
        let reference = Centralized::new().build(&ds, &cluster(), k);
        for b in [
            Box::new(SendV::new()) as Box<dyn HistogramBuilder>,
            Box::new(SendCoef::new()),
            Box::new(HWTopk::new()),
        ] {
            let got = b.build(&ds, &cluster(), k);
            assert_eq!(
                got.histogram.len(),
                reference.histogram.len(),
                "{}",
                b.name()
            );
            for (x, y) in got
                .histogram
                .coefficients()
                .iter()
                .zip(reference.histogram.coefficients())
            {
                assert_eq!(x.0, y.0, "{}: slot mismatch", b.name());
                assert!(
                    (x.1 - y.1).abs() < 1e-6 * (1.0 + y.1.abs()),
                    "{}: {x:?} vs {y:?}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn hwtopk_communicates_less_than_send_v() {
        let ds = tiny_dataset();
        let sv = SendV::new().build(&ds, &cluster(), 10);
        let hw = HWTopk::new().build(&ds, &cluster(), 10);
        assert!(
            hw.metrics.total_comm_bytes() < sv.metrics.total_comm_bytes(),
            "H-WTopk {} vs Send-V {}",
            hw.metrics.total_comm_bytes(),
            sv.metrics.total_comm_bytes()
        );
        assert_eq!(hw.metrics.rounds, 3);
        assert_eq!(sv.metrics.rounds, 1);
    }

    #[test]
    fn sampling_builders_scan_less_than_exact() {
        let ds = tiny_dataset();
        let eps = 0.02; // sample ≈ 2500 of 20000
        let sv = SendV::new().build(&ds, &cluster(), 10);
        for b in [
            Box::new(BasicS::new(eps, 1)) as Box<dyn HistogramBuilder>,
            Box::new(ImprovedS::new(eps, 1)),
            Box::new(TwoLevelS::new(eps, 1)),
        ] {
            let got = b.build(&ds, &cluster(), 10);
            assert!(
                got.metrics.records_scanned < sv.metrics.records_scanned / 2,
                "{} scanned {} records",
                b.name(),
                got.metrics.records_scanned
            );
            assert!(!got.histogram.is_empty());
        }
    }

    #[test]
    fn two_level_beats_basic_communication() {
        let ds = tiny_dataset();
        let eps = 0.02;
        let basic = BasicS::new(eps, 1).build(&ds, &cluster(), 10);
        let two = TwoLevelS::new(eps, 1).build(&ds, &cluster(), 10);
        assert!(
            two.metrics.shuffle_bytes <= basic.metrics.shuffle_bytes,
            "TwoLevel {} vs Basic {}",
            two.metrics.shuffle_bytes,
            basic.metrics.shuffle_bytes
        );
    }

    #[test]
    fn send_sketch_produces_reasonable_histogram() {
        let ds = tiny_dataset();
        let got = SendSketch::new(3).build(&ds, &cluster(), 8);
        assert!(!got.histogram.is_empty());
        assert_eq!(got.metrics.rounds, 1);
        // Sketch scans everything.
        assert_eq!(got.metrics.records_scanned, 20_000);
    }
}
