//! H-WTopk: the paper's three-round exact algorithm (§3, Appendix A).
//!
//! Round 1 — each mapper scans its split, computes the local wavelet
//! coefficients with the sparse `O(|v_j| log u)` transform, and emits its
//! local top-k and bottom-k (marking the k-th highest/lowest values). All
//! other local coefficients are written to per-split state (the HDFS state
//! file of Appendix A — free of network cost). The reducer/coordinator
//! forms partial sums `ŵ_i`, seen-bitvectors `F_i`, and threshold `T₁`.
//!
//! Round 2 — `T₁/m` is pushed through the Job Configuration; mappers read
//! their state (no input scan!) and emit remaining coefficients with
//! `|w_{i,j}| > T₁/m`. The coordinator refines bounds, derives `T₂`, and
//! prunes to a candidate set `R`.
//!
//! Round 3 — `R` rides the Distributed Cache; mappers emit local scores of
//! candidates never sent before. The coordinator finalises exact sums and
//! picks the top-k by magnitude.
//!
//! The coordinator logic is `wh_topk::Coordinator` — the same state machine
//! the in-memory driver uses — so protocol correctness is tested once,
//! against brute force, in `wh-topk`.

use std::sync::Arc;

use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::wire::{Sized as WSized, WKey};
use wh_mapreduce::{
    run_job, ClusterConfig, EngineConfig, JobSpec, MapTask, RunMetrics, StateStore,
};
use wh_topk::Coordinator;
use wh_wavelet::hash::{FxHashMap, FxHashSet};
use wh_wavelet::select::TopBottomK;

/// Round-1/2/3 message payload: `(flags, split, coefficient)`.
/// Wire size 12 B — 4 B split id + 8 B double; the mark flags replace the
/// paper's `j+m`/`j+2m` split-id encoding and ride in the same bytes.
type Payload = WSized<(u8, u32, f64)>;

const FLAG_KTH_HIGH: u8 = 1;
const FLAG_KTH_LOW: u8 = 2;

fn payload(flags: u8, split: u32, w: f64) -> Payload {
    WSized::new((flags, split, w), 12)
}

/// The H-WTopk exact builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct HWTopk {
    engine: EngineConfig,
}

impl HWTopk {
    /// Creates the builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

impl HistogramBuilder for HWTopk {
    fn name(&self) -> &'static str {
        "H-WTopk"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        let m = dataset.num_splits() as usize;
        let state = Arc::new(StateStore::new());
        let mut metrics = RunMetrics::default();
        let mut coordinator = Coordinator::new(m, k);

        // ---------- Round 1 ----------
        let map_tasks: Vec<MapTask<WKey, Payload>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                let state = Arc::clone(&state);
                MapTask::new(j, move |ctx| {
                    let meta = ds.split_meta(j);
                    ctx.note_read(meta.records, meta.bytes);
                    let mut local: FxHashMap<u64, u64> = FxHashMap::default();
                    for r in ds.scan_split(j) {
                        *local.entry(r.key).or_insert(0) += 1;
                    }
                    ctx.charge(meta.records as f64 * (ops::RECORD_SCAN + ops::HASH_UPSERT));
                    let coefs = wh_wavelet::sparse::sparse_transform(
                        domain,
                        local.iter().map(|(&x, &c)| (x, c as f64)),
                    );
                    ctx.charge(local.len() as f64 * (domain.log_u() + 1) as f64 * ops::COEF_UPDATE);
                    let mut tb = TopBottomK::new(k);
                    for (&slot, &w) in &coefs {
                        tb.offer(slot, w);
                    }
                    ctx.charge(coefs.len() as f64 * 2.0 * ops::HEAP_OFFER);
                    let top = tb.top();
                    let bottom = tb.bottom();
                    let full = coefs.len() >= k;
                    let kth_high_slot = if full {
                        top.last().map(|e| e.slot)
                    } else {
                        None
                    };
                    let kth_low_slot = if full {
                        bottom.last().map(|e| e.slot)
                    } else {
                        None
                    };
                    // Union of top and bottom sets, deduplicated.
                    let mut sent: FxHashMap<u64, f64> = FxHashMap::default();
                    for e in top.iter().chain(bottom.iter()) {
                        sent.insert(e.slot, e.value);
                    }
                    let mut slots: Vec<u64> = sent.keys().copied().collect();
                    slots.sort_unstable();
                    for slot in slots {
                        let mut flags = 0u8;
                        if kth_high_slot == Some(slot) {
                            flags |= FLAG_KTH_HIGH;
                        }
                        if kth_low_slot == Some(slot) {
                            flags |= FLAG_KTH_LOW;
                        }
                        ctx.emit(WKey::four(slot), payload(flags, j, sent[&slot]));
                    }
                    // Persist un-sent coefficients for rounds 2–3. The
                    // wire-encoded save path keeps the state process-safe:
                    // under the multi-process engine these bytes ride the
                    // journal back to the coordinator (the paper's local
                    // HDFS state file — still free of *charged* network).
                    let mut remaining: Vec<(u64, f64)> = coefs
                        .iter()
                        .filter(|(slot, _)| !sent.contains_key(slot))
                        .map(|(&s, &w)| (s, w))
                        .collect();
                    remaining.sort_unstable_by_key(|&(s, _)| s);
                    state.save_wire(j, &remaining);
                })
            })
            .collect();
        let reduce =
            |key: &WKey,
             vals: &[Payload],
             ctx: &mut wh_mapreduce::ReduceContext<(u64, u8, u32, f64)>| {
                ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
                for v in vals {
                    let (flags, split, w) = v.value;
                    ctx.emit((key.id, flags, split, w));
                }
            };
        // All three rounds key their messages by wavelet coefficient
        // index, and rounds 2–3 only re-send indices already seen in
        // round 1 — so `u` is the tight exclusive bound for every round,
        // and one hinted engine config serves all of them (the
        // dense-reduce tables size themselves to each partition's actual,
        // typically much narrower, key range per round).
        let engine = self.engine.with_key_domain(domain.u());
        let out = run_job(
            cluster,
            JobSpec::new("h-wtopk-r1", map_tasks, reduce)
                .with_radix_keys()
                .with_wire_codec()
                .with_state_store(Arc::clone(&state))
                .with_engine(engine),
        );
        metrics.absorb(&out.metrics);

        // Coordinator: group round-1 messages per node.
        let mut per_node: Vec<Vec<(u64, f64)>> = vec![Vec::new(); m];
        let mut kth_high: Vec<Option<f64>> = vec![None; m];
        let mut kth_low: Vec<Option<f64>> = vec![None; m];
        for (slot, flags, split, w) in out.outputs {
            let j = split as usize;
            per_node[j].push((slot, w));
            if flags & FLAG_KTH_HIGH != 0 {
                kth_high[j] = Some(w);
            }
            if flags & FLAG_KTH_LOW != 0 {
                kth_low[j] = Some(w);
            }
        }
        for (j, pairs) in per_node.iter().enumerate() {
            coordinator.absorb_round1(j, pairs, &[], kth_high[j], kth_low[j]);
        }
        let t1 = coordinator.finish_round1();
        let tau = t1 / m as f64;

        // ---------- Round 2 ----------
        let map_tasks: Vec<MapTask<WKey, Payload>> = (0..dataset.num_splits())
            .map(|j| {
                let state = Arc::clone(&state);
                MapTask::new(j, move |ctx| {
                    let remaining: Vec<(u64, f64)> = state.take_wire(j).unwrap_or_default();
                    ctx.charge(remaining.len() as f64);
                    let (send, keep): (Vec<_>, Vec<_>) =
                        remaining.into_iter().partition(|&(_, w)| w.abs() > tau);
                    for &(slot, w) in &send {
                        ctx.emit(WKey::four(slot), payload(0, j, w));
                    }
                    state.save_wire(j, &keep);
                })
            })
            .collect();
        let reduce =
            |key: &WKey,
             vals: &[Payload],
             ctx: &mut wh_mapreduce::ReduceContext<(u64, u8, u32, f64)>| {
                ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
                for v in vals {
                    let (flags, split, w) = v.value;
                    ctx.emit((key.id, flags, split, w));
                }
            };
        // T₁/m rides the Job Configuration: one 8-byte double.
        let out = run_job(
            cluster,
            JobSpec::new("h-wtopk-r2", map_tasks, reduce)
                .with_radix_keys()
                .with_wire_codec()
                .with_state_store(Arc::clone(&state))
                .with_engine(engine)
                .with_broadcast(8),
        );
        metrics.absorb(&out.metrics);
        let mut per_node: Vec<Vec<(u64, f64)>> = vec![Vec::new(); m];
        for (slot, _flags, split, w) in out.outputs {
            per_node[split as usize].push((slot, w));
        }
        for (j, pairs) in per_node.iter().enumerate() {
            coordinator.absorb_round2(j, pairs);
        }
        let (_t2, candidates) = coordinator.finish_round2();

        // ---------- Round 3 ----------
        let candidate_set: Arc<FxHashSet<u64>> = Arc::new(candidates.iter().copied().collect());
        let map_tasks: Vec<MapTask<WKey, Payload>> = (0..dataset.num_splits())
            .map(|j| {
                let state = Arc::clone(&state);
                let cands = Arc::clone(&candidate_set);
                MapTask::new(j, move |ctx| {
                    let remaining: Vec<(u64, f64)> = state.take_wire(j).unwrap_or_default();
                    ctx.charge(remaining.len() as f64);
                    for &(slot, w) in &remaining {
                        if cands.contains(&slot) {
                            ctx.emit(WKey::four(slot), payload(0, j, w));
                        }
                    }
                })
            })
            .collect();
        let reduce =
            |key: &WKey,
             vals: &[Payload],
             ctx: &mut wh_mapreduce::ReduceContext<(u64, u8, u32, f64)>| {
                ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
                for v in vals {
                    let (flags, split, w) = v.value;
                    ctx.emit((key.id, flags, split, w));
                }
            };
        // R rides the Distributed Cache: 4 bytes per candidate id.
        let out = run_job(
            cluster,
            JobSpec::new("h-wtopk-r3", map_tasks, reduce)
                .with_radix_keys()
                .with_wire_codec()
                .with_state_store(Arc::clone(&state))
                .with_engine(engine)
                .with_broadcast(4 * candidates.len() as u64),
        );
        metrics.absorb(&out.metrics);
        let mut per_node: Vec<Vec<(u64, f64)>> = vec![Vec::new(); m];
        for (slot, _flags, split, w) in out.outputs {
            per_node[split as usize].push((slot, w));
        }
        for (j, pairs) in per_node.iter().enumerate() {
            coordinator.absorb_round3(j, pairs);
        }

        let topk = coordinator.finish();
        let histogram = WaveletHistogram::new(domain, topk);
        BuildResult { histogram, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::Centralized;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    fn build_both(log_u: u32, n: u64, m: u32, k: usize) -> (BuildResult, BuildResult) {
        let ds = DatasetBuilder::new()
            .domain(Domain::new(log_u).unwrap())
            .records(n)
            .splits(m)
            .seed(0xbeef)
            .build();
        let cluster = ClusterConfig::paper_cluster();
        (
            HWTopk::new().build(&ds, &cluster, k),
            Centralized::new().build(&ds, &cluster, k),
        )
    }

    #[test]
    fn exact_on_various_shapes() {
        for (log_u, n, m, k) in [
            (6u32, 3_000u64, 4u32, 5usize),
            (10, 8_000, 7, 12),
            (8, 2_000, 16, 3),
        ] {
            let (hw, oracle) = build_both(log_u, n, m, k);
            assert_eq!(
                hw.histogram.coefficients().len(),
                oracle.histogram.coefficients().len(),
                "({log_u},{n},{m},{k})"
            );
            for (a, b) in hw
                .histogram
                .coefficients()
                .iter()
                .zip(oracle.histogram.coefficients())
            {
                assert_eq!(a.0, b.0, "slot mismatch ({log_u},{n},{m},{k})");
                assert!((a.1 - b.1).abs() < 1e-6, "value mismatch at slot {}", a.0);
            }
        }
    }

    #[test]
    fn three_rounds_with_broadcast() {
        let (hw, _) = build_both(8, 4_000, 6, 8);
        assert_eq!(hw.metrics.rounds, 3);
        // Round 2 broadcasts T1/m (8 bytes) and round 3 the candidate ids.
        assert!(hw.metrics.broadcast_bytes >= 8);
    }

    fn assert_same_histogram(
        a: &crate::histogram::WaveletHistogram,
        b: &crate::histogram::WaveletHistogram,
    ) {
        // Distributed sums differ from the centralized transform by float
        // associativity only.
        assert_eq!(a.len(), b.len());
        for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
            assert_eq!(x.0, y.0, "slot mismatch");
            assert!(
                (x.1 - y.1).abs() < 1e-6 * (1.0 + y.1.abs()),
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn k_one() {
        let (hw, oracle) = build_both(7, 2_000, 3, 1);
        assert_same_histogram(&hw.histogram, &oracle.histogram);
    }

    #[test]
    fn more_splits_than_distinct_coefficients() {
        // Tiny domain spread over many splits exercises nodes with fewer
        // than k local coefficients.
        let (hw, oracle) = build_both(3, 1_000, 10, 6);
        assert_same_histogram(&hw.histogram, &oracle.histogram);
    }
}
