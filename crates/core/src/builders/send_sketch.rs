//! Send-Sketch: the GCS sketching baseline (§4, choice (ii)).
//!
//! Each mapper builds the local frequency vector first and then feeds each
//! *distinct* key into the Group-Count Sketch once (the paper's first
//! optimisation), emits the non-zero sketch counters (the second
//! optimisation), and the reducer merges the `m` sketches — they are
//! linear — and extracts the top-k by hierarchical descent. This resolves
//! the multi-round and communication issues of the exact methods but still
//! scans every record, and its per-key update cost
//! (`(log u + 1) · levels · rows` row-updates) is why the paper measures
//! it as the slowest method by far.

use std::sync::Arc;

use parking_lot::Mutex;

use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::wire::WKey;
use wh_mapreduce::{run_job, ClusterConfig, EngineConfig, JobSpec, MapTask};
use wh_sketch::{GcsParams, GroupCountSketch};
use wh_wavelet::hash::FxHashMap;

/// The Send-Sketch builder (GCS).
#[derive(Debug, Clone, Copy)]
pub struct SendSketch {
    seed: u64,
    /// Override for the sketch parameters; `None` = paper default
    /// (GCS-8 at 20 KB·log₂u).
    params: Option<GcsParams>,
    engine: EngineConfig,
}

impl SendSketch {
    /// GCS Send-Sketch with the paper's default sizing.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            params: None,
            engine: EngineConfig::default(),
        }
    }

    /// Overrides the sketch parameters (branching-factor ablations).
    pub fn with_params(mut self, params: GcsParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    fn params_for(&self, dataset: &Dataset) -> GcsParams {
        self.params
            .unwrap_or_else(|| GcsParams::paper_default(dataset.domain(), self.seed))
    }
}

impl HistogramBuilder for SendSketch {
    fn name(&self) -> &'static str {
        "Send-Sketch"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        let params = self.params_for(dataset);

        let map_tasks: Vec<MapTask<WKey, f64>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let meta = ds.split_meta(j);
                    ctx.note_read(meta.records, meta.bytes);
                    let mut local: FxHashMap<u64, u64> = FxHashMap::default();
                    for r in ds.scan_split(j) {
                        *local.entry(r.key).or_insert(0) += 1;
                    }
                    ctx.charge(meta.records as f64 * (ops::RECORD_SCAN + ops::HASH_UPSERT));
                    let mut sketch = GroupCountSketch::new(domain, params);
                    let mut row_updates = 0u64;
                    for (&x, &c) in &local {
                        row_updates += sketch.update_key(x, c as f64);
                    }
                    ctx.charge(row_updates as f64 * ops::SKETCH_ROW_UPDATE);
                    // Emit only the non-zero counters (sketch entries are
                    // 8-byte doubles keyed by a 4-byte counter index).
                    for (idx, v) in sketch.counter_entries() {
                        ctx.emit(WKey::four(idx), v);
                    }
                })
            })
            .collect();

        let merged: Arc<Mutex<GroupCountSketch>> =
            Arc::new(Mutex::new(GroupCountSketch::new(domain, params)));
        // Keys are global GCS counter indices in [0, total_counters):
        // the sketch never emits an index beyond its own size, so this is
        // the tight exclusive bound (and far smaller than `u`, which
        // keeps the dense-reduce slot arrays tiny).
        let counter_domain = merged.lock().total_counters() as u64;
        let merged_reduce = Arc::clone(&merged);
        let reduce =
            move |key: &WKey, vals: &[f64], ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
                ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
                merged_reduce.lock().add_counter(key.id, vals.iter().sum());
            };
        let merged_finish = Arc::clone(&merged);
        let spec = JobSpec::new("send-sketch", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(self.engine.with_key_domain(counter_domain))
            .with_finish(move |ctx| {
                let sketch = merged_finish.lock();
                let budget = 8 * k.max(1) * domain.log_u().max(1) as usize;
                let top = sketch.topk(k, budget);
                // Best-first descent: each expansion probes `branching` child
                // groups over `rows` rows of `subbuckets` counters.
                ctx.charge(
                    budget as f64
                        * params.branching as f64
                        * params.rows as f64
                        * params.subbuckets as f64,
                );
                for e in top {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = run_job(cluster, spec);
        let histogram = WaveletHistogram::new(domain, out.outputs);
        BuildResult {
            histogram,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::Centralized;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    fn ds() -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(10).unwrap())
            .records(30_000)
            .splits(6)
            .seed(99)
            .build()
    }

    #[test]
    fn finds_most_of_the_true_topk() {
        let cluster = ClusterConfig::paper_cluster();
        let k = 10;
        let exact = Centralized::new().build(&ds(), &cluster, k);
        let sketch = SendSketch::new(4).build(&ds(), &cluster, k);
        let truth: std::collections::BTreeSet<u64> = exact
            .histogram
            .coefficients()
            .iter()
            .map(|&(s, _)| s)
            .collect();
        let found = sketch
            .histogram
            .coefficients()
            .iter()
            .filter(|&&(s, _)| truth.contains(&s))
            .count();
        assert!(
            found >= k / 2,
            "only {found}/{k} true coefficients recovered"
        );
    }

    #[test]
    fn sketch_cpu_cost_dominates() {
        // The paper's observation: Send-Sketch burns far more CPU than
        // Send-V on the same scan.
        let cluster = ClusterConfig::paper_cluster();
        let sv = super::super::SendV::new().build(&ds(), &cluster, 10);
        let sk = SendSketch::new(4).build(&ds(), &cluster, 10);
        assert!(
            sk.metrics.cpu_ops > 5.0 * sv.metrics.cpu_ops,
            "sketch {} ops vs send-v {} ops",
            sk.metrics.cpu_ops,
            sv.metrics.cpu_ops
        );
    }

    #[test]
    fn custom_params_respected() {
        let params = GcsParams {
            branching: 4,
            rows: 3,
            buckets: 64,
            subbuckets: 8,
            seed: 5,
        };
        let r =
            SendSketch::new(5)
                .with_params(params)
                .build(&ds(), &ClusterConfig::paper_cluster(), 5);
        assert!(!r.histogram.is_empty());
    }
}
