//! TwoLevel-S: the paper's main contribution on the approximation side
//! (§4, Figs. 3–4, Appendix B).
//!
//! First-level sample per split, then second-level frequency-proportional
//! sampling of the local counts: heavy keys (`s_j(x) ≥ 1/(ε√m)`) ship
//! exactly, light keys ship as bare `(x, NULL)` markers with probability
//! `ε√m·s_j(x)`. The reducer forms the unbiased estimator
//! `ŝ(x) = ρ(x) + M/(ε√m)` (Theorem 1), scales by `1/p`, transforms, and
//! keeps the top-k. Expected communication is `O(√m/ε)` (Theorem 3).

use std::sync::Arc;

use parking_lot::Mutex;

use super::sample_common::first_level_counts;
use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::{Dataset, SplitMix64};
use wh_mapreduce::wire::WKey;
use wh_mapreduce::{
    run_job, ClusterConfig, EngineConfig, JobSpec, MapTask, WireCodec, WireError, WireSize,
};
use wh_sampling::{SamplingConfig, TwoLevelAccumulator, TwoLevelPair};
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::top_k_magnitude;

/// Wire wrapper for [`TwoLevelPair`]: an exact count costs 4 bytes, a bare
/// marker costs nothing beyond its key — matching the paper's accounting
/// where the `√m/ε` marker keys dominate communication at ~4 B each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TlValue(TwoLevelPair);

impl WireSize for TlValue {
    fn wire_bytes(&self) -> u64 {
        match self.0 {
            TwoLevelPair::Count(_) => 4,
            TwoLevelPair::Marker => 0,
        }
    }
}

// Physical encoding for the multi-process engine: a tag byte, plus the
// count for `Count`. (The *accounted* wire size above stays the paper's
// idealized 4 B/0 B — framing overhead is measured separately.)
impl WireCodec for TlValue {
    fn encode_wire(&self, out: &mut Vec<u8>) {
        match self.0 {
            TwoLevelPair::Count(n) => {
                out.push(1);
                n.encode_wire(out);
            }
            TwoLevelPair::Marker => out.push(0),
        }
    }

    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_wire(input)? {
            0 => Ok(TlValue(TwoLevelPair::Marker)),
            1 => Ok(TlValue(TwoLevelPair::Count(u64::decode_wire(input)?))),
            _ => Err(WireError::Invalid("two-level pair tag")),
        }
    }
}

/// The TwoLevel-S sampling builder.
#[derive(Debug, Clone, Copy)]
pub struct TwoLevelS {
    epsilon: f64,
    seed: u64,
    threshold_exponent: f64,
    engine: EngineConfig,
}

impl TwoLevelS {
    /// Two-level sampling with error parameter `ε` and a sampling seed.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        Self {
            epsilon,
            seed,
            threshold_exponent: 0.5,
            engine: EngineConfig::default(),
        }
    }

    /// Overrides the second-level threshold exponent γ (default ½ — the
    /// paper's `1/(ε√m)`). Exposed for the DESIGN.md ablation showing the
    /// √m choice is the communication sweet spot.
    pub fn with_threshold_exponent(mut self, gamma: f64) -> Self {
        self.threshold_exponent = gamma;
        self
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// The effective sampling configuration for `dataset`.
    pub fn config_for(&self, dataset: &Dataset) -> SamplingConfig {
        SamplingConfig::new(self.epsilon, dataset.num_splits(), dataset.num_records())
            .with_threshold_exponent(self.threshold_exponent)
    }
}

impl HistogramBuilder for TwoLevelS {
    fn name(&self) -> &'static str {
        "TwoLevel-S"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        let cfg = self.config_for(dataset);
        let key_bytes = dataset.key_bytes() as u8;
        let seed = self.seed;

        let map_tasks: Vec<MapTask<WKey, TlValue>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let (counts, _t_j) = first_level_counts(&ds, &cfg, j, seed, ctx);
                    // Independent second-level draws per split.
                    let mut rng = SplitMix64::new(seed ^ 0x2e2e ^ (u64::from(j) << 32));
                    ctx.charge(counts.len() as f64);
                    for (x, pair) in wh_sampling::two_level::emit(&counts, &cfg, &mut rng) {
                        ctx.emit(WKey::new(x, key_bytes), TlValue(pair));
                    }
                })
            })
            .collect();

        let s: Arc<Mutex<FxHashMap<u64, TwoLevelAccumulator>>> =
            Arc::new(Mutex::new(FxHashMap::default()));
        let s_reduce = Arc::clone(&s);
        let reduce = move |key: &WKey,
                           vals: &[TlValue],
                           ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
            ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
            let mut acc = TwoLevelAccumulator::default();
            for v in vals {
                acc.absorb(v.0);
            }
            s_reduce.lock().insert(key.id, acc);
        };
        let s_finish = Arc::clone(&s);
        // Sampled item keys live in [0, u); `u` is the tightest static
        // bound (second-level draws are data-dependent), and the
        // dense-reduce tables shrink to each partition's actual key range
        // at run time, so the loose-looking hint costs nothing.
        let spec = JobSpec::new("two-level-s", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(self.engine.with_key_domain(domain.u()))
            .with_finish(move |ctx| {
                let s = s_finish.lock();
                // Iterate the shared accumulator in key order: with parallel reduce
                // partitions, hash-map layout depends on racy cross-partition
                // insertion interleaving, and float accumulation must not.
                let mut entries: Vec<(u64, f64)> = s
                    .iter()
                    .map(|(&x, acc)| (x, acc.estimate_v(&cfg)))
                    .collect();
                entries.sort_unstable_by_key(|&(x, _)| x);
                let coefs = wh_wavelet::sparse::sparse_transform(domain, entries.iter().copied());
                ctx.charge(s.len() as f64 * (domain.log_u() + 1) as f64 * ops::COEF_UPDATE);
                ctx.charge(coefs.len() as f64 * ops::HEAP_OFFER);
                for e in top_k_magnitude(coefs, k) {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = run_job(cluster, spec);
        let histogram = WaveletHistogram::new(domain, out.outputs);
        BuildResult {
            histogram,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::ImprovedS;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    fn ds(splits: u32) -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(10).unwrap())
            .records(60_000)
            .splits(splits)
            .seed(55)
            .build()
    }

    #[test]
    fn communication_scales_like_sqrt_m_over_eps() {
        let eps = 0.02;
        let cluster = ClusterConfig::paper_cluster();
        let result = TwoLevelS::new(eps, 2).build(&ds(25), &cluster, 8);
        // Theorem 3: expected emitted keys ≤ 2·√m/ε = 500.
        let bound = 2.0 * 5.0 / eps;
        assert!(
            (result.metrics.map_output_pairs as f64) < bound * 1.3,
            "pairs {} vs bound {bound}",
            result.metrics.map_output_pairs
        );
    }

    #[test]
    fn beats_improved_on_many_splits() {
        // The √m separation: with m = 64 splits TwoLevel should emit
        // clearly less than Improved on heavy-tailed data.
        let eps = 0.015;
        let cluster = ClusterConfig::paper_cluster();
        let d = ds(64);
        let improved = ImprovedS::new(eps, 2).build(&d, &cluster, 8);
        let two = TwoLevelS::new(eps, 2).build(&d, &cluster, 8);
        assert!(
            two.metrics.shuffle_bytes < improved.metrics.shuffle_bytes,
            "TwoLevel {} vs Improved {}",
            two.metrics.shuffle_bytes,
            improved.metrics.shuffle_bytes
        );
    }

    #[test]
    fn unbiased_total_mass() {
        // Average over several sampling seeds should approach n.
        let cluster = ClusterConfig::paper_cluster();
        let d = ds(16);
        let mut total = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let r = TwoLevelS::new(0.02, seed).build(&d, &cluster, 256);
            total += r.histogram.range_sum(0, 1023);
        }
        let mean = total / runs as f64;
        assert!(
            (mean - 60_000.0).abs() < 6_000.0,
            "mean total {mean}, want ≈ 60000"
        );
    }

    #[test]
    fn one_round_only() {
        let r = TwoLevelS::new(0.05, 1).build(&ds(9), &ClusterConfig::paper_cluster(), 8);
        assert_eq!(r.metrics.rounds, 1);
        assert_eq!(r.metrics.broadcast_bytes, 0);
    }
}
