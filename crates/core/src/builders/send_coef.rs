//! Send-Coef: the second exact baseline (§3) — ship local wavelet
//! coefficients instead of local frequency vectors.
//!
//! Because the transform is linear, `w_i = Σ_j w_{i,j}`; each mapper
//! transforms its split and emits every non-zero local coefficient. The
//! paper's Fig. 12 shows why this loses to Send-V: each key touches
//! `log u + 1` coefficients, so the number of non-zero local coefficients
//! is almost always much larger than the number of distinct keys.

use std::sync::Arc;

use parking_lot::Mutex;

use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::wire::WKey;
use wh_mapreduce::{run_job, ClusterConfig, EngineConfig, JobSpec, MapTask};
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::top_k_magnitude;

/// The Send-Coef baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendCoef {
    engine: EngineConfig,
}

impl SendCoef {
    /// Creates the builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

impl HistogramBuilder for SendCoef {
    fn name(&self) -> &'static str {
        "Send-Coef"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        // Coefficient indices ride in 4-byte keys (domain ≤ 2^32 in the
        // experiments); values are 8-byte doubles (§5 setup).
        let map_tasks: Vec<MapTask<WKey, f64>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let meta = ds.split_meta(j);
                    ctx.note_read(meta.records, meta.bytes);
                    let mut local: FxHashMap<u64, u64> = FxHashMap::default();
                    for r in ds.scan_split(j) {
                        *local.entry(r.key).or_insert(0) += 1;
                    }
                    ctx.charge(meta.records as f64 * (ops::RECORD_SCAN + ops::HASH_UPSERT));
                    let coefs = wh_wavelet::sparse::sparse_transform(
                        domain,
                        local.iter().map(|(&x, &c)| (x, c as f64)),
                    );
                    ctx.charge(local.len() as f64 * (domain.log_u() + 1) as f64 * ops::COEF_UPDATE);
                    let mut slots: Vec<u64> = coefs.keys().copied().collect();
                    slots.sort_unstable();
                    for slot in slots {
                        ctx.emit(WKey::four(slot), coefs[&slot]);
                    }
                })
            })
            .collect();

        let acc: Arc<Mutex<FxHashMap<u64, f64>>> = Arc::new(Mutex::new(FxHashMap::default()));
        let acc_reduce = Arc::clone(&acc);
        let reduce =
            move |key: &WKey, vals: &[f64], ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
                ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
                acc_reduce.lock().insert(key.id, vals.iter().sum());
            };
        let acc_finish = Arc::clone(&acc);
        // Coefficient indices live in [0, u) and the sparse transform can
        // emit any of them, so `u` is the tight exclusive bound: radix
        // keys + bounded domain select the dense-reduce strategy, whose
        // per-partition tables size themselves to each partition's actual
        // key range (hash partitioning spreads [0, u) across reducers).
        let spec = JobSpec::new("send-coef", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(self.engine.with_key_domain(domain.u()))
            .with_finish(move |ctx| {
                let w = acc_finish.lock();
                // Iterate the shared accumulator in key order: with parallel reduce
                // partitions, hash-map layout depends on racy cross-partition
                // insertion interleaving, and float accumulation must not.
                let mut entries: Vec<(u64, f64)> = w.iter().map(|(&s, &c)| (s, c)).collect();
                entries.sort_unstable_by_key(|&(s, _)| s);
                ctx.charge(w.len() as f64 * ops::HEAP_OFFER);
                for e in top_k_magnitude(entries.iter().copied(), k) {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = run_job(cluster, spec);
        let histogram = WaveletHistogram::new(domain, out.outputs);
        BuildResult {
            histogram,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    #[test]
    fn coefficient_pairs_cost_twelve_bytes() {
        let ds = DatasetBuilder::new()
            .domain(Domain::new(6).unwrap())
            .records(2_000)
            .splits(3)
            .build();
        let result = SendCoef::new().build(&ds, &ClusterConfig::paper_cluster(), 6);
        assert_eq!(
            result.metrics.shuffle_bytes,
            result.metrics.map_output_pairs * 12
        );
    }

    #[test]
    fn emits_more_pairs_than_send_v_on_large_domains() {
        // The paper's Fig. 12 effect: local coefficient count exceeds
        // distinct-key count once u is large relative to split size.
        let ds = DatasetBuilder::new()
            .domain(Domain::new(14).unwrap())
            .records(4_000)
            .splits(4)
            .build();
        let cluster = ClusterConfig::paper_cluster();
        let coef = SendCoef::new().build(&ds, &cluster, 6);
        let sv = super::super::SendV::new().build(&ds, &cluster, 6);
        assert!(
            coef.metrics.map_output_pairs > sv.metrics.map_output_pairs,
            "coef pairs {} vs v pairs {}",
            coef.metrics.map_output_pairs,
            sv.metrics.map_output_pairs
        );
    }
}
