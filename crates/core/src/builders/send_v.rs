//! Send-V: the exact baseline that ships local frequency vectors (§3).
//!
//! Each mapper builds the local frequency vector `v_j` of its split with a
//! hash map and emits one `(x, v_j(x))` pair per distinct key (this *is*
//! the Combine optimisation; a naive mapper would emit `(x, 1)` per
//! record). The single reducer aggregates `v = Σ v_j`, transforms, and
//! keeps the top-k. Communication is `O(m·u)` in the worst case — the
//! drawback motivating H-WTopk.

use std::sync::Arc;

use parking_lot::Mutex;

use super::{ops, BuildResult, HistogramBuilder};
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_mapreduce::wire::{Sized as WSized, WKey};
use wh_mapreduce::{run_job, ClusterConfig, EngineConfig, JobSpec, MapTask};
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::top_k_magnitude;

/// The Send-V baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendV {
    engine: EngineConfig,
}

impl SendV {
    /// Creates the builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

impl HistogramBuilder for SendV {
    fn name(&self) -> &'static str {
        "Send-V"
    }

    fn build(&self, dataset: &Dataset, cluster: &ClusterConfig, k: usize) -> BuildResult {
        let domain = dataset.domain();
        let key_bytes = dataset.key_bytes() as u8;

        // Mapper: aggregate the split into v_j, emit (x, v_j(x)).
        // Counts are 4-byte integers mapper-side (§5 setup).
        let map_tasks: Vec<MapTask<WKey, WSized<u64>>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let meta = ds.split_meta(j);
                    ctx.note_read(meta.records, meta.bytes);
                    let mut local: FxHashMap<u64, u64> = FxHashMap::default();
                    for r in ds.scan_split(j) {
                        *local.entry(r.key).or_insert(0) += 1;
                    }
                    ctx.charge(meta.records as f64 * (ops::RECORD_SCAN + ops::HASH_UPSERT));
                    let mut keys: Vec<u64> = local.keys().copied().collect();
                    keys.sort_unstable();
                    for x in keys {
                        ctx.emit(WKey::new(x, key_bytes), WSized::new(local[&x], 4));
                    }
                })
            })
            .collect();

        // Reducer: v(x) = Σ v_j(x) (8-byte accumulators reducer-side), then
        // transform + top-k in Close.
        let v: Arc<Mutex<FxHashMap<u64, u64>>> = Arc::new(Mutex::new(FxHashMap::default()));
        let v_reduce = Arc::clone(&v);
        let reduce = move |key: &WKey,
                           vals: &[WSized<u64>],
                           ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
            let total: u64 = vals.iter().map(|s| s.value).sum();
            ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
            v_reduce.lock().insert(key.id, total);
        };
        let v_finish = Arc::clone(&v);
        // Item keys live in [0, u) and any item can occur, so `u` is the
        // tight exclusive bound: radix keys + bounded domain select the
        // dense-reduce strategy, whose per-partition tables size
        // themselves to each partition's actual key range.
        let spec = JobSpec::new("send-v", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(self.engine.with_key_domain(domain.u()))
            .with_finish(move |ctx| {
                let v = v_finish.lock();
                // Iterate the shared accumulator in key order: with parallel reduce
                // partitions, hash-map layout depends on racy cross-partition
                // insertion interleaving, and float accumulation must not.
                let mut entries: Vec<(u64, u64)> = v.iter().map(|(&x, &c)| (x, c)).collect();
                entries.sort_unstable_by_key(|&(x, _)| x);
                // Sparse transform at the reducer: O(|v| log u).
                let coefs = wh_wavelet::sparse::sparse_transform(
                    domain,
                    entries.iter().map(|&(x, c)| (x, c as f64)),
                );
                ctx.charge(v.len() as f64 * (domain.log_u() + 1) as f64 * ops::COEF_UPDATE);
                ctx.charge(coefs.len() as f64 * ops::HEAP_OFFER);
                for e in top_k_magnitude(coefs, k) {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = run_job(cluster, spec);
        let histogram = WaveletHistogram::new(domain, out.outputs);
        BuildResult {
            histogram,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_data::DatasetBuilder;
    use wh_wavelet::Domain;

    #[test]
    fn communication_counts_distinct_keys_per_split() {
        // Two splits with disjoint tiny key sets: shuffle bytes must equal
        // distinct pairs × (4 + 4).
        let ds = DatasetBuilder::new()
            .domain(Domain::new(4).unwrap())
            .records(1_000)
            .splits(2)
            .seed(11)
            .build();
        let result = SendV::new().build(&ds, &ClusterConfig::paper_cluster(), 4);
        let pairs = result.metrics.map_output_pairs;
        assert_eq!(result.metrics.shuffle_bytes, pairs * 8);
        // ≤ m × u pairs.
        assert!(pairs <= 2 * 16);
        assert_eq!(result.metrics.records_scanned, 1_000);
    }

    #[test]
    fn respects_key_width() {
        let ds = DatasetBuilder::new()
            .domain(Domain::new(4).unwrap())
            .records(100)
            .splits(1)
            .key_bytes(8)
            .record_bytes(8)
            .build();
        let result = SendV::new().build(&ds, &ClusterConfig::paper_cluster(), 4);
        let pairs = result.metrics.map_output_pairs;
        assert_eq!(result.metrics.shuffle_bytes, pairs * 12); // 8B key + 4B count
    }
}
