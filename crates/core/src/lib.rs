//! # wh-core — wavelet histograms on MapReduce
//!
//! The public API of this workspace: build the best-`k`-term Haar wavelet
//! histogram of a large, split-partitioned dataset with any of the paper's
//! algorithms, and query/evaluate the result.
//!
//! ```
//! use wh_core::builders::{HistogramBuilder, TwoLevelS, SendV};
//! use wh_core::evaluate::Evaluator;
//! use wh_data::Dataset;
//! use wh_mapreduce::ClusterConfig;
//!
//! let dataset = Dataset::zipf(12, 1.1, 100_000, 8);
//! let cluster = ClusterConfig::paper_cluster();
//!
//! // Exact baseline…
//! let exact = SendV::new().build(&dataset, &cluster, 16);
//! // …and the paper's one-round sampling algorithm.
//! let approx = TwoLevelS::new(1e-2, 42).build(&dataset, &cluster, 16);
//!
//! assert!(approx.metrics.total_comm_bytes() < exact.metrics.total_comm_bytes());
//!
//! // Query the histogram and measure its quality.
//! let estimate = approx.histogram.range_sum(0, 1023);
//! assert!(estimate >= 0.0 || estimate < 0.0); // finite
//! let eval = Evaluator::new(&dataset);
//! assert!(eval.sse(&approx.histogram) >= eval.ideal_sse(16) * 0.99);
//! ```
//!
//! ## The builders (§3, §4 of the paper)
//!
//! | Builder | Kind | Rounds | Communication |
//! |---|---|---|---|
//! | [`builders::Centralized`] | exact oracle | — | — |
//! | [`builders::SendV`] | exact baseline | 1 | `O(m·u)` |
//! | [`builders::SendCoef`] | exact baseline | 1 | `O(m·u)` |
//! | [`builders::HWTopk`] | exact | 3 | two-sided TPUT pruning |
//! | [`builders::BasicS`] | sampling | 1 | `O(1/ε²)` |
//! | [`builders::ImprovedS`] | sampling (biased) | 1 | `O(m/ε)` |
//! | [`builders::TwoLevelS`] | sampling (unbiased) | 1 | `O(√m/ε)` |
//! | [`builders::SendSketch`] | GCS sketch | 1 | sketch size × m |

pub mod builders;
pub mod evaluate;
pub mod histogram;
pub mod incremental;
pub mod twod;

pub use builders::{BuildResult, HistogramBuilder};
pub use histogram::WaveletHistogram;
pub use incremental::MaintainedHistogram;
