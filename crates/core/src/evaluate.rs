//! Quality evaluation: the SSE metric of the paper's experiments.
//!
//! The paper measures the sum of squared errors between the frequency
//! vector reconstructed from a histogram and the true frequency vector
//! (§5, Figs. 6–7, 9, 15, 18–19). Since the transform is orthonormal,
//! that equals the coefficient-space error (Parseval), which is what the
//! [`Evaluator`] computes against the exact dense coefficients.

use crate::builders::Centralized;
use crate::histogram::WaveletHistogram;
use wh_data::Dataset;
use wh_wavelet::select::CoefEntry;
use wh_wavelet::sse;

/// Caches the exact coefficients of a dataset and evaluates histograms
/// against them.
#[derive(Debug, Clone)]
pub struct Evaluator {
    exact: Vec<f64>,
    energy: f64,
}

impl Evaluator {
    /// Computes the ground truth for `dataset` (one full scan).
    pub fn new(dataset: &Dataset) -> Self {
        let exact = Centralized::exact_coefficients(dataset);
        let energy = exact.iter().map(|w| w * w).sum();
        Self { exact, energy }
    }

    /// Builds an evaluator from precomputed exact coefficients.
    pub fn from_exact(exact: Vec<f64>) -> Self {
        let energy = exact.iter().map(|w| w * w).sum();
        Self { exact, energy }
    }

    /// The exact dense coefficient vector.
    pub fn exact_coefficients(&self) -> &[f64] {
        &self.exact
    }

    /// Total signal energy `‖v‖²`.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// SSE of `histogram` against the true frequency vector.
    pub fn sse(&self, histogram: &WaveletHistogram) -> f64 {
        let retained: Vec<CoefEntry> = histogram
            .coefficients()
            .iter()
            .map(|&(slot, value)| CoefEntry { slot, value })
            .collect();
        sse::sse_against_exact(&self.exact, &retained)
    }

    /// The ideal SSE of any k-term representation.
    pub fn ideal_sse(&self, k: usize) -> f64 {
        sse::ideal_sse(&self.exact, k)
    }

    /// SSE as a fraction of total energy.
    pub fn relative_sse(&self, histogram: &WaveletHistogram) -> f64 {
        sse::relative_sse(self.sse(histogram), self.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{Centralized, HistogramBuilder, ImprovedS, TwoLevelS};
    use wh_data::DatasetBuilder;
    use wh_mapreduce::ClusterConfig;
    use wh_wavelet::Domain;

    fn ds() -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(9).unwrap())
            .records(50_000)
            .splits(10)
            .seed(123)
            .build()
    }

    #[test]
    fn exact_histogram_achieves_ideal_sse() {
        let d = ds();
        let eval = Evaluator::new(&d);
        let k = 16;
        let exact = Centralized::new().build(&d, &ClusterConfig::paper_cluster(), k);
        let sse = eval.sse(&exact.histogram);
        let ideal = eval.ideal_sse(k);
        assert!(
            (sse - ideal).abs() <= 1e-6 * ideal.max(1.0),
            "{sse} vs ideal {ideal}"
        );
    }

    #[test]
    fn sse_decreases_with_k() {
        let d = ds();
        let eval = Evaluator::new(&d);
        let cluster = ClusterConfig::paper_cluster();
        let mut prev = f64::INFINITY;
        for k in [5, 10, 20, 40] {
            let h = Centralized::new().build(&d, &cluster, k);
            let s = eval.sse(&h.histogram);
            assert!(s <= prev + 1e-9, "k={k}");
            prev = s;
        }
    }

    #[test]
    fn two_level_sse_close_to_ideal_and_better_than_improved() {
        // The paper's headline quality result (Fig. 6): TwoLevel-S tracks
        // the ideal SSE; Improved-S trails it.
        let d = ds();
        let eval = Evaluator::new(&d);
        let cluster = ClusterConfig::paper_cluster();
        let k = 20;
        let eps = 0.01;
        let two = TwoLevelS::new(eps, 9).build(&d, &cluster, k);
        let imp = ImprovedS::new(eps, 9).build(&d, &cluster, k);
        let ideal = eval.ideal_sse(k);
        let sse_two = eval.sse(&two.histogram);
        let sse_imp = eval.sse(&imp.histogram);
        assert!(
            sse_two < sse_imp,
            "TwoLevel {sse_two} vs Improved {sse_imp}"
        );
        assert!(sse_two >= ideal * 0.999, "SSE cannot beat the ideal");
        // At this scale sampling noise dominates the (tiny) ideal SSE; the
        // meaningful bound is relative to the signal energy (the paper's
        // "<1% of the original dataset's energy" framing).
        assert!(
            eval.relative_sse(&two.histogram) < 0.05,
            "TwoLevel relative SSE {} too large",
            eval.relative_sse(&two.histogram)
        );
    }

    #[test]
    fn relative_sse_is_small_fraction_for_exact() {
        let d = ds();
        let eval = Evaluator::new(&d);
        let h = Centralized::new().build(&d, &ClusterConfig::paper_cluster(), 30);
        // Zipf(1.1) compresses well: top-30 capture most of the energy.
        assert!(eval.relative_sse(&h.histogram) < 0.2);
    }
}
