//! Incrementally maintained wavelet histograms: the delta-build path.
//!
//! A [`MaintainedHistogram`] wraps `wh-wavelet`'s
//! [`IncrementalTransform`] — exact integer leaf counts plus the dense
//! pass's running averages, recomputed only along dirty paths — and
//! re-selects the top-`k` on demand. Its [`snapshot`](MaintainedHistogram::snapshot)
//! is **bit-identical** to what [`crate::builders::Centralized`] would
//! build from scratch on the concatenated data, whatever order the deltas
//! arrived in, so the serving tier can publish delta-merged snapshots
//! without giving up the exact builders' differential guarantees.
//!
//! The freshness loop this enables (see `docs/architecture.md`,
//! "Incremental maintenance"):
//!
//! ```text
//! new segment ──▶ MaintainedHistogram::merge_delta   O(d·log u)
//!                        │ snapshot()                O(D + k·heap)
//!                        ▼
//!                 WaveletHistogram ──▶ CompiledHistogram::compile
//!                        │                            O(k·log u)
//!                        ▼
//!                 ServeTier::try_publish ──▶ epoch swap
//! ```
//!
//! versus a full rebuild's `O(n + u)` scan-and-transform per batch.

use wh_data::Dataset;
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::{Domain, IncrementalTransform};

use crate::histogram::WaveletHistogram;

/// A wavelet histogram kept current under streaming data arrivals.
///
/// Holds the full non-zero coefficient set (not just the top `k`), which
/// is what makes re-selection after a delta exact: a delta can shrink the
/// k-th magnitude and let a previously unselected coefficient enter, so
/// selection must scan the whole non-zero set.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintainedHistogram {
    transform: IncrementalTransform,
    k: usize,
}

impl MaintainedHistogram {
    /// An empty maintained histogram over `domain`, snapshotting the best
    /// `k` terms.
    pub fn new(domain: Domain, k: usize) -> Self {
        Self {
            transform: IncrementalTransform::new(domain),
            k,
        }
    }

    /// Seeds the maintained state from every split of `dataset` — the
    /// "initial build" of the freshness story. The resulting
    /// [`snapshot`](Self::snapshot) is bit-identical to
    /// [`crate::builders::Centralized`] on the same data.
    pub fn from_dataset(dataset: &Dataset, k: usize) -> Self {
        let mut m = Self::new(dataset.domain(), k);
        for j in 0..dataset.num_splits() {
            m.merge_split(dataset, j);
        }
        m
    }

    /// The key domain.
    pub fn domain(&self) -> Domain {
        self.transform.domain()
    }

    /// The snapshot budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total records absorbed so far (what the serving tier publishes as
    /// the dataset's record count).
    pub fn total_records(&self) -> u64 {
        self.transform.total_count()
    }

    /// Distinct keys with a non-zero count.
    pub fn distinct_keys(&self) -> usize {
        self.transform.distinct_keys()
    }

    /// Read-only view of the maintained transform.
    pub fn transform(&self) -> &IncrementalTransform {
        &self.transform
    }

    /// Absorbs a delta segment of `(key, additional_count)` pairs in
    /// `O(d·log u)`. Empty deltas are no-ops; merge order never changes
    /// the resulting state.
    ///
    /// # Panics
    ///
    /// Panics when a key lies outside the domain.
    pub fn merge_delta(&mut self, delta: impl IntoIterator<Item = (u64, u64)>) {
        self.transform.apply_delta(delta);
    }

    /// Absorbs a stream of raw record keys (each one occurrence),
    /// pre-aggregating per key so the transform sees each dirty leaf once.
    pub fn merge_keys(&mut self, keys: impl IntoIterator<Item = u64>) {
        let mut agg: FxHashMap<u64, u64> = FxHashMap::default();
        for x in keys {
            *agg.entry(x).or_insert(0) += 1;
        }
        self.transform.apply_delta(agg);
    }

    /// Absorbs one split of `dataset` — the unit new segments arrive in.
    ///
    /// # Panics
    ///
    /// Panics when `split` is out of range or the dataset's domain does
    /// not match.
    pub fn merge_split(&mut self, dataset: &Dataset, split: u32) {
        assert_eq!(
            dataset.domain(),
            self.domain(),
            "dataset domain does not match the maintained histogram"
        );
        self.merge_keys(dataset.scan_split(split).map(|r| r.key));
    }

    /// Re-selects the best `k` terms and materializes the queryable
    /// histogram — bit-identical to a from-scratch exact build
    /// ([`crate::builders::Centralized`]) on the accumulated data.
    pub fn snapshot(&self) -> WaveletHistogram {
        self.snapshot_k(self.k)
    }

    /// [`Self::snapshot`] with an explicit term budget.
    pub fn snapshot_k(&self, k: usize) -> WaveletHistogram {
        WaveletHistogram::new(
            self.domain(),
            self.transform
                .top_coefficients(k)
                .into_iter()
                .map(|e| (e.slot, e.value)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{Centralized, HistogramBuilder};
    use wh_data::DatasetBuilder;
    use wh_mapreduce::ClusterConfig;

    fn dataset(seed: u64, records: u64, splits: u32) -> Dataset {
        DatasetBuilder::new()
            .domain(Domain::new(8).unwrap())
            .distribution(wh_data::Distribution::Zipf { alpha: 1.1 })
            .records(records)
            .splits(splits)
            .seed(seed)
            .build()
    }

    #[test]
    fn from_dataset_is_bit_identical_to_centralized() {
        let ds = dataset(11, 20_000, 6);
        let maintained = MaintainedHistogram::from_dataset(&ds, 24);
        let scratch = Centralized::new().build(&ds, &ClusterConfig::paper_cluster(), 24);
        assert_eq!(maintained.total_records(), ds.num_records());
        let a = maintained.snapshot();
        let b = scratch.histogram;
        assert_eq!(a.len(), b.len());
        for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn split_at_a_time_equals_all_at_once() {
        let ds = dataset(7, 12_000, 5);
        let mut incremental = MaintainedHistogram::new(ds.domain(), 16);
        for j in 0..ds.num_splits() {
            incremental.merge_split(&ds, j);
        }
        let oneshot = MaintainedHistogram::from_dataset(&ds, 16);
        assert_eq!(incremental, oneshot);
        assert_eq!(incremental.snapshot(), oneshot.snapshot());
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let ds = dataset(3, 5_000, 4);
        let mut m = MaintainedHistogram::from_dataset(&ds, 12);
        let before = m.clone();
        m.merge_delta(std::iter::empty());
        m.merge_keys(std::iter::empty());
        assert_eq!(m, before);
        assert_eq!(m.snapshot(), before.snapshot());
    }

    #[test]
    fn snapshot_k_overrides_the_stored_budget() {
        let ds = dataset(9, 8_000, 4);
        let m = MaintainedHistogram::from_dataset(&ds, 8);
        assert_eq!(m.k(), 8);
        assert!(m.snapshot_k(4).len() <= 4);
        assert!(m.snapshot_k(1_000_000).len() >= m.snapshot().len());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_domain_rejected() {
        let ds = dataset(1, 1_000, 2);
        let mut m = MaintainedHistogram::new(Domain::new(4).unwrap(), 8);
        m.merge_split(&ds, 0);
    }
}
