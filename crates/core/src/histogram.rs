//! The `WaveletHistogram` type: a queryable, serialisable k-term Haar
//! wavelet representation of a frequency vector.

use serde::{Deserialize, Serialize};
use wh_topk::{two_sided_topk, InMemoryNode};
use wh_wavelet::select::{sort_by_magnitude, CoefEntry};
use wh_wavelet::tree::ErrorTree;
use wh_wavelet::Domain;

/// A k-term wavelet histogram over the key domain `[u]`.
///
/// Stores the retained coefficients sorted by descending magnitude
/// (ties: ascending slot), which is the order every builder produces.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletHistogram {
    log_u: u32,
    /// `(slot, value)` pairs, 0-based slots (see `wh-wavelet` docs).
    coefs: Vec<(u64, f64)>,
}

// The vendored serde (see vendor/serde) has no derive macro, so the field
// mapping is written out by hand.
impl Serialize for WaveletHistogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("log_u".to_string(), self.log_u.to_value()),
            ("coefs".to_string(), self.coefs.to_value()),
        ])
    }
}

impl Deserialize for WaveletHistogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("WaveletHistogram: missing `{name}`")))
        };
        Ok(Self {
            log_u: u32::from_value(field("log_u")?)?,
            coefs: Vec::from_value(field("coefs")?)?,
        })
    }
}

impl WaveletHistogram {
    /// Builds a histogram from retained coefficients.
    ///
    /// Coefficients are re-sorted into canonical order; zero-valued entries
    /// are dropped; duplicate slots are rejected.
    ///
    /// # Panics
    ///
    /// Panics on duplicate slots or slots outside the domain.
    pub fn new(domain: Domain, coefs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut entries: Vec<CoefEntry> = coefs
            .into_iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|(slot, value)| {
                assert!(slot < domain.u(), "slot {slot} outside {domain}");
                CoefEntry { slot, value }
            })
            .collect();
        sort_by_magnitude(&mut entries);
        for w in entries.windows(2) {
            assert_ne!(
                w[0].slot, w[1].slot,
                "duplicate coefficient slot {}",
                w[0].slot
            );
        }
        // windows(2) only catches adjacent duplicates after magnitude sort;
        // do a full check via a sorted scan of slots.
        let mut slots: Vec<u64> = entries.iter().map(|e| e.slot).collect();
        slots.sort_unstable();
        for w in slots.windows(2) {
            assert_ne!(w[0], w[1], "duplicate coefficient slot {}", w[0]);
        }
        Self {
            log_u: domain.log_u(),
            coefs: entries.into_iter().map(|e| (e.slot, e.value)).collect(),
        }
    }

    /// The key domain.
    pub fn domain(&self) -> Domain {
        Domain::new(self.log_u).expect("stored log_u is valid")
    }

    /// Number of retained coefficients (≤ k; fewer when the signal has
    /// fewer non-zero coefficients).
    pub fn len(&self) -> usize {
        self.coefs.len()
    }

    /// Whether the histogram retains nothing (all-zero signal).
    pub fn is_empty(&self) -> bool {
        self.coefs.is_empty()
    }

    /// Retained `(slot, value)` pairs, descending magnitude.
    pub fn coefficients(&self) -> &[(u64, f64)] {
        &self.coefs
    }

    /// The retained value of `slot`, if any.
    pub fn coefficient(&self, slot: u64) -> Option<f64> {
        self.coefs
            .iter()
            .find(|&&(s, _)| s == slot)
            .map(|&(_, v)| v)
    }

    /// Builds the query-side error tree.
    pub fn tree(&self) -> ErrorTree {
        ErrorTree::new(self.domain(), self.coefs.iter().copied())
    }

    /// Estimated frequency of the (0-based) key `x`.
    pub fn point_estimate(&self, x: u64) -> f64 {
        self.tree().point_estimate(x)
    }

    /// Estimated total frequency of keys in `[lo, hi]` (0-based,
    /// inclusive) — the range-selectivity primitive of Matias et al.
    pub fn range_sum(&self, lo: u64, hi: u64) -> f64 {
        self.tree().range_sum(lo, hi)
    }

    /// Estimated selectivity of `[lo, hi]` relative to `n` records.
    pub fn selectivity(&self, lo: u64, hi: u64, n: u64) -> f64 {
        assert!(n > 0, "selectivity needs a positive record count");
        (self.range_sum(lo, hi) / n as f64).clamp(0.0, 1.0)
    }

    /// Estimated cumulative frequency of keys `0..=x` via the error
    /// tree's root-to-leaf path.
    ///
    /// Each call builds the `O(k)` error tree first (like every query
    /// method on this type); the `O(log u)` walk only pays off on a
    /// retained [`ErrorTree`] or, for serving many queries, a
    /// compile-once `wh-query` `CompiledHistogram`.
    pub fn prefix_sum(&self, x: u64) -> f64 {
        self.tree().prefix_sum(x)
    }

    /// The piecewise-constant reconstruction as ascending `(start, value)`
    /// segments — the histogram's query-optimized form (computed through
    /// a freshly built error tree, `O(k log u)` per call). This is what
    /// the `wh-query` compiler lays out with per-segment prefix sums; see
    /// [`wh_wavelet::tree::ErrorTree::segments`] for the exact contract.
    pub fn segments(&self) -> Vec<(u64, f64)> {
        self.tree().segments()
    }

    /// Reconstructs the full estimated frequency vector (small domains).
    pub fn reconstruct(&self) -> Vec<f64> {
        self.tree().reconstruct()
    }

    /// The energy captured by the retained coefficients, `Σ ŵ_i²`.
    pub fn retained_energy(&self) -> f64 {
        self.coefs.iter().map(|&(_, v)| v * v).sum()
    }

    /// Merges a delta segment's Haar coefficients into this histogram by
    /// linearity of the transform and re-selects the best `k` terms —
    /// the coefficient-space delta-build path for histograms whose full
    /// transform is no longer around (e.g. one shipped by an approximate
    /// builder).
    ///
    /// The base's retained coefficients and the delta's coefficients are
    /// treated as two nodes of the distributed top-k problem the paper
    /// already solves — per-slot scores summing across nodes — and the
    /// re-selection runs `wh-topk`'s exact two-sided algorithm, so the
    /// result is the true magnitude top-`k` of the summed coefficient
    /// sets, with deterministic tie-breaking. An empty delta therefore
    /// reduces to re-selecting `k` of the base's own terms.
    ///
    /// **Exactness caveat:** this is exact *relative to what the base
    /// retains*. Coefficients the base already pruned stay lost, so the
    /// merged histogram approximates the concatenated data unless the base
    /// held every non-zero coefficient. For the maintained, bit-exact path
    /// use `wh_core::incremental::MaintainedHistogram`, which keeps the
    /// full non-zero set.
    ///
    /// # Panics
    ///
    /// Panics when a delta slot lies outside the domain.
    pub fn merge_delta(
        &self,
        delta: impl IntoIterator<Item = (u64, f64)>,
        k: usize,
    ) -> WaveletHistogram {
        let domain = self.domain();
        let base = InMemoryNode::new(self.coefs.iter().copied());
        let delta = InMemoryNode::new(delta.into_iter().inspect(|&(slot, _)| {
            assert!(slot < domain.u(), "delta slot {slot} outside {domain}");
        }));
        let merged = two_sided_topk(&[base, delta], k);
        WaveletHistogram::new(domain, merged.topk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_wavelet::haar::forward;

    fn hist_from_signal(v: &[f64], k: usize) -> (WaveletHistogram, Vec<f64>) {
        let domain = Domain::covering(v.len() as u64).unwrap();
        let w = forward(v);
        let top = wh_wavelet::select::top_k_magnitude(
            w.iter().enumerate().map(|(s, &c)| (s as u64, c)),
            k,
        );
        (
            WaveletHistogram::new(domain, top.iter().map(|e| (e.slot, e.value))),
            w,
        )
    }

    #[test]
    fn canonical_order_and_len() {
        let v: Vec<f64> = (0..32).map(|i| (i % 7) as f64).collect();
        let (h, _) = hist_from_signal(&v, 5);
        assert!(h.len() <= 5);
        for w in h.coefficients().windows(2) {
            assert!(w[0].1.abs() >= w[1].1.abs());
        }
    }

    #[test]
    fn full_retention_reconstructs_exactly() {
        let v: Vec<f64> = (0..16).map(|i| ((i * 5) % 11) as f64).collect();
        let (h, _) = hist_from_signal(&v, 16);
        let back = h.reconstruct();
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
        // Point and range queries agree with reconstruction.
        for x in 0..16u64 {
            assert!((h.point_estimate(x) - v[x as usize]).abs() < 1e-9);
        }
        let total: f64 = v.iter().sum();
        assert!((h.range_sum(0, 15) - total).abs() < 1e-9);
    }

    #[test]
    fn selectivity_clamped_and_scaled() {
        let v = vec![10.0, 0.0, 0.0, 0.0];
        let (h, _) = hist_from_signal(&v, 4);
        let sel = h.selectivity(0, 0, 10);
        assert!((sel - 1.0).abs() < 1e-9);
        assert!(h.selectivity(1, 3, 10) < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let v: Vec<f64> = (0..64).map(|i| ((i * 3) % 13) as f64).collect();
        let (h, _) = hist_from_signal(&v, 10);
        let json = serde_json::to_string(&h).unwrap();
        let back: WaveletHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        assert_eq!(back.domain().u(), 64);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let domain = Domain::new(4).unwrap();
        let h = WaveletHistogram::new(domain, [(0, 1.0), (3, 0.0)]);
        assert_eq!(h.len(), 1);
        assert_eq!(h.coefficient(3), None);
        assert_eq!(h.coefficient(0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_slots_rejected() {
        let domain = Domain::new(4).unwrap();
        WaveletHistogram::new(domain, [(1, 1.0), (1, 2.0)]);
    }

    #[test]
    fn retained_energy() {
        let domain = Domain::new(4).unwrap();
        let h = WaveletHistogram::new(domain, [(0, 3.0), (2, -4.0)]);
        assert!((h.retained_energy() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn merge_delta_with_full_retention_is_exact() {
        // When the base retains *every* non-zero coefficient, coefficient-
        // space merging matches the transform of the summed signals.
        let a: Vec<f64> = (0..32).map(|i| ((i * 3) % 7) as f64).collect();
        let b: Vec<f64> = (0..32).map(|i| ((i * 5) % 4) as f64).collect();
        let (ha, _) = hist_from_signal(&a, 32);
        let wb = forward(&b);
        let merged = ha.merge_delta(
            wb.iter()
                .enumerate()
                .filter(|(_, &c)| c != 0.0)
                .map(|(s, &c)| (s as u64, c)),
            32,
        );
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        for x in 0..32u64 {
            let want = sum[x as usize];
            let got = merged.point_estimate(x);
            assert!((got - want).abs() < 1e-9, "key {x}: {got} vs {want}");
        }
    }

    #[test]
    fn merge_delta_of_nothing_reselects_the_base() {
        let v: Vec<f64> = (0..64).map(|i| ((i * 11) % 17) as f64).collect();
        let (h, _) = hist_from_signal(&v, 12);
        let same = h.merge_delta(std::iter::empty(), 12);
        assert_eq!(h, same);
        // A smaller budget prunes from the bottom of the magnitude order.
        let pruned = h.merge_delta(std::iter::empty(), 5);
        assert_eq!(pruned.coefficients(), &h.coefficients()[..5]);
    }

    #[test]
    fn merge_delta_can_churn_the_topk_membership() {
        let domain = Domain::new(4).unwrap();
        // Base top-2 is slots {0, 3}; the delta shrinks slot 3 and boosts
        // slot 7, so the merged top-2 must swap membership.
        let base = WaveletHistogram::new(domain, [(0, 10.0), (3, 5.0), (7, 1.0)]);
        let merged = base.merge_delta([(3u64, -4.5), (7u64, 3.0)], 2);
        let slots: Vec<u64> = merged.coefficients().iter().map(|&(s, _)| s).collect();
        assert_eq!(slots, vec![0, 7]);
        assert!((merged.coefficient(7).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn merge_delta_rejects_out_of_domain_slots() {
        let domain = Domain::new(2).unwrap();
        let h = WaveletHistogram::new(domain, [(0, 1.0)]);
        let _ = h.merge_delta([(4u64, 1.0)], 2);
    }
}
