//! Two-dimensional wavelet histograms (§3/§4 "Multi-dimensional
//! wavelets").
//!
//! The paper's argument carries over verbatim: the 2-D standard
//! transform is linear, so global 2-D coefficients are sums of per-split
//! 2-D coefficients, and both the exact top-k machinery and the sampling
//! estimators apply unchanged. This module provides the 2-D counterparts
//! of the centralized oracle, the Send-V baseline, the two-sided-TPUT
//! exact method, and TwoLevel-S, over packed `(row_slot, col_slot)`
//! coefficient addresses.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::builders::ops;
use wh_data::twod::Dataset2d;
use wh_mapreduce::cost::TaskWork;
use wh_mapreduce::{
    try_run_job, ClusterConfig, EngineConfig, EngineError, JobSpec, MapTask, RunMetrics,
};
use wh_sampling::SamplingConfig;
use wh_topk::{two_sided_topk, InMemoryNode};
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::{sort_by_magnitude, top_k_magnitude, CoefEntry};
use wh_wavelet::twod::{pack_slot, point_estimate2d, sparse_transform2d, SparseCoefs2d};
use wh_wavelet::Domain;

/// A k-term 2-D wavelet histogram over `[u]²`.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletHistogram2d {
    domain: Domain,
    /// Packed `(row_slot, col_slot)` → value, descending magnitude.
    coefs: Vec<(u64, f64)>,
}

impl WaveletHistogram2d {
    /// Builds from packed-slot coefficients.
    pub fn new(domain: Domain, coefs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut entries: Vec<CoefEntry> = coefs
            .into_iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|(slot, value)| CoefEntry { slot, value })
            .collect();
        sort_by_magnitude(&mut entries);
        Self {
            domain,
            coefs: entries.into_iter().map(|e| (e.slot, e.value)).collect(),
        }
    }

    /// Per-dimension domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Retained packed coefficients.
    pub fn coefficients(&self) -> &[(u64, f64)] {
        &self.coefs
    }

    /// Number of retained coefficients.
    pub fn len(&self) -> usize {
        self.coefs.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.coefs.is_empty()
    }

    /// Estimated frequency of the cell `(x, y)`.
    pub fn point_estimate(&self, x: u64, y: u64) -> f64 {
        let map: SparseCoefs2d = self.coefs.iter().copied().collect();
        point_estimate2d(self.domain, &map, x, y)
    }
}

/// Result of a 2-D construction.
#[derive(Debug, Clone)]
pub struct BuildResult2d {
    /// The histogram.
    pub histogram: WaveletHistogram2d,
    /// Run measurements.
    pub metrics: RunMetrics,
}

/// Send-Coef in two dimensions, executed on the MapReduce engine.
///
/// Each mapper aggregates its split into cell counts, runs the sparse
/// nonstandard 2-D transform, and emits every non-zero local coefficient
/// keyed by its `(row_slot, col_slot)` address as a `(u16, u16)` radix
/// key — the transform is linear, so reducers sum per-split coefficients
/// into global ones exactly as in 1-D Send-Coef.
///
/// With the default tight `key_domain` hint
/// (`((u−1) << 16 | (u−1)) + 1`, the exclusive bound of the radix image)
/// the job selects the dense-reduce strategy whenever the hint fits the
/// engine's dense-domain cap (`u ≤ 64` per dimension); wider domains fall
/// back to sort-at-reduce automatically. [`SendCoef2d::with_tight_hint`]
/// turns the hint off to force sort-at-reduce / merge, which the
/// differential suite uses to pin bit-identity across all three reduce
/// strategies.
#[derive(Debug, Clone, Copy)]
pub struct SendCoef2d {
    engine: EngineConfig,
    tight_hint: bool,
}

impl Default for SendCoef2d {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            tight_hint: true,
        }
    }
}

impl SendCoef2d {
    /// Creates the builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the execution-engine knobs of the underlying job.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Declares (default) or withholds the tight `key_domain` hint.
    /// Withholding it steers the engine to sort-at-reduce (several
    /// reducers) or merge (one reducer) instead of dense-reduce.
    pub fn with_tight_hint(mut self, on: bool) -> Self {
        self.tight_hint = on;
        self
    }

    /// Builder name, mirroring [`crate::builders::HistogramBuilder`].
    pub fn name(&self) -> &'static str {
        "Send-Coef-2D"
    }

    /// Builds the 2-D histogram, panicking on engine failure.
    pub fn build(&self, dataset: &Dataset2d, cluster: &ClusterConfig, k: usize) -> BuildResult2d {
        self.try_build(dataset, cluster, k)
            .unwrap_or_else(|e| panic!("2-D build failed: {e}"))
    }

    /// Builds the 2-D histogram, surfacing engine failures as typed
    /// errors (the chaos suite runs this under fault injection).
    pub fn try_build(
        &self,
        dataset: &Dataset2d,
        cluster: &ClusterConfig,
        k: usize,
    ) -> Result<BuildResult2d, EngineError> {
        let domain = dataset.domain();
        assert!(
            domain.log_u() <= 16,
            "2-D coefficient addresses ride in (u16, u16) keys: log_u {} > 16",
            domain.log_u()
        );
        let log_u1 = (domain.log_u() + 1) as f64;
        let map_tasks: Vec<MapTask<(u16, u16), f64>> = (0..dataset.num_splits())
            .map(|j| {
                let ds = dataset.clone();
                MapTask::new(j, move |ctx| {
                    let records = ds.split_records(j);
                    ctx.note_read(records, records * u64::from(ds.record_bytes()));
                    let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
                    for r in ds.scan_split(j) {
                        *cells.entry((r.x, r.y)).or_insert(0) += 1;
                    }
                    ctx.charge(records as f64 * (ops::RECORD_SCAN + ops::HASH_UPSERT));
                    let coefs = sparse_transform2d(
                        domain,
                        cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)),
                    );
                    // Each distinct cell touches (log u + 1)² coefficients.
                    ctx.charge(cells.len() as f64 * log_u1 * log_u1 * ops::COEF_UPDATE);
                    // Packed ascending order equals (row, col) radix order:
                    // both are lexicographic and each half is < 2^16.
                    let mut slots: Vec<u64> = coefs.keys().copied().collect();
                    slots.sort_unstable();
                    for slot in slots {
                        let (row, col) = wh_wavelet::twod::unpack_slot(slot);
                        ctx.emit((row as u16, col as u16), coefs[&slot]);
                    }
                })
            })
            .collect();

        let acc: Arc<Mutex<FxHashMap<u64, f64>>> = Arc::new(Mutex::new(FxHashMap::default()));
        let acc_reduce = Arc::clone(&acc);
        let reduce = move |key: &(u16, u16),
                           vals: &[f64],
                           ctx: &mut wh_mapreduce::ReduceContext<(u64, f64)>| {
            ctx.charge(vals.len() as f64 * ops::REDUCE_PAIR);
            acc_reduce.lock().insert(
                pack_slot(u64::from(key.0), u64::from(key.1)),
                vals.iter().sum(),
            );
        };
        let acc_finish = Arc::clone(&acc);
        // The tight exclusive bound of the (u16, u16) radix image over
        // [0, u)²: row and col slots both stay below u.
        let hint = ((domain.u() - 1) << 16 | (domain.u() - 1)) + 1;
        let engine = if self.tight_hint {
            self.engine.with_key_domain(hint)
        } else {
            self.engine
        };
        let spec = JobSpec::new("send-coef-2d", map_tasks, reduce)
            .with_radix_keys()
            .with_wire_codec()
            .with_engine(engine)
            .with_finish(move |ctx| {
                let w = acc_finish.lock();
                // Key order, exactly as 1-D Send-Coef: hash-map layout
                // depends on cross-partition insertion interleaving, and
                // float accumulation downstream must not.
                let mut entries: Vec<(u64, f64)> = w.iter().map(|(&s, &c)| (s, c)).collect();
                entries.sort_unstable_by_key(|&(s, _)| s);
                ctx.charge(w.len() as f64 * ops::HEAP_OFFER);
                for e in top_k_magnitude(entries.iter().copied(), k) {
                    ctx.emit((e.slot, e.value));
                }
            });

        let out = try_run_job(cluster, spec)?;
        Ok(BuildResult2d {
            histogram: WaveletHistogram2d::new(domain, out.outputs),
            metrics: out.metrics,
        })
    }
}

/// The sequential reference for [`SendCoef2d`]: per-split sparse 2-D
/// transforms, summed slot-by-slot in ascending split order, then global
/// top-k by magnitude. Mirrors the engine's floating-point evaluation
/// order exactly (reducers fold each slot's per-split values in split
/// order from 0.0; the finish pass iterates slots ascending), so the
/// engine-built histogram must match it **bit-for-bit** on any reduce
/// strategy, thread count, or worker topology.
pub fn sequential_send_coef2d(dataset: &Dataset2d, k: usize) -> WaveletHistogram2d {
    let domain = dataset.domain();
    let mut per_split: Vec<SparseCoefs2d> = Vec::with_capacity(dataset.num_splits() as usize);
    for j in 0..dataset.num_splits() {
        let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        for r in dataset.scan_split(j) {
            *cells.entry((r.x, r.y)).or_insert(0) += 1;
        }
        per_split.push(sparse_transform2d(
            domain,
            cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)),
        ));
    }
    let mut slots: Vec<u64> = per_split.iter().flat_map(|m| m.keys().copied()).collect();
    slots.sort_unstable();
    slots.dedup();
    let entries: Vec<(u64, f64)> = slots
        .iter()
        .map(|&slot| {
            let mut acc = 0.0f64;
            for m in &per_split {
                if let Some(&v) = m.get(&slot) {
                    acc += v;
                }
            }
            (slot, acc)
        })
        .collect();
    let top = top_k_magnitude(entries.iter().copied(), k);
    WaveletHistogram2d::new(domain, top.into_iter().map(|e| (e.slot, e.value)))
}

/// Exact centralized 2-D construction (ground truth).
pub fn centralized2d(dataset: &Dataset2d, cluster: &ClusterConfig, k: usize) -> BuildResult2d {
    let domain = dataset.domain();
    let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
    for j in 0..dataset.num_splits() {
        for r in dataset.scan_split(j) {
            *cells.entry((r.x, r.y)).or_insert(0) += 1;
        }
    }
    let coefs = sparse_transform2d(domain, cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)));
    let top = wh_wavelet::select::top_k_magnitude(coefs, k);
    let n = dataset.num_records();
    let cpu_ops = n as f64 * 3.0 + cells.len() as f64 * ((domain.log_u() + 1) as f64).powi(2) * 2.0;
    let work = TaskWork {
        bytes_scanned: n * 8,
        cpu_ops,
    };
    let sim_time_s = wh_mapreduce::cost::round_time(
        cluster,
        std::slice::from_ref(&work),
        wh_mapreduce::cost::ReduceWork::default(),
        0,
        0,
    );
    BuildResult2d {
        histogram: WaveletHistogram2d::new(domain, top.into_iter().map(|e| (e.slot, e.value))),
        metrics: RunMetrics {
            rounds: 0,
            records_scanned: n,
            bytes_scanned: n * 8,
            cpu_ops,
            sim_time_s,
            ..Default::default()
        },
    }
}

/// Exact distributed 2-D construction: per-split 2-D transforms + the
/// two-sided TPUT protocol over packed coefficient addresses — H-WTopk's
/// multi-dimensional extension. Returns per-round pair counts via
/// `metrics.map_output_pairs`.
pub fn h_wtopk2d(dataset: &Dataset2d, cluster: &ClusterConfig, k: usize) -> BuildResult2d {
    let domain = dataset.domain();
    let m = dataset.num_splits();
    // Per-split local 2-D coefficients.
    let mut nodes = Vec::with_capacity(m as usize);
    let mut cpu_ops = 0.0;
    let mut records = 0u64;
    for j in 0..m {
        let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        for r in dataset.scan_split(j) {
            *cells.entry((r.x, r.y)).or_insert(0) += 1;
            records += 1;
        }
        let coefs = sparse_transform2d(domain, cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)));
        cpu_ops += cells.len() as f64 * ((domain.log_u() + 1) as f64).powi(2) * 2.0;
        nodes.push(InMemoryNode::new(coefs));
    }
    let result = two_sided_topk(&nodes, k);
    // Communication: 16 bytes per uploaded pair (8 B packed slot + 8 B
    // value), 8 bytes per broadcast candidate id.
    let pairs = result.comm.total_pairs();
    let shuffle_bytes = pairs * 16;
    let broadcast_bytes = result.comm.broadcast_items * 8;
    let per_split_scan = records / u64::from(m).max(1) * 8;
    let tasks: Vec<TaskWork> = (0..m)
        .map(|_| TaskWork {
            bytes_scanned: per_split_scan,
            cpu_ops: cpu_ops / m as f64,
        })
        .collect();
    let mut sim_time_s = 0.0;
    for _round in 0..3 {
        sim_time_s += wh_mapreduce::cost::round_time(
            cluster,
            &tasks[..],
            wh_mapreduce::cost::ReduceWork {
                cpu_ops: pairs as f64 * 2.0,
            },
            shuffle_bytes / 3,
            broadcast_bytes / 3,
        );
    }
    BuildResult2d {
        histogram: WaveletHistogram2d::new(domain, result.topk),
        metrics: RunMetrics {
            rounds: 3,
            shuffle_bytes,
            broadcast_bytes,
            map_output_pairs: pairs,
            records_scanned: records,
            bytes_scanned: records * 8,
            cpu_ops,
            sim_time_s,
            ..Default::default()
        },
    }
}

/// TwoLevel-S in two dimensions: first-level record sampling per split,
/// second-level frequency-proportional sampling of local *cell* counts.
pub fn two_level_s2d(
    dataset: &Dataset2d,
    cluster: &ClusterConfig,
    k: usize,
    epsilon: f64,
    seed: u64,
) -> BuildResult2d {
    use wh_data::SplitMix64;
    let domain = dataset.domain();
    let m = dataset.num_splits();
    let cfg = SamplingConfig::new(epsilon, m, dataset.num_records());
    let threshold = cfg.second_level_threshold();
    let mut acc: FxHashMap<(u64, u64), (u64, u64)> = FxHashMap::default(); // (ρ, M)
    let mut pairs = 0u64;
    let mut shuffle_bytes = 0u64;
    let mut sampled = 0u64;
    for j in 0..m {
        let nj = dataset.split_records(j);
        let t_j = cfg.split_sample_size(nj);
        let mut rng = SplitMix64::new(seed ^ (u64::from(j) << 20));
        // First level: t_j distinct positions (Floyd would be exact; for the
        // 2-D path positions are drawn directly — duplicates are negligible
        // at these rates and do not bias the estimator conditioned on the
        // multiset of sampled records).
        let mut counts: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        for _ in 0..t_j {
            let i = rng.next_below(nj.max(1));
            let r = dataset.record_at(j, i);
            *counts.entry((r.x, r.y)).or_insert(0) += 1;
            sampled += 1;
        }
        // Second level.
        for (&cell, &s) in &counts {
            if s as f64 >= threshold {
                let e = acc.entry(cell).or_insert((0, 0));
                e.0 += s;
                pairs += 1;
                shuffle_bytes += 12; // 8 B packed cell + 4 B count
            } else if rng.next_f64() < cfg.second_level_probability(s) {
                let e = acc.entry(cell).or_insert((0, 0));
                e.1 += 1;
                pairs += 1;
                shuffle_bytes += 8; // bare cell marker
            }
        }
    }
    let p = cfg.p();
    let coefs = sparse_transform2d(
        domain,
        acc.iter().map(|(&(x, y), &(rho, markers))| {
            (x, y, (rho as f64 + markers as f64 * threshold) / p)
        }),
    );
    let top = wh_wavelet::select::top_k_magnitude(coefs, k);
    let cpu_ops =
        sampled as f64 * 8.0 + acc.len() as f64 * ((domain.log_u() + 1) as f64).powi(2) * 2.0;
    let tasks: Vec<TaskWork> = (0..m)
        .map(|_| TaskWork {
            bytes_scanned: sampled / u64::from(m).max(1) * 8,
            cpu_ops: cpu_ops / m as f64,
        })
        .collect();
    let sim_time_s = wh_mapreduce::cost::round_time(
        cluster,
        &tasks[..],
        wh_mapreduce::cost::ReduceWork {
            cpu_ops: pairs as f64 * 2.0,
        },
        shuffle_bytes,
        0,
    );
    BuildResult2d {
        histogram: WaveletHistogram2d::new(domain, top.into_iter().map(|e| (e.slot, e.value))),
        metrics: RunMetrics {
            rounds: 1,
            shuffle_bytes,
            map_output_pairs: pairs,
            records_scanned: sampled,
            bytes_scanned: sampled * 8,
            cpu_ops,
            sim_time_s,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_data::twod::Distribution2d;

    fn dataset() -> Dataset2d {
        Dataset2d::new(
            Domain::new(5).unwrap(),
            Distribution2d::Correlated {
                alpha: 1.1,
                spread: 2,
            },
            30_000,
            6,
            17,
        )
    }

    #[test]
    fn engine_built_matches_sequential_reference_bitwise() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let want = sequential_send_coef2d(&d, 12);
        let got = SendCoef2d::new().build(&d, &cluster, 12);
        assert_eq!(got.histogram.coefficients(), want.coefficients());
        assert!(got.histogram.len() <= 12 && !got.histogram.is_empty());
        // The tight hint puts every reduce partition on the dense path.
        assert_eq!(
            got.metrics.reduce_strategies.dense_reduce,
            got.metrics.reduce_strategies.total()
        );
    }

    #[test]
    fn engine_built_tracks_centralized_magnitudes() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let a = centralized2d(&d, &cluster, 10);
        let b = SendCoef2d::new().build(&d, &cluster, 10);
        assert_eq!(a.histogram.len(), b.histogram.len());
        for (x, y) in a
            .histogram
            .coefficients()
            .iter()
            .zip(b.histogram.coefficients())
        {
            assert!((x.1.abs() - y.1.abs()).abs() < 1e-6, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn without_tight_hint_engine_sorts_at_reduce() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let want = sequential_send_coef2d(&d, 12);
        let got = SendCoef2d::new()
            .with_tight_hint(false)
            .with_engine(EngineConfig::pipelined().with_reducers(2))
            .build(&d, &cluster, 12);
        assert_eq!(got.histogram.coefficients(), want.coefficients());
        assert_eq!(
            got.metrics.reduce_strategies.sort_at_reduce,
            got.metrics.reduce_strategies.total()
        );
    }

    #[test]
    fn hwtopk2d_matches_centralized() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let a = centralized2d(&d, &cluster, 10);
        let b = h_wtopk2d(&d, &cluster, 10);
        assert_eq!(a.histogram.len(), b.histogram.len());
        for (x, y) in a
            .histogram
            .coefficients()
            .iter()
            .zip(b.histogram.coefficients())
        {
            assert!((x.1.abs() - y.1.abs()).abs() < 1e-6, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn hwtopk2d_cheaper_than_send_all() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let b = h_wtopk2d(&d, &cluster, 10);
        // Send-all-coefficients would ship every non-zero local coefficient.
        let domain = d.domain();
        let mut total_nonzero = 0u64;
        for j in 0..d.num_splits() {
            let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
            for r in d.scan_split(j) {
                *cells.entry((r.x, r.y)).or_insert(0) += 1;
            }
            let coefs =
                sparse_transform2d(domain, cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)));
            total_nonzero += coefs.len() as u64;
        }
        assert!(
            b.metrics.map_output_pairs < total_nonzero / 2,
            "tput pairs {} vs send-all {total_nonzero}",
            b.metrics.map_output_pairs
        );
    }

    #[test]
    fn two_level_2d_reasonable_quality() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let exact = centralized2d(&d, &cluster, 64);
        let approx = two_level_s2d(&d, &cluster, 64, 0.02, 5);
        // Total-mass check through the top coefficient (the 2-D average):
        // slot (0,0) packs to 0.
        let exact_avg = exact
            .histogram
            .coefficients()
            .iter()
            .find(|&&(s, _)| s == 0)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        let approx_avg = approx
            .histogram
            .coefficients()
            .iter()
            .find(|&&(s, _)| s == 0)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        assert!(
            (exact_avg - approx_avg).abs() < 0.25 * exact_avg.abs().max(1.0),
            "avg {approx_avg} vs exact {exact_avg}"
        );
        assert!(approx.metrics.records_scanned < d.num_records() / 2);
    }

    #[test]
    fn point_estimates_track_density() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let exact = centralized2d(&d, &cluster, 128);
        // Cell (0,0) is in the dense corner under Zipf(1.1) + diagonal.
        let dense = exact.histogram.point_estimate(0, 0);
        let sparse = exact.histogram.point_estimate(20, 5); // off-diagonal
        assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
    }
}
