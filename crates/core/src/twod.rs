//! Two-dimensional wavelet histograms (§3/§4 "Multi-dimensional
//! wavelets").
//!
//! The paper's argument carries over verbatim: the 2-D standard
//! transform is linear, so global 2-D coefficients are sums of per-split
//! 2-D coefficients, and both the exact top-k machinery and the sampling
//! estimators apply unchanged. This module provides the 2-D counterparts
//! of the centralized oracle, the Send-V baseline, the two-sided-TPUT
//! exact method, and TwoLevel-S, over packed `(row_slot, col_slot)`
//! coefficient addresses.

use wh_data::twod::Dataset2d;
use wh_mapreduce::cost::TaskWork;
use wh_mapreduce::{ClusterConfig, RunMetrics};
use wh_sampling::SamplingConfig;
use wh_topk::{two_sided_topk, InMemoryNode};
use wh_wavelet::hash::FxHashMap;
use wh_wavelet::select::{sort_by_magnitude, CoefEntry};
use wh_wavelet::twod::{point_estimate2d, sparse_transform2d, SparseCoefs2d};
use wh_wavelet::Domain;

/// A k-term 2-D wavelet histogram over `[u]²`.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletHistogram2d {
    domain: Domain,
    /// Packed `(row_slot, col_slot)` → value, descending magnitude.
    coefs: Vec<(u64, f64)>,
}

impl WaveletHistogram2d {
    /// Builds from packed-slot coefficients.
    pub fn new(domain: Domain, coefs: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut entries: Vec<CoefEntry> = coefs
            .into_iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|(slot, value)| CoefEntry { slot, value })
            .collect();
        sort_by_magnitude(&mut entries);
        Self {
            domain,
            coefs: entries.into_iter().map(|e| (e.slot, e.value)).collect(),
        }
    }

    /// Per-dimension domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Retained packed coefficients.
    pub fn coefficients(&self) -> &[(u64, f64)] {
        &self.coefs
    }

    /// Number of retained coefficients.
    pub fn len(&self) -> usize {
        self.coefs.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.coefs.is_empty()
    }

    /// Estimated frequency of the cell `(x, y)`.
    pub fn point_estimate(&self, x: u64, y: u64) -> f64 {
        let map: SparseCoefs2d = self.coefs.iter().copied().collect();
        point_estimate2d(self.domain, &map, x, y)
    }
}

/// Result of a 2-D construction.
#[derive(Debug, Clone)]
pub struct BuildResult2d {
    /// The histogram.
    pub histogram: WaveletHistogram2d,
    /// Run measurements.
    pub metrics: RunMetrics,
}

/// Exact centralized 2-D construction (ground truth).
pub fn centralized2d(dataset: &Dataset2d, cluster: &ClusterConfig, k: usize) -> BuildResult2d {
    let domain = dataset.domain();
    let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
    for j in 0..dataset.num_splits() {
        for r in dataset.scan_split(j) {
            *cells.entry((r.x, r.y)).or_insert(0) += 1;
        }
    }
    let coefs = sparse_transform2d(domain, cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)));
    let top = wh_wavelet::select::top_k_magnitude(coefs, k);
    let n = dataset.num_records();
    let cpu_ops = n as f64 * 3.0 + cells.len() as f64 * ((domain.log_u() + 1) as f64).powi(2) * 2.0;
    let work = TaskWork {
        bytes_scanned: n * 8,
        cpu_ops,
    };
    let sim_time_s = wh_mapreduce::cost::round_time(
        cluster,
        std::slice::from_ref(&work),
        wh_mapreduce::cost::ReduceWork::default(),
        0,
        0,
    );
    BuildResult2d {
        histogram: WaveletHistogram2d::new(domain, top.into_iter().map(|e| (e.slot, e.value))),
        metrics: RunMetrics {
            rounds: 0,
            records_scanned: n,
            bytes_scanned: n * 8,
            cpu_ops,
            sim_time_s,
            ..Default::default()
        },
    }
}

/// Exact distributed 2-D construction: per-split 2-D transforms + the
/// two-sided TPUT protocol over packed coefficient addresses — H-WTopk's
/// multi-dimensional extension. Returns per-round pair counts via
/// `metrics.map_output_pairs`.
pub fn h_wtopk2d(dataset: &Dataset2d, cluster: &ClusterConfig, k: usize) -> BuildResult2d {
    let domain = dataset.domain();
    let m = dataset.num_splits();
    // Per-split local 2-D coefficients.
    let mut nodes = Vec::with_capacity(m as usize);
    let mut cpu_ops = 0.0;
    let mut records = 0u64;
    for j in 0..m {
        let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        for r in dataset.scan_split(j) {
            *cells.entry((r.x, r.y)).or_insert(0) += 1;
            records += 1;
        }
        let coefs = sparse_transform2d(domain, cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)));
        cpu_ops += cells.len() as f64 * ((domain.log_u() + 1) as f64).powi(2) * 2.0;
        nodes.push(InMemoryNode::new(coefs));
    }
    let result = two_sided_topk(&nodes, k);
    // Communication: 16 bytes per uploaded pair (8 B packed slot + 8 B
    // value), 8 bytes per broadcast candidate id.
    let pairs = result.comm.total_pairs();
    let shuffle_bytes = pairs * 16;
    let broadcast_bytes = result.comm.broadcast_items * 8;
    let per_split_scan = records / u64::from(m).max(1) * 8;
    let tasks: Vec<TaskWork> = (0..m)
        .map(|_| TaskWork {
            bytes_scanned: per_split_scan,
            cpu_ops: cpu_ops / m as f64,
        })
        .collect();
    let mut sim_time_s = 0.0;
    for _round in 0..3 {
        sim_time_s += wh_mapreduce::cost::round_time(
            cluster,
            &tasks[..],
            wh_mapreduce::cost::ReduceWork {
                cpu_ops: pairs as f64 * 2.0,
            },
            shuffle_bytes / 3,
            broadcast_bytes / 3,
        );
    }
    BuildResult2d {
        histogram: WaveletHistogram2d::new(domain, result.topk),
        metrics: RunMetrics {
            rounds: 3,
            shuffle_bytes,
            broadcast_bytes,
            map_output_pairs: pairs,
            records_scanned: records,
            bytes_scanned: records * 8,
            cpu_ops,
            sim_time_s,
            ..Default::default()
        },
    }
}

/// TwoLevel-S in two dimensions: first-level record sampling per split,
/// second-level frequency-proportional sampling of local *cell* counts.
pub fn two_level_s2d(
    dataset: &Dataset2d,
    cluster: &ClusterConfig,
    k: usize,
    epsilon: f64,
    seed: u64,
) -> BuildResult2d {
    use wh_data::SplitMix64;
    let domain = dataset.domain();
    let m = dataset.num_splits();
    let cfg = SamplingConfig::new(epsilon, m, dataset.num_records());
    let threshold = cfg.second_level_threshold();
    let mut acc: FxHashMap<(u64, u64), (u64, u64)> = FxHashMap::default(); // (ρ, M)
    let mut pairs = 0u64;
    let mut shuffle_bytes = 0u64;
    let mut sampled = 0u64;
    for j in 0..m {
        let nj = dataset.split_records(j);
        let t_j = cfg.split_sample_size(nj);
        let mut rng = SplitMix64::new(seed ^ (u64::from(j) << 20));
        // First level: t_j distinct positions (Floyd would be exact; for the
        // 2-D path positions are drawn directly — duplicates are negligible
        // at these rates and do not bias the estimator conditioned on the
        // multiset of sampled records).
        let mut counts: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        for _ in 0..t_j {
            let i = rng.next_below(nj.max(1));
            let r = dataset.record_at(j, i);
            *counts.entry((r.x, r.y)).or_insert(0) += 1;
            sampled += 1;
        }
        // Second level.
        for (&cell, &s) in &counts {
            if s as f64 >= threshold {
                let e = acc.entry(cell).or_insert((0, 0));
                e.0 += s;
                pairs += 1;
                shuffle_bytes += 12; // 8 B packed cell + 4 B count
            } else if rng.next_f64() < cfg.second_level_probability(s) {
                let e = acc.entry(cell).or_insert((0, 0));
                e.1 += 1;
                pairs += 1;
                shuffle_bytes += 8; // bare cell marker
            }
        }
    }
    let p = cfg.p();
    let coefs = sparse_transform2d(
        domain,
        acc.iter().map(|(&(x, y), &(rho, markers))| {
            (x, y, (rho as f64 + markers as f64 * threshold) / p)
        }),
    );
    let top = wh_wavelet::select::top_k_magnitude(coefs, k);
    let cpu_ops =
        sampled as f64 * 8.0 + acc.len() as f64 * ((domain.log_u() + 1) as f64).powi(2) * 2.0;
    let tasks: Vec<TaskWork> = (0..m)
        .map(|_| TaskWork {
            bytes_scanned: sampled / u64::from(m).max(1) * 8,
            cpu_ops: cpu_ops / m as f64,
        })
        .collect();
    let sim_time_s = wh_mapreduce::cost::round_time(
        cluster,
        &tasks[..],
        wh_mapreduce::cost::ReduceWork {
            cpu_ops: pairs as f64 * 2.0,
        },
        shuffle_bytes,
        0,
    );
    BuildResult2d {
        histogram: WaveletHistogram2d::new(domain, top.into_iter().map(|e| (e.slot, e.value))),
        metrics: RunMetrics {
            rounds: 1,
            shuffle_bytes,
            map_output_pairs: pairs,
            records_scanned: sampled,
            bytes_scanned: sampled * 8,
            cpu_ops,
            sim_time_s,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_data::twod::Distribution2d;

    fn dataset() -> Dataset2d {
        Dataset2d::new(
            Domain::new(5).unwrap(),
            Distribution2d::Correlated {
                alpha: 1.1,
                spread: 2,
            },
            30_000,
            6,
            17,
        )
    }

    #[test]
    fn hwtopk2d_matches_centralized() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let a = centralized2d(&d, &cluster, 10);
        let b = h_wtopk2d(&d, &cluster, 10);
        assert_eq!(a.histogram.len(), b.histogram.len());
        for (x, y) in a
            .histogram
            .coefficients()
            .iter()
            .zip(b.histogram.coefficients())
        {
            assert!((x.1.abs() - y.1.abs()).abs() < 1e-6, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn hwtopk2d_cheaper_than_send_all() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let b = h_wtopk2d(&d, &cluster, 10);
        // Send-all-coefficients would ship every non-zero local coefficient.
        let domain = d.domain();
        let mut total_nonzero = 0u64;
        for j in 0..d.num_splits() {
            let mut cells: FxHashMap<(u64, u64), u64> = FxHashMap::default();
            for r in d.scan_split(j) {
                *cells.entry((r.x, r.y)).or_insert(0) += 1;
            }
            let coefs =
                sparse_transform2d(domain, cells.iter().map(|(&(x, y), &c)| (x, y, c as f64)));
            total_nonzero += coefs.len() as u64;
        }
        assert!(
            b.metrics.map_output_pairs < total_nonzero / 2,
            "tput pairs {} vs send-all {total_nonzero}",
            b.metrics.map_output_pairs
        );
    }

    #[test]
    fn two_level_2d_reasonable_quality() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let exact = centralized2d(&d, &cluster, 64);
        let approx = two_level_s2d(&d, &cluster, 64, 0.02, 5);
        // Total-mass check through the top coefficient (the 2-D average):
        // slot (0,0) packs to 0.
        let exact_avg = exact
            .histogram
            .coefficients()
            .iter()
            .find(|&&(s, _)| s == 0)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        let approx_avg = approx
            .histogram
            .coefficients()
            .iter()
            .find(|&&(s, _)| s == 0)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        assert!(
            (exact_avg - approx_avg).abs() < 0.25 * exact_avg.abs().max(1.0),
            "avg {approx_avg} vs exact {exact_avg}"
        );
        assert!(approx.metrics.records_scanned < d.num_records() / 2);
    }

    #[test]
    fn point_estimates_track_density() {
        let d = dataset();
        let cluster = ClusterConfig::paper_cluster();
        let exact = centralized2d(&d, &cluster, 128);
        // Cell (0,0) is in the dense corner under Zipf(1.1) + diagonal.
        let dense = exact.histogram.point_estimate(0, 0);
        let sparse = exact.histogram.point_estimate(20, 5); // off-diagonal
        assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
    }
}
