//! Basic-S: ship the whole first-level sample.
//!
//! Each split emits one pair per sampled record; the optional Combine
//! function aggregates repeats of a key within a split into `(x, s_j(x))`.
//! Communication is `O(1/ε²)` pairs without combining and between
//! `O(m)` and `O(1/ε²)` with, depending entirely on the data skew — the
//! paper's motivation for something better.

use wh_wavelet::hash::FxHashMap;

/// Aggregates sampled keys into local counts `s_j` (the Combine step).
pub fn local_counts(sampled_keys: impl IntoIterator<Item = u64>) -> FxHashMap<u64, u64> {
    let mut counts = FxHashMap::default();
    for k in sampled_keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

/// Basic-S emission with combining: every `(x, s_j(x))` pair, sorted by key
/// for determinism.
pub fn emit_combined(counts: &FxHashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = counts.iter().map(|(&k, &c)| (k, c)).collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Basic-S emission without combining: one `(x, 1)` pair per sampled
/// record (what a naive mapper would do).
pub fn emit_uncombined(counts: &FxHashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut keys: Vec<u64> = counts.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        for _ in 0..counts[&k] {
            out.push((k, 1));
        }
    }
    out
}

/// Reducer-side estimate: `v̂(x) = s(x)/p` where `s(x)` sums the received
/// counts.
pub fn estimate_v(total_sample_count: u64, p: f64) -> f64 {
    assert!(p > 0.0, "sampling probability must be positive");
    total_sample_count as f64 / p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_aggregate() {
        let c = local_counts([5, 5, 7, 5, 9]);
        assert_eq!(c[&5], 3);
        assert_eq!(c[&7], 1);
        assert_eq!(c[&9], 1);
    }

    #[test]
    fn combined_emission_is_sorted_and_complete() {
        let c = local_counts([9, 5, 5, 7]);
        let e = emit_combined(&c);
        assert_eq!(e, vec![(5, 2), (7, 1), (9, 1)]);
    }

    #[test]
    fn uncombined_matches_total() {
        let c = local_counts([1, 1, 1, 2]);
        let e = emit_uncombined(&c);
        assert_eq!(e.len(), 4);
        assert!(e.iter().all(|&(_, v)| v == 1));
    }

    #[test]
    fn estimate_scales_by_p() {
        assert_eq!(estimate_v(50, 0.01), 5000.0);
        assert_eq!(estimate_v(0, 0.5), 0.0);
    }
}
