//! Improved-S: drop low-frequency sampled keys.
//!
//! A split only emits `(x, s_j(x))` when `s_j(x) ≥ ε·t_j` (with `t_j` the
//! split's sample size), so each split ships at most `t_j/(ε·t_j) = 1/ε`
//! pairs and the total is `O(m/ε)`. The cost is bias: the dropped counts
//! sum to at most `ε·p·n = 1/ε` in the sample, i.e. up to `εn` missing from
//! every estimated frequency — the effect visible in the paper's SSE plots
//! (Improved-S is the worst of the approximations, Figs. 6–7).

use wh_wavelet::hash::FxHashMap;

/// Improved-S emission: keys whose local sample count meets the `ε·t_j`
/// cutoff, sorted by key.
pub fn emit(counts: &FxHashMap<u64, u64>, epsilon: f64, t_j: u64) -> Vec<(u64, u64)> {
    let cutoff = epsilon * t_j as f64;
    let mut out: Vec<(u64, u64)> = counts
        .iter()
        .filter(|(_, &c)| c as f64 >= cutoff)
        .map(|(&k, &c)| (k, c))
        .collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Upper bound on pairs one split can emit: `⌈1/ε⌉` (plus one for rounding
/// slack); used by tests and the experiment tables.
pub fn per_split_bound(epsilon: f64) -> u64 {
    (1.0 / epsilon).ceil() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::local_counts;

    #[test]
    fn cutoff_filters_small_counts() {
        let counts = local_counts([1, 1, 1, 1, 2, 3, 3]);
        // t_j = 7, ε = 0.3 → cutoff 2.1: keep counts ≥ 2.1 → only key 1 (4).
        let e = emit(&counts, 0.3, 7);
        assert_eq!(e, vec![(1, 4)]);
    }

    #[test]
    fn zero_cutoff_keeps_everything() {
        let counts = local_counts([4, 5, 6]);
        let e = emit(&counts, 1e-9, 3);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn emission_respects_per_split_bound() {
        // Uniform worst case: many distinct keys with count 1.
        let counts = local_counts(0..10_000u64);
        let eps = 0.01;
        let e = emit(&counts, eps, 10_000);
        // cutoff = 100: nothing survives, well under the 1/ε bound.
        assert!(e.len() as u64 <= per_split_bound(eps));

        // Skewed case: a few heavy keys.
        let mut keys = Vec::new();
        for k in 0..50u64 {
            for _ in 0..200 {
                keys.push(k);
            }
        }
        let counts = local_counts(keys);
        let e = emit(&counts, eps, 10_000);
        assert_eq!(e.len(), 50);
        assert!(e.len() as u64 <= per_split_bound(eps));
    }

    #[test]
    fn bias_is_one_sided() {
        // Dropped counts only ever shrink the estimate: everything emitted
        // is an exact local count, so Σ emitted ≤ t_j.
        let counts = local_counts([1, 1, 2, 3, 3, 3]);
        let e = emit(&counts, 0.4, 6);
        let total: u64 = e.iter().map(|&(_, c)| c).sum();
        assert!(total <= 6);
    }
}
