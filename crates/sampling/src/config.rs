//! Shared sampling parameters.

/// Parameters of a sampling run: error target `ε`, split count `m`, and
/// dataset size `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Error parameter ε: target frequency standard deviation is `εn`.
    pub epsilon: f64,
    /// Number of splits `m`.
    pub m: u32,
    /// Total record count `n`.
    pub n: u64,
    /// Exponent γ of the second-level threshold `1/(ε·m^γ)`.
    ///
    /// The paper's analysis picks γ = ½ (communication `O(√m/ε)` with
    /// variance still `1/ε²`); the ablation harness sweeps γ to show both
    /// endpoints are worse — γ = 0 degenerates towards Improved-S-like
    /// cutoffs, γ = 1 towards shipping everything.
    pub threshold_exponent: f64,
}

impl SamplingConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `ε`, zero `m`, or zero `n`.
    pub fn new(epsilon: f64, m: u32, n: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "ε must be positive, got {epsilon}"
        );
        assert!(m > 0, "m must be positive");
        assert!(n > 0, "n must be positive");
        Self {
            epsilon,
            m,
            n,
            threshold_exponent: 0.5,
        }
    }

    /// Overrides the second-level threshold exponent γ (ablation; the
    /// estimator stays unbiased for any γ, only variance and
    /// communication shift).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ γ ≤ 1`.
    pub fn with_threshold_exponent(mut self, gamma: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gamma),
            "γ must be in [0, 1], got {gamma}"
        );
        self.threshold_exponent = gamma;
        self
    }

    /// First-level sampling probability `p = 1/(ε²n)`, capped at 1 (when
    /// `1/ε² ≥ n` the "sample" is the full dataset).
    pub fn p(&self) -> f64 {
        (1.0 / (self.epsilon * self.epsilon * self.n as f64)).min(1.0)
    }

    /// Expected total first-level sample size `p·n` (≈ `1/ε²`).
    pub fn expected_sample_size(&self) -> f64 {
        self.p() * self.n as f64
    }

    /// Second-level count threshold `1/(ε·m^γ)` (γ = ½ by default — the
    /// paper's `1/(ε√m)`): local counts at or above it are sent exactly,
    /// smaller ones are subsampled.
    pub fn second_level_threshold(&self) -> f64 {
        1.0 / (self.epsilon * (self.m as f64).powf(self.threshold_exponent))
    }

    /// Second-level inclusion probability for a local count `s`:
    /// `min(s / threshold, 1)`.
    pub fn second_level_probability(&self, s: u64) -> f64 {
        (s as f64 / self.second_level_threshold()).min(1.0)
    }

    /// The number of first-level samples split `j` (with `n_j` records)
    /// should draw: `round(p·n_j)`.
    pub fn split_sample_size(&self, n_j: u64) -> u64 {
        ((self.p() * n_j as f64).round() as u64).min(n_j)
    }

    /// Like [`Self::split_sample_size`], but with *stochastic rounding* of
    /// the fractional part, seeded by `seed`. This matches Bernoulli
    /// coin-flip sampling in expectation even when `p·n_j < 1` (very large
    /// ε), where deterministic rounding would silently sample nothing.
    pub fn split_sample_size_seeded(&self, n_j: u64, seed: u64) -> u64 {
        let target = self.p() * n_j as f64;
        let base = target.floor();
        let frac = target - base;
        let mut rng = wh_data::SplitMix64::new(seed ^ 0x5a5a_1234);
        let extra = u64::from(rng.next_f64() < frac);
        ((base as u64) + extra).min(n_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_matches_formula() {
        let c = SamplingConfig::new(1e-3, 64, 1 << 24);
        let expect = 1.0 / (1e-6 * (1 << 24) as f64);
        assert!((c.p() - expect).abs() < 1e-12);
        assert!((c.expected_sample_size() - 1e6).abs() < 1.0);
    }

    #[test]
    fn p_caps_at_one() {
        let c = SamplingConfig::new(0.5, 4, 100);
        // 1/(0.25·100) = 0.04 < 1 fine; now tiny ε:
        assert!(c.p() < 1.0);
        let c = SamplingConfig::new(1e-6, 4, 100);
        assert_eq!(c.p(), 1.0);
        assert_eq!(c.split_sample_size(25), 25);
    }

    #[test]
    fn threshold_shrinks_with_m() {
        let a = SamplingConfig::new(1e-3, 100, 1 << 30);
        let b = SamplingConfig::new(1e-3, 400, 1 << 30);
        assert!((a.second_level_threshold() / b.second_level_threshold() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inclusion_probability_proportional_then_capped() {
        let c = SamplingConfig::new(1e-2, 100, 1 << 20);
        // threshold = 1/(0.01·10) = 10.
        assert!((c.second_level_threshold() - 10.0).abs() < 1e-9);
        assert!((c.second_level_probability(5) - 0.5).abs() < 1e-9);
        assert_eq!(c.second_level_probability(10), 1.0);
        assert_eq!(c.second_level_probability(1000), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_rejected() {
        SamplingConfig::new(0.0, 1, 1);
    }

    #[test]
    fn threshold_exponent_sweep() {
        let base = SamplingConfig::new(1e-2, 64, 1 << 20);
        // γ = 0: threshold 1/ε (large → most keys subsampled hard).
        let g0 = base.with_threshold_exponent(0.0);
        assert!((g0.second_level_threshold() - 100.0).abs() < 1e-9);
        // γ = ½ (default): 1/(ε·8).
        assert!((base.second_level_threshold() - 12.5).abs() < 1e-9);
        // γ = 1: 1/(ε·64).
        let g1 = base.with_threshold_exponent(1.0);
        assert!((g1.second_level_threshold() - 100.0 / 64.0).abs() < 1e-9);
        // Probability is always s/threshold capped at 1.
        assert!((g1.second_level_probability(1) - 0.64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "γ must be in")]
    fn bad_exponent_rejected() {
        SamplingConfig::new(1e-2, 4, 100).with_threshold_exponent(1.5);
    }

    #[test]
    fn stochastic_rounding_is_unbiased_at_tiny_rates() {
        // p·n_j ≈ 0.5: deterministic rounding would always pick 0 or 1;
        // stochastic rounding must average to the target.
        let c = SamplingConfig::new(0.2, 4, 100); // p = 1/(0.04·100) = 0.25
        let n_j = 2; // target 0.5
        let trials = 20_000u64;
        let total: u64 = (0..trials)
            .map(|s| c.split_sample_size_seeded(n_j, s))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
