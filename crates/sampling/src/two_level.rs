//! TwoLevel-S: the paper's main approximation algorithm (§4, Fig. 3/4).
//!
//! Second-level sampling at each split, over the local sample counts
//! `s_j(x)`:
//!
//! * `s_j(x) ≥ 1/(ε√m)` → emit `(x, s_j(x))` exactly;
//! * `0 < s_j(x) < 1/(ε√m)` → emit a bare marker `(x, NULL)` with
//!   probability `ε√m · s_j(x)`.
//!
//! At the reducer, with `ρ(x)` the sum of exact counts received and `M`
//! the number of markers, `ŝ(x) = ρ(x) + M/(ε√m)` is an unbiased
//! estimator of `s(x)` with standard deviation at most `1/ε` (Theorem 1),
//! and `v̂(x) = ŝ(x)/p` estimates the true frequency with standard
//! deviation `εn` (Corollary 1). Expected communication is `O(√m/ε)`
//! pairs (Theorem 3) — the `√m` improvement over Improved-S.

use crate::config::SamplingConfig;
use wh_data::SplitMix64;
use wh_wavelet::hash::FxHashMap;

/// What a split emits for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoLevelPair {
    /// `(x, s_j(x))`: the exact local sample count (above threshold).
    Count(u64),
    /// `(x, NULL)`: the key survived second-level subsampling.
    Marker,
}

/// Second-level emission for one split. `rng` drives the survival draws of
/// the sub-threshold keys; output is sorted by key for determinism.
pub fn emit(
    counts: &FxHashMap<u64, u64>,
    cfg: &SamplingConfig,
    rng: &mut SplitMix64,
) -> Vec<(u64, TwoLevelPair)> {
    let threshold = cfg.second_level_threshold();
    let mut keys: Vec<u64> = counts.keys().copied().collect();
    keys.sort_unstable();
    let mut out = Vec::new();
    for k in keys {
        let s = counts[&k];
        if s as f64 >= threshold {
            out.push((k, TwoLevelPair::Count(s)));
        } else if rng.next_f64() < cfg.second_level_probability(s) {
            out.push((k, TwoLevelPair::Marker));
        }
    }
    out
}

/// Reducer-side accumulator for one key: `ρ(x)` and `M`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoLevelAccumulator {
    /// Sum of exact counts received.
    pub rho: u64,
    /// Number of markers received.
    pub markers: u64,
}

impl TwoLevelAccumulator {
    /// Absorbs one received pair.
    pub fn absorb(&mut self, pair: TwoLevelPair) {
        match pair {
            TwoLevelPair::Count(c) => self.rho += c,
            TwoLevelPair::Marker => self.markers += 1,
        }
    }

    /// `ŝ(x) = ρ(x) + M/(ε√m)`.
    pub fn estimate_s(&self, cfg: &SamplingConfig) -> f64 {
        self.rho as f64 + self.markers as f64 * cfg.second_level_threshold()
    }

    /// `v̂(x) = ŝ(x)/p`.
    pub fn estimate_v(&self, cfg: &SamplingConfig) -> f64 {
        self.estimate_s(cfg) / cfg.p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::local_counts;

    fn cfg(epsilon: f64, m: u32, n: u64) -> SamplingConfig {
        SamplingConfig::new(epsilon, m, n)
    }

    #[test]
    fn heavy_keys_always_sent_exactly() {
        // threshold = 1/(0.1·√4) = 5.
        let c = cfg(0.1, 4, 1000);
        let counts = local_counts(std::iter::repeat_n(9u64, 10).chain([1, 1]));
        let mut rng = SplitMix64::new(1);
        let out = emit(&counts, &c, &mut rng);
        assert!(out.contains(&(9, TwoLevelPair::Count(10))));
    }

    #[test]
    fn light_keys_marker_or_absent() {
        let c = cfg(0.1, 4, 1000);
        let counts = local_counts([1u64, 2, 2]);
        let mut rng = SplitMix64::new(2);
        for (k, p) in emit(&counts, &c, &mut rng) {
            assert!(matches!(p, TwoLevelPair::Marker), "key {k} sent {p:?}");
        }
    }

    #[test]
    fn estimator_is_unbiased_empirically() {
        // One key with true local counts (7, 3, 2, 1) across m=4 splits;
        // threshold = 1/(0.2·2) = 2.5, so 7 and 3 are exact, 2 and 1 are
        // subsampled with prob 0.4·s. Average ŝ over many RNG draws must
        // approach s = 13.
        let c = cfg(0.2, 4, 10_000);
        let splits: [u64; 4] = [7, 3, 2, 1];
        let trials = 60_000;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut acc = TwoLevelAccumulator::default();
            let mut rng = SplitMix64::new(1000 + t);
            for &s in &splits {
                let counts: FxHashMap<u64, u64> = [(42u64, s)].into_iter().collect();
                for (_, p) in emit(&counts, &c, &mut rng) {
                    acc.absorb(p);
                }
            }
            sum += acc.estimate_s(&c);
        }
        let mean = sum / trials as f64;
        assert!((mean - 13.0).abs() < 0.1, "mean ŝ = {mean}, want 13");
    }

    #[test]
    fn estimator_variance_within_theorem_bound() {
        // Theorem 1: sd(ŝ) ≤ 1/ε. Use m splits all below threshold.
        let c = cfg(0.05, 16, 1_000_000);
        // threshold = 1/(0.05·4) = 5; give each split count 3 (below).
        let m = 16u64;
        let trials = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for t in 0..trials {
            let mut acc = TwoLevelAccumulator::default();
            let mut rng = SplitMix64::new(77 + t);
            for _ in 0..m {
                let counts: FxHashMap<u64, u64> = [(5u64, 3)].into_iter().collect();
                for (_, p) in emit(&counts, &c, &mut rng) {
                    acc.absorb(p);
                }
            }
            let e = acc.estimate_s(&c);
            sum += e;
            sumsq += e * e;
        }
        let mean = sum / trials as f64;
        let var = sumsq / trials as f64 - mean * mean;
        let bound = 1.0 / (c.epsilon * c.epsilon);
        assert!((mean - 48.0).abs() < 1.0, "mean {mean}, want 48");
        assert!(var <= bound, "var {var} exceeds theorem bound {bound}");
    }

    #[test]
    fn communication_scales_as_sqrt_m_over_epsilon() {
        // Theorem 3: expected pairs ≤ 2√m/ε. Build m splits of uniform
        // counts summing to the full sample 1/ε².
        let epsilon = 0.02;
        let m = 25u32;
        let n = 10_000_000u64;
        let c = cfg(epsilon, m, n);
        let sample_per_split = (1.0 / (epsilon * epsilon) / m as f64) as u64; // 100k
        let mut total_pairs = 0u64;
        let mut rng = SplitMix64::new(5);
        for j in 0..m {
            // 10k distinct keys with count = sample/10k each (all below the
            // threshold 1/(0.02·5) = 10 when count < 10).
            let per_key = sample_per_split / 10_000; // = 10 → right at threshold
            let counts: FxHashMap<u64, u64> = (0..10_000u64)
                .map(|k| (k * 31 + j as u64, per_key / 2))
                .collect();
            total_pairs += emit(&counts, &c, &mut rng).len() as u64;
        }
        let bound = 2.0 * (m as f64).sqrt() / epsilon;
        assert!(
            (total_pairs as f64) <= bound,
            "pairs {total_pairs} exceed 2√m/ε = {bound}"
        );
    }

    #[test]
    fn accumulator_combines_counts_and_markers() {
        let c = cfg(0.1, 25, 1_000_000);
        let mut acc = TwoLevelAccumulator::default();
        acc.absorb(TwoLevelPair::Count(7));
        acc.absorb(TwoLevelPair::Marker);
        acc.absorb(TwoLevelPair::Marker);
        // threshold = 1/(0.1·5) = 2.
        assert!((acc.estimate_s(&c) - (7.0 + 2.0 * 2.0)).abs() < 1e-9);
        let p = c.p();
        assert!((acc.estimate_v(&c) - acc.estimate_s(&c) / p).abs() < 1e-9);
    }
}
