//! # wh-sampling — the paper's sampling algorithms (§4)
//!
//! All three samplers share a **first level**: every split `j` draws
//! `t_j = p·n_j` records without replacement, with `p = 1/(ε²·n)`, so the
//! expected total sample size is `1/ε²` and the sampled frequency vector
//! `s` estimates `v` with standard deviation `O(εn)` after scaling by
//! `1/p`. They differ in what each split emits about its local sample
//! counts `s_j(x)`:
//!
//! * **Basic-S** ([`basic`]): every sampled key, optionally aggregated by
//!   the Combine function into `(x, s_j(x))` pairs. Communication
//!   `O(1/ε²)`.
//! * **Improved-S** ([`improved`]): only keys with `s_j(x) ≥ ε·t_j`; at
//!   most `1/ε` pairs per split, `O(m/ε)` total — but the estimator
//!   becomes **biased** (small counts are silently dropped).
//! * **TwoLevel-S** ([`two_level`]): keys with `s_j(x) ≥ 1/(ε√m)` are sent
//!   with their count; smaller keys survive with probability
//!   `ε√m·s_j(x)` and are sent as a bare `(x, NULL)` marker. The estimator
//!   `ŝ(x) = ρ(x) + M/(ε√m)` is **unbiased** with standard deviation at
//!   most `1/ε` (Theorem 1), and expected communication is `O(√m/ε)`
//!   (Theorem 3).
//!
//! The numeric workhorses live here as pure functions over local count
//! maps; `wh-core` wires them into MapReduce jobs.

pub mod basic;
pub mod config;
pub mod improved;
pub mod two_level;

pub use config::SamplingConfig;
pub use two_level::{TwoLevelAccumulator, TwoLevelPair};
