//! Length-prefixed frame transport for the multi-process engine mode.
//!
//! The distributed engine ([`crate::worker`]) moves map output between
//! forked worker processes and the coordinator over Unix pipes. Every
//! message is one *frame*:
//!
//! ```text
//! [len: u32 LE][tag: u8][payload: len bytes]
//! ```
//!
//! `len` counts the payload only (the 5-byte header is excluded), and is
//! capped at [`MAX_FRAME_BYTES`] so a corrupt header cannot force a huge
//! allocation. Payloads are encoded with the [`crate::wire::WireCodec`]
//! little-endian encodings — the same byte accounting the paper's §5
//! experiments declare — so the bytes crossing the pipe *are* the
//! measured communication.
//!
//! `FrameWriter`/`FrameReader` are generic over `io::Write`/`io::Read`
//! and count the physical bytes and frames they move; the Unix process
//! plumbing (fork/pipe/waitpid) lives in the `#[cfg(unix)]` half of this
//! module and is the only unsafe code in the workspace.

use std::io::{self, Read, Write};

use crate::wire::WireError;

/// Hard cap on a single frame's payload, chosen far above any chunk the
/// engine writes (pair frames are cut at `PAIR_CHUNK_BYTES`) but small
/// enough that a corrupted length prefix fails fast.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Target payload size for `PAIRS` frames: large enough to amortise the
/// header, small enough to stream (a worker never buffers a whole run).
pub(crate) const PAIR_CHUNK_BYTES: usize = 64 << 10;

/// Frame tags of the worker → coordinator protocol, in the order a worker
/// emits them: for each task a `TASK_BEGIN`, then per partition run a
/// `RUN_BEGIN` followed by `PAIRS` chunks, then `TASK_END`; state-store
/// journal ops (`STATE_SAVE`/`STATE_TAKE`) interleave after their task;
/// one final `WORKER_END` closes the stream.
pub(crate) mod tag {
    pub const TASK_BEGIN: u8 = 1;
    pub const RUN_BEGIN: u8 = 2;
    pub const PAIRS: u8 = 3;
    pub const TASK_END: u8 = 4;
    pub const STATE_SAVE: u8 = 5;
    pub const STATE_TAKE: u8 = 6;
    pub const WORKER_END: u8 = 7;
}

/// Typed failure of a multi-process job. Everything the coordinator can
/// observe going wrong — a missing codec, a dead worker, a short or
/// malformed frame — surfaces as one of these instead of a hang or panic.
#[derive(Debug)]
pub enum EngineError {
    /// The job was asked to run multi-process but its `JobSpec` never
    /// installed a wire codec (`with_wire_codec`).
    MissingWireCodec,
    /// A worker process died before completing its tasks: killed by a
    /// signal, or exited nonzero.
    WorkerDied {
        /// Index of the worker in the coordinator's spawn order.
        worker: usize,
        /// Exit code, when the worker exited.
        exit_code: Option<i32>,
        /// Signal number, when the worker was killed by a signal.
        signal: Option<i32>,
    },
    /// The byte stream from a worker ended in the middle of a frame.
    TruncatedFrame {
        /// Index of the worker whose stream was cut short.
        worker: usize,
    },
    /// A frame header declared a payload larger than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Declared payload length.
        declared: u32,
    },
    /// A structurally invalid frame sequence or payload.
    Protocol(&'static str),
    /// Pipe or process-management syscall failure.
    Io(io::Error),
    /// Multi-process mode is only implemented on Unix.
    Unsupported,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MissingWireCodec => write!(
                f,
                "multi-process mode requires JobSpec::with_wire_codec to install a pair codec"
            ),
            EngineError::WorkerDied {
                worker,
                exit_code,
                signal,
            } => match (exit_code, signal) {
                (_, Some(sig)) => write!(f, "map worker {worker} killed by signal {sig}"),
                (Some(code), _) => write!(f, "map worker {worker} exited with code {code}"),
                (None, None) => write!(f, "map worker {worker} died"),
            },
            EngineError::TruncatedFrame { worker } => {
                write!(f, "map worker {worker} stream ended mid-frame")
            }
            EngineError::FrameTooLarge { declared } => write!(
                f,
                "frame declares {declared} payload bytes (cap {MAX_FRAME_BYTES})"
            ),
            EngineError::Protocol(what) => write!(f, "worker protocol violation: {what}"),
            EngineError::Io(e) => write!(f, "transport i/o failure: {e}"),
            EngineError::Unsupported => {
                write!(f, "multi-process engine mode is only supported on unix")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => EngineError::Protocol("payload truncated"),
            WireError::Invalid(what) => EngineError::Protocol(what),
        }
    }
}

/// Writes framed messages, counting physical bytes (headers included) and
/// frames. The worker side wraps its pipe end in a `BufWriter` underneath
/// this, so each frame is one buffered copy, not one syscall.
pub(crate) struct FrameWriter<W: Write> {
    inner: W,
    /// Physical bytes written, including the 5-byte headers.
    pub bytes: u64,
    /// Frames written.
    pub frames: u64,
}

impl<W: Write> FrameWriter<W> {
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            bytes: 0,
            frames: 0,
        }
    }

    /// Writes one `[len][tag][payload]` frame.
    pub fn write_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        debug_assert!(payload.len() <= MAX_FRAME_BYTES as usize);
        let len = payload.len() as u32;
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(&[tag])?;
        self.inner.write_all(payload)?;
        self.bytes += 5 + u64::from(len);
        self.frames += 1;
        Ok(())
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reads framed messages, counting physical bytes and frames, and
/// distinguishing a clean end-of-stream (EOF at a frame boundary) from a
/// truncated one (EOF inside a frame).
pub(crate) struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Physical bytes read, including the 5-byte headers.
    pub bytes: u64,
    /// Frames read.
    pub frames: u64,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            bytes: 0,
            frames: 0,
        }
    }

    /// Reads the next frame. `Ok(None)` is a clean EOF at a frame
    /// boundary; EOF anywhere inside a frame is an
    /// [`EngineError::TruncatedFrame`] (reported with worker index 0 —
    /// the caller rewrites it with the real index).
    pub fn read_frame(&mut self) -> Result<Option<(u8, &[u8])>, EngineError> {
        let mut header = [0u8; 5];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Err(EngineError::TruncatedFrame { worker: 0 }),
            ReadOutcome::Full => {}
        }
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let frame_tag = header[4];
        if len > MAX_FRAME_BYTES {
            return Err(EngineError::FrameTooLarge { declared: len });
        }
        self.buf.resize(len as usize, 0);
        match read_exact_or_eof(&mut self.inner, &mut self.buf)? {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Partial if len == 0 => {}
            ReadOutcome::Eof | ReadOutcome::Partial => {
                return Err(EngineError::TruncatedFrame { worker: 0 })
            }
        }
        self.bytes += 5 + u64::from(len);
        self.frames += 1;
        Ok(Some((frame_tag, &self.buf)))
    }
}

enum ReadOutcome {
    /// The whole buffer was filled.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after at least one byte.
    Partial,
}

/// `read_exact`, but reporting *where* EOF happened instead of erasing it
/// into `UnexpectedEof` — the frame reader needs to tell a clean stream
/// end from a mid-frame cut.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Unix process plumbing: `fork`/`pipe`/`waitpid`/`_exit` via the C
/// library. Going through libc's `fork` (not a raw syscall) runs the
/// `pthread_atfork` handlers, which keeps the child's allocator usable
/// even when the parent has other live threads (as under `cargo test`).
#[cfg(unix)]
pub(crate) mod process {
    use std::fs::File;
    use std::io;
    use std::os::fd::FromRawFd;

    extern "C" {
        fn fork() -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        fn _exit(code: i32) -> !;
    }

    /// Worker exit code for "a map task panicked".
    pub const EXIT_PANIC: i32 = 101;
    /// Worker exit code for "the pipe to the coordinator failed" — which
    /// includes the coordinator dropping its read end on early abort.
    pub const EXIT_PIPE: i32 = 102;

    /// Creates a pipe and returns `(read end, write end)` as `File`s, so
    /// `Read`/`Write` retry `EINTR` and drop closes the fd.
    pub fn pipe_pair() -> io::Result<(File, File)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid pointer to two i32s, which is exactly
        // what pipe(2) writes on success.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: on success the two fds are freshly created, open, and
        // owned by nothing else — each File takes sole ownership.
        Ok(unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) })
    }

    /// Forks. Returns `Ok(None)` in the child, `Ok(Some(pid))` in the
    /// parent.
    pub fn fork_worker() -> io::Result<Option<i32>> {
        // SAFETY: libc fork has no preconditions; the child restricts
        // itself to the COW snapshot, its pipe, and _exit (it never
        // returns into the test harness or flushes inherited stdio).
        let pid = unsafe { fork() };
        match pid {
            -1 => Err(io::Error::last_os_error()),
            0 => Ok(None),
            pid => Ok(Some(pid)),
        }
    }

    /// How a reaped worker ended.
    #[derive(Debug, Clone, Copy)]
    pub enum Exit {
        Code(i32),
        Signal(i32),
    }

    /// Blocks until `pid` exits, retrying `EINTR`.
    pub fn wait_for(pid: i32) -> io::Result<Exit> {
        loop {
            let mut status = 0i32;
            // SAFETY: `status` is a valid out-pointer; waitpid only
            // writes through it.
            let r = unsafe { waitpid(pid, &mut status, 0) };
            if r == pid {
                // Decode per wait(2): low 7 bits carry the terminating
                // signal (0 for a normal exit), the next byte the code.
                return Ok(if status & 0x7f != 0 {
                    Exit::Signal(status & 0x7f)
                } else {
                    Exit::Code((status >> 8) & 0xff)
                });
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// Terminates the calling process immediately — no atexit handlers,
    /// no stdio flush (the child shares the parent's buffered stdout and
    /// must not flush a copy of it).
    pub fn exit_now(code: i32) -> ! {
        // SAFETY: _exit is async-signal-safe and diverges.
        unsafe { _exit(code) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(frames: &[(u8, &[u8])]) -> Vec<u8> {
        let mut w = FrameWriter::new(Vec::new());
        for (t, p) in frames {
            w.write_frame(*t, p).unwrap();
        }
        w.inner
    }

    #[test]
    fn frames_roundtrip_with_counters() {
        let payloads: [(u8, &[u8]); 3] = [(1, b"hello"), (3, &[]), (7, &[0xff; 300])];
        let bytes = frame_bytes(&payloads);
        let mut r = FrameReader::new(bytes.as_slice());
        for (want_tag, want_payload) in payloads {
            let (got_tag, got_payload) = r.read_frame().unwrap().unwrap();
            assert_eq!(got_tag, want_tag);
            assert_eq!(got_payload, want_payload);
        }
        assert!(r.read_frame().unwrap().is_none(), "clean EOF");
        assert_eq!(r.frames, 3);
        assert_eq!(r.bytes, (5 + 5) + 5 + (5 + 300));
    }

    #[test]
    fn writer_counts_physical_bytes() {
        let mut w = FrameWriter::new(Vec::new());
        w.write_frame(tag::PAIRS, &[1, 2, 3]).unwrap();
        assert_eq!(w.bytes, 8);
        assert_eq!(w.frames, 1);
        assert_eq!(w.inner.len(), 8);
    }

    #[test]
    fn eof_inside_header_is_truncated() {
        let bytes = frame_bytes(&[(2, b"abcdef")]);
        let mut r = FrameReader::new(&bytes[..3]);
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn eof_inside_payload_is_truncated() {
        let bytes = frame_bytes(&[(2, b"abcdef")]);
        let mut r = FrameReader::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        bytes.push(tag::PAIRS);
        let mut r = FrameReader::new(bytes.as_slice());
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn empty_payload_frames_work() {
        let bytes = frame_bytes(&[(tag::WORKER_END, &[])]);
        let mut r = FrameReader::new(bytes.as_slice());
        let (t, p) = r.read_frame().unwrap().unwrap();
        assert_eq!(t, tag::WORKER_END);
        assert!(p.is_empty());
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn errors_render_usefully() {
        let e = EngineError::WorkerDied {
            worker: 2,
            exit_code: None,
            signal: Some(6),
        };
        assert!(e.to_string().contains("signal 6"));
        let e = EngineError::WorkerDied {
            worker: 1,
            exit_code: Some(101),
            signal: None,
        };
        assert!(e.to_string().contains("code 101"));
        assert!(EngineError::MissingWireCodec
            .to_string()
            .contains("with_wire_codec"));
    }
}
