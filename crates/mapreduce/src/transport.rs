//! Length-prefixed frame transport for the multi-process engine mode.
//!
//! The distributed engine ([`crate::worker`]) moves map output between
//! forked worker processes and the coordinator over Unix pipes. Every
//! message is one *frame*:
//!
//! ```text
//! [len: u32 LE][tag: u8][payload: len bytes][crc32c: u32 LE]
//! ```
//!
//! `len` counts the payload only (the 5-byte header and 4-byte trailer
//! are excluded), and is capped at [`MAX_FRAME_BYTES`] so a corrupt
//! header cannot force a huge allocation. The trailer is the CRC32C of
//! header plus payload (the `crc` module); a mismatch surfaces as
//! [`EngineError::CorruptFrame`] instead of silently wrong data. Payloads
//! are encoded with the [`crate::wire::WireCodec`] little-endian
//! encodings — the same byte accounting the paper's §5 experiments
//! declare — so the bytes crossing the pipe *are* the measured
//! communication.
//!
//! `FrameWriter`/`FrameReader` are generic over `io::Write`/`io::Read`
//! and count the physical bytes and frames they move; the Unix process
//! plumbing (fork/pipe/waitpid/poll/kill) lives in the `#[cfg(unix)]`
//! half of this module and is the only unsafe code in the workspace.

use std::io::{self, Read, Write};

use crate::crc::Crc32c;
use crate::wire::WireError;

/// Hard cap on a single frame's payload, chosen far above any chunk the
/// engine writes (pair frames are cut at `PAIR_CHUNK_BYTES`) but small
/// enough that a corrupted length prefix fails fast.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Target payload size for `PAIRS` frames: large enough to amortise the
/// header, small enough to stream (a worker never buffers a whole run).
pub(crate) const PAIR_CHUNK_BYTES: usize = 64 << 10;

/// Frame tags of the worker → coordinator protocol, in the order a worker
/// emits them: for each task a `TASK_BEGIN`, then per partition run a
/// `RUN_BEGIN` followed by `PAIRS` chunks, then `TASK_END`; state-store
/// journal ops (`STATE_SAVE`/`STATE_TAKE`) interleave after their task;
/// one final `WORKER_END` closes the stream.
pub(crate) mod tag {
    pub const TASK_BEGIN: u8 = 1;
    pub const RUN_BEGIN: u8 = 2;
    pub const PAIRS: u8 = 3;
    pub const TASK_END: u8 = 4;
    pub const STATE_SAVE: u8 = 5;
    pub const STATE_TAKE: u8 = 6;
    pub const WORKER_END: u8 = 7;
}

/// Typed failure of a multi-process job. Everything the coordinator can
/// observe going wrong — a missing codec, a dead worker, a short or
/// malformed frame — surfaces as one of these instead of a hang or panic.
#[derive(Debug)]
pub enum EngineError {
    /// The job was asked to run multi-process but its `JobSpec` never
    /// installed a wire codec (`with_wire_codec`).
    MissingWireCodec,
    /// A worker process died before completing its tasks: killed by a
    /// signal, or exited nonzero.
    WorkerDied {
        /// Index of the worker in the coordinator's spawn order.
        worker: usize,
        /// Exit code, when the worker exited.
        exit_code: Option<i32>,
        /// Signal number, when the worker was killed by a signal.
        signal: Option<i32>,
    },
    /// The byte stream from a worker ended in the middle of a frame.
    TruncatedFrame {
        /// Index of the worker whose stream was cut short.
        worker: usize,
    },
    /// A frame header declared a payload larger than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Declared payload length.
        declared: u32,
    },
    /// A frame's CRC32C trailer did not match its header and payload:
    /// the bytes were silently corrupted somewhere between the worker's
    /// encoder and the coordinator's decoder.
    CorruptFrame {
        /// Index of the worker whose frame failed its checksum.
        worker: usize,
    },
    /// No bytes arrived from a worker within the configured read
    /// deadline ([`crate::EngineConfig::read_deadline_ms`]) — the worker
    /// is hung (or starved), and the coordinator refused to block on it
    /// forever.
    WorkerTimeout {
        /// Index of the worker whose stream went quiet.
        worker: usize,
        /// The deadline that elapsed, in milliseconds.
        deadline_ms: u64,
    },
    /// A structurally invalid frame sequence or payload.
    Protocol(&'static str),
    /// Pipe or process-management syscall failure.
    Io(io::Error),
    /// Multi-process mode is only implemented on Unix.
    Unsupported,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MissingWireCodec => write!(
                f,
                "multi-process mode requires JobSpec::with_wire_codec to install a pair codec"
            ),
            EngineError::WorkerDied {
                worker,
                exit_code,
                signal,
            } => match (exit_code, signal) {
                (_, Some(sig)) => write!(f, "map worker {worker} killed by signal {sig}"),
                (Some(code), _) => write!(f, "map worker {worker} exited with code {code}"),
                (None, None) => write!(f, "map worker {worker} died"),
            },
            EngineError::TruncatedFrame { worker } => {
                write!(f, "map worker {worker} stream ended mid-frame")
            }
            EngineError::FrameTooLarge { declared } => write!(
                f,
                "frame declares {declared} payload bytes (cap {MAX_FRAME_BYTES})"
            ),
            EngineError::CorruptFrame { worker } => {
                write!(f, "map worker {worker} sent a frame failing its CRC32C")
            }
            EngineError::WorkerTimeout {
                worker,
                deadline_ms,
            } => write!(
                f,
                "map worker {worker} sent nothing for {deadline_ms}ms (read deadline)"
            ),
            EngineError::Protocol(what) => write!(f, "worker protocol violation: {what}"),
            EngineError::Io(e) => write!(f, "transport i/o failure: {e}"),
            EngineError::Unsupported => {
                write!(f, "multi-process engine mode is only supported on unix")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => EngineError::Protocol("payload truncated"),
            WireError::Invalid(what) => EngineError::Protocol(what),
        }
    }
}

/// Deterministic stream corruptions a [`FrameWriter`] can be armed with —
/// the writer half of [`crate::FaultPlan`]. `None` everywhere in normal
/// operation; the chaos tests use these to manufacture exactly the wire
/// conditions the coordinator must survive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WriterFaults {
    /// After writing this many whole frames, emit a partial header and
    /// silently swallow every further frame (the stream ends mid-frame
    /// even though the writer "succeeds").
    pub truncate_after: Option<u64>,
    /// Flip a bit in this frame's CRC32C trailer, so the receiver sees a
    /// checksum mismatch on otherwise well-formed bytes.
    pub corrupt_frame: Option<u64>,
}

/// Writes framed messages, counting physical bytes (header and trailer
/// included) and frames. The worker side wraps its pipe end in a
/// `BufWriter` underneath this, so each frame is one buffered copy, not
/// one syscall.
pub(crate) struct FrameWriter<W: Write> {
    inner: W,
    faults: WriterFaults,
    /// Set once an injected truncation fired: all later frames are
    /// swallowed so the stream stays cut exactly where the fault said.
    dead: bool,
    /// Physical bytes written, including the 5-byte headers and 4-byte
    /// CRC trailers.
    pub bytes: u64,
    /// Frames written.
    pub frames: u64,
}

impl<W: Write> FrameWriter<W> {
    /// A writer with no injected faults (tests; production arms
    /// [`Self::with_faults`] with the resolved plan, usually empty).
    #[cfg(test)]
    pub fn new(inner: W) -> Self {
        Self::with_faults(inner, WriterFaults::default())
    }

    pub fn with_faults(inner: W, faults: WriterFaults) -> Self {
        Self {
            inner,
            faults,
            dead: false,
            bytes: 0,
            frames: 0,
        }
    }

    /// Writes one `[len][tag][payload][crc32c]` frame.
    pub fn write_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        debug_assert!(payload.len() <= MAX_FRAME_BYTES as usize);
        if self.dead {
            return Ok(());
        }
        let len = payload.len() as u32;
        let mut header = [0u8; 5];
        header[..4].copy_from_slice(&len.to_le_bytes());
        header[4] = tag;
        if self.faults.truncate_after == Some(self.frames) {
            // Injected truncation: leak a partial header, then go quiet.
            self.inner.write_all(&header[..3])?;
            self.inner.flush()?;
            self.dead = true;
            return Ok(());
        }
        let mut crc = Crc32c::new();
        crc.update(&header);
        crc.update(payload);
        let mut crc = crc.finish();
        if self.faults.corrupt_frame == Some(self.frames) {
            crc ^= 1;
        }
        self.inner.write_all(&header)?;
        self.inner.write_all(payload)?;
        self.inner.write_all(&crc.to_le_bytes())?;
        self.bytes += 9 + u64::from(len);
        self.frames += 1;
        Ok(())
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Consumes the writer, returning the underlying sink (used by tests
    /// that frame into a `Vec<u8>` and then decode it back).
    #[cfg(test)]
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Reads framed messages, counting physical bytes and frames,
/// distinguishing a clean end-of-stream (EOF at a frame boundary) from a
/// truncated one (EOF inside a frame), and verifying each frame's CRC32C
/// trailer.
pub(crate) struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Physical bytes read, including the 5-byte headers and 4-byte CRC
    /// trailers.
    pub bytes: u64,
    /// Frames read.
    pub frames: u64,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            bytes: 0,
            frames: 0,
        }
    }

    /// Reads the next frame. `Ok(None)` is a clean EOF at a frame
    /// boundary; EOF anywhere inside a frame is an
    /// [`EngineError::TruncatedFrame`], and a checksum mismatch an
    /// [`EngineError::CorruptFrame`] (both reported with worker index 0 —
    /// the caller rewrites it with the real index).
    pub fn read_frame(&mut self) -> Result<Option<(u8, &[u8])>, EngineError> {
        let mut header = [0u8; 5];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Err(EngineError::TruncatedFrame { worker: 0 }),
            ReadOutcome::Full => {}
        }
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let frame_tag = header[4];
        if len > MAX_FRAME_BYTES {
            return Err(EngineError::FrameTooLarge { declared: len });
        }
        // Payload and trailer are pulled in one read: the pipe is read
        // without intermediate buffering, so saving a syscall per frame
        // matters on the hot shuffle path.
        let len = len as usize;
        self.buf.resize(len + 4, 0);
        match read_exact_or_eof(&mut self.inner, &mut self.buf)? {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Partial => {
                return Err(EngineError::TruncatedFrame { worker: 0 })
            }
        }
        let trailer = u32::from_le_bytes(self.buf[len..].try_into().unwrap());
        let mut crc = Crc32c::new();
        crc.update(&header);
        crc.update(&self.buf[..len]);
        if crc.finish() != trailer {
            return Err(EngineError::CorruptFrame { worker: 0 });
        }
        self.bytes += 9 + len as u64;
        self.frames += 1;
        Ok(Some((frame_tag, &self.buf[..len])))
    }
}

enum ReadOutcome {
    /// The whole buffer was filled.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after at least one byte.
    Partial,
}

/// `read_exact`, but reporting *where* EOF happened instead of erasing it
/// into `UnexpectedEof` — the frame reader needs to tell a clean stream
/// end from a mid-frame cut.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Unix process plumbing: `fork`/`pipe`/`waitpid`/`poll`/`kill`/`_exit`
/// via the C library. Going through libc's `fork` (not a raw syscall)
/// runs the `pthread_atfork` handlers, which keeps the child's allocator
/// usable even when the parent has other live threads (as under
/// `cargo test`).
#[cfg(unix)]
pub(crate) mod process {
    use std::fs::File;
    use std::io::{self, Read};
    use std::os::fd::{AsRawFd, FromRawFd};
    use std::time::{Duration, Instant};

    /// `nfds_t` of poll(2): `unsigned long` on Linux/glibc/musl,
    /// `unsigned int` on the BSD family.
    #[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd"))]
    #[allow(non_camel_case_types)]
    type nfds_t = u32;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd")))]
    #[allow(non_camel_case_types)]
    type nfds_t = usize;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn fork() -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        fn poll(fds: *mut PollFd, nfds: nfds_t, timeout: i32) -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
        fn getpid() -> i32;
        fn _exit(code: i32) -> !;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    /// `O_NONBLOCK`: 0o4000 on Linux, 0x4 on the BSD family.
    #[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd"))]
    const O_NONBLOCK: i32 = 0x4;
    #[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd")))]
    const O_NONBLOCK: i32 = 0o4000;

    const POLLIN: i16 = 0x1;
    pub(crate) const SIGKILL: i32 = 9;

    /// Worker exit code for "a map task panicked".
    pub const EXIT_PANIC: i32 = 101;
    /// Worker exit code for "the pipe to the coordinator failed" — which
    /// includes the coordinator dropping its read end on early abort.
    pub const EXIT_PIPE: i32 = 102;

    /// `F_SETPIPE_SZ` (Linux): resize a pipe's kernel buffer.
    #[cfg(target_os = "linux")]
    const F_SETPIPE_SZ: i32 = 1024 + 7;

    /// Creates a pipe and returns `(read end, write end)` as `File`s, so
    /// `Read`/`Write` retry `EINTR` and drop closes the fd. On Linux the
    /// pipe buffer is grown from the default 64 KiB to 1 MiB (the
    /// unprivileged `pipe-max-size` default): a worker streaming spill
    /// frames then runs ~16 chunks ahead of the coordinator instead of
    /// one, which on few-core machines cuts the writer/reader context-
    /// switch ping-pong by the same factor. Best-effort — if the fcntl
    /// fails (old kernel, lowered sysctl) the pipe just stays at 64 KiB.
    pub fn pipe_pair() -> io::Result<(File, File)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid pointer to two i32s, which is exactly
        // what pipe(2) writes on success.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        #[cfg(target_os = "linux")]
        // SAFETY: fcntl on a freshly created, owned pipe fd; resizing
        // affects only the pipe object shared by the two fds.
        unsafe {
            fcntl(fds[1], F_SETPIPE_SZ, 1 << 20);
        }
        // SAFETY: on success the two fds are freshly created, open, and
        // owned by nothing else — each File takes sole ownership.
        Ok(unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) })
    }

    /// Forks. Returns `Ok(None)` in the child, `Ok(Some(pid))` in the
    /// parent.
    pub fn fork_worker() -> io::Result<Option<i32>> {
        // SAFETY: libc fork has no preconditions; the child restricts
        // itself to the COW snapshot, its pipe, and _exit (it never
        // returns into the test harness or flushes inherited stdio).
        let pid = unsafe { fork() };
        match pid {
            -1 => Err(io::Error::last_os_error()),
            0 => Ok(None),
            pid => Ok(Some(pid)),
        }
    }

    /// How a reaped worker ended.
    #[derive(Debug, Clone, Copy)]
    pub enum Exit {
        Code(i32),
        Signal(i32),
    }

    /// Blocks until `pid` exits, retrying `EINTR`.
    pub fn wait_for(pid: i32) -> io::Result<Exit> {
        loop {
            let mut status = 0i32;
            // SAFETY: `status` is a valid out-pointer; waitpid only
            // writes through it.
            let r = unsafe { waitpid(pid, &mut status, 0) };
            if r == pid {
                // Decode per wait(2): low 7 bits carry the terminating
                // signal (0 for a normal exit), the next byte the code.
                return Ok(if status & 0x7f != 0 {
                    Exit::Signal(status & 0x7f)
                } else {
                    Exit::Code((status >> 8) & 0xff)
                });
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// Terminates the calling process immediately — no atexit handlers,
    /// no stdio flush (the child shares the parent's buffered stdout and
    /// must not flush a copy of it).
    pub fn exit_now(code: i32) -> ! {
        // SAFETY: _exit is async-signal-safe and diverges.
        unsafe { _exit(code) }
    }

    /// Sends `SIGKILL` to `pid`. Returns whether the signal was
    /// delivered — `false` means the process was already gone (or never
    /// ours), which tells the coordinator the child died on its own
    /// rather than by this kill.
    pub fn kill_process(pid: i32) -> bool {
        // SAFETY: kill(2) with a specific positive pid affects only that
        // process; no memory is involved.
        unsafe { kill(pid, SIGKILL) == 0 }
    }

    /// Kills the calling process with `SIGKILL` — the fault-injection
    /// stand-in for a machine crash: no unwinding, no exit code, no
    /// chance to flush buffered frames.
    pub fn die_by_signal() -> ! {
        // SAFETY: signalling our own pid; SIGKILL cannot be handled, so
        // the loop below is never observed to spin.
        unsafe {
            kill(getpid(), SIGKILL);
        }
        loop {
            std::thread::yield_now();
        }
    }

    /// Blocks until `fd` is readable (or at EOF/error, which read(2)
    /// will then report), or until `timeout` elapses —
    /// `io::ErrorKind::TimedOut` in that case. Retries `EINTR` against
    /// the original deadline.
    fn wait_readable(fd: i32, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let ms = remaining.as_millis().min(i32::MAX as u128) as i32;
            let mut p = PollFd {
                fd,
                events: POLLIN,
                revents: 0,
            };
            // SAFETY: `p` is a valid pollfd for the duration of the call;
            // poll(2) only writes `revents`.
            match unsafe { poll(&mut p, 1, ms) } {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "pipe read deadline elapsed",
                    ))
                }
                r if r > 0 => return Ok(()),
                _ => {
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// A pipe read end that refuses to block longer than a deadline: the
    /// fd is switched to non-blocking, reads go straight to read(2), and
    /// only a `EWOULDBLOCK` (empty pipe) falls back to poll(2) with the
    /// deadline — so the common data-available case pays zero extra
    /// syscalls, and a worker that stops producing bytes surfaces as
    /// `io::ErrorKind::TimedOut` (which the coordinator converts to
    /// [`crate::EngineError::WorkerTimeout`]) instead of hanging the
    /// reader thread forever. The deadline is per read — an *idle*
    /// deadline — so a slow-but-alive worker that keeps streaming never
    /// trips it. With no deadline the fd stays blocking and reads pass
    /// through untouched.
    pub struct DeadlineReader {
        inner: File,
        deadline: Option<Duration>,
        /// Whether the fd was successfully switched to non-blocking; if
        /// not (fcntl failure), every deadline-armed read polls first —
        /// slower, but the deadline still holds.
        nonblocking: bool,
    }

    impl DeadlineReader {
        pub fn new(inner: File, deadline: Option<Duration>) -> Self {
            let nonblocking = deadline.is_some() && {
                // SAFETY: fcntl on an owned, open fd; F_SETFL with
                // O_NONBLOCK changes only the file status flags.
                let fd = inner.as_raw_fd();
                let flags = unsafe { fcntl(fd, F_GETFL, 0) };
                flags >= 0 && unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } >= 0
            };
            Self {
                inner,
                deadline,
                nonblocking,
            }
        }
    }

    impl Read for DeadlineReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let Some(d) = self.deadline else {
                return self.inner.read(buf);
            };
            if !self.nonblocking {
                wait_readable(self.inner.as_raw_fd(), d)?;
                return self.inner.read(buf);
            }
            loop {
                match self.inner.read(buf) {
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        wait_readable(self.inner.as_raw_fd(), d)?;
                    }
                    other => return other,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(frames: &[(u8, &[u8])]) -> Vec<u8> {
        let mut w = FrameWriter::new(Vec::new());
        for (t, p) in frames {
            w.write_frame(*t, p).unwrap();
        }
        w.inner
    }

    #[test]
    fn frames_roundtrip_with_counters() {
        let payloads: [(u8, &[u8]); 3] = [(1, b"hello"), (3, &[]), (7, &[0xff; 300])];
        let bytes = frame_bytes(&payloads);
        let mut r = FrameReader::new(bytes.as_slice());
        for (want_tag, want_payload) in payloads {
            let (got_tag, got_payload) = r.read_frame().unwrap().unwrap();
            assert_eq!(got_tag, want_tag);
            assert_eq!(got_payload, want_payload);
        }
        assert!(r.read_frame().unwrap().is_none(), "clean EOF");
        assert_eq!(r.frames, 3);
        assert_eq!(r.bytes, (9 + 5) + 9 + (9 + 300));
    }

    #[test]
    fn writer_counts_physical_bytes() {
        let mut w = FrameWriter::new(Vec::new());
        w.write_frame(tag::PAIRS, &[1, 2, 3]).unwrap();
        // 5-byte header + 3-byte payload + 4-byte CRC trailer.
        assert_eq!(w.bytes, 12);
        assert_eq!(w.frames, 1);
        assert_eq!(w.inner.len(), 12);
    }

    #[test]
    fn flipped_payload_bit_is_a_corrupt_frame() {
        let mut bytes = frame_bytes(&[(tag::PAIRS, b"payload bytes")]);
        bytes[7] ^= 0x40;
        let mut r = FrameReader::new(bytes.as_slice());
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::CorruptFrame { worker: 0 })
        ));
    }

    #[test]
    fn flipped_trailer_bit_is_a_corrupt_frame() {
        let mut bytes = frame_bytes(&[(tag::WORKER_END, &[])]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut r = FrameReader::new(bytes.as_slice());
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn eof_inside_trailer_is_truncated() {
        let bytes = frame_bytes(&[(2, b"abcdef")]);
        // Cut inside the 4-byte CRC trailer.
        let mut r = FrameReader::new(&bytes[..bytes.len() - 2]);
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn frame_exactly_at_cap_roundtrips() {
        // A payload of exactly MAX_FRAME_BYTES is legal — the cap is
        // inclusive — and must survive the checksum round trip.
        let payload = vec![0xa5u8; MAX_FRAME_BYTES as usize];
        let mut w = FrameWriter::new(Vec::new());
        w.write_frame(tag::PAIRS, &payload).unwrap();
        assert_eq!(w.bytes, 9 + u64::from(MAX_FRAME_BYTES));
        let mut r = FrameReader::new(w.inner.as_slice());
        let (t, p) = r.read_frame().unwrap().unwrap();
        assert_eq!(t, tag::PAIRS);
        assert_eq!(p.len(), payload.len());
        assert!(p == payload.as_slice());
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn injected_truncation_cuts_the_stream_mid_frame() {
        let mut w = FrameWriter::with_faults(
            Vec::new(),
            WriterFaults {
                truncate_after: Some(1),
                corrupt_frame: None,
            },
        );
        w.write_frame(tag::TASK_BEGIN, b"ok").unwrap();
        w.write_frame(tag::TASK_END, &[]).unwrap();
        w.write_frame(tag::WORKER_END, &[9]).unwrap();
        // One whole frame, then 3 bytes of a header, then silence.
        assert_eq!(w.frames, 1);
        let mut r = FrameReader::new(w.inner.as_slice());
        assert!(r.read_frame().unwrap().is_some());
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn injected_corruption_flips_one_trailer() {
        let mut w = FrameWriter::with_faults(
            Vec::new(),
            WriterFaults {
                truncate_after: None,
                corrupt_frame: Some(1),
            },
        );
        w.write_frame(tag::TASK_BEGIN, b"fine").unwrap();
        w.write_frame(tag::PAIRS, b"poisoned").unwrap();
        let mut r = FrameReader::new(w.inner.as_slice());
        assert!(r.read_frame().unwrap().is_some());
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::CorruptFrame { .. })
        ));
    }

    #[cfg(unix)]
    #[test]
    fn deadline_reader_times_out_on_a_silent_pipe() {
        use std::time::{Duration, Instant};
        let (read_end, _write_end) = process::pipe_pair().unwrap();
        let mut reader = process::DeadlineReader::new(read_end, Some(Duration::from_millis(50)));
        let start = Instant::now();
        let err = std::io::Read::read(&mut reader, &mut [0u8; 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[cfg(unix)]
    #[test]
    fn deadline_reader_passes_bytes_and_eof_through() {
        use std::io::Write;
        use std::time::Duration;
        let (read_end, mut write_end) = process::pipe_pair().unwrap();
        write_end.write_all(b"abc").unwrap();
        drop(write_end);
        let mut reader = process::DeadlineReader::new(read_end, Some(Duration::from_millis(200)));
        let mut buf = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut buf).unwrap();
        assert_eq!(buf, b"abc");
    }

    #[test]
    fn eof_inside_header_is_truncated() {
        let bytes = frame_bytes(&[(2, b"abcdef")]);
        let mut r = FrameReader::new(&bytes[..3]);
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn eof_inside_payload_is_truncated() {
        let bytes = frame_bytes(&[(2, b"abcdef")]);
        let mut r = FrameReader::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        bytes.push(tag::PAIRS);
        let mut r = FrameReader::new(bytes.as_slice());
        assert!(matches!(
            r.read_frame(),
            Err(EngineError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn empty_payload_frames_work() {
        let bytes = frame_bytes(&[(tag::WORKER_END, &[])]);
        let mut r = FrameReader::new(bytes.as_slice());
        let (t, p) = r.read_frame().unwrap().unwrap();
        assert_eq!(t, tag::WORKER_END);
        assert!(p.is_empty());
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn errors_render_usefully() {
        let e = EngineError::WorkerDied {
            worker: 2,
            exit_code: None,
            signal: Some(6),
        };
        assert!(e.to_string().contains("signal 6"));
        let e = EngineError::WorkerDied {
            worker: 1,
            exit_code: Some(101),
            signal: None,
        };
        assert!(e.to_string().contains("code 101"));
        assert!(EngineError::MissingWireCodec
            .to_string()
            .contains("with_wire_codec"));
        assert!(EngineError::CorruptFrame { worker: 3 }
            .to_string()
            .contains("CRC32C"));
        let e = EngineError::WorkerTimeout {
            worker: 0,
            deadline_ms: 250,
        };
        assert!(e.to_string().contains("250ms"));
    }
}
