//! The pipelined, partition-parallel execution engine.
//!
//! ```text
//!  map workers (N threads)          shuffle              reduce workers (P threads)
//! ┌──────────────────────────┐                        ┌───────────────────────────┐
//! │ task → MapContext        │   regroup runs by      │ partition 0: k-way merge  │
//! │   ├─ streaming combine   │   partition, splits    │   of m sorted runs        │──┐
//! │   ├─ partition pairs     │   stay in id order     │   → reduce(key, values)   │  │ stitch
//! │   └─ sort each partition │ ─────────────────────▶ │ partition 1: …            │──┼─▶ outputs
//! │      run by (key,arrive) │                        │ …                         │  │ + finish
//! │      = the "spill"       │                        │ partition R-1: …          │──┘
//! └──────────────────────────┘                        └───────────────────────────┘
//! ```
//!
//! Three properties make this both fast and exactly deterministic:
//!
//! 1. **Spills are pre-sorted per partition inside the map workers.** The
//!    expensive `O(n log n)` comparison work happens in parallel, and the
//!    old single-threaded global sort disappears entirely.
//! 2. **The shuffle is a k-way merge per partition.** Each partition merges
//!    its `m` sorted runs through an `m`-entry binary heap — `O(n log m)`
//!    comparisons on `(key, split)` only. The partition component never
//!    enters a comparison (each merge *is* one partition), and keys are
//!    moved, never cloned.
//! 3. **Reduce partitions run in parallel with deterministic stitching.**
//!    Every partition gets its own [`ReduceContext`]; outputs and charged
//!    CPU are recombined in partition-index order, so the result — outputs,
//!    metrics, and float summation order — is identical for any
//!    `reducer_parallelism`, including 1.
//!
//! The determinism contract of the seed engine is preserved exactly: within
//! a partition, the reduce function observes key groups in key order and
//! each group's values in `(split id, arrival order)` order. The seed
//! engine itself survives as [`crate::reference::run_job_reference`] — an
//! executable specification that differential tests and `wh-bench` compare
//! this engine against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::context::{MapContext, ReduceContext};
use crate::cost::{round_time, ClusterConfig, ReduceWork, TaskWork};
use crate::job::{CombineFn, JobOutput, JobSpec, MapTask};
use crate::metrics::RunMetrics;
use crate::wire::WireSize;
use wh_wavelet::hash::{FxHashMap, FxHasher};

/// Borrowed form of the shared reduce function, passed into the merge
/// machinery.
type ReduceDyn<K, V, R> = dyn Fn(&K, &[V], &mut ReduceContext<R>) + Send + Sync;

/// Which executor [`crate::run_job`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The pipelined, partition-parallel engine in this module.
    #[default]
    Pipelined,
    /// The seed engine (global sort + sequential reduce), kept as the
    /// executable specification and benchmark baseline.
    Reference,
}

/// Execution-engine knobs, orthogonal to the algorithmic content of a
/// [`JobSpec`]. Every knob preserves the deterministic output contract;
/// they only trade memory, parallelism, and constant factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Executor selection (pipelined vs the seed reference engine).
    pub mode: EngineMode,
    /// Number of reduce partitions (the paper always uses 1).
    pub num_reducers: u32,
    /// Reduce-side worker threads; `0` means one per available core,
    /// capped at the partition count.
    pub reducer_parallelism: usize,
    /// Apply the Combine function incrementally at emit time instead of
    /// materializing every raw pair until the task ends. Requires the
    /// combiner to be associative (Hadoop's combiner contract); all
    /// engine-visible metrics are byte-identical to batch combining.
    pub streaming_combine: bool,
    /// Pair-buffer size that triggers an in-flight combine when streaming;
    /// `0` combines only once, when the spill is collected.
    pub spill_chunk: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: EngineMode::Pipelined,
            num_reducers: 1,
            reducer_parallelism: 0,
            streaming_combine: false,
            spill_chunk: 0,
        }
    }
}

impl EngineConfig {
    /// The default pipelined configuration.
    pub fn pipelined() -> Self {
        Self::default()
    }

    /// The seed reference engine (global sort, sequential reduce).
    pub fn reference() -> Self {
        Self {
            mode: EngineMode::Reference,
            ..Self::default()
        }
    }

    /// Sets the number of reduce partitions.
    pub fn with_reducers(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one reducer");
        self.num_reducers = n;
        self
    }

    /// Sets the reduce-side thread count (`0` = one per available core).
    pub fn with_reducer_parallelism(mut self, threads: usize) -> Self {
        self.reducer_parallelism = threads;
        self
    }

    /// Toggles streaming (emit-time) combining.
    pub fn with_streaming_combine(mut self, on: bool) -> Self {
        self.streaming_combine = on;
        self
    }

    /// Sets the spill chunk size for streaming combining.
    pub fn with_spill_chunk(mut self, pairs: usize) -> Self {
        self.spill_chunk = pairs;
        self
    }
}

/// The default partitioner: a deterministic Fx hash of the key. With one
/// reducer every key lands in partition 0 either way; with several, keys
/// spread evenly without any per-job configuration.
pub fn default_partition<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Groups `pairs` by key (preserving each key's value arrival order),
/// applies the Combine function once per key, and returns the surviving
/// pairs in ascending key order. Shared by the streaming compactor, the
/// batch combine path, and the reference engine, so all three agree on
/// combiner semantics byte for byte.
pub(crate) fn group_combine<K, V>(
    pairs: Vec<(K, V)>,
    comb: &(dyn Fn(&K, &mut Vec<V>) + Send + Sync),
) -> Vec<(K, V)>
where
    K: Ord + Hash + Clone,
{
    let mut groups: FxHashMap<K, Vec<V>> = FxHashMap::default();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    let mut keys: Vec<K> = groups.keys().cloned().collect();
    keys.sort_unstable();
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let mut vs = groups.remove(&k).expect("key collected from this map");
        comb(&k, &mut vs);
        for v in vs {
            out.push((k.clone(), v));
        }
    }
    out
}

/// One map task's spill: per-partition runs, each sorted by
/// `(key, arrival order)`, plus the task's accounting.
struct TaskSpill<K, V> {
    split_id: u32,
    runs: Vec<Vec<(K, V)>>,
    work: TaskWork,
    records_read: u64,
    pairs: u64,
    bytes: u64,
}

/// Executes one round on the pipelined engine. Entry point is
/// [`crate::run_job`], which dispatches on [`EngineConfig::mode`].
pub(crate) fn execute<K, V, R>(cluster: &ClusterConfig, spec: JobSpec<K, V, R>) -> JobOutput<R>
where
    K: Ord + Hash + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
    R: Send,
{
    let JobSpec {
        map_tasks,
        combiner,
        partitioner,
        reduce,
        broadcast_bytes,
        finish,
        engine,
        ..
    } = spec;
    assert!(engine.num_reducers >= 1, "need at least one reducer");
    let nparts = engine.num_reducers as usize;

    // ---- Map phase (parallel): run, combine, partition, sort — all
    // inside the worker thread that owns the task. ----
    let map_start = Instant::now();
    let task_queue: Vec<Mutex<Option<MapTask<K, V>>>> =
        map_tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let spills: Mutex<Vec<TaskSpill<K, V>>> = Mutex::new(Vec::with_capacity(task_queue.len()));
    let workers = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(task_queue.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= task_queue.len() {
                    break;
                }
                let task = task_queue[i].lock().take().expect("each task taken once");
                let mut ctx = MapContext::new(task.split_id);
                if engine.streaming_combine {
                    if let Some(comb) = &combiner {
                        ctx.install_compactor(
                            make_compactor(CombineFn::clone(comb)),
                            engine.spill_chunk,
                        );
                    }
                }
                (task.run)(&mut ctx);
                let MapContext {
                    mut pairs,
                    compactor,
                    records_read,
                    bytes_read,
                    cpu_ops,
                    ..
                } = ctx;
                if let Some(compact) = &compactor {
                    // Streaming mode: one final full grouping so every key
                    // ends fully combined, exactly like the batch path.
                    compact(&mut pairs);
                } else if let Some(comb) = &combiner {
                    pairs = group_combine(pairs, comb.as_ref());
                }
                let mut npairs = 0u64;
                let mut nbytes = 0u64;
                for (k, v) in &pairs {
                    npairs += 1;
                    nbytes += k.wire_bytes() + v.wire_bytes();
                }
                let mut runs: Vec<Vec<(K, V)>> = if nparts == 1 {
                    vec![pairs]
                } else {
                    // Reserve the expected per-partition share up front so
                    // the scatter loop rarely reallocates.
                    let expect = pairs.len() / nparts + 16;
                    let mut rs: Vec<Vec<(K, V)>> =
                        (0..nparts).map(|_| Vec::with_capacity(expect)).collect();
                    for (k, v) in pairs {
                        let p = (partitioner(&k) % nparts as u64) as usize;
                        rs[p].push((k, v));
                    }
                    rs
                };
                for run in &mut runs {
                    // Stable by key: arrival order within a key survives.
                    run.sort_by(|a, b| a.0.cmp(&b.0));
                }
                spills.lock().push(TaskSpill {
                    split_id: task.split_id,
                    runs,
                    work: TaskWork {
                        bytes_scanned: bytes_read,
                        cpu_ops,
                    },
                    records_read,
                    pairs: npairs,
                    bytes: nbytes,
                });
            });
        }
        // std::thread::scope joins all workers and re-raises any panic.
    });

    let mut per_task = spills.into_inner();
    per_task.sort_by_key(|t| t.split_id);
    let wall_map_s = map_start.elapsed().as_secs_f64();

    // ---- Shuffle: regroup spill runs into per-partition merge inputs
    // (runs stay in split-id order) and account communication. ----
    let shuffle_start = Instant::now();
    let mut metrics = RunMetrics {
        rounds: 1,
        broadcast_bytes,
        ..Default::default()
    };
    let mut task_work = Vec::with_capacity(per_task.len());
    let mut partitions: Vec<Vec<Vec<(K, V)>>> = (0..nparts)
        .map(|_| Vec::with_capacity(per_task.len()))
        .collect();
    for t in per_task {
        task_work.push(t.work);
        metrics.records_scanned += t.records_read;
        metrics.bytes_scanned += t.work.bytes_scanned;
        metrics.cpu_ops += t.work.cpu_ops;
        metrics.map_output_pairs += t.pairs;
        metrics.shuffle_bytes += t.bytes;
        for (p, run) in t.runs.into_iter().enumerate() {
            if !run.is_empty() {
                partitions[p].push(run);
            }
        }
    }
    let wall_shuffle_s = shuffle_start.elapsed().as_secs_f64();

    // ---- Reduce phase: one context per partition, optionally in
    // parallel, stitched in partition-index order. ----
    let reduce_start = Instant::now();
    let threads = if engine.reducer_parallelism == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        engine.reducer_parallelism
    }
    .min(nparts)
    .max(1);

    let contexts: Vec<ReduceContext<R>> = if threads <= 1 {
        partitions
            .into_iter()
            .map(|runs| {
                let mut rctx = ReduceContext::new();
                reduce_partition(runs, reduce.as_ref(), &mut rctx);
                rctx
            })
            .collect()
    } else {
        type Slot<K, V, R> = Mutex<(Option<Vec<Vec<(K, V)>>>, Option<ReduceContext<R>>)>;
        let slots: Vec<Slot<K, V, R>> = partitions
            .into_iter()
            .map(|runs| Mutex::new((Some(runs), None)))
            .collect();
        let next_part = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let p = next_part.fetch_add(1, Ordering::Relaxed);
                    if p >= slots.len() {
                        break;
                    }
                    let runs = slots[p].lock().0.take().expect("each partition taken once");
                    let mut rctx = ReduceContext::new();
                    reduce_partition(runs, reduce.as_ref(), &mut rctx);
                    slots[p].lock().1 = Some(rctx);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().1.expect("every partition reduced"))
            .collect()
    };

    // Deterministic stitching: outputs and charged CPU recombine in
    // partition order, so float summation order is independent of the
    // thread count.
    let mut outputs = Vec::new();
    let mut reduce_cpu = 0.0f64;
    for mut rctx in contexts {
        reduce_cpu += rctx.cpu_ops;
        outputs.append(&mut rctx.outputs);
    }
    if let Some(f) = finish {
        let mut rctx = ReduceContext::new();
        f(&mut rctx);
        reduce_cpu += rctx.cpu_ops;
        outputs.append(&mut rctx.outputs);
    }
    let wall_reduce_s = reduce_start.elapsed().as_secs_f64();

    metrics.cpu_ops += reduce_cpu;
    metrics.sim_time_s = round_time(
        cluster,
        &task_work,
        ReduceWork {
            cpu_ops: reduce_cpu,
        },
        metrics.shuffle_bytes,
        metrics.broadcast_bytes,
    );
    metrics.wall_map_s = wall_map_s;
    metrics.wall_shuffle_s = wall_shuffle_s;
    metrics.wall_reduce_s = wall_reduce_s;

    JobOutput { outputs, metrics }
}

fn make_compactor<K, V>(comb: CombineFn<K, V>) -> crate::context::Compactor<K, V>
where
    K: Ord + Hash + Clone + Send + 'static,
    V: Send + 'static,
{
    Box::new(move |pairs| {
        if pairs.len() > 1 {
            *pairs = group_combine(std::mem::take(pairs), comb.as_ref());
        }
    })
}

/// Reduces one partition: merges its sorted runs and invokes `reduce` per
/// key group, values in `(split id, arrival order)` order.
fn reduce_partition<K, V, R>(
    runs: Vec<Vec<(K, V)>>,
    reduce: &ReduceDyn<K, V, R>,
    rctx: &mut ReduceContext<R>,
) where
    K: Ord,
{
    match runs.len() {
        0 => {}
        1 => {
            let run = runs.into_iter().next().expect("one run");
            reduce_sorted_run(run, reduce, rctx);
        }
        _ => merge_runs(runs, reduce, rctx),
    }
}

/// Groups adjacent equal keys of one already-sorted run — no comparisons
/// beyond equality, no heap.
fn reduce_sorted_run<K, V, R>(
    run: Vec<(K, V)>,
    reduce: &ReduceDyn<K, V, R>,
    rctx: &mut ReduceContext<R>,
) where
    K: Ord,
{
    let mut iter = run.into_iter();
    let Some((mut key, first)) = iter.next() else {
        return;
    };
    let mut values = vec![first];
    for (k, v) in iter {
        if k == key {
            values.push(v);
        } else {
            reduce(&key, &values, rctx);
            values.clear();
            key = k;
            values.push(v);
        }
    }
    reduce(&key, &values, rctx);
}

/// Heap entry of the k-way merge. Ordering compares `(key, run index)`
/// only — runs are stored in split-id order, so the merge yields the
/// global `(key, split id, arrival order)` sequence. The carried value
/// never participates in comparisons.
struct MergeEntry<K, V> {
    key: K,
    run: usize,
    value: V,
}

impl<K: Ord, V> PartialEq for MergeEntry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}

impl<K: Ord, V> Eq for MergeEntry<K, V> {}

impl<K: Ord, V> PartialOrd for MergeEntry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, V> Ord for MergeEntry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.run.cmp(&other.run))
    }
}

/// Fan-in above which the merge switches from the binary heap to the
/// pairwise ladder: wide heaps pay `2·log₂ m` branchy sift steps per
/// element, while the ladder's sequential two-way merges cost exactly
/// `log₂ m` predictable comparisons plus streaming copies.
const HEAP_MERGE_MAX_RUNS: usize = 8;

/// Merges `m` sorted runs and feeds key groups straight into `reduce` —
/// the shuffle never materializes a global concatenated vector and never
/// compares partition ids. Narrow fan-ins use the `m`-entry min-heap
/// (O(1) extra memory); wide fan-ins use [`ladder_merge`].
fn merge_runs<K, V, R>(
    runs: Vec<Vec<(K, V)>>,
    reduce: &ReduceDyn<K, V, R>,
    rctx: &mut ReduceContext<R>,
) where
    K: Ord,
{
    if runs.len() > HEAP_MERGE_MAX_RUNS {
        let merged = ladder_merge(runs);
        reduce_sorted_run(merged, reduce, rctx);
        return;
    }
    let mut iters: Vec<std::vec::IntoIter<(K, V)>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<MergeEntry<K, V>>> = BinaryHeap::with_capacity(iters.len());
    for (run, it) in iters.iter_mut().enumerate() {
        if let Some((key, value)) = it.next() {
            heap.push(Reverse(MergeEntry { key, run, value }));
        }
    }
    let mut values: Vec<V> = Vec::new();
    while let Some(Reverse(MergeEntry { key, run, value })) = heap.pop() {
        values.clear();
        values.push(value);
        if let Some((k, v)) = iters[run].next() {
            heap.push(Reverse(MergeEntry {
                key: k,
                run,
                value: v,
            }));
        }
        while heap.peek().is_some_and(|Reverse(entry)| entry.key == key) {
            let Reverse(MergeEntry {
                run: r, value: v, ..
            }) = heap.pop().expect("peeked entry");
            values.push(v);
            if let Some((k2, v2)) = iters[r].next() {
                heap.push(Reverse(MergeEntry {
                    key: k2,
                    run: r,
                    value: v2,
                }));
            }
        }
        reduce(&key, &values, rctx);
    }
}

/// Pairwise-merge ladder: merges adjacent runs two at a time until one
/// sorted run remains. Runs stay in split-id order and ties always take
/// from the left (lower split), so the result is the exact
/// `(key, split id, arrival order)` sequence of the heap merge. Peak
/// memory is one extra copy of the partition, freed level by level.
fn ladder_merge<K: Ord, V>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    let mut level = runs;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.into_iter().next().unwrap_or_default()
}

/// Stable two-way merge; ties take from `a` (the lower split ids).
fn merge_two<K: Ord, V>(a: Vec<(K, V)>, b: Vec<(K, V)>) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter();
    let mut ib = b.into_iter();
    let mut na = ia.next();
    let mut nb = ib.next();
    loop {
        match (na.take(), nb.take()) {
            (Some(x), Some(y)) => {
                if x.0 <= y.0 {
                    out.push(x);
                    na = ia.next();
                    nb = Some(y);
                } else {
                    out.push(y);
                    nb = ib.next();
                    na = Some(x);
                }
            }
            (Some(x), None) => {
                out.push(x);
                out.extend(ia);
                break;
            }
            (None, Some(y)) => {
                out.push(y);
                out.extend(ib);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_groups(runs: Vec<Vec<(u32, u32)>>) -> Vec<(u32, Vec<u32>)> {
        let mut rctx = ReduceContext::new();
        let reduce = |k: &u32, vs: &[u32], ctx: &mut ReduceContext<(u32, Vec<u32>)>| {
            ctx.emit((*k, vs.to_vec()));
        };
        reduce_partition(runs, &reduce, &mut rctx);
        rctx.outputs
    }

    #[test]
    fn merge_yields_key_then_run_order() {
        // Runs are per split (split order = vector order).
        let runs = vec![
            vec![(1, 10), (1, 11), (5, 12)],
            vec![(1, 20), (2, 21)],
            vec![(2, 30), (5, 31), (9, 32)],
        ];
        assert_eq!(
            collect_groups(runs),
            vec![
                (1, vec![10, 11, 20]),
                (2, vec![21, 30]),
                (5, vec![12, 31]),
                (9, vec![32]),
            ]
        );
    }

    #[test]
    fn both_merge_routes_yield_the_specified_sequence() {
        // Heap (m ≤ 8) and ladder (m > 8) must both produce the sequence
        // of a stable global sort by (key, run index).
        let mk_runs = |m: usize| -> Vec<Vec<(u32, u32)>> {
            (0..m)
                .map(|r| {
                    let mut run: Vec<(u32, u32)> = (0..20)
                        .map(|i| ((i * (r as u32 + 3)) % 17, (r * 100 + i as usize) as u32))
                        .collect();
                    run.sort_by_key(|&(k, _)| k);
                    run
                })
                .collect()
        };
        for m in [2, 3, 8, 9, 13, 32] {
            let mut expected_pairs: Vec<(u32, usize, u32)> = mk_runs(m)
                .into_iter()
                .enumerate()
                .flat_map(|(r, run)| run.into_iter().map(move |(k, v)| (k, r, v)))
                .collect();
            expected_pairs.sort_by_key(|&(k, r, _)| (k, r));
            let mut expected: Vec<(u32, Vec<u32>)> = Vec::new();
            for (k, _, v) in expected_pairs {
                match expected.last_mut() {
                    Some((key, vs)) if *key == k => vs.push(v),
                    _ => expected.push((k, vec![v])),
                }
            }
            assert_eq!(collect_groups(mk_runs(m)), expected, "m={m}");
        }
    }

    #[test]
    fn merge_two_is_stable_on_ties() {
        let a = vec![(1u32, 'a'), (3, 'b')];
        let b = vec![(1u32, 'c'), (3, 'd')];
        assert_eq!(
            merge_two(a, b),
            vec![(1, 'a'), (1, 'c'), (3, 'b'), (3, 'd')]
        );
    }

    #[test]
    fn single_run_fast_path_groups_adjacent() {
        let runs = vec![vec![(3, 1), (3, 2), (4, 3)]];
        assert_eq!(collect_groups(runs), vec![(3, vec![1, 2]), (4, vec![3])]);
    }

    #[test]
    fn empty_partition_reduces_nothing() {
        assert!(collect_groups(vec![]).is_empty());
        assert!(collect_groups(vec![vec![]]).is_empty());
    }

    #[test]
    fn group_combine_sorts_keys_and_preserves_value_order() {
        let pairs = vec![(9u32, 1u64), (2, 2), (9, 3), (2, 4)];
        let out = group_combine(pairs, &|_k, _vs| {});
        assert_eq!(out, vec![(2, 2), (2, 4), (9, 1), (9, 3)]);
    }

    #[test]
    fn default_partition_is_deterministic_and_spread() {
        let a = default_partition(&42u64);
        let b = default_partition(&42u64);
        assert_eq!(a, b);
        // Different keys land in different partitions (mod small R).
        let hits: std::collections::HashSet<u64> =
            (0..64u64).map(|k| default_partition(&k) % 8).collect();
        assert!(hits.len() >= 4, "hash spreads keys across partitions");
    }
}
