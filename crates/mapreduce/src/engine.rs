//! The pipelined, partition-parallel execution engine.
//!
//! ```text
//!  map workers (N threads)          shuffle              reduce workers (P threads)
//! ┌──────────────────────────┐                        ┌───────────────────────────┐
//! │ task → MapContext        │   regroup runs by      │ partition 0: k-way merge  │
//! │   ├─ streaming combine   │   partition, splits    │   of m sorted runs        │──┐
//! │   ├─ partition pairs     │   stay in id order     │   → reduce(key, values)   │  │ stitch
//! │   └─ sort each partition │ ─────────────────────▶ │ partition 1: …            │──┼─▶ outputs
//! │      run by (key,arrive) │                        │ …                         │  │ + finish
//! │      = the "spill"       │                        │ partition R-1: …          │──┘
//! └──────────────────────────┘                        └───────────────────────────┘
//! ```
//!
//! Three properties make this both fast and exactly deterministic:
//!
//! 1. **Spills are pre-sorted per partition inside the map workers.** The
//!    sort work happens in parallel, and the old single-threaded global
//!    sort disappears entirely. Jobs whose keys carry a
//!    [`RadixKey`](crate::RadixKey) codec ([`crate::JobSpec::with_radix_keys`])
//!    sort spill runs with the LSD radix sort in [`crate::radix`] —
//!    `O(n · key bytes)` with branch-free inner loops — and jobs that also
//!    declare a bounded key domain ([`EngineConfig::key_domain_hint`])
//!    combine through the flat-array table (the `dense` module) instead of
//!    a hash map. Both specializations produce bit-identical output to the
//!    comparison/hash paths they replace.
//! 2. **The reduce side picks an explicit strategy per job** — recorded
//!    per partition in [`RunMetrics::reduce_strategies`]:
//!
//!    | [`ReduceStrategy`] | when | what a partition does |
//!    |---|---|---|
//!    | `DenseReduce` | radix codec + [`EngineConfig::key_domain_hint`] small enough for a flat array | aggregates its unsorted runs straight into a recycled slot array sized to the partition's actual key range (`dense::DenseReducer`) — no sort, no merge |
//!    | `SortAtReduce` | radix codec, several partitions, domain too wide (or absent) | radix-sorts its split-ordered run concatenation once, stably, then groups adjacent keys |
//!    | `Merge` | no codec, or a single partition without a dense domain | k-way merges runs pre-sorted inside the map workers (`m`-entry heap, `O(n log m)` comparisons on `(key, split)` only) |
//!
//!    For the non-`Merge` strategies the map workers skip the per-run
//!    sort entirely and ship runs in arrival order. Every strategy
//!    delivers the identical sequence to the reduce function, so outputs
//!    are bit-identical across strategies (differential tests enforce it).
//! 3. **Reduce partitions run in parallel with deterministic stitching.**
//!    Every partition gets its own [`ReduceContext`]; outputs and charged
//!    CPU are recombined in partition-index order, so the result — outputs,
//!    metrics, and float summation order — is identical for any
//!    `reducer_parallelism`, including 1.
//!
//! Workers recycle their buffers across work items on both sides: map
//! workers keep the emit buffer, the radix-sort scratch, and the dense
//! combine table per worker, not per task, and reduce workers keep a
//! radix scratch plus a `DenseReducer` table per thread, recycled across
//! the partitions that thread reduces. Tiny jobs skip thread machinery
//! entirely: the map loop runs inline when only one worker would be
//! spawned, and the reduce phase stays serial below a pair-count spawn
//! threshold.
//!
//! The determinism contract of the seed engine is preserved exactly: within
//! a partition, the reduce function observes key groups in key order and
//! each group's values in `(split id, arrival order)` order. The seed
//! engine itself survives as [`crate::reference::run_job_reference`] — an
//! executable specification that differential tests and `wh-bench` compare
//! this engine against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::context::{MapContext, ReduceContext};
use crate::cost::{round_time, ClusterConfig, ReduceWork, TaskWork};
use crate::dense::{DenseReducer, DenseTable};
use crate::job::{CombineFn, JobOutput, JobSpec, MapTask, PartitionFn};
use crate::metrics::{ReduceStrategy, RunMetrics};
use crate::radix::{sort_pairs_with, RadixScratch};
use crate::wire::WireSize;
use wh_wavelet::hash::FxHasher;

/// Borrowed form of the shared reduce function, passed into the merge
/// machinery.
pub(crate) type ReduceDyn<K, V, R> = dyn Fn(&K, &[V], &mut ReduceContext<R>) + Send + Sync;

/// Borrowed form of the shared Combine function.
type CombineDyn<K, V> = dyn Fn(&K, &mut Vec<V>) + Send + Sync;

/// Which executor [`crate::run_job`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The pipelined, partition-parallel engine in this module.
    #[default]
    Pipelined,
    /// The seed engine (global sort + sequential reduce), kept as the
    /// executable specification and benchmark baseline.
    Reference,
    /// Map workers as forked child processes streaming their spills to
    /// the coordinator over the wire encoding ([`crate::worker`]).
    /// Requires [`crate::JobSpec::with_wire_codec`]; bit-identical to the
    /// in-process engines, and the only mode that measures
    /// [`crate::metrics::WireTraffic`]. Unix only.
    MultiProcess,
}

/// Execution-engine knobs, orthogonal to the algorithmic content of a
/// [`JobSpec`]. Every knob preserves the deterministic output contract;
/// they only trade memory, parallelism, and constant factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Executor selection (pipelined vs the seed reference engine).
    pub mode: EngineMode,
    /// Number of reduce partitions (the paper always uses 1).
    pub num_reducers: u32,
    /// Map-side worker threads; `0` means one per available core, capped
    /// at the task count. Both engines honor it, so a benchmark can pin
    /// identical thread budgets on both sides of a comparison.
    pub map_parallelism: usize,
    /// Reduce-side worker threads; `0` means one per available core,
    /// capped at the partition count.
    pub reducer_parallelism: usize,
    /// Apply the Combine function incrementally at emit time instead of
    /// materializing every raw pair until the task ends. Requires the
    /// combiner to be associative (Hadoop's combiner contract); all
    /// engine-visible metrics are byte-identical to batch combining.
    pub streaming_combine: bool,
    /// Pair-buffer size that triggers an in-flight combine when streaming;
    /// `0` combines only once, when the spill is collected.
    pub spill_chunk: usize,
    /// Exclusive upper bound on the radix image of every key the job
    /// emits, when the algorithm knows one (item keys in `[0, u)`,
    /// coefficient indices, sketch counter indices…). Combined with
    /// [`crate::JobSpec::with_radix_keys`] it routes combining through
    /// the dense flat-array table instead of a hash map. Purely an
    /// execution hint: outputs and metrics are unchanged, but a hint
    /// smaller than an actual key **panics** (fail loudly rather than
    /// mis-group). Ignored by the reference engine.
    pub key_domain_hint: Option<u64>,
    /// Multi-process mode only: how many times the coordinator may
    /// re-execute a failed worker's *unfinished* tasks on a respawned
    /// worker before surfacing the failure as an error. `0` disables
    /// recovery (the first failure aborts the job, PR 7 behavior).
    /// Completed tasks are never re-run, and recovered runs are
    /// bit-identical to fault-free runs — see [`crate::worker`].
    pub max_task_retries: u32,
    /// Base backoff before a respawn, in milliseconds; doubles per
    /// consecutive retry round.
    pub retry_backoff_ms: u64,
    /// Multi-process mode only: how long a coordinator reader waits for
    /// the next byte from a worker before declaring it hung
    /// ([`crate::EngineError::WorkerTimeout`]). An *idle* deadline — a
    /// slow worker that keeps streaming never trips it. `0` disables the
    /// deadline (block forever, PR 7 behavior).
    pub read_deadline_ms: u64,
    /// Deterministic fault injection for the multi-process mode; the
    /// empty plan (default) injects nothing. See [`crate::FaultPlan`].
    pub faults: crate::fault::FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: EngineMode::Pipelined,
            num_reducers: 1,
            map_parallelism: 0,
            reducer_parallelism: 0,
            streaming_combine: false,
            spill_chunk: 0,
            key_domain_hint: None,
            max_task_retries: 2,
            retry_backoff_ms: 10,
            read_deadline_ms: 30_000,
            faults: crate::fault::FaultPlan::none(),
        }
    }
}

impl EngineConfig {
    /// The default pipelined configuration.
    pub fn pipelined() -> Self {
        Self::default()
    }

    /// The seed reference engine (global sort, sequential reduce).
    pub fn reference() -> Self {
        Self {
            mode: EngineMode::Reference,
            ..Self::default()
        }
    }

    /// The multi-process engine: map workers as forked child processes
    /// shipping spills over the wire encoding. `map_parallelism` becomes
    /// the worker-*process* count (`0` = one per core, capped at the
    /// task count).
    pub fn multi_process() -> Self {
        Self {
            mode: EngineMode::MultiProcess,
            ..Self::default()
        }
    }

    /// Sets the number of reduce partitions.
    pub fn with_reducers(mut self, n: u32) -> Self {
        assert!(n >= 1, "need at least one reducer");
        self.num_reducers = n;
        self
    }

    /// Sets the map-side thread count (`0` = one per available core).
    pub fn with_map_parallelism(mut self, threads: usize) -> Self {
        self.map_parallelism = threads;
        self
    }

    /// Sets the reduce-side thread count (`0` = one per available core).
    pub fn with_reducer_parallelism(mut self, threads: usize) -> Self {
        self.reducer_parallelism = threads;
        self
    }

    /// Toggles streaming (emit-time) combining.
    pub fn with_streaming_combine(mut self, on: bool) -> Self {
        self.streaming_combine = on;
        self
    }

    /// Sets the spill chunk size for streaming combining.
    pub fn with_spill_chunk(mut self, pairs: usize) -> Self {
        self.spill_chunk = pairs;
        self
    }

    /// Declares that every key's radix image lies in `[0, domain)` —
    /// see [`EngineConfig::key_domain_hint`].
    pub fn with_key_domain(mut self, domain: u64) -> Self {
        self.key_domain_hint = Some(domain);
        self
    }

    /// Sets the retry budget for failed workers' unfinished tasks
    /// (multi-process mode; `0` disables recovery).
    pub fn with_task_retries(mut self, retries: u32) -> Self {
        self.max_task_retries = retries;
        self
    }

    /// Sets the base respawn backoff in milliseconds.
    pub fn with_retry_backoff_ms(mut self, millis: u64) -> Self {
        self.retry_backoff_ms = millis;
        self
    }

    /// Sets the per-read idle deadline on worker pipes in milliseconds
    /// (multi-process mode; `0` disables the deadline).
    pub fn with_read_deadline_ms(mut self, millis: u64) -> Self {
        self.read_deadline_ms = millis;
        self
    }

    /// Arms a deterministic [`crate::FaultPlan`] (multi-process mode).
    pub fn with_faults(mut self, faults: crate::fault::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Resolves [`EngineConfig::map_parallelism`] into the map worker
    /// count for `task_count` tasks. **Both** engines must call this —
    /// engine-vs-engine benchmarks rely on the two resolving an
    /// identical thread budget from the same knob.
    pub(crate) fn map_workers(&self, task_count: usize) -> usize {
        match self.map_parallelism {
            0 => std::thread::available_parallelism().map_or(4, |p| p.get()),
            n => n,
        }
        .min(task_count.max(1))
    }
}

/// The default partitioner: a deterministic Fx hash of the key. With one
/// reducer every key lands in partition 0 either way; with several, keys
/// spread evenly without any per-job configuration.
pub fn default_partition<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Domains above this cap fall back from the dense tables (the map-side
/// combine table and the reduce-side `DenseReducer`) to the sort-based
/// paths: a `u32` slot per domain value must stay small enough (≤ 16 MiB
/// per worker here) that a flat array is an optimization, not a memory
/// liability. The reduce table additionally sizes itself to each
/// partition's actual key range, so this bounds the worst case only.
const DENSE_DOMAIN_MAX: u64 = 1 << 22;

/// Jobs whose map output is at most this many pairs reduce serially: the
/// per-thread spawn/join cost exceeds the reduce work itself, which is
/// exactly the regime the sampling builders (a few thousand pairs) live
/// in. Thread count never changes outputs, so this is timing-only.
const REDUCE_SPAWN_MIN_PAIRS: u64 = 8192;

/// Tasks with fewer pairs than this ship a flat (unpartitioned) spill in
/// sort-at-reduce mode and let the shuffle scatter it: allocating
/// `num_reducers` per-task partition buffers would cost more than the
/// pairs they hold. Larger tasks scatter inside the map worker, where
/// the hashing parallelizes.
const SCATTER_MIN_PAIRS: usize = 1024;

/// Groups `pairs` by key (preserving each key's value arrival order),
/// applies the Combine function once per key, and returns the surviving
/// pairs in ascending key order. This is the **canonical combine
/// semantics** shared by the streaming compactor, the batch combine path,
/// the dense-domain table, and the reference engine — all agree byte for
/// byte.
///
/// Keys are sorted and grouped in place; a key is only ever cloned when
/// the combiner leaves it more than one surviving value.
pub(crate) fn group_combine<K, V>(mut pairs: Vec<(K, V)>, comb: &CombineDyn<K, V>) -> Vec<(K, V)>
where
    K: Ord + Clone,
{
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    group_sorted(pairs, comb)
}

/// Grouping half of [`group_combine`]: `pairs` must already be key-sorted
/// (stably, arrival order within a key).
fn group_sorted<K, V>(pairs: Vec<(K, V)>, comb: &CombineDyn<K, V>) -> Vec<(K, V)>
where
    K: Ord + Clone,
{
    let mut out = Vec::new();
    let mut iter = pairs.into_iter();
    let Some((mut key, first)) = iter.next() else {
        return out;
    };
    let mut values = vec![first];
    for (k, v) in iter {
        if k == key {
            values.push(v);
        } else {
            flush_group(&mut out, key, &mut values, comb);
            key = k;
            values.push(v);
        }
    }
    flush_group(&mut out, key, &mut values, comb);
    out
}

/// Runs the combiner over one key's values and appends the survivors,
/// moving the key into the last pair (cloning only for the ones before).
fn flush_group<K, V>(out: &mut Vec<(K, V)>, key: K, values: &mut Vec<V>, comb: &CombineDyn<K, V>)
where
    K: Clone,
{
    comb(&key, values);
    let survivors = values.len();
    let mut drained = values.drain(..);
    for v in drained.by_ref().take(survivors.saturating_sub(1)) {
        out.push((key.clone(), v));
    }
    if let Some(last) = drained.next() {
        out.push((key, last));
    }
}

/// Per-worker combine machinery, recycled across every map task (and
/// every streaming compaction) that worker runs. Dispatches to the dense
/// flat-array table when the job declared a bounded key domain, and to
/// the radix- or comparison-sorted grouping otherwise.
struct MapCombiner<K, V> {
    codec: Option<fn(&K) -> u64>,
    dense: Option<DenseTable<K, V>>,
    scratch: RadixScratch,
}

impl<K, V> MapCombiner<K, V>
where
    K: Ord + Clone,
{
    fn new(codec: Option<fn(&K) -> u64>, dense_domain: Option<usize>) -> Self {
        Self {
            codec,
            dense: dense_domain.map(DenseTable::new),
            scratch: RadixScratch::default(),
        }
    }

    /// In-place [`group_combine`], byte-identical across all three
    /// strategies (dense table / radix sort / comparison sort).
    fn combine(&mut self, pairs: &mut Vec<(K, V)>, comb: &CombineDyn<K, V>) {
        if let (Some(codec), Some(table)) = (self.codec, self.dense.as_mut()) {
            table.combine(pairs, codec, comb);
            return;
        }
        let mut taken = std::mem::take(pairs);
        match self.codec {
            Some(codec) => sort_pairs_with(&mut taken, codec, &mut self.scratch),
            None => taken.sort_by(|a, b| a.0.cmp(&b.0)),
        }
        *pairs = group_sorted(taken, comb);
    }
}

/// One map task's spill, plus the task's accounting. `scattered` spills
/// carry one run per partition (sorted by `(key, arrival order)` when
/// the job merges at reduce time); flat spills carry the task's pairs as
/// a single unpartitioned list — the shape tiny tasks ship in
/// sort-at-reduce mode, where per-task partition buffers would cost more
/// than the pairs they hold and the shuffle scatters instead.
pub(crate) struct TaskSpill<K, V> {
    pub(crate) split_id: u32,
    pub(crate) runs: Vec<Vec<(K, V)>>,
    pub(crate) scattered: bool,
    pub(crate) work: TaskWork,
    pub(crate) records_read: u64,
    pub(crate) pairs: u64,
    pub(crate) bytes: u64,
}

/// Worker-local state of the map phase, recycled across the tasks this
/// worker executes: the emit buffer handed to each [`MapContext`], the
/// radix-sort scratch for spill runs, and the shared combine machinery
/// (shared with the task's streaming compactor when one is installed).
pub(crate) struct MapWorker<K, V> {
    pairs_buf: Vec<(K, V)>,
    scratch: RadixScratch,
    combine: Arc<Mutex<MapCombiner<K, V>>>,
}

impl<K, V> MapWorker<K, V>
where
    K: Ord + Clone,
{
    pub(crate) fn new(codec: Option<fn(&K) -> u64>, dense_domain: Option<usize>) -> Self {
        Self {
            pairs_buf: Vec::new(),
            scratch: RadixScratch::default(),
            combine: Arc::new(Mutex::new(MapCombiner::new(codec, dense_domain))),
        }
    }
}

/// Map-side dense combine table eligibility: it only earns its keep when
/// there is a combiner to run through it, a codec to index it with, and a
/// domain small enough to sit in a flat array. Shared by the in-process
/// and multi-process executors so both plan identically.
pub(crate) fn dense_combine_domain(
    has_codec: bool,
    domain_hint: Option<u64>,
    has_combiner: bool,
) -> Option<usize> {
    match (has_codec, domain_hint, has_combiner) {
        (true, Some(u), true) if u <= DENSE_DOMAIN_MAX => Some(u as usize),
        _ => None,
    }
}

/// Reduce-strategy selection, fixed per job because it also decides what
/// the map workers ship:
///
/// * `DenseReduce` (codec + bounded domain): partitions aggregate their
///   unsorted runs straight into a flat slot array — nobody sorts
///   anything, on either side.
/// * `SortAtReduce` (codec, several partitions, domain too wide): each
///   partition radix-sorts its split-ordered run concatenation once
///   (stable, runs in split-id order), which is the exact merge sequence
///   at strictly less data movement than sorted spills + merge.
/// * `Merge` otherwise: map workers pre-sort their runs (that is what
///   parallelizes the sort work when everything reduces in one place or
///   keys carry no codec) and partitions k-way merge them.
pub(crate) fn select_strategy(
    has_codec: bool,
    domain_hint: Option<u64>,
    nparts: usize,
) -> ReduceStrategy {
    match (has_codec, domain_hint) {
        (true, Some(u)) if u <= DENSE_DOMAIN_MAX => ReduceStrategy::DenseReduce,
        (true, _) if nparts > 1 => ReduceStrategy::SortAtReduce,
        _ => ReduceStrategy::Merge,
    }
}

/// Executes one round on the pipelined engine. Entry point is
/// [`crate::run_job`], which dispatches on [`EngineConfig::mode`].
pub(crate) fn execute<K, V, R>(cluster: &ClusterConfig, spec: JobSpec<K, V, R>) -> JobOutput<R>
where
    K: Ord + Hash + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
    R: Send,
{
    let JobSpec {
        map_tasks,
        combiner,
        partitioner,
        reduce,
        broadcast_bytes,
        finish,
        engine,
        key_codec,
        ..
    } = spec;
    assert!(engine.num_reducers >= 1, "need at least one reducer");
    let nparts = engine.num_reducers as usize;
    let dense_domain = dense_combine_domain(
        key_codec.is_some(),
        engine.key_domain_hint,
        combiner.is_some(),
    );
    let strategy = select_strategy(key_codec.is_some(), engine.key_domain_hint, nparts);

    // ---- Map phase (parallel): run, combine, partition, sort — all
    // inside the worker thread that owns the task. ----
    let map_start = Instant::now();
    let task_queue: Vec<Mutex<Option<MapTask<K, V>>>> =
        map_tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let spills: Mutex<Vec<TaskSpill<K, V>>> = Mutex::new(Vec::with_capacity(task_queue.len()));
    let workers = engine.map_workers(task_queue.len());

    let run_tasks = |state: &mut MapWorker<K, V>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= task_queue.len() {
            break;
        }
        let task = task_queue[i].lock().take().expect("each task taken once");
        let spill = run_one_task(
            task,
            &engine,
            nparts,
            strategy,
            &combiner,
            &partitioner,
            key_codec,
            state,
        );
        spills.lock().push(spill);
    };

    if workers <= 1 {
        // Serial fast path: one worker would be spawned only to be
        // joined again — run its loop inline on this thread instead.
        run_tasks(&mut MapWorker::new(key_codec, dense_domain));
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| run_tasks(&mut MapWorker::new(key_codec, dense_domain)));
            }
            // std::thread::scope joins all workers and re-raises any panic.
        });
    }

    let mut per_task = spills.into_inner();
    per_task.sort_by_key(|t| t.split_id);
    let wall_map_s = map_start.elapsed().as_secs_f64();

    shuffle_reduce_finish(
        cluster,
        &engine,
        per_task,
        &partitioner,
        reduce,
        finish,
        broadcast_bytes,
        strategy,
        key_codec,
        wall_map_s,
    )
}

/// Runs one map task to a [`TaskSpill`]: execute the closure, combine,
/// partition (or ship flat), and pre-sort runs when the job merges at
/// reduce time. This is the unit of map work shared **verbatim** by the
/// threaded executor above and the forked workers of
/// [`crate::worker::execute_multiprocess`] — sharing it is what makes the
/// two modes bit-identical by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_one_task<K, V>(
    task: MapTask<K, V>,
    engine: &EngineConfig,
    nparts: usize,
    strategy: ReduceStrategy,
    combiner: &Option<CombineFn<K, V>>,
    partitioner: &PartitionFn<K>,
    key_codec: Option<fn(&K) -> u64>,
    state: &mut MapWorker<K, V>,
) -> TaskSpill<K, V>
where
    K: Ord + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
{
    let mut ctx = MapContext::with_buffer(task.split_id, std::mem::take(&mut state.pairs_buf));
    if engine.streaming_combine {
        if let Some(comb) = combiner {
            ctx.install_compactor(
                make_compactor(CombineFn::clone(comb), Arc::clone(&state.combine)),
                engine.spill_chunk,
            );
        }
    }
    (task.run)(&mut ctx);
    let MapContext {
        mut pairs,
        compactor,
        records_read,
        bytes_read,
        cpu_ops,
        ..
    } = ctx;
    if let Some(compact) = &compactor {
        // Streaming mode: one final full grouping so every key
        // ends fully combined, exactly like the batch path.
        compact(&mut pairs);
    } else if let Some(comb) = combiner {
        state.combine.lock().combine(&mut pairs, comb.as_ref());
    }
    let mut npairs = 0u64;
    let mut nbytes = 0u64;
    for (k, v) in &pairs {
        npairs += 1;
        nbytes += k.wire_bytes() + v.wire_bytes();
    }
    let (mut runs, scattered): (Vec<Vec<(K, V)>>, bool) = if nparts == 1 {
        (vec![std::mem::take(&mut pairs)], true)
    } else if strategy != ReduceStrategy::Merge && pairs.len() < SCATTER_MIN_PAIRS {
        // Tiny task in a no-merge mode: ship the pairs flat and let
        // the shuffle scatter them — R per-task partition buffers
        // would cost more than the pairs they hold.
        (vec![std::mem::take(&mut pairs)], false)
    } else {
        // Reserve the expected per-partition share up front so the
        // scatter loop rarely reallocates.
        let expect = pairs.len() / nparts + 16;
        let mut rs: Vec<Vec<(K, V)>> = (0..nparts).map(|_| Vec::with_capacity(expect)).collect();
        for (k, v) in pairs.drain(..) {
            let p = (partitioner(&k) % nparts as u64) as usize;
            rs[p].push((k, v));
        }
        (rs, true)
    };
    // The (now empty) emit buffer keeps its allocation for the next
    // task this worker picks up.
    state.pairs_buf = pairs;
    if strategy == ReduceStrategy::Merge {
        // Only the merge strategy consumes pre-sorted runs; the dense
        // and sort-at-reduce partitions take them in arrival order.
        for run in &mut runs {
            // Stable by key: arrival order within a key survives. The
            // radix sort produces the identical permutation when the
            // job declared a key codec.
            match key_codec {
                Some(codec) => sort_pairs_with(run, codec, &mut state.scratch),
                None => run.sort_by(|a, b| a.0.cmp(&b.0)),
            }
        }
    }
    TaskSpill {
        split_id: task.split_id,
        runs,
        scattered,
        work: TaskWork {
            bytes_scanned: bytes_read,
            cpu_ops,
        },
        records_read,
        pairs: npairs,
        bytes: nbytes,
    }
}

/// Everything after the map phase: regroup spills into per-partition
/// reduce inputs, reduce (optionally in parallel), stitch outputs, run
/// the Close hook, and assemble [`RunMetrics`]. `per_task` must be
/// sorted by split id. Shared by the threaded executor and the
/// multi-process coordinator ([`crate::worker`]) — everything downstream
/// of map transport is the same code in both modes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn shuffle_reduce_finish<K, V, R>(
    cluster: &ClusterConfig,
    engine: &EngineConfig,
    per_task: Vec<TaskSpill<K, V>>,
    partitioner: &PartitionFn<K>,
    reduce: crate::job::ReduceFn<K, V, R>,
    finish: Option<crate::job::FinishFn<R>>,
    broadcast_bytes: u64,
    strategy: ReduceStrategy,
    key_codec: Option<fn(&K) -> u64>,
    wall_map_s: f64,
) -> JobOutput<R>
where
    K: Ord + Send,
    V: Send,
    R: Send,
{
    let nparts = engine.num_reducers as usize;
    // ---- Shuffle: regroup spill runs into per-partition merge inputs
    // (runs stay in split-id order) and account communication. ----
    let shuffle_start = Instant::now();
    let mut metrics = RunMetrics {
        rounds: 1,
        broadcast_bytes,
        ..Default::default()
    };
    let mut task_work = Vec::with_capacity(per_task.len());
    let mut partitions: Vec<Vec<Vec<(K, V)>>> = (0..nparts)
        .map(|_| Vec::with_capacity(per_task.len()))
        .collect();
    // Flat spills from tiny tasks scatter here, accumulating into one
    // consolidated tail run per partition. Tasks arrive in split-id
    // order, and a tail is flushed ahead of any scattered run that
    // follows it, so every partition's runs stay in (split id, arrival)
    // order — which is all the dense-reduce and sort-at-reduce paths
    // need.
    let mut tails: Vec<Vec<(K, V)>> = (0..nparts).map(|_| Vec::new()).collect();
    for t in per_task {
        task_work.push(t.work);
        metrics.records_scanned += t.records_read;
        metrics.bytes_scanned += t.work.bytes_scanned;
        metrics.cpu_ops += t.work.cpu_ops;
        metrics.map_output_pairs += t.pairs;
        metrics.shuffle_bytes += t.bytes;
        if t.scattered {
            for (p, run) in t.runs.into_iter().enumerate() {
                if !run.is_empty() {
                    if !tails[p].is_empty() {
                        partitions[p].push(std::mem::take(&mut tails[p]));
                    }
                    partitions[p].push(run);
                }
            }
        } else {
            for run in t.runs {
                for (k, v) in run {
                    let p = (partitioner(&k) % nparts as u64) as usize;
                    tails[p].push((k, v));
                }
            }
        }
    }
    for (p, tail) in tails.into_iter().enumerate() {
        if !tail.is_empty() {
            partitions[p].push(tail);
        }
    }
    let wall_shuffle_s = shuffle_start.elapsed().as_secs_f64();

    // ---- Reduce phase: one context per partition, optionally in
    // parallel, stitched in partition-index order. ----
    let reduce_start = Instant::now();
    let threads = if metrics.map_output_pairs < REDUCE_SPAWN_MIN_PAIRS {
        // Serial fast path: spawning per-partition threads for a few
        // thousand pairs costs more than reducing them.
        1
    } else if engine.reducer_parallelism == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        engine.reducer_parallelism
    }
    .min(nparts)
    .max(1);

    // What a partition needs to execute the selected strategy: the codec
    // (dense + sort-at-reduce) and the declared domain (dense asserts
    // against it).
    let plan = ReducePlan {
        strategy,
        codec: key_codec,
        domain_hint: engine.key_domain_hint,
        dense_pair_cap: crate::dense::FIRST_ARRIVAL as usize,
    };
    let contexts: Vec<ReduceContext<R>> = if threads <= 1 {
        let mut scratch = ReduceScratch::new();
        let mut out = Vec::with_capacity(nparts);
        for runs in partitions {
            let mut rctx = ReduceContext::new();
            reduce_partition(runs, plan, &mut scratch, reduce.as_ref(), &mut rctx);
            out.push(rctx);
        }
        out
    } else {
        type Slot<K, V, R> = Mutex<(Option<Vec<Vec<(K, V)>>>, Option<ReduceContext<R>>)>;
        let slots: Vec<Slot<K, V, R>> = partitions
            .into_iter()
            .map(|runs| Mutex::new((Some(runs), None)))
            .collect();
        let next_part = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // Per-thread scratch (radix buffers + dense table),
                    // recycled across the partitions this thread reduces —
                    // the reduce-side mirror of the map workers' reuse.
                    let mut scratch = ReduceScratch::new();
                    loop {
                        let p = next_part.fetch_add(1, Ordering::Relaxed);
                        if p >= slots.len() {
                            break;
                        }
                        let runs = slots[p].lock().0.take().expect("each partition taken once");
                        let mut rctx = ReduceContext::new();
                        reduce_partition(runs, plan, &mut scratch, reduce.as_ref(), &mut rctx);
                        slots[p].lock().1 = Some(rctx);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().1.expect("every partition reduced"))
            .collect()
    };

    // Deterministic stitching: outputs and charged CPU recombine in
    // partition order, so float summation order is independent of the
    // thread count. The per-partition strategy lands in the metrics here.
    let mut outputs = Vec::new();
    let mut reduce_cpu = 0.0f64;
    for mut rctx in contexts {
        if let Some(s) = rctx.strategy {
            metrics.reduce_strategies.record(s);
        }
        reduce_cpu += rctx.cpu_ops;
        outputs.append(&mut rctx.outputs);
    }
    if let Some(f) = finish {
        let mut rctx = ReduceContext::new();
        f(&mut rctx);
        reduce_cpu += rctx.cpu_ops;
        outputs.append(&mut rctx.outputs);
    }
    let wall_reduce_s = reduce_start.elapsed().as_secs_f64();

    metrics.cpu_ops += reduce_cpu;
    metrics.sim_time_s = round_time(
        cluster,
        &task_work,
        ReduceWork {
            cpu_ops: reduce_cpu,
        },
        metrics.shuffle_bytes,
        metrics.broadcast_bytes,
    );
    metrics.wall_map_s = wall_map_s;
    metrics.wall_shuffle_s = wall_shuffle_s;
    metrics.wall_reduce_s = wall_reduce_s;

    JobOutput { outputs, metrics }
}

fn make_compactor<K, V>(
    comb: CombineFn<K, V>,
    state: Arc<Mutex<MapCombiner<K, V>>>,
) -> crate::context::Compactor<K, V>
where
    K: Ord + Clone + Send + 'static,
    V: Send + 'static,
{
    Box::new(move |pairs| {
        if pairs.len() > 1 {
            state.lock().combine(pairs, comb.as_ref());
        }
    })
}

/// Everything a reduce worker needs to execute the job's strategy on one
/// partition. One per job; `Copy` so worker threads capture it by value.
struct ReducePlan<K> {
    strategy: ReduceStrategy,
    codec: Option<fn(&K) -> u64>,
    domain_hint: Option<u64>,
    /// Pair count at which a `DenseReduce` partition is re-planned to
    /// sort-at-reduce: the dense table tags group indices into `u32`
    /// slots, so a partition holding `FIRST_ARRIVAL` (2³¹) or more pairs
    /// would overflow its indexing. Production plans use exactly that
    /// constant; tests shrink it to exercise the fallback without 2³¹
    /// pairs of memory.
    dense_pair_cap: usize,
}

impl<K> Clone for ReducePlan<K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K> Copy for ReducePlan<K> {}

/// Per-reduce-worker scratch, recycled across every partition that
/// worker reduces: the radix-sort buffers (sort-at-reduce) and the dense
/// flat-array table (dense reduce) — the reduce-side mirror of the map
/// workers' per-thread buffer reuse.
struct ReduceScratch<K, V> {
    radix: RadixScratch,
    dense: DenseReducer<K, V>,
}

impl<K, V> ReduceScratch<K, V> {
    fn new() -> Self {
        Self {
            radix: RadixScratch::default(),
            dense: DenseReducer::new(),
        }
    }
}

/// Reduces one partition under the job's [`ReduceStrategy`] and invokes
/// `reduce` per key group — key groups in key order, values in
/// `(split id, arrival order)` order, identically for every strategy:
///
/// * `DenseReduce`: runs arrive **unsorted** and aggregate into the
///   recycled flat table, which emits groups in ascending radix (= key)
///   order.
/// * `SortAtReduce`: runs arrive **unsorted**; the partition radix-sorts
///   its split-ordered concatenation once. The sort is stable, so equal
///   keys keep `(split id, arrival order)` — the exact merge sequence,
///   with no merge.
/// * `Merge`: runs arrive pre-sorted from the map workers and are k-way
///   merged.
///
/// The strategy that ran is recorded on the context, which the stitching
/// loop folds into [`RunMetrics::reduce_strategies`].
///
/// `DenseReduce` is re-planned here, per partition, when the partition's
/// pair count reaches [`ReducePlan::dense_pair_cap`]: the dense table's
/// tagged-u32 indexing cannot address that many pairs, so the partition
/// falls back to sort-at-reduce — both strategies consume unsorted
/// split-ordered runs and deliver the identical key-group sequence, so
/// the downgrade changes only the execution route. The strategy recorded
/// on the context (and thus in [`RunMetrics::reduce_strategies`]) is the
/// one that actually ran.
fn reduce_partition<K, V, R>(
    runs: Vec<Vec<(K, V)>>,
    plan: ReducePlan<K>,
    scratch: &mut ReduceScratch<K, V>,
    reduce: &ReduceDyn<K, V, R>,
    rctx: &mut ReduceContext<R>,
) where
    K: Ord,
{
    rctx.strategy = Some(plan.strategy);
    match plan.strategy {
        ReduceStrategy::DenseReduce => {
            let codec = plan.codec.expect("dense reduce requires a key codec");
            let hint = plan
                .domain_hint
                .expect("dense reduce requires a key_domain_hint");
            let total: usize = runs.iter().map(Vec::len).sum();
            if total >= plan.dense_pair_cap {
                rctx.strategy = Some(ReduceStrategy::SortAtReduce);
                sort_at_reduce(runs, total, codec, scratch, reduce, rctx);
            } else {
                scratch.dense.reduce_runs(runs, codec, hint, reduce, rctx);
            }
        }
        ReduceStrategy::SortAtReduce => {
            let codec = plan.codec.expect("sort-at-reduce requires a key codec");
            let total: usize = runs.iter().map(Vec::len).sum();
            sort_at_reduce(runs, total, codec, scratch, reduce, rctx);
        }
        ReduceStrategy::Merge => match runs.len() {
            0 => {}
            1 => {
                let run = runs.into_iter().next().expect("one run");
                reduce_sorted_run(run, reduce, rctx);
            }
            _ => merge_runs(runs, reduce, rctx),
        },
    }
}

/// The sort-at-reduce body: one stable radix sort of the split-ordered
/// run concatenation, then adjacent grouping — shared by the
/// `SortAtReduce` strategy and the dense-overflow fallback.
fn sort_at_reduce<K, V, R>(
    runs: Vec<Vec<(K, V)>>,
    total: usize,
    codec: fn(&K) -> u64,
    scratch: &mut ReduceScratch<K, V>,
    reduce: &ReduceDyn<K, V, R>,
    rctx: &mut ReduceContext<R>,
) where
    K: Ord,
{
    let mut all = match runs.len() {
        0 => Vec::new(),
        1 => runs.into_iter().next().expect("one run"),
        _ => {
            let mut all = Vec::with_capacity(total);
            for run in runs {
                all.extend(run);
            }
            all
        }
    };
    sort_pairs_with(&mut all, codec, &mut scratch.radix);
    reduce_sorted_run(all, reduce, rctx);
}

/// Groups adjacent equal keys of one already-sorted run — no comparisons
/// beyond equality, no heap.
fn reduce_sorted_run<K, V, R>(
    run: Vec<(K, V)>,
    reduce: &ReduceDyn<K, V, R>,
    rctx: &mut ReduceContext<R>,
) where
    K: Ord,
{
    let mut iter = run.into_iter();
    let Some((mut key, first)) = iter.next() else {
        return;
    };
    let mut values = vec![first];
    for (k, v) in iter {
        if k == key {
            values.push(v);
        } else {
            reduce(&key, &values, rctx);
            values.clear();
            key = k;
            values.push(v);
        }
    }
    reduce(&key, &values, rctx);
}

/// Heap entry of the k-way merge. Ordering compares `(key, run index)`
/// only — runs are stored in split-id order, so the merge yields the
/// global `(key, split id, arrival order)` sequence. The carried value
/// never participates in comparisons.
struct MergeEntry<K, V> {
    key: K,
    run: usize,
    value: V,
}

impl<K: Ord, V> PartialEq for MergeEntry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}

impl<K: Ord, V> Eq for MergeEntry<K, V> {}

impl<K: Ord, V> PartialOrd for MergeEntry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, V> Ord for MergeEntry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.run.cmp(&other.run))
    }
}

/// Fan-in above which the merge switches from the binary heap to the
/// pairwise ladder: wide heaps pay `2·log₂ m` branchy sift steps per
/// element, while the ladder's sequential two-way merges cost exactly
/// `log₂ m` predictable comparisons plus streaming copies.
const HEAP_MERGE_MAX_RUNS: usize = 8;

/// Partitions at most this many pairs skip the merge machinery entirely:
/// concatenating the runs (split-id order) and stably re-sorting by key
/// yields the identical `(key, split id, arrival order)` sequence with
/// one tiny sort instead of a heap or ladder over dozens of micro-runs —
/// the regime the sampling builders put every partition in.
const MERGE_CONCAT_MAX_PAIRS: usize = 4096;

/// Merges `m` sorted runs and feeds key groups straight into `reduce` —
/// the shuffle never materializes a global concatenated vector and never
/// compares partition ids. Narrow fan-ins use the `m`-entry min-heap
/// (O(1) extra memory); wide fan-ins use [`ladder_merge`].
fn merge_runs<K, V, R>(
    runs: Vec<Vec<(K, V)>>,
    reduce: &ReduceDyn<K, V, R>,
    rctx: &mut ReduceContext<R>,
) where
    K: Ord,
{
    let total: usize = runs.iter().map(Vec::len).sum();
    if total <= MERGE_CONCAT_MAX_PAIRS {
        // Stable sort of the split-ordered concatenation = the exact
        // merge sequence, cheaper than merging many tiny runs.
        let mut all = Vec::with_capacity(total);
        for run in runs {
            all.extend(run);
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        reduce_sorted_run(all, reduce, rctx);
        return;
    }
    if runs.len() > HEAP_MERGE_MAX_RUNS {
        let merged = ladder_merge(runs);
        reduce_sorted_run(merged, reduce, rctx);
        return;
    }
    let mut iters: Vec<std::vec::IntoIter<(K, V)>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<MergeEntry<K, V>>> = BinaryHeap::with_capacity(iters.len());
    for (run, it) in iters.iter_mut().enumerate() {
        if let Some((key, value)) = it.next() {
            heap.push(Reverse(MergeEntry { key, run, value }));
        }
    }
    let mut values: Vec<V> = Vec::new();
    while let Some(Reverse(MergeEntry { key, run, value })) = heap.pop() {
        values.clear();
        values.push(value);
        if let Some((k, v)) = iters[run].next() {
            heap.push(Reverse(MergeEntry {
                key: k,
                run,
                value: v,
            }));
        }
        while heap.peek().is_some_and(|Reverse(entry)| entry.key == key) {
            let Reverse(MergeEntry {
                run: r, value: v, ..
            }) = heap.pop().expect("peeked entry");
            values.push(v);
            if let Some((k2, v2)) = iters[r].next() {
                heap.push(Reverse(MergeEntry {
                    key: k2,
                    run: r,
                    value: v2,
                }));
            }
        }
        reduce(&key, &values, rctx);
    }
}

/// Pairwise-merge ladder: merges adjacent runs two at a time until one
/// sorted run remains. Runs stay in split-id order and ties always take
/// from the left (lower split), so the result is the exact
/// `(key, split id, arrival order)` sequence of the heap merge. Peak
/// memory is one extra copy of the partition, freed level by level.
fn ladder_merge<K: Ord, V>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    let mut level = runs;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.into_iter().next().unwrap_or_default()
}

/// Stable two-way merge; ties take from `a` (the lower split ids).
fn merge_two<K: Ord, V>(a: Vec<(K, V)>, b: Vec<(K, V)>) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter();
    let mut ib = b.into_iter();
    let mut na = ia.next();
    let mut nb = ib.next();
    loop {
        match (na.take(), nb.take()) {
            (Some(x), Some(y)) => {
                if x.0 <= y.0 {
                    out.push(x);
                    na = ia.next();
                    nb = Some(y);
                } else {
                    out.push(y);
                    nb = ib.next();
                    na = Some(x);
                }
            }
            (Some(x), None) => {
                out.push(x);
                out.extend(ia);
                break;
            }
            (None, Some(y)) => {
                out.push(y);
                out.extend(ib);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_groups_via(
        runs: Vec<Vec<(u32, u32)>>,
        strategy: ReduceStrategy,
    ) -> Vec<(u32, Vec<u32>)> {
        let mut rctx = ReduceContext::new();
        let mut scratch = ReduceScratch::new();
        let reduce = |k: &u32, vs: &[u32], ctx: &mut ReduceContext<(u32, Vec<u32>)>| {
            ctx.emit((*k, vs.to_vec()));
        };
        let plan = ReducePlan {
            strategy,
            codec: Some(|k: &u32| u64::from(*k)),
            domain_hint: Some(1 << 20),
            dense_pair_cap: crate::dense::FIRST_ARRIVAL as usize,
        };
        reduce_partition(runs, plan, &mut scratch, &reduce, &mut rctx);
        assert_eq!(rctx.strategy, Some(strategy), "strategy recorded");
        rctx.outputs
    }

    fn collect_groups(runs: Vec<Vec<(u32, u32)>>) -> Vec<(u32, Vec<u32>)> {
        collect_groups_via(runs, ReduceStrategy::Merge)
    }

    #[test]
    fn merge_yields_key_then_run_order() {
        // Runs are per split (split order = vector order).
        let runs = vec![
            vec![(1, 10), (1, 11), (5, 12)],
            vec![(1, 20), (2, 21)],
            vec![(2, 30), (5, 31), (9, 32)],
        ];
        assert_eq!(
            collect_groups(runs),
            vec![
                (1, vec![10, 11, 20]),
                (2, vec![21, 30]),
                (5, vec![12, 31]),
                (9, vec![32]),
            ]
        );
    }

    #[test]
    fn all_merge_routes_yield_the_specified_sequence() {
        // Concat (≤ MERGE_CONCAT_MAX_PAIRS total), heap (m ≤ 8), and
        // ladder (m > 8) must all produce the sequence of a stable global
        // sort by (key, run index). Runs of 600 pairs put m ≥ 7 above the
        // concat threshold; smaller m exercises the concat route.
        let mk_runs = |m: usize| -> Vec<Vec<(u32, u32)>> {
            (0..m)
                .map(|r| {
                    let mut run: Vec<(u32, u32)> = (0..600)
                        .map(|i| ((i * (r as u32 + 3)) % 17, (r * 1000 + i as usize) as u32))
                        .collect();
                    run.sort_by_key(|&(k, _)| k);
                    run
                })
                .collect()
        };
        for m in [2, 3, 8, 9, 13, 32] {
            let mut expected_pairs: Vec<(u32, usize, u32)> = mk_runs(m)
                .into_iter()
                .enumerate()
                .flat_map(|(r, run)| run.into_iter().map(move |(k, v)| (k, r, v)))
                .collect();
            expected_pairs.sort_by_key(|&(k, r, _)| (k, r));
            let mut expected: Vec<(u32, Vec<u32>)> = Vec::new();
            for (k, _, v) in expected_pairs {
                match expected.last_mut() {
                    Some((key, vs)) if *key == k => vs.push(v),
                    _ => expected.push((k, vec![v])),
                }
            }
            assert_eq!(collect_groups(mk_runs(m)), expected, "m={m}");
            // The no-merge routes take **unsorted** runs and must yield
            // the same sequence: sort-at-reduce via one stable radix sort
            // of the concatenation, dense reduce via flat-array
            // aggregation in radix order.
            let unsorted = || -> Vec<Vec<(u32, u32)>> {
                mk_runs(m)
                    .into_iter()
                    .map(|mut run| {
                        // Undo the per-run sort: arrival order is value order.
                        run.sort_by_key(|&(_, v)| v);
                        run
                    })
                    .collect()
            };
            assert_eq!(
                collect_groups_via(unsorted(), ReduceStrategy::SortAtReduce),
                expected,
                "m={m} (sort-at-reduce)"
            );
            assert_eq!(
                collect_groups_via(unsorted(), ReduceStrategy::DenseReduce),
                expected,
                "m={m} (dense reduce)"
            );
        }
    }

    #[test]
    fn reduce_scratch_recycles_across_partitions_and_strategies() {
        // One scratch driven through every strategy in sequence, the way
        // a reduce worker thread recycles it across partitions.
        let mut scratch = ReduceScratch::new();
        let reduce = |k: &u32, vs: &[u32], ctx: &mut ReduceContext<(u32, Vec<u32>)>| {
            ctx.emit((*k, vs.to_vec()));
        };
        let sorted_runs = || vec![vec![(1u32, 1u32), (3, 2)], vec![(1, 3), (7, 4)]];
        let unsorted_runs = || vec![vec![(3u32, 2u32), (1, 1)], vec![(7, 4), (1, 3)]];
        let want = vec![(1, vec![1, 3]), (3, vec![2]), (7, vec![4])];
        for round in 0..3 {
            for (strategy, runs) in [
                (ReduceStrategy::DenseReduce, unsorted_runs()),
                (ReduceStrategy::SortAtReduce, unsorted_runs()),
                (ReduceStrategy::Merge, sorted_runs()),
            ] {
                let mut rctx = ReduceContext::new();
                let plan = ReducePlan {
                    strategy,
                    codec: Some(|k: &u32| u64::from(*k)),
                    domain_hint: Some(64),
                    dense_pair_cap: crate::dense::FIRST_ARRIVAL as usize,
                };
                reduce_partition(runs, plan, &mut scratch, &reduce, &mut rctx);
                assert_eq!(rctx.outputs, want, "round {round}, {strategy:?}");
                assert_eq!(rctx.strategy, Some(strategy));
            }
        }
    }

    /// Drives one partition through a `DenseReduce` plan with the given
    /// pair cap and returns the outputs plus the strategy that ran.
    fn dense_with_cap(
        runs: Vec<Vec<(u32, u32)>>,
        cap: usize,
    ) -> (Vec<(u32, Vec<u32>)>, Option<ReduceStrategy>) {
        let mut rctx = ReduceContext::new();
        let mut scratch = ReduceScratch::new();
        let reduce = |k: &u32, vs: &[u32], ctx: &mut ReduceContext<(u32, Vec<u32>)>| {
            ctx.emit((*k, vs.to_vec()));
        };
        let plan = ReducePlan {
            strategy: ReduceStrategy::DenseReduce,
            codec: Some(|k: &u32| u64::from(*k)),
            domain_hint: Some(1 << 20),
            dense_pair_cap: cap,
        };
        reduce_partition(runs, plan, &mut scratch, &reduce, &mut rctx);
        (rctx.outputs, rctx.strategy)
    }

    #[test]
    fn dense_overflow_replans_to_sort_at_reduce_at_the_boundary() {
        // 12 unsorted pairs; the boundary is exclusive below the cap —
        // `total == cap` is exactly the count the dense table's
        // tagged-u32 indexing cannot address, so it must re-plan.
        let runs = || -> Vec<Vec<(u32, u32)>> {
            vec![
                vec![(7u32, 0u32), (3, 1), (7, 2), (1, 3), (3, 4), (9, 5)],
                vec![(3, 6), (7, 7), (1, 8), (2, 9), (9, 10), (3, 11)],
            ]
        };
        let total = 12usize;
        let (dense_out, ran) = dense_with_cap(runs(), total + 1);
        assert_eq!(ran, Some(ReduceStrategy::DenseReduce));
        for (cap, label) in [(total, "total == cap"), (total - 1, "total > cap")] {
            let (fallback_out, ran) = dense_with_cap(runs(), cap);
            assert_eq!(
                ran,
                Some(ReduceStrategy::SortAtReduce),
                "{label}: overflow must re-plan, not panic"
            );
            assert_eq!(fallback_out, dense_out, "{label}: identical key groups");
        }
    }

    #[test]
    fn production_dense_pair_cap_is_the_tagged_u32_limit() {
        // The engine plans with exactly the dense table's indexing limit:
        // the high bit of a u32 slot entry tags first arrivals, leaving
        // 2³¹ addressable pairs. A partition of that size re-plans; one
        // pair fewer stays dense (`reduce_runs` asserts
        // `total < FIRST_ARRIVAL`, kept as defense in depth).
        assert_eq!(crate::dense::FIRST_ARRIVAL as usize, 1usize << 31);
        assert_eq!(
            crate::dense::FIRST_ARRIVAL & (crate::dense::FIRST_ARRIVAL - 1),
            0,
            "the tag is a single high bit"
        );
    }

    #[test]
    fn merge_two_is_stable_on_ties() {
        let a = vec![(1u32, 'a'), (3, 'b')];
        let b = vec![(1u32, 'c'), (3, 'd')];
        assert_eq!(
            merge_two(a, b),
            vec![(1, 'a'), (1, 'c'), (3, 'b'), (3, 'd')]
        );
    }

    #[test]
    fn single_run_fast_path_groups_adjacent() {
        let runs = vec![vec![(3, 1), (3, 2), (4, 3)]];
        assert_eq!(collect_groups(runs), vec![(3, vec![1, 2]), (4, vec![3])]);
    }

    #[test]
    fn empty_partition_reduces_nothing() {
        assert!(collect_groups(vec![]).is_empty());
        assert!(collect_groups(vec![vec![]]).is_empty());
    }

    #[test]
    fn group_combine_sorts_keys_and_preserves_value_order() {
        let pairs = vec![(9u32, 1u64), (2, 2), (9, 3), (2, 4)];
        let out = group_combine(pairs, &|_k, _vs| {});
        assert_eq!(out, vec![(2, 2), (2, 4), (9, 1), (9, 3)]);
    }

    /// A key that counts how often it is cloned — the probe behind the
    /// no-clone guarantee of [`group_combine`].
    #[derive(Debug)]
    struct CountingKey {
        id: u32,
        clones: Arc<AtomicUsize>,
    }

    impl CountingKey {
        fn new(id: u32, clones: &Arc<AtomicUsize>) -> Self {
            Self {
                id,
                clones: Arc::clone(clones),
            }
        }
    }

    impl Clone for CountingKey {
        fn clone(&self) -> Self {
            self.clones.fetch_add(1, Ordering::Relaxed);
            Self {
                id: self.id,
                clones: Arc::clone(&self.clones),
            }
        }
    }

    impl PartialEq for CountingKey {
        fn eq(&self, other: &Self) -> bool {
            self.id == other.id
        }
    }
    impl Eq for CountingKey {}
    impl PartialOrd for CountingKey {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for CountingKey {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.id.cmp(&other.id)
        }
    }

    #[test]
    fn group_combine_never_clones_keys_when_the_combiner_collapses() {
        let clones = Arc::new(AtomicUsize::new(0));
        let pairs: Vec<(CountingKey, u64)> = (0..200u64)
            .map(|i| (CountingKey::new((i % 17) as u32, &clones), i))
            .collect();
        let out = group_combine(pairs, &|_k, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        });
        assert_eq!(out.len(), 17);
        assert_eq!(
            clones.load(Ordering::Relaxed),
            0,
            "collapsing combiner must never clone a key"
        );
    }

    #[test]
    fn group_combine_clones_only_for_extra_survivors() {
        let clones = Arc::new(AtomicUsize::new(0));
        // 3 keys × 4 values each, identity combiner: each key keeps 4
        // values → 3 clones per key beyond the moved one.
        let pairs: Vec<(CountingKey, u64)> = (0..12u64)
            .map(|i| (CountingKey::new((i % 3) as u32, &clones), i))
            .collect();
        let out = group_combine(pairs, &|_k, _vs| {});
        assert_eq!(out.len(), 12);
        assert_eq!(clones.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn map_combiner_strategies_agree_byte_for_byte() {
        let comb = |_k: &u32, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
            vs.push(total / 2);
        };
        let pairs: Vec<(u32, u64)> = (0..700u64).map(|i| ((i * 13 % 97) as u32, i)).collect();
        let want = group_combine(pairs.clone(), &comb);

        let codec: fn(&u32) -> u64 = |k| u64::from(*k);
        for dense_domain in [None, Some(97)] {
            let mut state: MapCombiner<u32, u64> = MapCombiner::new(Some(codec), dense_domain);
            // Twice, to prove the recycled state resets cleanly.
            for round in 0..2 {
                let mut got = pairs.clone();
                state.combine(&mut got, &comb);
                assert_eq!(got, want, "dense={dense_domain:?} round={round}");
            }
        }
        let mut no_codec: MapCombiner<u32, u64> = MapCombiner::new(None, None);
        let mut got = pairs;
        no_codec.combine(&mut got, &comb);
        assert_eq!(got, want);
    }

    #[test]
    fn default_partition_is_deterministic_and_spread() {
        let a = default_partition(&42u64);
        let b = default_partition(&42u64);
        assert_eq!(a, b);
        // Different keys land in different partitions (mod small R).
        let hits: std::collections::HashSet<u64> =
            (0..64u64).map(|k| default_partition(&k) % 8).collect();
        assert!(hits.len() >= 4, "hash spreads keys across partitions");
    }
}
