//! Per-split persistent state across MapReduce rounds.
//!
//! H-WTopk's mappers must remember, between rounds, the local wavelet
//! coefficients they have not yet sent (Appendix A). In Hadoop this is done
//! by writing a state file to HDFS keyed by the split id at mapper close
//! and re-reading it when the split is processed in the next round; because
//! HDFS writes locally when possible, it costs no network traffic. A
//! [`StateStore`] models exactly that: a typed per-split blob store that is
//! *not* charged as communication.
//!
//! The multi-process engine mode adds a wire-encoded path: state saved
//! through [`StateStore::save_wire`] is stored as its
//! [`WireCodec`] byte encoding, so a save performed inside a forked map
//! worker can be journalled (`StateOp`) and replayed type-free in the
//! coordinator — the next round's workers then see it through fork
//! copy-on-write, just as Hadoop mappers re-read their local HDFS state
//! file.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;

use crate::wire::WireCodec;

/// One journalled state mutation, replayable without knowing the state's
/// Rust type (the bytes are already wire-encoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StateOp {
    /// `save_wire(split, bytes)`.
    Save(u32, Vec<u8>),
    /// `take_wire(split)` (removal matters even when the value is unused:
    /// the next round must not see consumed state).
    Take(u32),
}

/// Thread-safe per-split state, keyed by split id.
#[derive(Default)]
pub struct StateStore {
    slots: Mutex<HashMap<u32, Box<dyn Any + Send>>>,
    /// `Some` while a forked worker is recording its wire-path mutations
    /// for replay in the coordinator; `None` everywhere else.
    journal: Mutex<Option<Vec<StateOp>>>,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Saves `state` for `split`, replacing any previous value.
    pub fn save<T: Any + Send>(&self, split: u32, state: T) {
        self.slots.lock().insert(split, Box::new(state));
    }

    /// Removes and returns the state of `split`, if present and of type `T`.
    ///
    /// # Panics
    ///
    /// Panics if the stored state has a different type — that is a
    /// programming error in the round driver, not a data condition.
    pub fn take<T: Any + Send>(&self, split: u32) -> Option<T> {
        self.slots.lock().remove(&split).map(|b| {
            *b.downcast::<T>()
                .unwrap_or_else(|_| panic!("state for split {split} has unexpected type"))
        })
    }

    /// Reads (clones) the state of `split` without removing it.
    pub fn get<T: Any + Send + Clone>(&self, split: u32) -> Option<T> {
        self.slots.lock().get(&split).map(|b| {
            b.downcast_ref::<T>()
                .unwrap_or_else(|| panic!("state for split {split} has unexpected type"))
                .clone()
        })
    }

    /// Saves `state` for `split` in its wire encoding, replacing any
    /// previous value. Storing the *bytes* (in every engine mode, so the
    /// modes stay interchangeable) is what lets the multi-process
    /// coordinator replay a worker's saves without the state's type.
    pub fn save_wire<T: WireCodec>(&self, split: u32, state: &T) {
        let mut bytes = Vec::new();
        state.encode_wire(&mut bytes);
        if let Some(ops) = self.journal.lock().as_mut() {
            ops.push(StateOp::Save(split, bytes.clone()));
        }
        self.slots.lock().insert(split, Box::new(bytes));
    }

    /// Removes and decodes the wire-encoded state of `split`, if present.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not saved through [`Self::save_wire`] or
    /// its bytes do not decode as `T` — a programming error in the round
    /// driver, exactly like [`Self::take`]'s type mismatch.
    pub fn take_wire<T: WireCodec>(&self, split: u32) -> Option<T> {
        if let Some(ops) = self.journal.lock().as_mut() {
            ops.push(StateOp::Take(split));
        }
        let bytes: Vec<u8> = self.take(split)?;
        let mut input = bytes.as_slice();
        let value = T::decode_wire(&mut input)
            .unwrap_or_else(|e| panic!("state for split {split} does not decode: {e}"));
        assert!(
            input.is_empty(),
            "state for split {split} has {} trailing bytes",
            input.len()
        );
        Some(value)
    }

    /// Starts recording wire-path mutations (used by forked workers).
    pub(crate) fn begin_journal(&self) {
        *self.journal.lock() = Some(Vec::new());
    }

    /// Stops recording and returns the journal.
    pub(crate) fn drain_journal(&self) -> Vec<StateOp> {
        self.journal.lock().take().unwrap_or_default()
    }

    /// Replays one journalled mutation (used by the coordinator).
    pub(crate) fn apply(&self, op: StateOp) {
        match op {
            StateOp::Save(split, bytes) => {
                self.slots.lock().insert(split, Box::new(bytes));
            }
            StateOp::Take(split) => {
                self.slots.lock().remove(&split);
            }
        }
    }

    /// Number of splits with saved state.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether no state is stored.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

impl std::fmt::Debug for StateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StateStore({} splits)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_take_roundtrip() {
        let store = StateStore::new();
        store.save(3, vec![1u64, 2, 3]);
        assert_eq!(store.len(), 1);
        let v: Vec<u64> = store.take(3).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(store.is_empty());
        assert_eq!(store.take::<Vec<u64>>(3), None);
    }

    #[test]
    fn get_clones_without_removing() {
        let store = StateStore::new();
        store.save(1, 42u32);
        assert_eq!(store.get::<u32>(1), Some(42));
        assert_eq!(store.get::<u32>(1), Some(42));
        assert_eq!(store.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn wrong_type_panics() {
        let store = StateStore::new();
        store.save(1, 42u32);
        let _: Option<String> = store.take(1);
    }

    #[test]
    fn wire_save_take_roundtrip() {
        let store = StateStore::new();
        let state: Vec<(u64, f64)> = vec![(3, 1.5), (9, -2.25)];
        store.save_wire(4, &state);
        assert_eq!(store.len(), 1);
        let back: Vec<(u64, f64)> = store.take_wire(4).unwrap();
        assert_eq!(back, state);
        assert!(store.is_empty());
        assert_eq!(store.take_wire::<Vec<(u64, f64)>>(4), None);
    }

    #[test]
    fn journal_records_and_replays() {
        let recording = StateStore::new();
        recording.begin_journal();
        recording.save_wire(1, &vec![7u64, 8]);
        recording.save_wire(2, &vec![9u64]);
        let _ = recording.take_wire::<Vec<u64>>(1);
        let ops = recording.drain_journal();
        assert_eq!(ops.len(), 3);

        // Replaying the journal on a fresh store reproduces the final
        // slot contents — this is exactly what the coordinator does with
        // ops shipped from a forked worker.
        let replayed = StateStore::new();
        for op in ops {
            replayed.apply(op);
        }
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed.take_wire::<Vec<u64>>(2), Some(vec![9u64]));
        assert_eq!(replayed.take_wire::<Vec<u64>>(1), None);
    }

    #[test]
    fn journal_off_by_default() {
        let store = StateStore::new();
        store.save_wire(1, &1u64);
        assert!(store.drain_journal().is_empty());
    }

    #[test]
    #[should_panic(expected = "does not decode")]
    fn wire_take_with_wrong_type_panics() {
        let store = StateStore::new();
        store.save_wire(1, &1u8);
        let _: Option<u64> = store.take_wire(1);
    }

    #[test]
    fn concurrent_saves() {
        let store = StateStore::new();
        std::thread::scope(|s| {
            for j in 0..8u32 {
                let store = &store;
                s.spawn(move || store.save(j, j as u64 * 10));
            }
        });
        assert_eq!(store.len(), 8);
        for j in 0..8u32 {
            assert_eq!(store.get::<u64>(j), Some(j as u64 * 10));
        }
    }
}
