//! Per-split persistent state across MapReduce rounds.
//!
//! H-WTopk's mappers must remember, between rounds, the local wavelet
//! coefficients they have not yet sent (Appendix A). In Hadoop this is done
//! by writing a state file to HDFS keyed by the split id at mapper close
//! and re-reading it when the split is processed in the next round; because
//! HDFS writes locally when possible, it costs no network traffic. A
//! [`StateStore`] models exactly that: a typed per-split blob store that is
//! *not* charged as communication.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;

/// Thread-safe per-split state, keyed by split id.
#[derive(Default)]
pub struct StateStore {
    slots: Mutex<HashMap<u32, Box<dyn Any + Send>>>,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Saves `state` for `split`, replacing any previous value.
    pub fn save<T: Any + Send>(&self, split: u32, state: T) {
        self.slots.lock().insert(split, Box::new(state));
    }

    /// Removes and returns the state of `split`, if present and of type `T`.
    ///
    /// # Panics
    ///
    /// Panics if the stored state has a different type — that is a
    /// programming error in the round driver, not a data condition.
    pub fn take<T: Any + Send>(&self, split: u32) -> Option<T> {
        self.slots.lock().remove(&split).map(|b| {
            *b.downcast::<T>()
                .unwrap_or_else(|_| panic!("state for split {split} has unexpected type"))
        })
    }

    /// Reads (clones) the state of `split` without removing it.
    pub fn get<T: Any + Send + Clone>(&self, split: u32) -> Option<T> {
        self.slots.lock().get(&split).map(|b| {
            b.downcast_ref::<T>()
                .unwrap_or_else(|| panic!("state for split {split} has unexpected type"))
                .clone()
        })
    }

    /// Number of splits with saved state.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether no state is stored.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

impl std::fmt::Debug for StateStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StateStore({} splits)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_take_roundtrip() {
        let store = StateStore::new();
        store.save(3, vec![1u64, 2, 3]);
        assert_eq!(store.len(), 1);
        let v: Vec<u64> = store.take(3).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(store.is_empty());
        assert_eq!(store.take::<Vec<u64>>(3), None);
    }

    #[test]
    fn get_clones_without_removing() {
        let store = StateStore::new();
        store.save(1, 42u32);
        assert_eq!(store.get::<u32>(1), Some(42));
        assert_eq!(store.get::<u32>(1), Some(42));
        assert_eq!(store.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn wrong_type_panics() {
        let store = StateStore::new();
        store.save(1, 42u32);
        let _: Option<String> = store.take(1);
    }

    #[test]
    fn concurrent_saves() {
        let store = StateStore::new();
        std::thread::scope(|s| {
            for j in 0..8u32 {
                let store = &store;
                s.spawn(move || store.save(j, j as u64 * 10));
            }
        });
        assert_eq!(store.len(), 8);
        for j in 0..8u32 {
            assert_eq!(store.get::<u64>(j), Some(j as u64 * 10));
        }
    }
}
