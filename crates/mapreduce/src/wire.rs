//! Wire-size accounting for intermediate key-value pairs.
//!
//! The paper's communication metric is the number of bytes of intermediate
//! data crossing the network. The experiments spell out the encodings
//! (§5 setup): 4-byte integers for mapper-side counts, 8-byte integers at
//! the reducer, 8-byte doubles for wavelet coefficients and sketch entries.
//! [`WireSize`] lets each algorithm declare exactly those sizes without a
//! serialisation round-trip.

/// Number of bytes a value occupies on the wire.
pub trait WireSize {
    /// Encoded size in bytes.
    fn wire_bytes(&self) -> u64;
}

macro_rules! fixed_wire {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl WireSize for $t {
            #[inline]
            fn wire_bytes(&self) -> u64 { $n }
        })*
    };
}

fixed_wire! {
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    () => 0,
    bool => 1,
}

impl<T: WireSize> WireSize for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // A presence byte plus the payload — matches emitting (x, NULL)
        // markers in TwoLevel-S as a bare key with a tag.
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // 4-byte length prefix plus elements.
        4 + self.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<T: WireSize> WireSize for &T {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

/// A value whose wire size is declared explicitly — used when an algorithm
/// emits a logical payload whose physical encoding differs from its Rust
/// representation (e.g. a 4-byte count carried in a `u64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sized<T> {
    /// The carried value.
    pub value: T,
    /// Its declared wire size in bytes.
    pub bytes: u32,
}

impl<T> Sized<T> {
    /// Wraps `value` with an explicit wire size.
    pub fn new(value: T, bytes: u32) -> Self {
        Self { value, bytes }
    }
}

impl<T> WireSize for Sized<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        u64::from(self.bytes)
    }
}

/// An intermediate key with an explicit wire size — the paper's 4-byte
/// integer keys (and 4-byte coefficient indices) carried in a `u64`.
///
/// Ordering and hashing ignore the size field, which is uniform within a
/// job anyway.
#[derive(Debug, Clone, Copy)]
pub struct WKey {
    /// The key value.
    pub id: u64,
    /// Declared wire size in bytes.
    pub bytes: u8,
}

impl WKey {
    /// A key with an explicit wire size.
    #[inline]
    pub fn new(id: u64, bytes: u8) -> Self {
        Self { id, bytes }
    }

    /// The paper's default 4-byte key.
    #[inline]
    pub fn four(id: u64) -> Self {
        Self { id, bytes: 4 }
    }
}

impl PartialEq for WKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for WKey {}

impl PartialOrd for WKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WKey {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl std::hash::Hash for WKey {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl WireSize for WKey {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        u64::from(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wkey_identity_ignores_size() {
        assert_eq!(WKey::new(5, 4), WKey::new(5, 8));
        assert!(WKey::new(3, 4) < WKey::new(5, 4));
        assert_eq!(WKey::four(9).wire_bytes(), 4);
    }

    #[test]
    fn primitive_sizes() {
        assert_eq!(3u32.wire_bytes(), 4);
        assert_eq!(3u64.wire_bytes(), 8);
        assert_eq!(1.5f64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2.0f64).wire_bytes(), 12);
        assert_eq!((1u32, 2u32, 3.0f64).wire_bytes(), 16);
        assert_eq!(Some(5u32).wire_bytes(), 5);
        assert_eq!(None::<u32>.wire_bytes(), 1);
        assert_eq!(vec![1u64, 2, 3].wire_bytes(), 4 + 24);
    }

    #[test]
    fn explicit_sizes() {
        let s = Sized::new(123u64, 4);
        assert_eq!(s.wire_bytes(), 4);
        assert_eq!((7u32, s).wire_bytes(), 8);
    }
}
