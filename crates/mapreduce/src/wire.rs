//! Wire-size accounting and wire encoding for intermediate key-value pairs.
//!
//! The paper's communication metric is the number of bytes of intermediate
//! data crossing the network. The experiments spell out the encodings
//! (§5 setup): 4-byte integers for mapper-side counts, 8-byte integers at
//! the reducer, 8-byte doubles for wavelet coefficients and sketch entries.
//! [`WireSize`] lets each algorithm declare exactly those sizes without a
//! serialisation round-trip.
//!
//! [`WireCodec`] is the physical companion to that accounting: a
//! byte-exact, little-endian encoding that the multi-process engine mode
//! uses to actually move pairs between worker processes and the
//! coordinator (see [`crate::transport`]). Every encoding round-trips
//! bit-exactly — floats travel via [`f64::to_bits`] — so a job executed
//! across processes reproduces the in-process engine's output to the bit.

/// Number of bytes a value occupies on the wire.
pub trait WireSize {
    /// Encoded size in bytes.
    fn wire_bytes(&self) -> u64;
}

macro_rules! fixed_wire {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl WireSize for $t {
            #[inline]
            fn wire_bytes(&self) -> u64 { $n }
        })*
    };
}

fixed_wire! {
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    () => 0,
    bool => 1,
}

impl<T: WireSize> WireSize for Option<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // A presence byte plus the payload — matches emitting (x, NULL)
        // markers in TwoLevel-S as a bare key with a tag.
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        // 4-byte length prefix plus elements.
        4 + self.iter().map(WireSize::wire_bytes).sum::<u64>()
    }
}

impl<T: WireSize> WireSize for &T {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        (**self).wire_bytes()
    }
}

/// A value whose wire size is declared explicitly — used when an algorithm
/// emits a logical payload whose physical encoding differs from its Rust
/// representation (e.g. a 4-byte count carried in a `u64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sized<T> {
    /// The carried value.
    pub value: T,
    /// Its declared wire size in bytes.
    pub bytes: u32,
}

impl<T> Sized<T> {
    /// Wraps `value` with an explicit wire size.
    pub fn new(value: T, bytes: u32) -> Self {
        Self { value, bytes }
    }
}

impl<T> WireSize for Sized<T> {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        u64::from(self.bytes)
    }
}

/// An intermediate key with an explicit wire size — the paper's 4-byte
/// integer keys (and 4-byte coefficient indices) carried in a `u64`.
///
/// Ordering and hashing ignore the size field, which is uniform within a
/// job anyway.
#[derive(Debug, Clone, Copy)]
pub struct WKey {
    /// The key value.
    pub id: u64,
    /// Declared wire size in bytes.
    pub bytes: u8,
}

impl WKey {
    /// A key with an explicit wire size.
    #[inline]
    pub fn new(id: u64, bytes: u8) -> Self {
        Self { id, bytes }
    }

    /// The paper's default 4-byte key.
    #[inline]
    pub fn four(id: u64) -> Self {
        Self { id, bytes: 4 }
    }
}

impl PartialEq for WKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for WKey {}

impl PartialOrd for WKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WKey {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl std::hash::Hash for WKey {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl WireSize for WKey {
    #[inline]
    fn wire_bytes(&self) -> u64 {
        u64::from(self.bytes)
    }
}

/// Decoding failure for a [`WireCodec`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// The bytes were present but did not form a valid value.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::Invalid(what) => write!(f, "invalid wire payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Consumes exactly `n` bytes from the front of `input`.
#[inline]
pub(crate) fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Byte-exact little-endian encoding used by the multi-process engine to
/// ship pairs over pipes. Decoding must reproduce the encoded value
/// bit-for-bit (floats round-trip through their bit patterns), because
/// the distributed mode is differential-tested bit-identical against the
/// in-process engine.
///
/// The explicit `core::marker::Sized` bound disambiguates from this
/// module's own [`Sized`] wire wrapper.
pub trait WireCodec: core::marker::Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_wire(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `input`, advancing it.
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError>;
}

macro_rules! int_codec {
    ($($t:ty),* $(,)?) => {
        $(impl WireCodec for $t {
            #[inline]
            fn encode_wire(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take_bytes(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        })*
    };
}

int_codec!(u8, i8, u16, i16, u32, i32, u64, i64);

impl WireCodec for f32 {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_wire(out);
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode_wire(input)?))
    }
}

impl WireCodec for f64 {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_wire(out);
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode_wire(input)?))
    }
}

impl WireCodec for bool {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_wire(input)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }
}

impl WireCodec for () {
    #[inline]
    fn encode_wire(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn decode_wire(_input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        self.0.encode_wire(out);
        self.1.encode_wire(out);
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode_wire(input)?, B::decode_wire(input)?))
    }
}

impl<A: WireCodec, B: WireCodec, C: WireCodec> WireCodec for (A, B, C) {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        self.0.encode_wire(out);
        self.1.encode_wire(out);
        self.2.encode_wire(out);
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((
            A::decode_wire(input)?,
            B::decode_wire(input)?,
            C::decode_wire(input)?,
        ))
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_wire(out);
            }
        }
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode_wire(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_wire(input)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_wire(out);
        for v in self {
            v.encode_wire(out);
        }
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode_wire(input)? as usize;
        // Capacity bounded by what the input could possibly hold, so a
        // corrupt length prefix cannot force a huge allocation.
        let mut out = Vec::with_capacity(n.min(input.len()));
        for _ in 0..n {
            out.push(T::decode_wire(input)?);
        }
        Ok(out)
    }
}

impl<T: WireCodec> WireCodec for Sized<T> {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        self.bytes.encode_wire(out);
        self.value.encode_wire(out);
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = u32::decode_wire(input)?;
        let value = T::decode_wire(input)?;
        Ok(Sized { value, bytes })
    }
}

impl WireCodec for WKey {
    #[inline]
    fn encode_wire(&self, out: &mut Vec<u8>) {
        self.bytes.encode_wire(out);
        self.id.encode_wire(out);
    }
    #[inline]
    fn decode_wire(input: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = u8::decode_wire(input)?;
        let id = u64::decode_wire(input)?;
        Ok(WKey { id, bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wkey_identity_ignores_size() {
        assert_eq!(WKey::new(5, 4), WKey::new(5, 8));
        assert!(WKey::new(3, 4) < WKey::new(5, 4));
        assert_eq!(WKey::four(9).wire_bytes(), 4);
    }

    #[test]
    fn primitive_sizes() {
        assert_eq!(3u32.wire_bytes(), 4);
        assert_eq!(3u64.wire_bytes(), 8);
        assert_eq!(1.5f64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2.0f64).wire_bytes(), 12);
        assert_eq!((1u32, 2u32, 3.0f64).wire_bytes(), 16);
        assert_eq!(Some(5u32).wire_bytes(), 5);
        assert_eq!(None::<u32>.wire_bytes(), 1);
        assert_eq!(vec![1u64, 2, 3].wire_bytes(), 4 + 24);
    }

    #[test]
    fn explicit_sizes() {
        let s = Sized::new(123u64, 4);
        assert_eq!(s.wire_bytes(), 4);
        assert_eq!((7u32, s).wire_bytes(), 8);
    }

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode_wire(&mut buf);
        let mut input = buf.as_slice();
        let back = T::decode_wire(&mut input).unwrap();
        assert_eq!(back, v);
        assert!(input.is_empty(), "decode must consume the whole encoding");
    }

    #[test]
    fn codec_roundtrips_primitives() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-7i8);
        roundtrip(0xbeefu16);
        roundtrip(-1234i16);
        roundtrip(0xdead_beefu32);
        roundtrip(i32::MIN);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn codec_roundtrips_floats_bit_exactly() {
        for v in [
            0.0f64,
            -0.0,
            1.5,
            f64::NAN,
            f64::INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let mut buf = Vec::new();
            v.encode_wire(&mut buf);
            let back = f64::decode_wire(&mut buf.as_slice()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let v = f32::NAN;
        let mut buf = Vec::new();
        v.encode_wire(&mut buf);
        let back = f32::decode_wire(&mut buf.as_slice()).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn codec_roundtrips_composites() {
        roundtrip((1u32, 2.5f64));
        roundtrip((1u8, 2u32, 3.5f64));
        roundtrip(Some(42u64));
        roundtrip(None::<u64>);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![(5u64, 1.25f64), (9, -0.5)]);
        let s = Sized::new(123u64, 4);
        let mut buf = Vec::new();
        s.encode_wire(&mut buf);
        let back = Sized::<u64>::decode_wire(&mut buf.as_slice()).unwrap();
        assert_eq!(back.value, 123);
        assert_eq!(back.bytes, 4);
    }

    #[test]
    fn codec_roundtrips_wkey_with_size() {
        let k = WKey::new(77, 8);
        let mut buf = Vec::new();
        k.encode_wire(&mut buf);
        let back = WKey::decode_wire(&mut buf.as_slice()).unwrap();
        // WKey equality ignores the size field; the codec must not.
        assert_eq!(back.id, 77);
        assert_eq!(back.bytes, 8);
    }

    #[test]
    fn codec_reports_truncation_and_invalid_tags() {
        assert_eq!(
            u64::decode_wire(&mut [1u8, 2, 3].as_slice()),
            Err(WireError::Truncated)
        );
        assert_eq!(
            bool::decode_wire(&mut [7u8].as_slice()),
            Err(WireError::Invalid("bool tag"))
        );
        assert_eq!(
            Option::<u8>::decode_wire(&mut [9u8].as_slice()),
            Err(WireError::Invalid("option tag"))
        );
        // A corrupt Vec length prefix larger than the remaining input
        // must fail with Truncated, not allocate or panic.
        let mut buf = Vec::new();
        (u32::MAX).encode_wire(&mut buf);
        assert_eq!(
            Vec::<u64>::decode_wire(&mut buf.as_slice()),
            Err(WireError::Truncated)
        );
    }
}
