//! Radix key codecs and the LSD radix sort behind the map-path spill.
//!
//! Every algorithm in the paper shuffles *small-integer* keys — item keys
//! from a bounded domain `[0, u)`, wavelet coefficient indices, sketch
//! counter indices — yet a generic engine would treat them as opaque `Ord`
//! values and comparison-sort every spill run. [`RadixKey`] lets a job
//! declare (via [`crate::JobSpec::with_radix_keys`]) that its key type has
//! an **order-preserving** `u64` image, unlocking:
//!
//! * an LSD (least-significant-digit) radix sort for spill runs and
//!   combiner grouping — `O(n · bytes(max key))` with branch-free inner
//!   loops instead of `O(n log n)` branch-missy comparisons, producing the
//!   *exact* permutation of the stable comparison sort it replaces;
//! * the dense-domain combine table (the crate's `dense` module) when the job also
//!   carries an [`crate::EngineConfig::key_domain_hint`].
//!
//! The trait is **sealed**: the engine's determinism contract (pipelined ≡
//! reference engine, bit for bit) relies on `to_radix` being strictly
//! order-preserving — `a.cmp(b) == a.to_radix().cmp(&b.to_radix())` for
//! all `a`, `b` — and sealing keeps that invariant reviewable in one file.

use crate::wire::WKey;

mod sealed {
    /// Seals [`super::RadixKey`]: impls live in this module's file only.
    pub trait Sealed {}
}

/// A key with an order-preserving `u64` image, eligible for the radix
/// specializations of the pipelined engine.
///
/// Invariant (enforced by sealing; every impl below upholds it):
/// `a.cmp(&b) == a.to_radix().cmp(&b.to_radix())` for all values. Equal
/// keys must map to equal radixes and distinct keys in `Ord` order must
/// map to `u64`s in the same order, so a radix sort on the image is
/// indistinguishable from a stable comparison sort on the keys.
pub trait RadixKey: Ord + sealed::Sealed {
    /// The order-preserving `u64` image of this key.
    fn to_radix(&self) -> u64;
}

macro_rules! unsigned_radix {
    ($($t:ty),*) => {
        $(
            impl sealed::Sealed for $t {}
            impl RadixKey for $t {
                #[inline]
                fn to_radix(&self) -> u64 {
                    u64::from(*self)
                }
            }
        )*
    };
}

unsigned_radix!(u8, u16, u32);

impl sealed::Sealed for u64 {}
impl RadixKey for u64 {
    #[inline]
    fn to_radix(&self) -> u64 {
        *self
    }
}

macro_rules! signed_radix {
    ($($t:ty => $u:ty, $flip:expr);* $(;)?) => {
        $(
            impl sealed::Sealed for $t {}
            impl RadixKey for $t {
                #[inline]
                fn to_radix(&self) -> u64 {
                    // Flip the sign bit: two's-complement order becomes
                    // unsigned order, widened zero-extended.
                    u64::from((*self as $u) ^ $flip)
                }
            }
        )*
    };
}

signed_radix! {
    i8 => u8, 0x80;
    i16 => u16, 0x8000;
    i32 => u32, 0x8000_0000;
}

impl sealed::Sealed for i64 {}
impl RadixKey for i64 {
    #[inline]
    fn to_radix(&self) -> u64 {
        (*self as u64) ^ (1 << 63)
    }
}

impl sealed::Sealed for WKey {}
impl RadixKey for WKey {
    /// `WKey` orders, hashes, and equates by `id` alone (the size field is
    /// uniform within a job), so the id *is* the order-preserving image.
    #[inline]
    fn to_radix(&self) -> u64 {
        self.id
    }
}

impl sealed::Sealed for (u32, u32) {}
impl RadixKey for (u32, u32) {
    /// Lexicographic tuple order equals the order of the packed image.
    #[inline]
    fn to_radix(&self) -> u64 {
        (u64::from(self.0) << 32) | u64::from(self.1)
    }
}

impl sealed::Sealed for (u16, u16) {}
impl RadixKey for (u16, u16) {
    #[inline]
    fn to_radix(&self) -> u64 {
        (u64::from(self.0) << 16) | u64::from(self.1)
    }
}

/// Below this length the constant factors of digit histograms outweigh
/// the comparison sort's `log n`; measured crossover sits near 32–64
/// pairs, and tiny spill runs (sampling builders) are the common case.
const RADIX_MIN_LEN: usize = 48;

/// Index bits of the packed `radix·2²⁴ | index` representation: runs
/// below 2²⁴ pairs whose radixes fit 40 bits (every bounded-domain
/// workload in this repo) sort 8-byte packed words instead of 16-byte
/// `(radix, index)` tuples — half the bandwidth per LSD pass.
const PACK_IDX_BITS: u32 = 24;

/// Reusable scratch of the radix sort: the ping-pong working buffers
/// (packed `u64`s on the narrow-key fast path, `(radix, index)` tuples
/// otherwise) plus the destination map of the final in-place
/// permutation. One per map worker, recycled across every task and spill
/// run that worker processes.
#[derive(Debug, Default)]
pub(crate) struct RadixScratch {
    keyed: Vec<(u64, u32)>,
    swap: Vec<(u64, u32)>,
    packed: Vec<u64>,
    packed_swap: Vec<u64>,
    counts: Vec<u32>,
    dst: Vec<u32>,
}

/// Sorts `pairs` stably by key through the key's radix image — the exact
/// permutation `pairs.sort_by(|a, b| a.0.cmp(&b.0))` would produce, ties
/// preserving arrival order.
///
/// This is the self-contained entry point (fresh scratch per call); use
/// [`RadixSorter`] to recycle the scratch across runs the way engine map
/// workers do.
pub fn sort_pairs<K: RadixKey, V>(pairs: &mut [(K, V)]) {
    RadixSorter::new().sort(pairs);
}

/// A reusable radix sorter: [`sort_pairs`] with its scratch buffers kept
/// alive across calls, so sorting a stream of spill-sized runs allocates
/// only on the largest run seen.
#[derive(Debug, Default)]
pub struct RadixSorter {
    scratch: RadixScratch,
}

impl RadixSorter {
    /// A sorter with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts `pairs` stably by key — see [`sort_pairs`].
    pub fn sort<K: RadixKey, V>(&mut self, pairs: &mut [(K, V)]) {
        sort_pairs_with(pairs, |k: &K| k.to_radix(), &mut self.scratch);
    }
}

/// Scratch-reusing radix sort used by the engine. `radix_of` must be
/// order-preserving (the [`RadixKey`] contract); the engine only ever
/// passes `K::to_radix`.
pub(crate) fn sort_pairs_with<K, V>(
    pairs: &mut [(K, V)],
    radix_of: impl Fn(&K) -> u64,
    scratch: &mut RadixScratch,
) where
    K: Ord,
{
    let n = pairs.len();
    if n <= 1 {
        return;
    }
    if n < RADIX_MIN_LEN {
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        return;
    }
    assert!(n <= u32::MAX as usize, "spill run exceeds u32 indexing");

    // Extract radixes once, tracking the minimum and maximum (they bound
    // the digit count) and whether the run is already sorted (combined
    // spills arrive in key order, so this O(n) scan routinely saves the
    // whole sort).
    let keyed = &mut scratch.keyed;
    keyed.clear();
    keyed.reserve(n);
    let mut min = u64::MAX;
    let mut max = 0u64;
    let mut prev = 0u64;
    let mut sorted = true;
    for (i, (k, _)) in pairs.iter().enumerate() {
        let r = radix_of(k);
        sorted &= r >= prev;
        prev = r;
        min = min.min(r);
        max = max.max(r);
        keyed.push((r, i as u32));
    }
    if sorted {
        return;
    }

    // Rebase every radix by the run's minimum: subtracting a constant
    // preserves order (and ties), so the sort is unchanged — but the
    // effective key width shrinks from [0, max] to [0, max − min]. A
    // range-partitioned run whose keys live in a narrow [lo, hi] band
    // (every partition of a range-partitioned job) now takes the
    // single-histogram counting sort sized to its *span*, and runs that
    // still need LSD passes may need fewer digits.
    if min > 0 {
        for e in keyed.iter_mut() {
            e.0 -= min;
        }
        max -= min;
    }

    let digits = (64 - max.leading_zeros() as usize).div_ceil(8);
    let dst = &mut scratch.dst;
    dst.clear();
    dst.resize(n, 0);
    if max < (n as u64).saturating_mul(2) {
        // Dense keys: one histogram over the rebased [0, max − min]
        // span replaces every LSD pass — each element's destination
        // falls out of a single stable counting sort.
        counting_fill_dst(keyed, &mut scratch.counts, dst, max as usize);
    } else if max < (1 << (64 - PACK_IDX_BITS)) && n < (1 << PACK_IDX_BITS) {
        lsd_packed(
            keyed,
            &mut scratch.packed,
            &mut scratch.packed_swap,
            dst,
            digits,
        );
    } else {
        lsd_generic(keyed, &mut scratch.swap, dst, digits);
    }

    // Apply the permutation in place through its destination map:
    // element at original position `i` belongs at sorted position
    // `dst[i]`. Cycle-chasing swaps realize it with O(n) moves and no
    // per-pair buffer.
    for i in 0..n {
        while dst[i] as usize != i {
            let j = dst[i] as usize;
            pairs.swap(i, j);
            dst.swap(i, j);
        }
    }
}

/// Stable counting sort for dense radixes (span `max < 2n` after the
/// min-rebase): one histogram over `[0, max]`, a prefix sum, and one pass
/// assigning each element its destination — no digit passes at all. Equal
/// radixes receive ascending destinations in arrival order, so stability
/// matches the LSD paths.
fn counting_fill_dst(keyed: &[(u64, u32)], counts: &mut Vec<u32>, dst: &mut [u32], max: usize) {
    counts.clear();
    counts.resize(max + 1, 0);
    for &(r, _) in keyed {
        counts[r as usize] += 1;
    }
    let mut sum = 0u32;
    for c in counts.iter_mut() {
        let next = sum + *c;
        *c = sum;
        sum = next;
    }
    for &(r, i) in keyed {
        dst[i as usize] = counts[r as usize];
        counts[r as usize] += 1;
    }
}

/// Narrow-key LSD passes over packed `radix·2²⁴ | index` words: ties in a
/// digit leave the distinct index bits untouched and every counting-sort
/// pass is stable, so arrival order survives exactly as in the generic
/// path. Fills `dst` with each original index's sorted position.
fn lsd_packed(
    keyed: &[(u64, u32)],
    packed: &mut Vec<u64>,
    packed_swap: &mut Vec<u64>,
    dst: &mut [u32],
    digits: usize,
) {
    let n = keyed.len();
    packed.clear();
    packed.reserve(n);
    for &(r, i) in keyed {
        packed.push((r << PACK_IDX_BITS) | u64::from(i));
    }

    // One pass builds the histograms of every digit position at once.
    // max < 2^40 here, so at most 5 digit positions carry any bits.
    let mut counts = [[0u32; 256]; 5];
    for &e in packed.iter() {
        for (d, c) in counts.iter_mut().enumerate().take(digits) {
            c[(e >> (PACK_IDX_BITS as usize + d * 8)) as usize & 0xFF] += 1;
        }
    }

    packed_swap.clear();
    packed_swap.resize(n, 0);
    let mut src_is_first = true;
    for (d, c) in counts.iter_mut().enumerate().take(digits) {
        // A digit where every key agrees permutes nothing: skip the pass.
        if c.iter().any(|&x| x as usize == n) {
            continue;
        }
        let mut sum = 0u32;
        for slot in c.iter_mut() {
            let next = sum + *slot;
            *slot = sum;
            sum = next;
        }
        let (src, out) = if src_is_first {
            (&mut *packed, &mut *packed_swap)
        } else {
            (&mut *packed_swap, &mut *packed)
        };
        let shift = PACK_IDX_BITS as usize + d * 8;
        for &e in src.iter() {
            let b = (e >> shift) as usize & 0xFF;
            out[c[b] as usize] = e;
            c[b] += 1;
        }
        src_is_first = !src_is_first;
    }
    let order = if src_is_first {
        &*packed
    } else {
        &*packed_swap
    };
    let idx_mask = (1u64 << PACK_IDX_BITS) - 1;
    for (pos, &e) in order.iter().enumerate() {
        dst[(e & idx_mask) as usize] = pos as u32;
    }
}

/// Full-width LSD passes over `(radix, index)` tuples — the fallback for
/// runs too large or radixes too wide for the packed representation.
/// Fills `dst` with each original index's sorted position.
fn lsd_generic(
    keyed: &mut Vec<(u64, u32)>,
    swap: &mut Vec<(u64, u32)>,
    dst: &mut [u32],
    digits: usize,
) {
    let n = keyed.len();
    // One pass builds the histograms of every digit position at once.
    let mut counts = [[0u32; 256]; 8];
    for &(r, _) in keyed.iter() {
        for (d, c) in counts.iter_mut().enumerate().take(digits) {
            c[(r >> (d * 8)) as usize & 0xFF] += 1;
        }
    }

    // LSD passes, least significant digit first; each pass is a stable
    // counting sort, so ties keep arrival order throughout.
    swap.clear();
    swap.resize(n, (0, 0));
    let mut src_is_keyed = true;
    for (d, c) in counts.iter_mut().enumerate().take(digits) {
        // A digit where every key agrees permutes nothing: skip the pass.
        if c.iter().any(|&x| x as usize == n) {
            continue;
        }
        let mut sum = 0u32;
        for slot in c.iter_mut() {
            let next = sum + *slot;
            *slot = sum;
            sum = next;
        }
        let (src, out) = if src_is_keyed {
            (&mut *keyed, &mut *swap)
        } else {
            (&mut *swap, &mut *keyed)
        };
        let shift = d * 8;
        for &(r, i) in src.iter() {
            let b = (r >> shift) as usize & 0xFF;
            out[c[b] as usize] = (r, i);
            c[b] += 1;
        }
        src_is_keyed = !src_is_keyed;
    }
    let order = if src_is_keyed { &*keyed } else { &*swap };
    for (pos, &(_, i)) in order.iter().enumerate() {
        dst[i as usize] = pos as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sort<K: Ord + Clone, V: Clone>(pairs: &[(K, V)]) -> Vec<(K, V)> {
        let mut v = pairs.to_vec();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn scrambled(n: u64, modulus: u64) -> Vec<(u64, u64)> {
        (0..n)
            .map(|i| ((i.wrapping_mul(0x9e3779b97f4a7c15) >> 13) % modulus, i))
            .collect()
    }

    #[test]
    fn matches_comparison_sort_with_heavy_ties() {
        for modulus in [1, 2, 17, 1 << 10, 1 << 20, u64::MAX] {
            let pairs = scrambled(500, modulus);
            let want = reference_sort(&pairs);
            let mut got = pairs;
            sort_pairs(&mut got);
            assert_eq!(got, want, "modulus={modulus}");
        }
    }

    #[test]
    fn ties_preserve_arrival_order() {
        let mut pairs: Vec<(u32, u32)> = (0..300).map(|i| (i % 3, i)).collect();
        sort_pairs(&mut pairs);
        for w in pairs.windows(2) {
            assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "{w:?}"
            );
        }
    }

    #[test]
    fn tiny_and_trivial_inputs() {
        let mut empty: Vec<(u64, ())> = vec![];
        sort_pairs(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![(5u64, 'x')];
        sort_pairs(&mut one);
        assert_eq!(one, vec![(5, 'x')]);
        let mut below_threshold = vec![(3u8, 0), (1, 1), (2, 2), (1, 3)];
        sort_pairs(&mut below_threshold);
        assert_eq!(below_threshold, vec![(1, 1), (1, 3), (2, 2), (3, 0)]);
    }

    #[test]
    fn already_sorted_fast_path_is_a_no_op() {
        let mut pairs: Vec<(u64, u64)> = (0..200).map(|i| (i / 2, i)).collect();
        let want = pairs.clone();
        sort_pairs(&mut pairs);
        assert_eq!(pairs, want);
    }

    #[test]
    fn scratch_is_reusable_across_runs() {
        let mut scratch = RadixScratch::default();
        for modulus in [5u64, 1 << 30, 3] {
            let pairs = scrambled(257, modulus);
            let want = reference_sort(&pairs);
            let mut got = pairs;
            sort_pairs_with(&mut got, |k| *k, &mut scratch);
            assert_eq!(got, want, "modulus={modulus}");
        }
    }

    #[test]
    fn signed_images_preserve_order() {
        let xs: [i64; 7] = [i64::MIN, -55, -1, 0, 1, 99, i64::MAX];
        for w in xs.windows(2) {
            assert!(w[0].to_radix() < w[1].to_radix(), "{w:?}");
        }
        let ys: [i32; 5] = [i32::MIN, -2, 0, 3, i32::MAX];
        for w in ys.windows(2) {
            assert!(w[0].to_radix() < w[1].to_radix(), "{w:?}");
        }
        assert!((-7i8).to_radix() < 0i8.to_radix());
        assert!((-7i16).to_radix() < 7i16.to_radix());
    }

    #[test]
    fn tuple_images_are_lexicographic() {
        let a = (1u32, u32::MAX);
        let b = (2u32, 0u32);
        assert!(a < b && a.to_radix() < b.to_radix());
        let c = (7u16, 3u16);
        let d = (7u16, 4u16);
        assert!(c < d && c.to_radix() < d.to_radix());
    }

    #[test]
    fn wkey_image_ignores_the_size_field() {
        assert_eq!(WKey::new(9, 4).to_radix(), WKey::new(9, 8).to_radix());
        assert!(WKey::four(3).to_radix() < WKey::four(5).to_radix());
        let mut pairs = vec![
            (WKey::four(9), 'a'),
            (WKey::four(2), 'b'),
            (WKey::four(9), 'c'),
        ];
        // Below the threshold this exercises the fallback; correctness is
        // what matters.
        sort_pairs(&mut pairs);
        assert_eq!(
            pairs,
            vec![
                (WKey::four(2), 'b'),
                (WKey::four(9), 'a'),
                (WKey::four(9), 'c')
            ]
        );
    }

    #[test]
    fn rebased_counting_sort_handles_high_narrow_runs() {
        // A range-partitioned partition's regime: keys in a narrow band
        // far from zero. Without the min-rebase this span would take LSD
        // digit passes; with it, the counting path sized to [lo, hi].
        for lo in [1u64 << 17, (1 << 40) - 500, u64::MAX - 900] {
            let pairs: Vec<(u64, u64)> = (0..600)
                .map(|i: u64| (lo + (i.wrapping_mul(0x9e3779b97f4a7c15) >> 55) % 400, i))
                .collect();
            let want = reference_sort(&pairs);
            let mut got = pairs;
            sort_pairs(&mut got);
            assert_eq!(got, want, "lo={lo}");
        }
    }

    #[test]
    fn rebase_keeps_ties_in_arrival_order() {
        let base = 0xdead_beef_0000u64;
        let mut pairs: Vec<(u64, u32)> = (0..300).map(|i| (base + u64::from(i % 3), i)).collect();
        sort_pairs(&mut pairs);
        for w in pairs.windows(2) {
            assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "{w:?}"
            );
        }
    }

    #[test]
    fn sorts_sixty_four_bit_spread() {
        let pairs: Vec<(u64, u64)> = (0..4096)
            .map(|i: u64| (i.wrapping_mul(0x2545f4914f6cdd1d).rotate_left(17), i))
            .collect();
        let want = reference_sort(&pairs);
        let mut got = pairs;
        sort_pairs(&mut got);
        assert_eq!(got, want);
    }
}
