//! Map- and reduce-side execution contexts.

use crate::metrics::ReduceStrategy;
use crate::wire::WireSize;

/// Type-erased in-flight compaction hook installed by the engine when the
/// job enables streaming combining: it groups the buffered pairs by key and
/// applies the Combine function in place.
pub(crate) type Compactor<K, V> = Box<dyn Fn(&mut Vec<(K, V)>) + Send>;

/// Context handed to a map task: emit intermediate pairs and account for
/// the work done.
///
/// With [`streaming combining`](crate::EngineConfig::streaming_combine)
/// enabled, the context aggregates at emit time: once the pair buffer
/// reaches the configured spill chunk size, the Combine function runs over
/// the buffered pairs instead of materializing every raw pair until the
/// task ends. The compaction threshold then grows geometrically with the
/// surviving buffer, so a combiner that cannot shrink its input does not
/// trigger quadratic re-compaction.
pub struct MapContext<K, V> {
    pub(crate) split_id: u32,
    pub(crate) pairs: Vec<(K, V)>,
    pub(crate) records_read: u64,
    pub(crate) bytes_read: u64,
    pub(crate) cpu_ops: f64,
    pub(crate) compactor: Option<Compactor<K, V>>,
    pub(crate) spill_chunk: usize,
    pub(crate) next_compact: usize,
}

impl<K, V> std::fmt::Debug for MapContext<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapContext")
            .field("split_id", &self.split_id)
            .field("pairs", &self.pairs.len())
            .field("records_read", &self.records_read)
            .field("bytes_read", &self.bytes_read)
            .field("cpu_ops", &self.cpu_ops)
            .field("streaming", &self.compactor.is_some())
            .field("spill_chunk", &self.spill_chunk)
            .finish()
    }
}

impl<K, V> MapContext<K, V>
where
    K: WireSize,
    V: WireSize,
{
    pub(crate) fn new(split_id: u32) -> Self {
        Self::with_buffer(split_id, Vec::new())
    }

    /// A context whose emit buffer reuses `buffer`'s allocation — how map
    /// workers recycle the pair buffer across the tasks they execute
    /// instead of reallocating it per task.
    pub(crate) fn with_buffer(split_id: u32, mut buffer: Vec<(K, V)>) -> Self {
        buffer.clear();
        Self {
            split_id,
            pairs: buffer,
            records_read: 0,
            bytes_read: 0,
            cpu_ops: 0.0,
            compactor: None,
            spill_chunk: 0,
            next_compact: 0,
        }
    }

    /// Enables streaming combining: `compactor` runs whenever the pair
    /// buffer reaches the current threshold. `spill_chunk == 0` means the
    /// compactor only runs once, when the engine collects the spill.
    pub(crate) fn install_compactor(&mut self, compactor: Compactor<K, V>, spill_chunk: usize) {
        self.compactor = Some(compactor);
        self.spill_chunk = spill_chunk;
        self.next_compact = spill_chunk;
    }

    /// The split this task processes.
    pub fn split_id(&self) -> u32 {
        self.split_id
    }

    /// Emits one intermediate `(k₂, v₂)` pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
        if self.spill_chunk != 0 && self.pairs.len() >= self.next_compact {
            if let Some(compact) = &self.compactor {
                compact(&mut self.pairs);
                // Grow the threshold past the surviving buffer so an
                // incompressible stream stays O(n log n) overall.
                self.next_compact = (self.pairs.len() * 2).max(self.spill_chunk);
            }
        }
    }

    /// Records that `records` records totalling `bytes` bytes were read
    /// from the split. Full scans call this once with the split totals;
    /// samplers call it with the touched subset only.
    #[inline]
    pub fn note_read(&mut self, records: u64, bytes: u64) {
        self.records_read += records;
        self.bytes_read += bytes;
    }

    /// Charges `ops` abstract CPU operations to this task (hash-map
    /// updates, wavelet coefficient updates, sketch row updates…). The
    /// cost model converts ops into seconds per machine.
    #[inline]
    pub fn charge(&mut self, ops: f64) {
        self.cpu_ops += ops;
    }

    /// Whether this task is executing inside a forked map-worker process
    /// ([`crate::EngineMode::MultiProcess`]) rather than an in-process
    /// thread. Map closures behave identically in both cases — this
    /// exists for tests that must misbehave only in the child (e.g. the
    /// killed-worker regression) and for diagnostics.
    pub fn in_worker_process(&self) -> bool {
        crate::worker::in_map_worker()
    }
}

/// Context handed to the reduce function.
#[derive(Debug)]
pub struct ReduceContext<R> {
    pub(crate) outputs: Vec<R>,
    pub(crate) cpu_ops: f64,
    /// Which reduce strategy produced this partition's key groups. Set by
    /// the pipelined engine's `reduce_partition` and harvested into
    /// [`crate::RunMetrics::reduce_strategies`] when outputs are stitched;
    /// `None` for the Close-hook context and the reference engine.
    pub(crate) strategy: Option<ReduceStrategy>,
}

impl<R> ReduceContext<R> {
    pub(crate) fn new() -> Self {
        Self {
            outputs: Vec::new(),
            cpu_ops: 0.0,
            strategy: None,
        }
    }

    /// Emits one final output record.
    #[inline]
    pub fn emit(&mut self, out: R) {
        self.outputs.push(out);
    }

    /// Charges CPU work to the reducer.
    #[inline]
    pub fn charge(&mut self, ops: f64) {
        self.cpu_ops += ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_context_accumulates() {
        let mut ctx: MapContext<u32, f64> = MapContext::new(3);
        assert_eq!(ctx.split_id(), 3);
        ctx.emit(1, 2.0);
        ctx.emit(2, 4.0);
        ctx.note_read(10, 40);
        ctx.note_read(5, 20);
        ctx.charge(100.0);
        assert_eq!(ctx.pairs.len(), 2);
        assert_eq!(ctx.records_read, 15);
        assert_eq!(ctx.bytes_read, 60);
        assert_eq!(ctx.cpu_ops, 100.0);
    }

    #[test]
    fn reduce_context_collects() {
        let mut ctx: ReduceContext<String> = ReduceContext::new();
        ctx.emit("a".into());
        ctx.charge(5.0);
        assert_eq!(ctx.outputs, vec!["a".to_string()]);
        assert_eq!(ctx.cpu_ops, 5.0);
    }

    #[test]
    fn compactor_fires_at_threshold_and_backs_off() {
        // A compactor that sums everything into one pair.
        let mut ctx: MapContext<u32, u64> = MapContext::new(0);
        ctx.install_compactor(
            Box::new(|pairs| {
                let total: u64 = pairs.iter().map(|&(_, v)| v).sum();
                pairs.clear();
                pairs.push((0, total));
            }),
            4,
        );
        for _ in 0..16 {
            ctx.emit(7, 1);
        }
        // The buffer never exceeds the chunk size for long: every 4th emit
        // collapses it back to one pair.
        assert!(ctx.pairs.len() <= 4, "buffer len {}", ctx.pairs.len());
        let total: u64 = ctx.pairs.iter().map(|&(_, v)| v).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn incompressible_compactor_backs_off_geometrically() {
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let calls2 = std::sync::Arc::clone(&calls);
        let mut ctx: MapContext<u32, u64> = MapContext::new(0);
        ctx.install_compactor(
            Box::new(move |_pairs| {
                calls2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }),
            4,
        );
        for i in 0..1024 {
            ctx.emit(i, 1);
        }
        // No shrinkage → thresholds 4, 8, 16, …: O(log n) compactions, not
        // one per emit.
        let n = calls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(n <= 10, "compactor ran {n} times for 1024 emits");
        assert_eq!(ctx.pairs.len(), 1024);
    }
}
