//! Map- and reduce-side execution contexts.

use crate::wire::WireSize;

/// Context handed to a map task: emit intermediate pairs and account for
/// the work done.
#[derive(Debug)]
pub struct MapContext<K, V> {
    pub(crate) split_id: u32,
    pub(crate) pairs: Vec<(K, V)>,
    pub(crate) records_read: u64,
    pub(crate) bytes_read: u64,
    pub(crate) cpu_ops: f64,
}

impl<K, V> MapContext<K, V>
where
    K: WireSize,
    V: WireSize,
{
    pub(crate) fn new(split_id: u32) -> Self {
        Self {
            split_id,
            pairs: Vec::new(),
            records_read: 0,
            bytes_read: 0,
            cpu_ops: 0.0,
        }
    }

    /// The split this task processes.
    pub fn split_id(&self) -> u32 {
        self.split_id
    }

    /// Emits one intermediate `(k₂, v₂)` pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Records that `records` records totalling `bytes` bytes were read
    /// from the split. Full scans call this once with the split totals;
    /// samplers call it with the touched subset only.
    #[inline]
    pub fn note_read(&mut self, records: u64, bytes: u64) {
        self.records_read += records;
        self.bytes_read += bytes;
    }

    /// Charges `ops` abstract CPU operations to this task (hash-map
    /// updates, wavelet coefficient updates, sketch row updates…). The
    /// cost model converts ops into seconds per machine.
    #[inline]
    pub fn charge(&mut self, ops: f64) {
        self.cpu_ops += ops;
    }
}

/// Context handed to the reduce function.
#[derive(Debug)]
pub struct ReduceContext<R> {
    pub(crate) outputs: Vec<R>,
    pub(crate) cpu_ops: f64,
}

impl<R> ReduceContext<R> {
    pub(crate) fn new() -> Self {
        Self {
            outputs: Vec::new(),
            cpu_ops: 0.0,
        }
    }

    /// Emits one final output record.
    #[inline]
    pub fn emit(&mut self, out: R) {
        self.outputs.push(out);
    }

    /// Charges CPU work to the reducer.
    #[inline]
    pub fn charge(&mut self, ops: f64) {
        self.cpu_ops += ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_context_accumulates() {
        let mut ctx: MapContext<u32, f64> = MapContext::new(3);
        assert_eq!(ctx.split_id(), 3);
        ctx.emit(1, 2.0);
        ctx.emit(2, 4.0);
        ctx.note_read(10, 40);
        ctx.note_read(5, 20);
        ctx.charge(100.0);
        assert_eq!(ctx.pairs.len(), 2);
        assert_eq!(ctx.records_read, 15);
        assert_eq!(ctx.bytes_read, 60);
        assert_eq!(ctx.cpu_ops, 100.0);
    }

    #[test]
    fn reduce_context_collects() {
        let mut ctx: ReduceContext<String> = ReduceContext::new();
        ctx.emit("a".into());
        ctx.charge(5.0);
        assert_eq!(ctx.outputs, vec!["a".to_string()]);
        assert_eq!(ctx.cpu_ops, 5.0);
    }
}
