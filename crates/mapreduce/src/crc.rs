//! CRC32C (Castagnoli) for the frame transport's integrity trailer.
//!
//! Every frame the multi-process engine ships carries a CRC32C of its
//! header and payload ([`crate::transport`]), so silent corruption on the
//! pipe surfaces as a typed [`crate::EngineError::CorruptFrame`] instead
//! of a wrong histogram. The checksum sits on the hot shuffle path —
//! every shuffled byte passes through it twice (writer and reader) — so
//! the implementation matters:
//!
//! * on `x86_64` with SSE 4.2 (runtime-detected once), three
//!   independent hardware `crc32` dependency chains fold 24 bytes per
//!   step across three lanes of the input, stitched back together with
//!   precomputed GF(2) shift matrices (`crc32q` is latency-3 /
//!   throughput-1, so one chain would leave the unit two-thirds idle);
//! * everywhere else, a slice-by-8 table walk (eight 256-entry tables,
//!   built at compile time) processes 8 bytes per iteration without a
//!   bit-at-a-time loop.
//!
//! Both paths implement the identical function (tests pin them to each
//! other and to the published check value), so the frame format does not
//! depend on the host CPU.

/// Streaming CRC32C: `update` over any slice boundaries, `finish` once.
/// State composes across calls, so the writer can checksum a frame's
/// header and payload without copying them into one buffer.
pub(crate) struct Crc32c {
    /// Running pre-inverted state (initialised to `!0`).
    state: u32,
}

impl Crc32c {
    pub fn new() -> Self {
        Self { state: !0 }
    }

    pub fn update(&mut self, data: &[u8]) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.2") {
                // SAFETY: guarded by the runtime SSE 4.2 detection above.
                self.state = unsafe { update_hw(self.state, data) };
                return;
            }
        }
        self.state = update_sw(self.state, data);
    }

    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot convenience over [`Crc32c`].
#[cfg(test)]
pub(crate) fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

/// Below this length the three-lane split is not worth its combine cost.
#[cfg(target_arch = "x86_64")]
const THREE_LANE_MIN: usize = 384;

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(state: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    // `crc32q` has 3-cycle latency but single-cycle throughput, so one
    // dependency chain leaves two thirds of the unit idle. Large inputs
    // are split into three equal lanes walked by three independent
    // chains in one loop, then stitched with the zero-byte shift
    // matrices (CRC is GF(2)-linear:
    // `crc(S, A‖B) = shift(crc(S, A), |B|) ^ crc(0, B)`).
    let mut data = data;
    let mut crc = u64::from(state);
    if data.len() >= THREE_LANE_MIN {
        let lane = (data.len() / 24) * 8;
        let (a, rest) = data.split_at(lane);
        let (b, c) = rest.split_at(lane);
        let (mut ca, mut cb, mut cc) = (crc, 0u64, 0u64);
        let mut i = 0;
        while i + 8 <= lane {
            ca = _mm_crc32_u64(ca, u64::from_le_bytes(a[i..i + 8].try_into().unwrap()));
            cb = _mm_crc32_u64(cb, u64::from_le_bytes(b[i..i + 8].try_into().unwrap()));
            cc = _mm_crc32_u64(cc, u64::from_le_bytes(c[i..i + 8].try_into().unwrap()));
            i += 8;
        }
        let ab = shift_zero_bytes(ca as u32, lane) ^ cb as u32;
        crc = u64::from(shift_zero_bytes(ab, lane) ^ cc as u32);
        data = &c[lane..]; // 0..=23 tail bytes
    }
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

/// Applies a GF(2)-linear map (given by its 32 columns) to a state.
#[cfg(target_arch = "x86_64")]
const fn mat_apply(m: &[u32; 32], mut v: u32) -> u32 {
    let mut out = 0;
    let mut j = 0;
    while v != 0 {
        if v & 1 != 0 {
            out ^= m[j];
        }
        v >>= 1;
        j += 1;
    }
    out
}

#[cfg(target_arch = "x86_64")]
const fn mat_square(m: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    let mut j = 0;
    while j < 32 {
        out[j] = mat_apply(m, m[j]);
        j += 1;
    }
    out
}

/// `SHIFT[k]` advances a CRC state over `2^k` zero bytes; 25 entries
/// cover any shift below 32 MiB, past the 16 MiB frame cap. Built by
/// repeated squaring of the one-zero-byte step
/// `v ↦ (v >> 8) ^ TABLES[0][v & 0xff]`.
#[cfg(target_arch = "x86_64")]
static SHIFT: [[u32; 32]; 25] = build_shift_matrices();

#[cfg(target_arch = "x86_64")]
const fn build_shift_matrices() -> [[u32; 32]; 25] {
    let mut s = [[0u32; 32]; 25];
    let mut j = 0;
    while j < 32 {
        let v = 1u32 << j;
        s[0][j] = (v >> 8) ^ TABLES[0][(v & 0xff) as usize];
        j += 1;
    }
    let mut k = 1;
    while k < 25 {
        s[k] = mat_square(&s[k - 1]);
        k += 1;
    }
    s
}

/// Advances `state` as if `len` zero bytes were processed — the combine
/// primitive for the three-lane hardware loop.
#[cfg(target_arch = "x86_64")]
fn shift_zero_bytes(mut state: u32, mut len: usize) -> u32 {
    let mut k = 0;
    while len != 0 {
        if len & 1 != 0 {
            state = mat_apply(&SHIFT[k], state);
        }
        len >>= 1;
        k += 1;
    }
    state
}

/// CRC32C polynomial, reflected form.
const POLY: u32 = 0x82f6_3b78;

/// Slice-by-8 lookup tables: `TABLES[k][b]` is the CRC contribution of
/// byte `b` sitting `k` positions before the end of an 8-byte group.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

fn update_sw(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes(c[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..].try_into().unwrap());
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_check_value() {
        // RFC 3720 appendix / the canonical CRC32C check vector.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn software_path_matches_dispatch() {
        let mut data = Vec::new();
        let mut x = 0x2545_f491u64;
        for _ in 0..4099 {
            // Deterministic xorshift filler, plenty of distinct bytes.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push(x as u8);
        }
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 4099] {
            let slice = &data[..len];
            assert_eq!(!update_sw(!0, slice), crc32c(slice), "len={len}");
        }
    }

    #[test]
    fn streaming_updates_match_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(1037).collect();
        for cut in [0, 1, 5, 512, 1036, 1037] {
            let mut c = Crc32c::new();
            c.update(&data[..cut]);
            c.update(&data[cut..]);
            assert_eq!(c.finish(), crc32c(&data), "cut={cut}");
        }
    }
}
