//! # wh-mapreduce — a deterministic MapReduce runtime with cost accounting
//!
//! This crate stands in for the Hadoop cluster of the paper's experiments
//! (§2.2, §5). It really executes MapReduce jobs — user-supplied map
//! closures run in parallel threads, their emitted pairs are combined,
//! partitioned, sorted, shuffled and reduced — while every quantity the
//! paper measures is accounted exactly:
//!
//! * **communication**: bytes of intermediate `(k₂, v₂)` pairs after the
//!   Combine function, plus Job-Configuration / Distributed-Cache broadcast
//!   bytes (the paper's two sideband channels, §3 "System issues");
//! * **work**: records and bytes scanned by mappers, CPU operations charged
//!   by the algorithm (hashing, wavelet updates, sketch updates…);
//! * **simulated wall-clock**: the [`cost`] model converts the measured
//!   work into seconds on a configurable cluster. The default
//!   [`cost::ClusterConfig::paper_cluster`] reproduces the paper's
//!   16-machine heterogeneous setup (100 Mbps switch, default 50%
//!   available bandwidth, one reducer pinned to a fixed machine).
//!
//! Multi-round algorithms (H-WTopk needs three rounds) keep per-split state
//! in a [`state::StateStore`], mirroring the paper's trick of persisting
//! mapper state to a local HDFS file between rounds (Appendix A) — which is
//! also why that state is *not* charged as communication.
//!
//! ## Execution engine
//!
//! Since PR 2 the runtime is a pipelined, partition-parallel engine
//! ([`engine`]):
//!
//! ```text
//! map workers ──▶ per-partition sorted spills ──▶ k-way merge per
//! (parallel)      (combine + partition + sort     partition ──▶ parallel
//!                  inside the worker thread)      reduce, deterministic
//!                                                 output stitching
//! ```
//!
//! The old engine — one global `O(n log n)` sort and a sequential reduce —
//! survives as [`reference::run_job_reference`], the executable
//! specification that differential tests and the `wh-bench` regression
//! harness compare against. [`EngineConfig`] exposes the knobs (reducer
//! count, reduce parallelism, streaming combining, spill chunk size,
//! key-domain hint); [`RunMetrics`] carries real per-phase wall-clock
//! next to the simulated cluster time.
//!
//! Since PR 3 the engine is radix-specialized for the small-integer keys
//! every algorithm in the paper shuffles: a job whose key type implements
//! the sealed [`RadixKey`] trait ([`JobSpec::with_radix_keys`]) sorts its
//! spills through the LSD radix/counting sort in [`radix`] — the exact
//! permutation of the comparison sort it replaces — and, given a bounded
//! key domain ([`EngineConfig::key_domain_hint`]), combines through a
//! recycled flat-array table instead of a hash map. Map workers reuse
//! their buffers across tasks, and tiny jobs skip thread spawns on both
//! the map and reduce sides.
//!
//! Since PR 4 the bounded-domain specialization reaches the reduce side
//! too: the engine selects an explicit per-job [`ReduceStrategy`] — dense
//! flat-array aggregation when a radix codec and a bounded domain are
//! declared, one stable radix sort per partition when only the codec is,
//! and the k-way merge of pre-sorted spills otherwise — recording the
//! choice per partition in [`RunMetrics::reduce_strategies`]. Reduce
//! workers recycle their scratch (radix buffers + dense table) across
//! partitions exactly like map workers recycle theirs across tasks.
//!
//! Since PR 7 the engine also runs **distributed**:
//! [`EngineMode::MultiProcess`] forks map workers as child processes that
//! stream their spills back over length-prefixed frames in the
//! [`wire::WireCodec`] encoding ([`transport`], [`worker`]), so the
//! paper's communication is *measured* from real framed traffic
//! ([`RunMetrics::wire`], [`metrics::WireTraffic`]) instead of only
//! accounted. Jobs opt in with [`JobSpec::with_wire_codec`]; outputs and
//! logical metrics stay bit-identical to the in-process engines, worker
//! failures surface as a typed [`EngineError`] through [`try_run_job`],
//! and the measured bytes validate the [`cost`] model's shuffle term
//! ([`cost::validate_measured_shuffle`]).
//!
//! Since PR 8 the multi-process mode is **self-healing**: every frame
//! carries a CRC32C trailer (the `crc` module) so silent corruption surfaces as
//! [`EngineError::CorruptFrame`]; coordinator readers run under an idle
//! read deadline ([`EngineConfig::read_deadline_ms`]) so a hung worker
//! becomes [`EngineError::WorkerTimeout`] instead of a hang; and a worker
//! that dies, stalls, or sends a bad stream gets its *unfinished* tasks
//! re-executed on a respawned worker with bounded attempts and backoff
//! ([`EngineConfig::max_task_retries`]). Partial spills and state frames
//! from the failed attempt are discarded — only completed `TASK_END`s
//! commit — so recovered runs stay bit-identical to fault-free runs, with
//! the activity reported in [`RunMetrics::recovery`]
//! ([`metrics::RecoveryStats`]). A deterministic [`FaultPlan`] on
//! [`EngineConfig`] (kill/truncate/corrupt/stall) drives the chaos
//! differential suite in `tests/engine_faults.rs`.

pub mod context;
pub mod cost;
pub(crate) mod crc;
mod dense;
pub mod engine;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod radix;
pub mod reference;
pub mod state;
pub mod transport;
pub mod wire;
pub mod worker;

pub use context::{MapContext, ReduceContext};
pub use cost::{ClusterConfig, MachineSpec};
pub use engine::{EngineConfig, EngineMode};
pub use fault::FaultPlan;
pub use job::{run_job, try_run_job, JobOutput, JobSpec, MapTask};
pub use metrics::{RecoveryStats, ReduceStrategy, ReduceStrategyCounts, RunMetrics, WireTraffic};
pub use radix::RadixKey;
pub use reference::run_job_reference;
pub use state::StateStore;
pub use transport::EngineError;
pub use wire::{WireCodec, WireError, WireSize};
pub use worker::in_map_worker;
