//! Cluster specification and the cost model converting measured work into
//! simulated wall-clock time.
//!
//! The model captures the first-order terms that determine running time in
//! the paper's experiments:
//!
//! * per-job (round) scheduling overhead — why three-round H-WTopk pays a
//!   fixed tax over one-round samplers;
//! * per-map-task overhead times the number of splits `m` — why running
//!   times grow with `m` even for the samplers (§5, "vary n");
//! * scan IO at a per-machine disk rate — why full-scan methods track the
//!   dataset size;
//! * algorithm-charged CPU, scaled by each machine's speed — why
//!   Send-Sketch (expensive per-key updates) is the slowest method;
//! * shuffle time through the (shared) switch into the single reducer —
//!   why Send-V's time is dominated by communication;
//! * Distributed-Cache broadcast replicated to every slave.
//!
//! Map tasks are placed on machines with a greedy longest-processing-time
//! schedule, which is how we model Hadoop's wave-style scheduling on a
//! heterogeneous cluster.

/// One slave machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Relative CPU speed (1.0 = the cluster's reference machine).
    pub cpu_scale: f64,
    /// RAM in GB (informational; the runtime does not enforce it).
    pub ram_gb: f64,
}

/// Cluster and cost-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Slave machines (the master is not modelled; it only schedules).
    pub machines: Vec<MachineSpec>,
    /// Index into `machines` of the node hosting the single reducer
    /// (the paper pins it to a fixed machine via a customised scheduler).
    pub reducer_machine: usize,
    /// Full network bandwidth of a link, in Mbit/s (the paper: 100 Mbps).
    pub full_bandwidth_mbps: f64,
    /// Fraction of bandwidth available to this job (the paper simulates a
    /// busy data centre with 50% as default, varied 10%–100% in Fig. 16).
    pub bandwidth_fraction: f64,
    /// Fixed overhead per MapReduce round (job setup, scheduling, barrier).
    pub round_overhead_s: f64,
    /// Overhead per map task (task scheduling + JVM-style startup).
    pub map_task_overhead_s: f64,
    /// Sequential scan rate of a slave's disk, MB/s.
    pub io_mbps: f64,
    /// CPU throughput of the reference machine in charged ops/s.
    pub cpu_ops_per_s: f64,
}

impl ClusterConfig {
    /// The paper's 16-machine heterogeneous cluster (§5 setup): 9 machines
    /// of type (1), 4 of type (2), 2 of type (3), 1 of type (4); the master
    /// occupies a type-(2) machine and the reducer is pinned to a type-(3)
    /// machine. CPU scales are derived from the listed clock speeds
    /// relative to the 2 GHz type-(2) Xeon E5405.
    pub fn paper_cluster() -> Self {
        let mut machines = Vec::new();
        for _ in 0..9 {
            machines.push(MachineSpec {
                cpu_scale: 1.86 / 2.0,
                ram_gb: 2.0,
            }); // Xeon 5120
        }
        for _ in 0..3 {
            // 4 exist; one hosts the master and runs no TaskTracker.
            machines.push(MachineSpec {
                cpu_scale: 1.0,
                ram_gb: 4.0,
            }); // Xeon E5405
        }
        for _ in 0..2 {
            machines.push(MachineSpec {
                cpu_scale: 2.13 / 2.0,
                ram_gb: 6.0,
            }); // Xeon E5506
        }
        machines.push(MachineSpec {
            cpu_scale: 1.86 / 2.0,
            ram_gb: 2.0,
        }); // Core 2 6300
        let reducer_machine = 12; // first type-(3) machine
        Self {
            machines,
            reducer_machine,
            full_bandwidth_mbps: 100.0,
            bandwidth_fraction: 0.5,
            round_overhead_s: 8.0,
            map_task_overhead_s: 1.0,
            io_mbps: 60.0,
            cpu_ops_per_s: 2.0e8,
        }
    }

    /// A single-machine "cluster" — useful for tests where scheduling
    /// should not matter.
    pub fn single_machine() -> Self {
        Self {
            machines: vec![MachineSpec {
                cpu_scale: 1.0,
                ram_gb: 8.0,
            }],
            reducer_machine: 0,
            full_bandwidth_mbps: 100.0,
            bandwidth_fraction: 1.0,
            round_overhead_s: 0.0,
            map_task_overhead_s: 0.0,
            io_mbps: 100.0,
            cpu_ops_per_s: 1.0e8,
        }
    }

    /// Effective network throughput in bytes/s.
    pub fn network_bytes_per_s(&self) -> f64 {
        self.full_bandwidth_mbps * self.bandwidth_fraction * 1e6 / 8.0
    }

    /// Number of slave machines.
    pub fn num_slaves(&self) -> usize {
        self.machines.len()
    }
}

/// Work performed by one map task, as measured by the runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskWork {
    /// Bytes read from storage.
    pub bytes_scanned: u64,
    /// Algorithm-charged CPU operations.
    pub cpu_ops: f64,
}

/// Work of the reduce side of a job.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReduceWork {
    /// Algorithm-charged CPU operations at the reducer.
    pub cpu_ops: f64,
}

/// Computes the simulated time of one round.
///
/// `shuffle_bytes` flows into the single reducer through its link;
/// `broadcast_bytes` is replicated to every slave.
pub fn round_time(
    cluster: &ClusterConfig,
    tasks: &[TaskWork],
    reduce: ReduceWork,
    shuffle_bytes: u64,
    broadcast_bytes: u64,
) -> f64 {
    let map_makespan = schedule_makespan(cluster, tasks);
    let net = cluster.network_bytes_per_s();
    let shuffle_s = shuffle_seconds(cluster, shuffle_bytes);
    let broadcast_s = (broadcast_bytes as f64) * cluster.num_slaves() as f64 / net;
    let reducer_scale = cluster.machines[cluster.reducer_machine].cpu_scale;
    let reduce_s = reduce.cpu_ops / (cluster.cpu_ops_per_s * reducer_scale);
    cluster.round_overhead_s + broadcast_s + map_makespan + shuffle_s + reduce_s
}

/// The shuffle term of [`round_time`] in isolation: the time for
/// `shuffle_bytes` of intermediate pairs to cross the switch into the
/// single reducer's link.
///
/// Split out so the term can be fed *measured* traffic: under
/// [`crate::EngineMode::MultiProcess`] the coordinator counts the bytes
/// of every pair that really crossed a worker pipe, and
/// [`validate_measured_shuffle`] checks that those measured bytes are the
/// ones this model charges.
pub fn shuffle_seconds(cluster: &ClusterConfig, shuffle_bytes: u64) -> f64 {
    shuffle_bytes as f64 / cluster.network_bytes_per_s()
}

/// Validates the cost model's shuffle input against measured traffic.
///
/// Under the multi-process engine, [`crate::RunMetrics::wire`] carries
/// `pair_bytes` summed from the pairs the coordinator actually decoded
/// off worker pipes. The accounted `shuffle_bytes` — the quantity the
/// [`round_time`] shuffle term charges — must equal it exactly: both are
/// the [`crate::wire::WireSize`] total of the post-combine intermediate
/// pairs, reached by two independent code paths.
///
/// The equality holds *through recovery* (PR 8): `pair_bytes` is added
/// only when a task's `TASK_END` commits, so a retried task's pairs
/// count exactly once no matter how many attempts shipped them, while
/// the discarded partial traffic still shows in the physical
/// `frame_bytes`/`frames` counters. A recovered run therefore validates
/// here exactly like a fault-free one — the chaos suite
/// (`tests/engine_faults.rs`) pins that.
///
/// Returns `Err` with a description when the run carried no framed
/// traffic (an in-process run cannot validate anything) or when the two
/// counters disagree.
pub fn validate_measured_shuffle(metrics: &crate::RunMetrics) -> Result<(), String> {
    if metrics.wire.frames == 0 {
        return Err("no measured traffic: run the job under EngineMode::MultiProcess".into());
    }
    if metrics.wire.pair_bytes != metrics.shuffle_bytes {
        return Err(format!(
            "measured bytes-on-wire {} != accounted shuffle_bytes {}",
            metrics.wire.pair_bytes, metrics.shuffle_bytes
        ));
    }
    Ok(())
}

/// Greedy LPT schedule of map tasks onto machines; returns the makespan.
pub fn schedule_makespan(cluster: &ClusterConfig, tasks: &[TaskWork]) -> f64 {
    let mut durations: Vec<f64> = tasks
        .iter()
        .map(|t| {
            cluster.map_task_overhead_s
                + t.bytes_scanned as f64 / (cluster.io_mbps * 1e6)
                // cpu time on the reference machine; divided per machine below
                + 0.0
        })
        .collect();
    // CPU depends on the machine; approximate by dividing by the machine's
    // scale at placement time. Keep (io+overhead, cpu_ops) separate:
    let cpu: Vec<f64> = tasks.iter().map(|t| t.cpu_ops).collect();
    // LPT: sort by total reference-machine duration descending.
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    let ref_total = |i: usize| durations[i] + cpu[i] / cluster.cpu_ops_per_s;
    order.sort_by(|&a, &b| {
        ref_total(b)
            .partial_cmp(&ref_total(a))
            .expect("finite durations")
    });
    let mut load = vec![0.0f64; cluster.num_slaves()];
    for i in order {
        // Place on the machine that would finish this task earliest.
        let (best, _) = load
            .iter()
            .enumerate()
            .map(|(mi, &l)| {
                let scale = cluster.machines[mi].cpu_scale;
                (
                    mi,
                    l + durations[i] + cpu[i] / (cluster.cpu_ops_per_s * scale),
                )
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite loads"))
            .expect("at least one machine");
        let scale = cluster.machines[best].cpu_scale;
        load[best] += durations[i] + cpu[i] / (cluster.cpu_ops_per_s * scale);
    }
    durations.clear();
    load.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.num_slaves(), 15);
        assert!((c.network_bytes_per_s() - 6.25e6).abs() < 1.0);
        assert!(c.machines[c.reducer_machine].cpu_scale > 1.0);
    }

    #[test]
    fn makespan_scales_with_tasks() {
        let c = ClusterConfig::paper_cluster();
        let one = vec![TaskWork {
            bytes_scanned: 256 << 20,
            cpu_ops: 0.0,
        }];
        let many = vec![
            TaskWork {
                bytes_scanned: 256 << 20,
                cpu_ops: 0.0
            };
            60
        ];
        let t1 = schedule_makespan(&c, &one);
        let t60 = schedule_makespan(&c, &many);
        // 60 identical tasks on 15 machines ≈ 4 waves.
        assert!(t60 > 3.5 * t1 && t60 < 5.0 * t1, "t1={t1} t60={t60}");
    }

    #[test]
    fn makespan_empty_tasks_is_zero() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(schedule_makespan(&c, &[]), 0.0);
    }

    #[test]
    fn faster_machines_attract_cpu_heavy_tasks() {
        let mut c = ClusterConfig::single_machine();
        c.machines = vec![
            MachineSpec {
                cpu_scale: 1.0,
                ram_gb: 1.0,
            },
            MachineSpec {
                cpu_scale: 4.0,
                ram_gb: 1.0,
            },
        ];
        let tasks = vec![
            TaskWork {
                bytes_scanned: 0,
                cpu_ops: 1e8
            };
            5
        ];
        let makespan = schedule_makespan(&c, &tasks);
        // 5 CPU-heavy tasks: the 4× machine should take 4 of them
        // (4 × 0.25 s = 1.0 s) and the slow one 1 (1.0 s): makespan 1.0 s.
        assert!((makespan - 1.0).abs() < 0.01, "makespan {makespan}");
    }

    #[test]
    fn shuffle_time_dominates_for_big_transfers() {
        let c = ClusterConfig::paper_cluster();
        let t = round_time(&c, &[], ReduceWork::default(), 6_250_000 * 100, 0);
        // 625 MB at 6.25 MB/s ≈ 100 s plus the round overhead.
        assert!((t - 108.0).abs() < 1.0, "t={t}");
    }

    #[test]
    fn broadcast_counts_all_slaves() {
        let c = ClusterConfig::paper_cluster();
        let t0 = round_time(&c, &[], ReduceWork::default(), 0, 0);
        let t = round_time(&c, &[], ReduceWork::default(), 0, 6_250_000);
        // 6.25 MB replicated to 15 slaves at 6.25 MB/s = 15 s extra.
        assert!(((t - t0) - 15.0).abs() < 0.5, "delta={}", t - t0);
    }

    #[test]
    fn bandwidth_fraction_scales_shuffle() {
        let mut c = ClusterConfig::paper_cluster();
        c.round_overhead_s = 0.0;
        let t_half = round_time(&c, &[], ReduceWork::default(), 1 << 30, 0);
        c.bandwidth_fraction = 1.0;
        let t_full = round_time(&c, &[], ReduceWork::default(), 1 << 30, 0);
        assert!((t_half / t_full - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_seconds_is_the_round_time_shuffle_term() {
        let c = ClusterConfig::paper_cluster();
        let bytes = 12_345_678u64;
        let with = round_time(&c, &[], ReduceWork::default(), bytes, 0);
        let without = round_time(&c, &[], ReduceWork::default(), 0, 0);
        assert!((with - without - shuffle_seconds(&c, bytes)).abs() < 1e-9);
        assert_eq!(shuffle_seconds(&c, 0), 0.0);
    }

    #[test]
    fn validate_measured_shuffle_checks_traffic() {
        let mut m = crate::RunMetrics {
            shuffle_bytes: 4096,
            ..Default::default()
        };
        // No framed traffic: nothing to validate against.
        let err = validate_measured_shuffle(&m).unwrap_err();
        assert!(err.contains("no measured traffic"), "{err}");

        m.wire.frames = 7;
        m.wire.pair_bytes = 4096;
        assert_eq!(validate_measured_shuffle(&m), Ok(()));

        m.wire.pair_bytes = 4095;
        let err = validate_measured_shuffle(&m).unwrap_err();
        assert!(err.contains("4095") && err.contains("4096"), "{err}");
    }
}
