//! The seed execution engine, preserved as an executable specification.
//!
//! This is the pre-pipelining `run_job`: map tasks run in parallel worker
//! threads, then the shuffle is **one global `O(n log n)` sort** over
//! `(partition, key, split)` tuples on a single thread, and the reduce loop
//! walks the sorted vector sequentially. It produces byte-identical
//! outputs and logical metrics to the pipelined engine
//! ([`crate::engine`]) — differential property tests in
//! `tests/engine_parallel.rs` enforce that — and `wh-bench` measures the
//! pipelined engine's wall-clock against it.
//!
//! Select it with [`crate::EngineConfig::reference`] or call
//! [`run_job_reference`] directly. Streaming-combine knobs are ignored
//! here (combining is always the batch variant, which defines the
//! semantics the streaming path must reproduce).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::context::{MapContext, ReduceContext};
use crate::cost::{round_time, ClusterConfig, ReduceWork, TaskWork};
use crate::engine::group_combine;
use crate::job::{JobOutput, JobSpec, MapTask};
use crate::metrics::RunMetrics;
use crate::wire::WireSize;

struct TaskResult<K, V> {
    split_id: u32,
    pairs: Vec<(K, V)>,
    work: TaskWork,
    records_read: u64,
}

/// Executes one round on the seed engine (global sort + sequential
/// reduce). Same output contract as [`crate::run_job`] with the default
/// engine; kept for differential testing and benchmarking.
pub fn run_job_reference<K, V, R>(cluster: &ClusterConfig, spec: JobSpec<K, V, R>) -> JobOutput<R>
where
    K: Ord + std::hash::Hash + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
    R: Send,
{
    let JobSpec {
        map_tasks,
        combiner,
        partitioner,
        reduce,
        broadcast_bytes,
        finish,
        engine,
        ..
    } = spec;
    let num_reducers = engine.num_reducers;
    assert!(num_reducers >= 1, "need at least one reducer");

    // ---- Map phase (parallel) ----
    let map_start = Instant::now();
    let task_queue: Vec<Mutex<Option<MapTask<K, V>>>> =
        map_tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<TaskResult<K, V>>> = Mutex::new(Vec::with_capacity(task_queue.len()));
    // Honors the map-parallelism knob (same resolution as the pipelined
    // engine) so engine-vs-engine benchmarks pin identical thread budgets
    // on both sides; the shuffle and reduce stay single-threaded by
    // definition of this engine.
    let workers = engine.map_workers(task_queue.len());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= task_queue.len() {
                    break;
                }
                let task = task_queue[i].lock().take().expect("each task taken once");
                let mut ctx = MapContext::new(task.split_id);
                (task.run)(&mut ctx);
                let mut pairs = ctx.pairs;
                if let Some(comb) = &combiner {
                    pairs = group_combine(pairs, comb.as_ref());
                }
                // Hadoop sorts each spill by key within the mapper; we sort
                // here so shuffle concatenation stays deterministic.
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                results.lock().push(TaskResult {
                    split_id: task.split_id,
                    pairs,
                    work: TaskWork {
                        bytes_scanned: ctx.bytes_read,
                        cpu_ops: ctx.cpu_ops,
                    },
                    records_read: ctx.records_read,
                });
            });
        }
        // std::thread::scope joins all workers and re-raises any panic.
    });

    let mut per_task = results.into_inner();
    per_task.sort_by_key(|t| t.split_id);
    let wall_map_s = map_start.elapsed().as_secs_f64();

    // ---- Accounting + shuffle: one global sort on a single thread ----
    let shuffle_start = Instant::now();
    let mut metrics = RunMetrics {
        rounds: 1,
        broadcast_bytes,
        ..Default::default()
    };
    let mut task_work = Vec::with_capacity(per_task.len());
    let mut shuffled: Vec<(u64, K, u32, V)> = Vec::new(); // (partition, key, split, value)
    for t in per_task {
        task_work.push(t.work);
        metrics.records_scanned += t.records_read;
        metrics.bytes_scanned += t.work.bytes_scanned;
        metrics.cpu_ops += t.work.cpu_ops;
        for (k, v) in t.pairs {
            metrics.map_output_pairs += 1;
            metrics.shuffle_bytes += k.wire_bytes() + v.wire_bytes();
            let p = partitioner(&k) % u64::from(num_reducers);
            shuffled.push((p, k, t.split_id, v));
        }
    }
    // Deterministic order: partition, key, then source split.
    shuffled.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));
    let wall_shuffle_s = shuffle_start.elapsed().as_secs_f64();

    // ---- Reduce phase (sequential) ----
    let reduce_start = Instant::now();
    let mut rctx = ReduceContext::new();
    let mut iter = shuffled.into_iter().peekable();
    let mut values: Vec<V> = Vec::new();
    while let Some((part, key, _split, value)) = iter.next() {
        values.clear();
        values.push(value);
        while let Some((p2, k2, _, _)) = iter.peek() {
            if *p2 == part && *k2 == key {
                let (_, _, _, v) = iter.next().expect("peeked entry exists");
                values.push(v);
            } else {
                break;
            }
        }
        reduce(&key, &values, &mut rctx);
    }
    if let Some(f) = finish {
        f(&mut rctx);
    }
    let wall_reduce_s = reduce_start.elapsed().as_secs_f64();

    metrics.cpu_ops += rctx.cpu_ops;
    metrics.sim_time_s = round_time(
        cluster,
        &task_work,
        ReduceWork {
            cpu_ops: rctx.cpu_ops,
        },
        metrics.shuffle_bytes,
        metrics.broadcast_bytes,
    );
    metrics.wall_map_s = wall_map_s;
    metrics.wall_shuffle_s = wall_shuffle_s;
    metrics.wall_reduce_s = wall_reduce_s;

    JobOutput {
        outputs: rctx.outputs,
        metrics,
    }
}
