//! Run metrics: the quantities the paper's experiments report.

use std::fmt;

/// Accumulated measurements of one job or one complete algorithm run
/// (possibly multiple MapReduce rounds).
///
/// Two families of quantities live here:
///
/// * **logical** measurements (communication, scans, charged CPU, simulated
///   time) — fully deterministic, identical across repeated runs, thread
///   counts, and engine implementations;
/// * **real wall-clock** per engine phase (`wall_map_s`, `wall_shuffle_s`,
///   `wall_reduce_s`) — measured with [`std::time::Instant`] and therefore
///   machine- and load-dependent. These are what `wh-bench` regresses on.
///
/// `PartialEq` intentionally compares **only the logical fields**, so the
/// determinism contract (`a == b` for identical runs) keeps holding even
/// though wall-clock never repeats exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    /// Number of MapReduce rounds executed.
    pub rounds: u32,
    /// Bytes of intermediate pairs shuffled from mappers to reducers
    /// (after Combine) — the paper's headline communication metric.
    pub shuffle_bytes: u64,
    /// Bytes broadcast to all slaves through the Job Configuration or
    /// Distributed Cache.
    pub broadcast_bytes: u64,
    /// Intermediate pairs shuffled (after Combine).
    pub map_output_pairs: u64,
    /// Records read by mappers across all splits.
    pub records_scanned: u64,
    /// Bytes read from storage by mappers.
    pub bytes_scanned: u64,
    /// Algorithm-charged CPU operations (map side + reduce side).
    pub cpu_ops: f64,
    /// Simulated wall-clock seconds on the configured cluster.
    pub sim_time_s: f64,
    /// Real elapsed seconds of the map phase (task execution, in-mapper
    /// combining, and the per-partition sorted spills).
    pub wall_map_s: f64,
    /// Real elapsed seconds of the shuffle (regrouping spill runs into
    /// per-partition merge inputs; accounting).
    pub wall_shuffle_s: f64,
    /// Real elapsed seconds of the reduce phase (k-way merges, reduce
    /// calls, the Close hook, and output stitching).
    pub wall_reduce_s: f64,
}

impl RunMetrics {
    /// Total intra-cluster communication: shuffle plus broadcast.
    pub fn total_comm_bytes(&self) -> u64 {
        self.shuffle_bytes + self.broadcast_bytes
    }

    /// Total real elapsed seconds across the three engine phases.
    pub fn wall_time_s(&self) -> f64 {
        self.wall_map_s + self.wall_shuffle_s + self.wall_reduce_s
    }

    /// Accumulates another round's metrics into `self`.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.rounds += other.rounds;
        self.shuffle_bytes += other.shuffle_bytes;
        self.broadcast_bytes += other.broadcast_bytes;
        self.map_output_pairs += other.map_output_pairs;
        self.records_scanned += other.records_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.cpu_ops += other.cpu_ops;
        self.sim_time_s += other.sim_time_s;
        self.wall_map_s += other.wall_map_s;
        self.wall_shuffle_s += other.wall_shuffle_s;
        self.wall_reduce_s += other.wall_reduce_s;
    }
}

impl PartialEq for RunMetrics {
    /// Compares the logical (deterministic) fields only; the `wall_*`
    /// measurements are machine-dependent and excluded by design.
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.shuffle_bytes == other.shuffle_bytes
            && self.broadcast_bytes == other.broadcast_bytes
            && self.map_output_pairs == other.map_output_pairs
            && self.records_scanned == other.records_scanned
            && self.bytes_scanned == other.bytes_scanned
            && self.cpu_ops == other.cpu_ops
            && self.sim_time_s == other.sim_time_s
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} comm={}B (shuffle={}B broadcast={}B) pairs={} scanned={} recs/{}B time={:.1}s",
            self.rounds,
            self.total_comm_bytes(),
            self.shuffle_bytes,
            self.broadcast_bytes,
            self.map_output_pairs,
            self.records_scanned,
            self.bytes_scanned,
            self.sim_time_s,
        )?;
        if self.wall_time_s() > 0.0 {
            write!(f, " wall={:.3}s", self.wall_time_s())?;
        }
        Ok(())
    }
}

/// Pretty-prints a byte count with a binary-ish unit, for tables.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = b as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RunMetrics {
            rounds: 1,
            shuffle_bytes: 100,
            broadcast_bytes: 10,
            map_output_pairs: 5,
            records_scanned: 1000,
            bytes_scanned: 4000,
            cpu_ops: 1e6,
            sim_time_s: 2.0,
            wall_map_s: 0.25,
            wall_shuffle_s: 0.5,
            wall_reduce_s: 0.25,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.shuffle_bytes, 200);
        assert_eq!(a.total_comm_bytes(), 220);
        assert_eq!(a.sim_time_s, 4.0);
        assert!((a.wall_time_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let a = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            wall_map_s: 0.1,
            ..Default::default()
        };
        let b = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            wall_map_s: 9.9,
            wall_reduce_s: 1.0,
            ..Default::default()
        };
        assert_eq!(a, b, "wall-clock must not break the determinism contract");
        let c = RunMetrics {
            rounds: 2,
            ..Default::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn display_contains_key_fields() {
        let m = RunMetrics {
            rounds: 3,
            shuffle_bytes: 7,
            ..Default::default()
        };
        let s = m.to_string();
        assert!(s.contains("rounds=3"));
        assert!(s.contains("shuffle=7B"));
    }
}
