//! Run metrics: the quantities the paper's experiments report.

use std::fmt;

/// Which reduce-side execution strategy the pipelined engine ran for one
/// reduce partition. Purely an execution detail: every strategy delivers
/// the identical key-group sequence to the reduce function — key groups in
/// key order, values in `(split id, arrival order)` order — so outputs are
/// bit-identical across strategies (differential tests enforce it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceStrategy {
    /// Flat slot-array aggregation over a bounded key domain: pairs
    /// scatter into a recycled table sized to the partition's actual key
    /// range, groups are emitted in ascending radix (= key) order — no
    /// sort, no merge. Selected when the job declares radix keys and an
    /// [`crate::EngineConfig::key_domain_hint`] small enough for a flat
    /// array.
    DenseReduce,
    /// One stable radix sort of the partition's split-ordered run
    /// concatenation (runs arrive unsorted from the map workers), then a
    /// linear grouping pass. Selected for radix jobs with several
    /// partitions whose domain is too wide for the dense table.
    SortAtReduce,
    /// K-way merge of per-task runs pre-sorted inside the map workers —
    /// the generic `Ord` path, and the only strategy available without a
    /// radix codec.
    Merge,
}

/// How many reduce partitions of a run executed under each
/// [`ReduceStrategy`]. Lives in [`RunMetrics`] as observability for the
/// engine's strategy selection; like the `wall_*` fields it is **excluded
/// from `PartialEq`** — two runs that differ only in execution strategy
/// still compare equal, which is exactly the determinism contract the
/// differential tests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStrategyCounts {
    /// Partitions that aggregated through the dense flat-array table.
    pub dense_reduce: u32,
    /// Partitions that radix-sorted their concatenated runs once.
    pub sort_at_reduce: u32,
    /// Partitions that k-way merged pre-sorted runs.
    pub merge: u32,
}

impl ReduceStrategyCounts {
    /// Records one partition reduced under `strategy`.
    pub(crate) fn record(&mut self, strategy: ReduceStrategy) {
        match strategy {
            ReduceStrategy::DenseReduce => self.dense_reduce += 1,
            ReduceStrategy::SortAtReduce => self.sort_at_reduce += 1,
            ReduceStrategy::Merge => self.merge += 1,
        }
    }

    /// Total partitions recorded (equals the reducer count for a
    /// pipelined round; the reference engine records nothing).
    pub fn total(&self) -> u32 {
        self.dense_reduce + self.sort_at_reduce + self.merge
    }

    /// Accumulates another round's counts.
    fn absorb(&mut self, other: &ReduceStrategyCounts) {
        self.dense_reduce += other.dense_reduce;
        self.sort_at_reduce += other.sort_at_reduce;
        self.merge += other.merge;
    }
}

impl fmt::Display for ReduceStrategyCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dense:{}/sort:{}/merge:{}",
            self.dense_reduce, self.sort_at_reduce, self.merge
        )
    }
}

/// Measured framed traffic of a multi-process run: what actually crossed
/// the worker → coordinator pipes, counted from the frames themselves.
///
/// All zero for in-process runs (nothing crosses a process boundary
/// there). Like wall-clock, these are *measurements* of a particular
/// execution, not logical properties of the job, so they are **excluded
/// from `PartialEq`** on [`RunMetrics`] — a multi-process run still
/// compares equal to its in-process twin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTraffic {
    /// Bytes of shuffled pairs on the wire, in the job's declared
    /// [`crate::wire::WireCodec`] encoding — the measured counterpart of
    /// [`RunMetrics::shuffle_bytes`], and equal to it by construction
    /// (`cost::validate_measured_shuffle` checks exactly this).
    pub pair_bytes: u64,
    /// Physical bytes through the framed pipes, including the 5-byte
    /// frame headers and control/state frames.
    pub frame_bytes: u64,
    /// Frames received by the coordinator.
    pub frames: u64,
    /// Bytes of per-split state journal payloads shipped between rounds
    /// (the paper persists this to local HDFS, so it is accounted apart
    /// from communication).
    pub state_bytes: u64,
    /// Worker processes forked for the map phase.
    pub workers: u32,
    /// Mapper↔reducer communication rounds that actually crossed the
    /// wire. A job with broadcast bytes counts one (its reduce output
    /// feeds the next round's broadcast); a terminal job counts zero
    /// extra — so H-WTopk's three MapReduce rounds measure exactly the
    /// paper's two communication rounds.
    pub comm_rounds: u32,
}

impl WireTraffic {
    /// Accumulates another round's traffic.
    fn absorb(&mut self, other: &WireTraffic) {
        self.pair_bytes += other.pair_bytes;
        self.frame_bytes += other.frame_bytes;
        self.frames += other.frames;
        self.state_bytes += other.state_bytes;
        self.workers += other.workers;
        self.comm_rounds += other.comm_rounds;
    }
}

/// What the multi-process coordinator's self-healing layer did during a
/// run: every recovered failure leaves a trace here, while the job's
/// outputs and logical metrics stay bit-identical to a fault-free run.
///
/// All zero for in-process runs and for fault-free multi-process runs
/// (except [`RecoveryStats::attempts`], which counts every worker
/// process launched — `attempts == workers` means nothing was
/// respawned). Like [`WireTraffic`], these are measurements of one
/// particular execution, **excluded from `PartialEq`** on
/// [`RunMetrics`]: a recovered run must still compare equal to its
/// fault-free twin — that *is* the recovery contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Tasks re-executed after their worker died, hung, or sent a bad
    /// stream. Completed tasks are never retried, so this counts only
    /// genuinely lost work.
    pub tasks_retried: u64,
    /// Worker processes respawned to run retried tasks.
    pub workers_respawned: u32,
    /// Read-deadline expiries observed ([`crate::EngineError::WorkerTimeout`]).
    pub timeouts: u32,
    /// Checksum mismatches observed ([`crate::EngineError::CorruptFrame`]).
    pub corrupt_frames: u32,
    /// Total worker processes launched, first spawns included.
    pub attempts: u32,
}

impl RecoveryStats {
    /// Whether any failure was recovered during the run.
    pub fn recovered(&self) -> bool {
        self.workers_respawned > 0
    }

    /// Accumulates another round's recovery activity.
    fn absorb(&mut self, other: &RecoveryStats) {
        self.tasks_retried += other.tasks_retried;
        self.workers_respawned += other.workers_respawned;
        self.timeouts += other.timeouts;
        self.corrupt_frames += other.corrupt_frames;
        self.attempts += other.attempts;
    }
}

/// Accumulated measurements of one job or one complete algorithm run
/// (possibly multiple MapReduce rounds).
///
/// Two families of quantities live here:
///
/// * **logical** measurements (communication, scans, charged CPU, simulated
///   time) — fully deterministic, identical across repeated runs, thread
///   counts, and engine implementations;
/// * **real wall-clock** per engine phase (`wall_map_s`, `wall_shuffle_s`,
///   `wall_reduce_s`) — measured with [`std::time::Instant`] and therefore
///   machine- and load-dependent. These are what `wh-bench` regresses on.
///
/// A third, in-between family is the [`ReduceStrategyCounts`]: which
/// reduce-side strategy each partition ran under. Deterministic for a
/// fixed configuration, but an execution detail that legitimately differs
/// between configurations producing identical results.
///
/// `PartialEq` intentionally compares **only the logical fields** —
/// wall-clock and strategy counts are excluded — so the determinism
/// contract (`a == b` for identical runs, across engines, strategies, and
/// thread counts) keeps holding even though wall-clock never repeats
/// exactly and strategies differ by design.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    /// Number of MapReduce rounds executed.
    pub rounds: u32,
    /// Bytes of intermediate pairs shuffled from mappers to reducers
    /// (after Combine) — the paper's headline communication metric.
    pub shuffle_bytes: u64,
    /// Bytes broadcast to all slaves through the Job Configuration or
    /// Distributed Cache.
    pub broadcast_bytes: u64,
    /// Intermediate pairs shuffled (after Combine).
    pub map_output_pairs: u64,
    /// Records read by mappers across all splits.
    pub records_scanned: u64,
    /// Bytes read from storage by mappers.
    pub bytes_scanned: u64,
    /// Algorithm-charged CPU operations (map side + reduce side).
    pub cpu_ops: f64,
    /// Simulated wall-clock seconds on the configured cluster.
    pub sim_time_s: f64,
    /// Real elapsed seconds of the map phase: task execution, in-mapper
    /// combining, and per-partition spill preparation. What a spill is
    /// depends on the job's [`ReduceStrategy`]: the `Merge` strategy
    /// pre-sorts each partition run inside the map worker, while
    /// `SortAtReduce` and `DenseReduce` ship runs unsorted (ordering is
    /// the reduce side's job there).
    pub wall_map_s: f64,
    /// Real elapsed seconds of the shuffle (regrouping spill runs into
    /// per-partition reduce inputs; accounting).
    pub wall_shuffle_s: f64,
    /// Real elapsed seconds of the reduce phase: per-partition grouping
    /// under the selected [`ReduceStrategy`] (flat slot-array
    /// aggregation, one stable radix sort, or a k-way merge of pre-sorted
    /// runs), reduce calls, the Close hook, and output stitching.
    pub wall_reduce_s: f64,
    /// Per-strategy count of reduce partitions in this run (pipelined
    /// engine only; the reference engine records nothing). Excluded from
    /// `PartialEq` like the wall-clock fields: strategy selection is an
    /// execution detail that must never affect result comparison.
    pub reduce_strategies: ReduceStrategyCounts,
    /// Measured framed traffic of the multi-process mode (all zero for
    /// in-process runs). Excluded from `PartialEq` like wall-clock:
    /// how bytes moved is an execution detail, how many logical bytes
    /// were shuffled (`shuffle_bytes`) is not.
    pub wire: WireTraffic,
    /// What the multi-process self-healing layer did (task retries,
    /// respawns, timeouts, checksum failures). Excluded from `PartialEq`
    /// like wall-clock: a recovered run compares equal to its fault-free
    /// twin by contract.
    pub recovery: RecoveryStats,
}

impl RunMetrics {
    /// Total intra-cluster communication: shuffle plus broadcast.
    pub fn total_comm_bytes(&self) -> u64 {
        self.shuffle_bytes + self.broadcast_bytes
    }

    /// Measured bytes of shuffled pairs on the wire (zero unless the run
    /// used [`crate::EngineMode::MultiProcess`]).
    pub fn bytes_on_wire(&self) -> u64 {
        self.wire.pair_bytes
    }

    /// Total real elapsed seconds across the three engine phases.
    pub fn wall_time_s(&self) -> f64 {
        self.wall_map_s + self.wall_shuffle_s + self.wall_reduce_s
    }

    /// Accumulates another round's metrics into `self`.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.rounds += other.rounds;
        self.shuffle_bytes += other.shuffle_bytes;
        self.broadcast_bytes += other.broadcast_bytes;
        self.map_output_pairs += other.map_output_pairs;
        self.records_scanned += other.records_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.cpu_ops += other.cpu_ops;
        self.sim_time_s += other.sim_time_s;
        self.wall_map_s += other.wall_map_s;
        self.wall_shuffle_s += other.wall_shuffle_s;
        self.wall_reduce_s += other.wall_reduce_s;
        self.reduce_strategies.absorb(&other.reduce_strategies);
        self.wire.absorb(&other.wire);
        self.recovery.absorb(&other.recovery);
    }
}

impl PartialEq for RunMetrics {
    /// Compares the logical (deterministic) fields only; the `wall_*`
    /// measurements are machine-dependent and excluded by design.
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.shuffle_bytes == other.shuffle_bytes
            && self.broadcast_bytes == other.broadcast_bytes
            && self.map_output_pairs == other.map_output_pairs
            && self.records_scanned == other.records_scanned
            && self.bytes_scanned == other.bytes_scanned
            && self.cpu_ops == other.cpu_ops
            && self.sim_time_s == other.sim_time_s
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} comm={}B (shuffle={}B broadcast={}B) pairs={} scanned={} recs/{}B time={:.1}s",
            self.rounds,
            self.total_comm_bytes(),
            self.shuffle_bytes,
            self.broadcast_bytes,
            self.map_output_pairs,
            self.records_scanned,
            self.bytes_scanned,
            self.sim_time_s,
        )?;
        if self.wall_time_s() > 0.0 {
            write!(f, " wall={:.3}s", self.wall_time_s())?;
        }
        if self.reduce_strategies.total() > 0 {
            write!(f, " strategies={}", self.reduce_strategies)?;
        }
        if self.wire.frames > 0 {
            write!(
                f,
                " wire={}B/{}f ({} workers, {} comm rounds)",
                self.wire.frame_bytes, self.wire.frames, self.wire.workers, self.wire.comm_rounds
            )?;
        }
        if self.recovery.recovered()
            || self.recovery.timeouts > 0
            || self.recovery.corrupt_frames > 0
        {
            write!(
                f,
                " recovery={}t/{}w ({} timeouts, {} corrupt, {} attempts)",
                self.recovery.tasks_retried,
                self.recovery.workers_respawned,
                self.recovery.timeouts,
                self.recovery.corrupt_frames,
                self.recovery.attempts,
            )?;
        }
        Ok(())
    }
}

/// Pretty-prints a byte count with a binary-ish unit, for tables.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = b as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RunMetrics {
            rounds: 1,
            shuffle_bytes: 100,
            broadcast_bytes: 10,
            map_output_pairs: 5,
            records_scanned: 1000,
            bytes_scanned: 4000,
            cpu_ops: 1e6,
            sim_time_s: 2.0,
            wall_map_s: 0.25,
            wall_shuffle_s: 0.5,
            wall_reduce_s: 0.25,
            reduce_strategies: ReduceStrategyCounts {
                dense_reduce: 3,
                sort_at_reduce: 1,
                merge: 0,
            },
            wire: WireTraffic {
                pair_bytes: 100,
                frame_bytes: 160,
                frames: 4,
                state_bytes: 16,
                workers: 2,
                comm_rounds: 1,
            },
            recovery: RecoveryStats {
                tasks_retried: 3,
                workers_respawned: 1,
                timeouts: 1,
                corrupt_frames: 0,
                attempts: 3,
            },
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.shuffle_bytes, 200);
        assert_eq!(a.total_comm_bytes(), 220);
        assert_eq!(a.sim_time_s, 4.0);
        assert!((a.wall_time_s() - 2.0).abs() < 1e-12);
        assert_eq!(a.reduce_strategies.dense_reduce, 6);
        assert_eq!(a.reduce_strategies.sort_at_reduce, 2);
        assert_eq!(a.reduce_strategies.total(), 8);
        assert_eq!(a.bytes_on_wire(), 200);
        assert_eq!(a.wire.frame_bytes, 320);
        assert_eq!(a.wire.frames, 8);
        assert_eq!(a.wire.state_bytes, 32);
        assert_eq!(a.wire.workers, 4);
        assert_eq!(a.wire.comm_rounds, 2);
        assert_eq!(a.recovery.tasks_retried, 6);
        assert_eq!(a.recovery.workers_respawned, 2);
        assert_eq!(a.recovery.timeouts, 2);
        assert_eq!(a.recovery.attempts, 6);
    }

    #[test]
    fn equality_ignores_recovery() {
        // The recovery contract in one assert: a run that retried tasks
        // compares equal to the fault-free run it reproduced.
        let clean = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            ..Default::default()
        };
        let recovered = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            recovery: RecoveryStats {
                tasks_retried: 4,
                workers_respawned: 1,
                timeouts: 1,
                corrupt_frames: 1,
                attempts: 5,
            },
            ..Default::default()
        };
        assert!(recovered.recovery.recovered());
        assert!(!clean.recovery.recovered());
        assert_ne!(clean.recovery, recovered.recovery);
        assert_eq!(clean, recovered);
        let s = recovered.to_string();
        assert!(s.contains("recovery=4t/1w"), "{s}");
    }

    #[test]
    fn equality_ignores_wire_traffic() {
        // A multi-process run must compare equal to its in-process twin:
        // how bytes physically moved is an execution detail.
        let in_process = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            ..Default::default()
        };
        let multi_process = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            wire: WireTraffic {
                pair_bytes: 64,
                frame_bytes: 200,
                frames: 9,
                state_bytes: 0,
                workers: 4,
                comm_rounds: 1,
            },
            ..Default::default()
        };
        assert_ne!(in_process.wire, multi_process.wire);
        assert_eq!(in_process, multi_process);
    }

    #[test]
    fn equality_ignores_reduce_strategies() {
        // The same logical run executed under different reduce strategies
        // must still compare equal — strategy selection is an execution
        // detail, exactly like wall-clock.
        let mut dense = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            ..Default::default()
        };
        dense.reduce_strategies.record(ReduceStrategy::DenseReduce);
        let mut sorted = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            ..Default::default()
        };
        sorted
            .reduce_strategies
            .record(ReduceStrategy::SortAtReduce);
        sorted.reduce_strategies.record(ReduceStrategy::Merge);
        assert_ne!(dense.reduce_strategies, sorted.reduce_strategies);
        assert_eq!(dense, sorted, "strategy counts must not break equality");
    }

    #[test]
    fn strategy_counts_record_and_render() {
        let mut c = ReduceStrategyCounts::default();
        assert_eq!(c.total(), 0);
        c.record(ReduceStrategy::DenseReduce);
        c.record(ReduceStrategy::DenseReduce);
        c.record(ReduceStrategy::SortAtReduce);
        c.record(ReduceStrategy::Merge);
        assert_eq!(c.dense_reduce, 2);
        assert_eq!(c.sort_at_reduce, 1);
        assert_eq!(c.merge, 1);
        assert_eq!(c.total(), 4);
        assert_eq!(c.to_string(), "dense:2/sort:1/merge:1");
        let m = RunMetrics {
            rounds: 1,
            reduce_strategies: c,
            ..Default::default()
        };
        assert!(m.to_string().contains("strategies=dense:2/sort:1/merge:1"));
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let a = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            wall_map_s: 0.1,
            ..Default::default()
        };
        let b = RunMetrics {
            rounds: 1,
            shuffle_bytes: 64,
            wall_map_s: 9.9,
            wall_reduce_s: 1.0,
            ..Default::default()
        };
        assert_eq!(a, b, "wall-clock must not break the determinism contract");
        let c = RunMetrics {
            rounds: 2,
            ..Default::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn display_contains_key_fields() {
        let m = RunMetrics {
            rounds: 3,
            shuffle_bytes: 7,
            ..Default::default()
        };
        let s = m.to_string();
        assert!(s.contains("rounds=3"));
        assert!(s.contains("shuffle=7B"));
    }
}
