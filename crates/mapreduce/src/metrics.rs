//! Run metrics: the quantities the paper's experiments report.

use std::fmt;

/// Accumulated measurements of one job or one complete algorithm run
/// (possibly multiple MapReduce rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Number of MapReduce rounds executed.
    pub rounds: u32,
    /// Bytes of intermediate pairs shuffled from mappers to reducers
    /// (after Combine) — the paper's headline communication metric.
    pub shuffle_bytes: u64,
    /// Bytes broadcast to all slaves through the Job Configuration or
    /// Distributed Cache.
    pub broadcast_bytes: u64,
    /// Intermediate pairs shuffled (after Combine).
    pub map_output_pairs: u64,
    /// Records read by mappers across all splits.
    pub records_scanned: u64,
    /// Bytes read from storage by mappers.
    pub bytes_scanned: u64,
    /// Algorithm-charged CPU operations (map side + reduce side).
    pub cpu_ops: f64,
    /// Simulated wall-clock seconds on the configured cluster.
    pub sim_time_s: f64,
}

impl RunMetrics {
    /// Total intra-cluster communication: shuffle plus broadcast.
    pub fn total_comm_bytes(&self) -> u64 {
        self.shuffle_bytes + self.broadcast_bytes
    }

    /// Accumulates another round's metrics into `self`.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.rounds += other.rounds;
        self.shuffle_bytes += other.shuffle_bytes;
        self.broadcast_bytes += other.broadcast_bytes;
        self.map_output_pairs += other.map_output_pairs;
        self.records_scanned += other.records_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.cpu_ops += other.cpu_ops;
        self.sim_time_s += other.sim_time_s;
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} comm={}B (shuffle={}B broadcast={}B) pairs={} scanned={} recs/{}B time={:.1}s",
            self.rounds,
            self.total_comm_bytes(),
            self.shuffle_bytes,
            self.broadcast_bytes,
            self.map_output_pairs,
            self.records_scanned,
            self.bytes_scanned,
            self.sim_time_s,
        )
    }
}

/// Pretty-prints a byte count with a binary-ish unit, for tables.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = b as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RunMetrics {
            rounds: 1,
            shuffle_bytes: 100,
            broadcast_bytes: 10,
            map_output_pairs: 5,
            records_scanned: 1000,
            bytes_scanned: 4000,
            cpu_ops: 1e6,
            sim_time_s: 2.0,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.shuffle_bytes, 200);
        assert_eq!(a.total_comm_bytes(), 220);
        assert_eq!(a.sim_time_s, 4.0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn display_contains_key_fields() {
        let m = RunMetrics {
            rounds: 3,
            shuffle_bytes: 7,
            ..Default::default()
        };
        let s = m.to_string();
        assert!(s.contains("rounds=3"));
        assert!(s.contains("shuffle=7B"));
    }
}
