//! Job specification and the execution entry point.
//!
//! A [`JobSpec`] describes one MapReduce round: one map closure per split,
//! an optional Combine function, a partitioner, and a shared reduce
//! function. [`run_job`] executes the round on the engine selected by the
//! spec's [`EngineConfig`] — the pipelined partition-parallel engine
//! ([`crate::engine`]) by default, or the preserved seed engine
//! ([`crate::reference`]) — and returns the reducer outputs together with
//! exact [`RunMetrics`].
//!
//! Determinism: mappers may run in any thread interleaving, reduce
//! partitions may run on any number of threads, and the engine may pick
//! any reduce-side strategy (dense reduce / sort-at-reduce / merge — see
//! [`crate::ReduceStrategy`]), but within a partition the reduce function
//! always observes key groups in key order with each group's values in
//! `(split id, arrival order)` order, and outputs are stitched in
//! partition order — so results are bit-identical across runs, engines,
//! strategies, and thread counts.

use std::sync::Arc;

use crate::context::{MapContext, ReduceContext};
use crate::cost::ClusterConfig;
use crate::engine::{self, EngineConfig, EngineMode};
use crate::metrics::RunMetrics;
use crate::reference;
use crate::state::StateStore;
use crate::transport::EngineError;
use crate::wire::{WireCodec, WireError, WireSize};

/// The boxed closure a map task runs.
pub type MapFn<K, V> = Box<dyn FnOnce(&mut MapContext<K, V>) + Send>;

/// Shared Combine function: mutates a key's value list in place. Must be
/// associative when streaming combining is enabled (Hadoop's contract: the
/// combiner may run zero, one, or several times over partial value lists).
pub type CombineFn<K, V> = Arc<dyn Fn(&K, &mut Vec<V>) + Send + Sync>;

/// Reducer Close hook.
pub type FinishFn<R> = Box<dyn FnOnce(&mut ReduceContext<R>) + Send>;

/// Shared reduce function: receives each `(key, values-of-that-key)` group
/// in key order; `values` preserves the deterministic shuffle order.
///
/// It is `Fn` (not `FnMut`) and shared across partitions so reduce
/// partitions can run in parallel; cross-group state goes through the
/// [`ReduceContext`] outputs, the Close hook, or a captured
/// `Arc<Mutex<…>>`. Side effects on shared captures must be commutative
/// across *partitions* (keys of different partitions never interleave
/// deterministically); within a partition invocation order is fixed.
pub type ReduceFn<K, V, R> = Arc<dyn Fn(&K, &[V], &mut ReduceContext<R>) + Send + Sync>;

/// Maps a key to a reduce partition (taken modulo the reducer count).
pub type PartitionFn<K> = Arc<dyn Fn(&K) -> u64 + Send + Sync>;

/// Fn-pointer decoder for one `(K, V)` pair from a wire byte stream.
pub(crate) type PairDecodeFn<K, V> = fn(&mut &[u8]) -> Result<(K, V), WireError>;

/// Fn-pointer vtable encoding/decoding one `(K, V)` pair with the
/// [`WireCodec`] byte format, installed by [`JobSpec::with_wire_codec`].
/// Plain fn pointers (like the radix `key_codec`) so the spec stays
/// `Copy`-friendly and the codec can cross a fork without closures.
pub(crate) struct PairCodec<K, V> {
    pub(crate) encode: fn(&K, &V, &mut Vec<u8>),
    pub(crate) decode: PairDecodeFn<K, V>,
}

impl<K, V> Clone for PairCodec<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for PairCodec<K, V> {}

/// One map task: a closure run against its [`MapContext`].
pub struct MapTask<K, V> {
    /// The split this task reads (its id is echoed into the context).
    pub split_id: u32,
    /// The work: read input (however the algorithm likes), emit pairs.
    pub run: MapFn<K, V>,
}

impl<K, V> MapTask<K, V> {
    /// Convenience constructor.
    pub fn new(split_id: u32, run: impl FnOnce(&mut MapContext<K, V>) + Send + 'static) -> Self {
        Self {
            split_id,
            run: Box::new(run),
        }
    }
}

/// A single MapReduce round.
pub struct JobSpec<K, V, R> {
    /// Human-readable job name (diagnostics only).
    pub name: String,
    /// One map task per split.
    pub map_tasks: Vec<MapTask<K, V>>,
    /// Optional Combine function, applied per split to each key's values
    /// **before** communication is measured (exactly Hadoop's combiner
    /// contract: it may shrink, rewrite, or keep the value list).
    pub combiner: Option<CombineFn<K, V>>,
    /// Maps a key to its reduce partition. Defaults to a deterministic
    /// Fx hash of the key ([`engine::default_partition`]).
    pub partitioner: PartitionFn<K>,
    /// The reduce function (shared across partitions; within a partition
    /// invoked in key order).
    pub reduce: ReduceFn<K, V, R>,
    /// Bytes pushed to every slave through Job Configuration /
    /// Distributed Cache before the round starts.
    pub broadcast_bytes: u64,
    /// Reducer Close hook (the paper's Close interface, Appendix B): runs
    /// once after every partition finished — where histograms are
    /// assembled from aggregated state.
    pub finish: Option<FinishFn<R>>,
    /// Execution-engine knobs: reducer count and parallelism, streaming
    /// combining, spill chunk size, key-domain hint, engine selection.
    pub engine: EngineConfig,
    /// Order-preserving `u64` key codec, installed by
    /// [`JobSpec::with_radix_keys`] when `K` implements
    /// [`crate::RadixKey`]. Drives the pipelined engine's radix spill
    /// sort and (with [`EngineConfig::key_domain_hint`]) the dense
    /// combine table; `None` falls back to comparison sorting. Kept
    /// crate-private so only the sealed trait can supply codecs — the
    /// engine's determinism contract depends on order preservation.
    pub(crate) key_codec: Option<fn(&K) -> u64>,
    /// Pair wire codec, installed by [`JobSpec::with_wire_codec`].
    /// Required by (and only used in) [`EngineMode::MultiProcess`],
    /// where worker processes ship their spills as encoded bytes.
    pub(crate) pair_codec: Option<PairCodec<K, V>>,
    /// The per-split state store this job's map tasks use across rounds,
    /// when any ([`JobSpec::with_state_store`]). The multi-process mode
    /// needs the handle to replay worker-side `save_wire`/`take_wire`
    /// journals in the coordinator; in-process modes ignore it.
    pub(crate) state: Option<Arc<StateStore>>,
}

impl<K, V, R> JobSpec<K, V, R>
where
    K: Ord + std::hash::Hash + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
{
    /// A one-reducer job with default (hash) partitioning, no combiner,
    /// and the default (pipelined) engine.
    pub fn new(
        name: impl Into<String>,
        map_tasks: Vec<MapTask<K, V>>,
        reduce: impl Fn(&K, &[V], &mut ReduceContext<R>) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            map_tasks,
            combiner: None,
            partitioner: Arc::new(engine::default_partition::<K>),
            reduce: Arc::new(reduce),
            broadcast_bytes: 0,
            finish: None,
            engine: EngineConfig::default(),
            key_codec: None,
            pair_codec: None,
            state: None,
        }
    }

    /// Declares that `K`'s order-preserving [`crate::RadixKey`] image
    /// drives the engine's radix specializations: spill runs sort through
    /// the LSD radix sort instead of comparisons, and — when the engine
    /// also carries an [`EngineConfig::key_domain_hint`] — combining runs
    /// through the dense flat-array table instead of a hash map. Outputs
    /// and metrics are bit-identical with or without this call; it is
    /// purely an execution strategy.
    pub fn with_radix_keys(mut self) -> Self
    where
        K: crate::radix::RadixKey,
    {
        self.key_codec = Some(|k: &K| k.to_radix());
        self
    }

    /// Sets the combiner.
    pub fn with_combiner(mut self, f: impl Fn(&K, &mut Vec<V>) + Send + Sync + 'static) -> Self {
        self.combiner = Some(Arc::new(f));
        self
    }

    /// Sets the broadcast payload size.
    pub fn with_broadcast(mut self, bytes: u64) -> Self {
        self.broadcast_bytes = bytes;
        self
    }

    /// Sets the reducer Close hook.
    pub fn with_finish(mut self, f: impl FnOnce(&mut ReduceContext<R>) + Send + 'static) -> Self {
        self.finish = Some(Box::new(f));
        self
    }

    /// Sets the execution-engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the number of reduce partitions (shorthand for the engine knob).
    pub fn with_reducers(mut self, n: u32) -> Self {
        self.engine = self.engine.with_reducers(n);
        self
    }

    /// Declares the exclusive key-domain bound (shorthand for the engine
    /// knob — see [`EngineConfig::key_domain_hint`]). Together with
    /// [`JobSpec::with_radix_keys`] this routes combining through the
    /// dense flat-array table and selects the dense-reduce strategy.
    pub fn with_key_domain(mut self, domain: u64) -> Self {
        self.engine = self.engine.with_key_domain(domain);
        self
    }

    /// Overrides the partitioner.
    pub fn with_partitioner(mut self, f: impl Fn(&K) -> u64 + Send + Sync + 'static) -> Self {
        self.partitioner = Arc::new(f);
        self
    }

    /// Installs the [`WireCodec`] pair encoding, making the job eligible
    /// for [`EngineMode::MultiProcess`] (which refuses to run without
    /// it). Purely a transport declaration: in-process modes ignore it,
    /// and the multi-process mode is differential-tested bit-identical,
    /// so installing it never changes outputs or logical metrics.
    pub fn with_wire_codec(mut self) -> Self
    where
        K: WireCodec,
        V: WireCodec,
    {
        self.pair_codec = Some(PairCodec {
            encode: |k, v, out| {
                k.encode_wire(out);
                v.encode_wire(out);
            },
            decode: |input| Ok((K::decode_wire(input)?, V::decode_wire(input)?)),
        });
        self
    }

    /// Hands the job the [`StateStore`] its map tasks read and write
    /// across rounds. In-process engines don't need this (tasks capture
    /// the store's `Arc` directly); the multi-process coordinator uses
    /// the handle to replay the wire-state journal its forked workers
    /// record through [`StateStore::save_wire`]/[`StateStore::take_wire`].
    pub fn with_state_store(mut self, store: Arc<StateStore>) -> Self {
        self.state = Some(store);
        self
    }
}

/// The result of one round.
#[derive(Debug)]
pub struct JobOutput<R> {
    /// Reducer outputs, in emission order (partition order, then key
    /// order, then the Close hook's emissions).
    pub outputs: Vec<R>,
    /// Exact measurements for this round (`rounds == 1`).
    pub metrics: RunMetrics,
}

/// Executes one MapReduce round on `cluster` with the engine selected by
/// `spec.engine.mode`, surfacing multi-process transport failures as a
/// typed [`EngineError`]. The in-process modes are infallible; only
/// [`EngineMode::MultiProcess`] can return `Err` (missing wire codec,
/// dead worker, truncated frame, unsupported platform).
pub fn try_run_job<K, V, R>(
    cluster: &ClusterConfig,
    spec: JobSpec<K, V, R>,
) -> Result<JobOutput<R>, EngineError>
where
    K: Ord + std::hash::Hash + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
    R: Send,
{
    match spec.engine.mode {
        EngineMode::Pipelined => Ok(engine::execute(cluster, spec)),
        EngineMode::Reference => Ok(reference::run_job_reference(cluster, spec)),
        EngineMode::MultiProcess => crate::worker::execute_multiprocess(cluster, spec),
    }
}

/// Executes one MapReduce round on `cluster` with the engine selected by
/// `spec.engine.mode`, panicking on transport failure (the historical
/// interface — in-process modes cannot fail; use [`try_run_job`] to
/// handle multi-process errors).
pub fn run_job<K, V, R>(cluster: &ClusterConfig, spec: JobSpec<K, V, R>) -> JobOutput<R>
where
    K: Ord + std::hash::Hash + Clone + Send + WireSize + 'static,
    V: Send + WireSize + 'static,
    R: Send,
{
    let name = spec.name.clone();
    try_run_job(cluster, spec).unwrap_or_else(|e| panic!("job '{name}' failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wordcount_tasks(splits: Vec<Vec<u32>>) -> Vec<MapTask<u32, u64>> {
        splits
            .into_iter()
            .enumerate()
            .map(|(j, keys)| {
                MapTask::new(j as u32, move |ctx: &mut MapContext<u32, u64>| {
                    ctx.note_read(keys.len() as u64, keys.len() as u64 * 4);
                    for k in &keys {
                        ctx.emit(*k, 1);
                    }
                })
            })
            .collect()
    }

    fn count_reduce() -> impl Fn(&u32, &[u64], &mut ReduceContext<(u32, u64)>) + Send + Sync {
        |k, vs, ctx| {
            ctx.emit((*k, vs.iter().sum()));
        }
    }

    #[test]
    fn wordcount_end_to_end() {
        let cluster = ClusterConfig::single_machine();
        let tasks = wordcount_tasks(vec![vec![1, 2, 2], vec![2, 3], vec![1, 1, 1]]);
        let spec = JobSpec::new("wc", tasks, count_reduce());
        let out = run_job(&cluster, spec);
        let mut got = out.outputs.clone();
        got.sort();
        assert_eq!(got, vec![(1, 4), (2, 3), (3, 1)]);
        assert_eq!(out.metrics.records_scanned, 8);
        assert_eq!(out.metrics.bytes_scanned, 32);
        assert_eq!(out.metrics.map_output_pairs, 8);
        // 8 pairs × (4 + 8) bytes.
        assert_eq!(out.metrics.shuffle_bytes, 96);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn combiner_shrinks_communication() {
        let cluster = ClusterConfig::single_machine();
        let tasks = wordcount_tasks(vec![vec![7; 100], vec![7; 50]]);
        let spec =
            JobSpec::new("wc", tasks, count_reduce()).with_combiner(|_k, vs: &mut Vec<u64>| {
                let total: u64 = vs.iter().sum();
                vs.clear();
                vs.push(total);
            });
        let out = run_job(&cluster, spec);
        assert_eq!(out.outputs, vec![(7, 150)]);
        // One combined pair per split.
        assert_eq!(out.metrics.map_output_pairs, 2);
        assert_eq!(out.metrics.shuffle_bytes, 24);
    }

    #[test]
    fn streaming_combiner_matches_batch_combiner() {
        let cluster = ClusterConfig::single_machine();
        let mk = |engine: EngineConfig| {
            let tasks = wordcount_tasks(vec![vec![7; 100], vec![3; 40], vec![7; 50], vec![9; 3]]);
            let spec = JobSpec::new("wc", tasks, count_reduce())
                .with_combiner(|_k, vs: &mut Vec<u64>| {
                    let total: u64 = vs.iter().sum();
                    vs.clear();
                    vs.push(total);
                })
                .with_engine(engine);
            run_job(&cluster, spec)
        };
        let batch = mk(EngineConfig::default());
        for chunk in [0, 1, 8, 1024] {
            let streaming = mk(EngineConfig::default()
                .with_streaming_combine(true)
                .with_spill_chunk(chunk));
            assert_eq!(batch.outputs, streaming.outputs, "chunk={chunk}");
            assert_eq!(batch.metrics, streaming.metrics, "chunk={chunk}");
        }
    }

    #[test]
    fn reduce_sees_keys_in_sorted_order() {
        let cluster = ClusterConfig::single_machine();
        let tasks = wordcount_tasks(vec![vec![9, 1, 5], vec![3, 7]]);
        let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let order2 = order.clone();
        let reduce = move |k: &u32, _vs: &[u64], _ctx: &mut ReduceContext<()>| {
            order2.lock().push(*k);
        };
        let spec = JobSpec::new("order", tasks, reduce);
        run_job(&cluster, spec);
        assert_eq!(*order.lock(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn values_arrive_in_split_order() {
        let cluster = ClusterConfig::single_machine();
        // Each split emits its id as value for the same key.
        let tasks: Vec<MapTask<u32, u64>> = (0..6u32)
            .map(|j| {
                MapTask::new(j, move |ctx: &mut MapContext<u32, u64>| {
                    ctx.emit(42, u64::from(j));
                })
            })
            .collect();
        let reduce = |_k: &u32, vs: &[u64], ctx: &mut ReduceContext<Vec<u64>>| {
            ctx.emit(vs.to_vec());
        };
        let spec = JobSpec::new("split-order", tasks, reduce);
        let out = run_job(&cluster, spec);
        assert_eq!(out.outputs, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn charged_cpu_flows_into_metrics_and_time() {
        let mut cluster = ClusterConfig::single_machine();
        cluster.cpu_ops_per_s = 1e6;
        let tasks = vec![MapTask::new(0, |ctx: &mut MapContext<u32, u64>| {
            ctx.charge(2e6);
        })];
        let reduce = |_: &u32, _: &[u64], ctx: &mut ReduceContext<()>| ctx.charge(1e6);
        let spec = JobSpec::new("cpu", tasks, reduce);
        let out = run_job(&cluster, spec);
        assert_eq!(out.metrics.cpu_ops, 2e6);
        // Map 2s (2e6 ops at 1e6/s); no reduce groups ran (no pairs).
        assert!(
            (out.metrics.sim_time_s - 2.0).abs() < 0.01,
            "{}",
            out.metrics.sim_time_s
        );
    }

    #[test]
    fn broadcast_is_accounted() {
        let cluster = ClusterConfig::paper_cluster();
        let tasks = wordcount_tasks(vec![vec![1]]);
        let spec = JobSpec::new("bcast", tasks, count_reduce()).with_broadcast(1 << 20);
        let out = run_job(&cluster, spec);
        assert_eq!(out.metrics.broadcast_bytes, 1 << 20);
        assert_eq!(out.metrics.total_comm_bytes(), (1 << 20) + 12);
    }

    #[test]
    fn deterministic_across_runs() {
        let cluster = ClusterConfig::paper_cluster();
        let mk = || {
            let tasks = wordcount_tasks((0..20).map(|j| vec![j % 5, j % 3, 2]).collect());
            JobSpec::new("det", tasks, count_reduce())
        };
        let a = run_job(&cluster, mk());
        let b = run_job(&cluster, mk());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn multi_reducer_matches_single_reducer() {
        let cluster = ClusterConfig::paper_cluster();
        let mk = |engine: EngineConfig| {
            let tasks = wordcount_tasks((0..24).map(|j| vec![j % 7, j % 5, j % 3, 2]).collect());
            run_job(
                &cluster,
                JobSpec::new("multi", tasks, count_reduce()).with_engine(engine),
            )
        };
        let single = mk(EngineConfig::default());
        for reducers in [2, 3, 8] {
            let multi = mk(EngineConfig::default().with_reducers(reducers));
            // Outputs are partition-major; compare as multisets.
            let mut a = single.outputs.clone();
            let mut b = multi.outputs.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "reducers={reducers}");
            // Communication metrics are partition-independent.
            assert_eq!(single.metrics, multi.metrics, "reducers={reducers}");
        }
    }

    #[test]
    fn deterministic_across_reducer_parallelism() {
        let cluster = ClusterConfig::paper_cluster();
        let mk = |threads: usize| {
            let tasks = wordcount_tasks((0..30).map(|j| vec![j % 11, j % 4]).collect());
            run_job(
                &cluster,
                JobSpec::new("par", tasks, count_reduce()).with_engine(
                    EngineConfig::default()
                        .with_reducers(8)
                        .with_reducer_parallelism(threads),
                ),
            )
        };
        let one = mk(1);
        for threads in [2, 8] {
            let t = mk(threads);
            assert_eq!(one.outputs, t.outputs, "threads={threads}");
            assert_eq!(one.metrics, t.metrics, "threads={threads}");
        }
    }

    #[test]
    fn reference_engine_matches_pipelined() {
        let cluster = ClusterConfig::paper_cluster();
        let mk = |engine: EngineConfig| {
            let tasks = wordcount_tasks((0..16).map(|j| vec![j % 6, j % 4, 1]).collect());
            run_job(
                &cluster,
                JobSpec::new("diff", tasks, count_reduce()).with_engine(engine),
            )
        };
        for reducers in [1, 4] {
            let pipelined = mk(EngineConfig::pipelined().with_reducers(reducers));
            let reference = mk(EngineConfig::reference().with_reducers(reducers));
            assert_eq!(pipelined.outputs, reference.outputs, "reducers={reducers}");
            assert_eq!(pipelined.metrics, reference.metrics, "reducers={reducers}");
        }
    }

    #[test]
    fn reduce_strategy_selection_is_recorded_per_partition() {
        let cluster = ClusterConfig::single_machine();
        let mk = |radix: bool, hint: Option<u64>, reducers: u32| {
            let tasks = wordcount_tasks((0..12).map(|j| vec![j % 7, j % 5, 3]).collect());
            let mut spec = JobSpec::new("strategy", tasks, count_reduce()).with_reducers(reducers);
            if radix {
                spec = spec.with_radix_keys();
            }
            if let Some(u) = hint {
                spec = spec.with_key_domain(u);
            }
            run_job(&cluster, spec)
        };
        // Codec + bounded domain → dense reduce on every partition,
        // including a single one.
        let dense = mk(true, Some(8), 4);
        assert_eq!(dense.metrics.reduce_strategies.dense_reduce, 4);
        assert_eq!(dense.metrics.reduce_strategies.total(), 4);
        assert_eq!(
            mk(true, Some(8), 1).metrics.reduce_strategies.dense_reduce,
            1
        );
        // Codec without a usable domain, several partitions → one radix
        // sort per partition; a domain too wide for a flat array falls
        // back the same way.
        assert_eq!(
            mk(true, None, 3).metrics.reduce_strategies.sort_at_reduce,
            3
        );
        let wide = mk(true, Some(1 << 30), 2);
        assert_eq!(wide.metrics.reduce_strategies.sort_at_reduce, 2);
        // Single partition without a dense domain, or no codec at all →
        // pre-sorted spills + merge.
        assert_eq!(mk(true, None, 1).metrics.reduce_strategies.merge, 1);
        assert_eq!(mk(false, None, 2).metrics.reduce_strategies.merge, 2);
        // Strategies are an execution detail: same outputs and equal
        // metrics (under ==) as the sort-at-reduce run.
        let sorted = mk(true, None, 4);
        assert_eq!(dense.outputs, sorted.outputs);
        assert_eq!(dense.metrics, sorted.metrics);
        // The reference engine records nothing.
        let tasks = wordcount_tasks(vec![vec![1, 2], vec![2]]);
        let reference = run_job(
            &cluster,
            JobSpec::new("ref", tasks, count_reduce()).with_engine(EngineConfig::reference()),
        );
        assert_eq!(reference.metrics.reduce_strategies.total(), 0);
    }

    #[test]
    fn wall_clock_is_measured() {
        let cluster = ClusterConfig::single_machine();
        let tasks = wordcount_tasks(vec![vec![1, 2, 3]; 4]);
        let out = run_job(&cluster, JobSpec::new("wall", tasks, count_reduce()));
        // Phases really ran, so some nonzero time was observed.
        assert!(out.metrics.wall_time_s() > 0.0);
    }

    #[test]
    fn empty_job() {
        let cluster = ClusterConfig::single_machine();
        let spec: JobSpec<u32, u64, ()> = JobSpec::new("empty", vec![], |_: &u32, _, _| {});
        let out = run_job(&cluster, spec);
        assert!(out.outputs.is_empty());
        assert_eq!(out.metrics.shuffle_bytes, 0);
    }

    #[test]
    fn empty_job_multi_reducer_runs_finish() {
        let cluster = ClusterConfig::single_machine();
        let spec: JobSpec<u32, u64, u32> = JobSpec::new("empty", vec![], |_: &u32, _, _| {})
            .with_reducers(4)
            .with_finish(|ctx| ctx.emit(99));
        let out = run_job(&cluster, spec);
        assert_eq!(out.outputs, vec![99]);
    }
}
