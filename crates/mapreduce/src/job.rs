//! Job specification and the execution engine.
//!
//! A [`JobSpec`] describes one MapReduce round: one map closure per split,
//! an optional Combine function, a partitioner, and a reduce closure per
//! partition. [`run_job`] executes the round — map tasks in parallel worker
//! threads, then a deterministic sort-shuffle-reduce — and returns the
//! reducer outputs together with exact [`RunMetrics`].
//!
//! Determinism: mappers may run in any thread interleaving, but shuffle
//! output is sorted by `(key, split id, arrival order)` before reduction,
//! so reducers always observe the same sequence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::{MapContext, ReduceContext};
use crate::cost::{round_time, ClusterConfig, ReduceWork, TaskWork};
use crate::metrics::RunMetrics;
use crate::wire::WireSize;

/// The boxed closure a map task runs.
pub type MapFn<K, V> = Box<dyn FnOnce(&mut MapContext<K, V>) + Send>;

/// Shared Combine function: mutates a key's value list in place.
pub type CombineFn<K, V> = Arc<dyn Fn(&K, &mut Vec<V>) + Send + Sync>;

/// Reducer Close hook.
pub type FinishFn<R> = Box<dyn FnOnce(&mut ReduceContext<R>) + Send>;

/// One map task: a closure run against its [`MapContext`].
pub struct MapTask<K, V> {
    /// The split this task reads (its id is echoed into the context).
    pub split_id: u32,
    /// The work: read input (however the algorithm likes), emit pairs.
    pub run: MapFn<K, V>,
}

impl<K, V> MapTask<K, V> {
    /// Convenience constructor.
    pub fn new(split_id: u32, run: impl FnOnce(&mut MapContext<K, V>) + Send + 'static) -> Self {
        Self {
            split_id,
            run: Box::new(run),
        }
    }
}

/// Reduce function: receives each `(key, values-of-that-key)` group in key
/// order; `values` preserves the deterministic shuffle order.
pub type ReduceFn<K, V, R> = Box<dyn FnMut(&K, &[V], &mut ReduceContext<R>) + Send>;

/// A single MapReduce round.
pub struct JobSpec<K, V, R> {
    /// Human-readable job name (diagnostics only).
    pub name: String,
    /// One map task per split.
    pub map_tasks: Vec<MapTask<K, V>>,
    /// Optional Combine function, applied per split to each key's values
    /// **before** communication is measured (exactly Hadoop's combiner
    /// contract: it may shrink, rewrite, or keep the value list).
    pub combiner: Option<CombineFn<K, V>>,
    /// Number of reduce partitions (the paper always uses 1).
    pub num_reducers: u32,
    /// Maps a key to its reduce partition.
    pub partitioner: Arc<dyn Fn(&K) -> u64 + Send + Sync>,
    /// The reduce function (shared across partitions; invoked in partition
    /// order, then key order).
    pub reduce: ReduceFn<K, V, R>,
    /// Bytes pushed to every slave through Job Configuration /
    /// Distributed Cache before the round starts.
    pub broadcast_bytes: u64,
    /// Reducer Close hook (the paper's Close interface, Appendix B): runs
    /// once after the last key group — where histograms are assembled from
    /// aggregated state.
    pub finish: Option<FinishFn<R>>,
}

impl<K, V, R> JobSpec<K, V, R>
where
    K: Ord + std::hash::Hash + Clone + Send + WireSize,
    V: Send + WireSize,
{
    /// A one-reducer job with default (hash) partitioning and no combiner.
    pub fn new(
        name: impl Into<String>,
        map_tasks: Vec<MapTask<K, V>>,
        reduce: ReduceFn<K, V, R>,
    ) -> Self {
        Self {
            name: name.into(),
            map_tasks,
            combiner: None,
            num_reducers: 1,
            partitioner: Arc::new(|_| 0),
            reduce,
            broadcast_bytes: 0,
            finish: None,
        }
    }

    /// Sets the combiner.
    pub fn with_combiner(mut self, f: impl Fn(&K, &mut Vec<V>) + Send + Sync + 'static) -> Self {
        self.combiner = Some(Arc::new(f));
        self
    }

    /// Sets the broadcast payload size.
    pub fn with_broadcast(mut self, bytes: u64) -> Self {
        self.broadcast_bytes = bytes;
        self
    }

    /// Sets the reducer Close hook.
    pub fn with_finish(mut self, f: impl FnOnce(&mut ReduceContext<R>) + Send + 'static) -> Self {
        self.finish = Some(Box::new(f));
        self
    }
}

/// The result of one round.
#[derive(Debug)]
pub struct JobOutput<R> {
    /// Reducer outputs, in emission order.
    pub outputs: Vec<R>,
    /// Exact measurements for this round (`rounds == 1`).
    pub metrics: RunMetrics,
}

struct TaskResult<K, V> {
    split_id: u32,
    pairs: Vec<(K, V)>,
    work: TaskWork,
    records_read: u64,
}

/// Executes one MapReduce round on `cluster`.
///
/// Work-steals map tasks across `min(available_parallelism, tasks)` OS
/// threads; everything downstream is sequential and deterministic.
pub fn run_job<K, V, R>(cluster: &ClusterConfig, spec: JobSpec<K, V, R>) -> JobOutput<R>
where
    K: Ord + std::hash::Hash + Clone + Send + WireSize,
    V: Send + WireSize,
    R: Send,
{
    let JobSpec {
        map_tasks,
        combiner,
        num_reducers,
        partitioner,
        mut reduce,
        broadcast_bytes,
        finish,
        ..
    } = spec;
    assert!(num_reducers >= 1, "need at least one reducer");

    // ---- Map phase (parallel) ----
    let task_queue: Vec<Mutex<Option<MapTask<K, V>>>> =
        map_tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<TaskResult<K, V>>> = Mutex::new(Vec::with_capacity(task_queue.len()));
    let workers = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(task_queue.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= task_queue.len() {
                    break;
                }
                let task = task_queue[i].lock().take().expect("each task taken once");
                let mut ctx = MapContext::new(task.split_id);
                (task.run)(&mut ctx);
                let mut pairs = ctx.pairs;
                if let Some(comb) = &combiner {
                    pairs = apply_combiner(pairs, comb.as_ref());
                }
                // Hadoop sorts each spill by key within the mapper; we sort
                // here so shuffle concatenation stays deterministic.
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                results.lock().push(TaskResult {
                    split_id: task.split_id,
                    pairs,
                    work: TaskWork {
                        bytes_scanned: ctx.bytes_read,
                        cpu_ops: ctx.cpu_ops,
                    },
                    records_read: ctx.records_read,
                });
            });
        }
        // std::thread::scope joins all workers and re-raises any panic.
    });

    let mut per_task = results.into_inner();
    per_task.sort_by_key(|t| t.split_id);

    // ---- Accounting + shuffle ----
    let mut metrics = RunMetrics {
        rounds: 1,
        broadcast_bytes,
        ..Default::default()
    };
    let mut task_work = Vec::with_capacity(per_task.len());
    let mut shuffled: Vec<(u64, K, u32, V)> = Vec::new(); // (partition, key, split, value)
    for t in per_task {
        task_work.push(t.work);
        metrics.records_scanned += t.records_read;
        metrics.bytes_scanned += t.work.bytes_scanned;
        metrics.cpu_ops += t.work.cpu_ops;
        for (k, v) in t.pairs {
            metrics.map_output_pairs += 1;
            metrics.shuffle_bytes += k.wire_bytes() + v.wire_bytes();
            let p = partitioner(&k) % u64::from(num_reducers);
            shuffled.push((p, k, t.split_id, v));
        }
    }
    // Deterministic order: partition, key, then source split.
    shuffled.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));

    // ---- Reduce phase ----
    let mut rctx = ReduceContext::new();
    let mut iter = shuffled.into_iter().peekable();
    let mut values: Vec<V> = Vec::new();
    while let Some((part, key, _split, value)) = iter.next() {
        values.clear();
        values.push(value);
        while let Some((p2, k2, _, _)) = iter.peek() {
            if *p2 == part && *k2 == key {
                let (_, _, _, v) = iter.next().expect("peeked entry exists");
                values.push(v);
            } else {
                break;
            }
        }
        reduce(&key, &values, &mut rctx);
    }
    if let Some(f) = finish {
        f(&mut rctx);
    }

    metrics.cpu_ops += rctx.cpu_ops;
    metrics.sim_time_s = round_time(
        cluster,
        &task_work,
        ReduceWork {
            cpu_ops: rctx.cpu_ops,
        },
        metrics.shuffle_bytes,
        metrics.broadcast_bytes,
    );

    JobOutput {
        outputs: rctx.outputs,
        metrics,
    }
}

fn apply_combiner<K, V>(
    pairs: Vec<(K, V)>,
    comb: &(dyn Fn(&K, &mut Vec<V>) + Send + Sync),
) -> Vec<(K, V)>
where
    K: Ord + std::hash::Hash + Clone,
{
    use wh_wavelet::hash::FxHashMap;
    let mut groups: FxHashMap<K, Vec<V>> = FxHashMap::default();
    for (k, v) in pairs {
        groups.entry(k).or_default().push(v);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (k, mut vs) in groups {
        comb(&k, &mut vs);
        for v in vs {
            out.push((k.clone(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wordcount_tasks(splits: Vec<Vec<u32>>) -> Vec<MapTask<u32, u64>> {
        splits
            .into_iter()
            .enumerate()
            .map(|(j, keys)| {
                MapTask::new(j as u32, move |ctx: &mut MapContext<u32, u64>| {
                    ctx.note_read(keys.len() as u64, keys.len() as u64 * 4);
                    for k in &keys {
                        ctx.emit(*k, 1);
                    }
                })
            })
            .collect()
    }

    fn count_reduce() -> ReduceFn<u32, u64, (u32, u64)> {
        Box::new(|k, vs, ctx| {
            ctx.emit((*k, vs.iter().sum()));
        })
    }

    #[test]
    fn wordcount_end_to_end() {
        let cluster = ClusterConfig::single_machine();
        let tasks = wordcount_tasks(vec![vec![1, 2, 2], vec![2, 3], vec![1, 1, 1]]);
        let spec = JobSpec::new("wc", tasks, count_reduce());
        let out = run_job(&cluster, spec);
        let mut got = out.outputs.clone();
        got.sort();
        assert_eq!(got, vec![(1, 4), (2, 3), (3, 1)]);
        assert_eq!(out.metrics.records_scanned, 8);
        assert_eq!(out.metrics.bytes_scanned, 32);
        assert_eq!(out.metrics.map_output_pairs, 8);
        // 8 pairs × (4 + 8) bytes.
        assert_eq!(out.metrics.shuffle_bytes, 96);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn combiner_shrinks_communication() {
        let cluster = ClusterConfig::single_machine();
        let tasks = wordcount_tasks(vec![vec![7; 100], vec![7; 50]]);
        let spec =
            JobSpec::new("wc", tasks, count_reduce()).with_combiner(|_k, vs: &mut Vec<u64>| {
                let total: u64 = vs.iter().sum();
                vs.clear();
                vs.push(total);
            });
        let out = run_job(&cluster, spec);
        assert_eq!(out.outputs, vec![(7, 150)]);
        // One combined pair per split.
        assert_eq!(out.metrics.map_output_pairs, 2);
        assert_eq!(out.metrics.shuffle_bytes, 24);
    }

    #[test]
    fn reduce_sees_keys_in_sorted_order() {
        let cluster = ClusterConfig::single_machine();
        let tasks = wordcount_tasks(vec![vec![9, 1, 5], vec![3, 7]]);
        let order = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let order2 = order.clone();
        let reduce: ReduceFn<u32, u64, ()> = Box::new(move |k, _vs, _ctx| {
            order2.lock().push(*k);
        });
        let spec = JobSpec::new("order", tasks, reduce);
        run_job(&cluster, spec);
        assert_eq!(*order.lock(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn values_arrive_in_split_order() {
        let cluster = ClusterConfig::single_machine();
        // Each split emits its id as value for the same key.
        let tasks: Vec<MapTask<u32, u64>> = (0..6u32)
            .map(|j| {
                MapTask::new(j, move |ctx: &mut MapContext<u32, u64>| {
                    ctx.emit(42, u64::from(j));
                })
            })
            .collect();
        let reduce: ReduceFn<u32, u64, Vec<u64>> = Box::new(|_k, vs, ctx| {
            ctx.emit(vs.to_vec());
        });
        let spec = JobSpec::new("split-order", tasks, reduce);
        let out = run_job(&cluster, spec);
        assert_eq!(out.outputs, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn charged_cpu_flows_into_metrics_and_time() {
        let mut cluster = ClusterConfig::single_machine();
        cluster.cpu_ops_per_s = 1e6;
        let tasks = vec![MapTask::new(0, |ctx: &mut MapContext<u32, u64>| {
            ctx.charge(2e6);
        })];
        let reduce: ReduceFn<u32, u64, ()> = Box::new(|_, _, ctx| ctx.charge(1e6));
        let spec = JobSpec::new("cpu", tasks, reduce);
        let out = run_job(&cluster, spec);
        assert_eq!(out.metrics.cpu_ops, 2e6);
        // Map 2s (2e6 ops at 1e6/s); no reduce groups ran (no pairs).
        assert!(
            (out.metrics.sim_time_s - 2.0).abs() < 0.01,
            "{}",
            out.metrics.sim_time_s
        );
    }

    #[test]
    fn broadcast_is_accounted() {
        let cluster = ClusterConfig::paper_cluster();
        let tasks = wordcount_tasks(vec![vec![1]]);
        let spec = JobSpec::new("bcast", tasks, count_reduce()).with_broadcast(1 << 20);
        let out = run_job(&cluster, spec);
        assert_eq!(out.metrics.broadcast_bytes, 1 << 20);
        assert_eq!(out.metrics.total_comm_bytes(), (1 << 20) + 12);
    }

    #[test]
    fn deterministic_across_runs() {
        let cluster = ClusterConfig::paper_cluster();
        let mk = || {
            let tasks = wordcount_tasks((0..20).map(|j| vec![j % 5, j % 3, 2]).collect());
            JobSpec::new("det", tasks, count_reduce())
        };
        let a = run_job(&cluster, mk());
        let b = run_job(&cluster, mk());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn empty_job() {
        let cluster = ClusterConfig::single_machine();
        let spec: JobSpec<u32, u64, ()> = JobSpec::new("empty", vec![], Box::new(|_, _, _| {}));
        let out = run_job(&cluster, spec);
        assert!(out.outputs.is_empty());
        assert_eq!(out.metrics.shuffle_bytes, 0);
    }
}
