//! The dense-domain combine table: flat-array grouping for bounded keys.
//!
//! When a job declares both a radix codec ([`crate::JobSpec::with_radix_keys`])
//! and a bounded key domain ([`crate::EngineConfig::key_domain_hint`]), the
//! engine's combine step stops hashing: pairs scatter into a flat slot
//! array indexed by the key's radix image, each distinct key's values
//! accumulate in a recycled `Vec`, and the grouped output is emitted in
//! ascending key order — byte-identical to the hash-map path it replaces
//! (`group_combine`), enforced by differential tests.
//!
//! The table is owned by a map worker and **reused across every task that
//! worker runs**: the slot array is reset via the touched list (O(distinct
//! keys), not O(domain)), and value vectors are parked on a free list
//! instead of dropped, so steady-state combining allocates nothing.

/// Flat-array combiner state for a bounded key domain. One per map
/// worker (or per streaming compactor), recycled across tasks.
pub(crate) struct DenseTable<K, V> {
    /// `radix → group index + 1`; 0 = untouched. Reset via `groups`.
    slots: Vec<u32>,
    /// First-touch-ordered groups: `(radix, key, values in arrival
    /// order)`. The key rides in an `Option` so emission can move it into
    /// the last surviving pair instead of cloning it.
    groups: Vec<(u64, Option<K>, Vec<V>)>,
    /// Recycled value vectors, refilled when groups are drained.
    spare: Vec<Vec<V>>,
    /// Scratch for the key-order emission pass.
    order: Vec<u32>,
}

impl<K, V> DenseTable<K, V> {
    /// A table for radixes in `[0, domain)`.
    pub(crate) fn new(domain: usize) -> Self {
        Self {
            slots: vec![0; domain],
            groups: Vec::new(),
            spare: Vec::new(),
            order: Vec::new(),
        }
    }
}

impl<K: Ord + Clone, V> DenseTable<K, V> {
    /// Groups `pairs` by key, applies `comb` once per key, and writes the
    /// surviving pairs back into `pairs` in ascending key order with each
    /// key's values in arrival order — the exact contract of
    /// [`crate::engine::group_combine`], without hashing and with every
    /// buffer recycled. Keys are moved, not cloned, except when a combiner
    /// leaves a key more than one surviving value.
    ///
    /// # Panics
    ///
    /// Panics when a key's radix falls outside the declared domain — a
    /// broken [`crate::EngineConfig::key_domain_hint`] must fail loudly
    /// rather than corrupt the grouping.
    pub(crate) fn combine(
        &mut self,
        pairs: &mut Vec<(K, V)>,
        radix_of: impl Fn(&K) -> u64,
        comb: &(dyn Fn(&K, &mut Vec<V>) + Send + Sync),
    ) {
        for (k, v) in pairs.drain(..) {
            let r = radix_of(&k) as usize;
            assert!(
                r < self.slots.len(),
                "key radix {r} outside the declared key_domain_hint {}",
                self.slots.len()
            );
            let slot = self.slots[r];
            if slot == 0 {
                let mut vs = self.spare.pop().unwrap_or_default();
                vs.push(v);
                self.groups.push((r as u64, Some(k), vs));
                self.slots[r] = self.groups.len() as u32;
            } else {
                self.groups[slot as usize - 1].2.push(v);
            }
        }

        // Emit in ascending key order: sort the touched radixes (distinct
        // keys only — O(d log d), never O(domain)).
        self.order.clear();
        self.order.extend(0..self.groups.len() as u32);
        let groups = &mut self.groups;
        self.order.sort_unstable_by_key(|&i| groups[i as usize].0);
        for &i in &self.order {
            let (r, key_slot, vs) = &mut groups[i as usize];
            self.slots[*r as usize] = 0;
            let key = key_slot.take().expect("each group emitted once");
            comb(&key, vs);
            let survivors = vs.len();
            let mut values = vs.drain(..);
            for v in values.by_ref().take(survivors.saturating_sub(1)) {
                pairs.push((key.clone(), v));
            }
            if let Some(last) = values.next() {
                pairs.push((key, last));
            }
        }
        // Park the value buffers for the next task.
        for (_, _, vs) in groups.drain(..) {
            self.spare.push(vs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::group_combine;

    type Pairs = Vec<(u32, u64)>;

    fn combine_both(
        pairs: Pairs,
        comb: impl Fn(&u32, &mut Vec<u64>) + Send + Sync + 'static,
        domain: usize,
    ) -> (Pairs, Pairs) {
        let via_hash = group_combine(pairs.clone(), &comb);
        let mut table = DenseTable::new(domain);
        let mut via_dense = pairs;
        table.combine(&mut via_dense, |k| u64::from(*k), &comb);
        (via_hash, via_dense)
    }

    #[test]
    fn matches_group_combine_byte_for_byte() {
        let pairs: Vec<(u32, u64)> = (0..500u64).map(|i| ((i * 7 % 40) as u32, i)).collect();
        let sum = |_k: &u32, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let (hash, dense) = combine_both(pairs, sum, 40);
        assert_eq!(hash, dense);
    }

    #[test]
    fn keeps_multi_value_lists_in_arrival_order() {
        let pairs = vec![(9u32, 1u64), (2, 2), (9, 3), (2, 4), (2, 5)];
        let keep = |_k: &u32, _vs: &mut Vec<u64>| {};
        let (hash, dense) = combine_both(pairs, keep, 16);
        assert_eq!(hash, dense);
        assert_eq!(dense, vec![(2, 2), (2, 4), (2, 5), (9, 1), (9, 3)]);
    }

    #[test]
    fn table_reuse_across_tasks_resets_cleanly() {
        let sum = |_k: &u32, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let mut table: DenseTable<u32, u64> = DenseTable::new(64);
        for round in 0..4u64 {
            let pairs: Vec<(u32, u64)> = (0..200u64)
                .map(|i| (((i + round) % 63) as u32, i))
                .collect();
            let want = group_combine(pairs.clone(), &sum);
            let mut got = pairs;
            table.combine(&mut got, |k| u64::from(*k), &sum);
            assert_eq!(got, want, "round {round}");
        }
        // Value buffers were parked, not dropped.
        assert!(!table.spare.is_empty());
        assert!(table.groups.is_empty());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let sum = |_k: &u32, vs: &mut Vec<u64>| {
            let total: u64 = vs.iter().sum();
            vs.clear();
            vs.push(total);
        };
        let mut table: DenseTable<u32, u64> = DenseTable::new(8);
        let mut empty: Vec<(u32, u64)> = vec![];
        table.combine(&mut empty, |k| u64::from(*k), &sum);
        assert!(empty.is_empty());
        let mut one = vec![(3u32, 41u64)];
        table.combine(&mut one, |k| u64::from(*k), &sum);
        assert_eq!(one, vec![(3, 41)]);
    }

    #[test]
    fn combiner_may_drop_every_value() {
        let drop_all = |_k: &u32, vs: &mut Vec<u64>| vs.clear();
        let pairs = vec![(1u32, 1u64), (2, 2), (1, 3)];
        let (hash, dense) = combine_both(pairs, drop_all, 4);
        assert_eq!(hash, dense);
        assert!(dense.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the declared key_domain_hint")]
    fn out_of_domain_key_fails_loudly() {
        let mut table: DenseTable<u32, u64> = DenseTable::new(4);
        let mut pairs = vec![(9u32, 1u64), (1, 2)];
        table.combine(&mut pairs, |k| u64::from(*k), &|_, _| {});
    }
}
